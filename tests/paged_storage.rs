//! Out-of-core paged storage, end to end (satellite of the buffer-pool
//! tentpole).
//!
//! The pool's micro-invariants — pin counts never negative, eviction
//! skipping pinned pages, write-back held behind the WAL barrier —
//! live next to the implementation as `ddc_core::pager` unit tests.
//! These suites cover the layer above: a paged cube driven through a
//! long seeded churn under a cap tiny enough to force thousands of
//! evictions must stay bit-identical to a `HashMap` oracle and to its
//! slab twin, survive save/load and growth, and a WAL recovery must
//! replay onto freshly-faulted pages.

use std::collections::HashMap;

use ddc_core::wal::{self};
use ddc_core::{DdcConfig, DurableCube, GrowableCube, PagerConfig, WalConfig};
use ddc_tests::run_cases;

type Oracle = HashMap<Vec<i64>, i64>;

/// Tiny pool: a handful of 128-byte pages, so even short traces churn.
fn paged_config() -> DdcConfig {
    DdcConfig::dynamic()
        .with_elision(1)
        .with_paged_leaves(PagerConfig::in_mem(2048).with_page_bytes(128))
}

fn oracle_range(oracle: &Oracle, lo: &[i64], hi: &[i64]) -> i64 {
    oracle
        .iter()
        .filter(|(p, _)| {
            p.iter()
                .zip(lo.iter().zip(hi))
                .all(|(&c, (&l, &h))| l <= c && c <= h)
        })
        .map(|(_, &v)| v)
        .sum()
}

/// The headline churn: ≥1000 evictions under a ~2 KiB cap, every
/// answer cross-checked against the oracle and a slab twin.
#[test]
fn churn_forces_evictions_and_matches_oracle() {
    let mut paged = GrowableCube::<i64>::with_origin(&[0, 0], paged_config());
    assert!(paged.enable_paging().expect("enable paging"));
    assert!(paged.is_paged());
    let mut slab = GrowableCube::<i64>::with_origin(&[0, 0], DdcConfig::dynamic().with_elision(1));
    let mut oracle = Oracle::new();

    let mut state = 0xC0FFEEu64;
    let mut rng = move |n: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % n
    };
    for i in 0..4000 {
        let p = [rng(96) as i64 - 48, rng(96) as i64 - 48];
        let delta = rng(9) as i64 - 4;
        paged.add(&p, delta);
        slab.add(&p, delta);
        let v = oracle.entry(p.to_vec()).or_insert(0);
        *v += delta;
        if *v == 0 {
            oracle.remove(p.as_slice());
        }
        if i % 97 == 0 {
            let lo = [rng(96) as i64 - 48, rng(96) as i64 - 48];
            let hi = [lo[0] + rng(40) as i64, lo[1] + rng(40) as i64];
            assert_eq!(paged.range_sum(&lo, &hi), oracle_range(&oracle, &lo, &hi));
            assert_eq!(paged.range_sum(&lo, &hi), slab.range_sum(&lo, &hi));
        }
    }

    let stats = paged.pool_stats().expect("paged cube has pool stats");
    assert!(
        stats.evictions >= 1000,
        "churn too gentle: only {} evictions",
        stats.evictions
    );
    for (p, &want) in &oracle {
        assert_eq!(paged.cell(p), want, "cell {p:?}");
    }

    // Save/load keeps the backend: load re-enables paging from the
    // config, and the reloaded cube still answers like the oracle.
    let mut buf = Vec::new();
    paged.save(&mut buf).expect("save paged cube");
    let reloaded =
        GrowableCube::<i64>::load(&mut buf.as_slice(), paged_config()).expect("load paged cube");
    assert!(reloaded.is_paged());
    for (p, &want) in &oracle {
        assert_eq!(reloaded.cell(p), want, "reloaded cell {p:?}");
    }
}

/// Growth (re-rooting, §5) must not drop the paged arena: records keep
/// their ids, only the node structure above them is rebuilt.
#[test]
fn paged_cube_survives_growth() {
    run_cases("paged_cube_survives_growth", 16, |rng| {
        let mut paged = GrowableCube::<i64>::with_origin(&[0, 0], paged_config());
        paged.enable_paging().expect("enable paging");
        let mut oracle = Oracle::new();
        // Phase 1 near the origin, phase 2 far out in a random
        // direction — each far point forces one or more re-rootings.
        for phase in 0..2 {
            let spread = if phase == 0 { 8 } else { 400 };
            for _ in 0..60 {
                let p = [
                    rng.gen_range(-spread..=spread),
                    rng.gen_range(-spread..=spread),
                ];
                let delta = rng.gen_range(-5i64..=5);
                paged.add(&p, delta);
                *oracle.entry(p.to_vec()).or_insert(0) += delta;
            }
            assert!(paged.is_paged(), "growth dropped the paged arena");
        }
        for (p, &want) in &oracle {
            assert_eq!(paged.cell(p), want, "cell {p:?}");
        }
        let total: i64 = oracle.values().sum();
        assert_eq!(paged.range_sum(&[-500, -500], &[500, 500]), total);
    });
}

/// Crash recovery replays the WAL onto buffer-pool pages: the rebuilt
/// cube is paged, evicting, and exactly equal to the acked oracle.
#[test]
fn recovery_replays_wal_onto_pages() {
    run_cases("recovery_replays_wal_onto_pages", 8, |rng| {
        let config = paged_config();
        let mut durable =
            DurableCube::<i64, Vec<u8>>::new(2, config, Vec::new()).expect("in-memory WAL create");
        assert!(durable.cube().is_paged(), "durable cube should auto-page");
        let mut oracle = Oracle::new();
        for _ in 0..300 {
            let p = [rng.gen_range(-40i64..=40), rng.gen_range(-40i64..=40)];
            let delta = rng.gen_range(-6i64..=6);
            durable.add(&p, delta).expect("in-memory WAL append");
            *oracle.entry(p.to_vec()).or_insert(0) += delta;
        }
        let log = durable.into_wal().into_inner();

        let (recovered, report) =
            wal::recover::<i64>(2, None, &log, config, WalConfig::default()).expect("recover");
        assert_eq!(report.replayed, 300);
        assert!(
            recovered.is_paged(),
            "recovery must land on the paged backend"
        );
        let stats = recovered.pool_stats().expect("pool stats");
        assert!(stats.evictions > 0, "replay never evicted — cap too lax");
        for (p, &want) in &oracle {
            assert_eq!(recovered.cell(p), want, "recovered cell {p:?}");
        }
    });
}
