//! Acceptance tests for the `ddc-check` differential harness (the
//! tentpole of this change): a fixed-seed fuzz run of ≥10k mixed ops
//! over every engine with zero divergences, proof that an intentionally
//! buggy engine is caught and shrunk to a tiny replayable repro, a
//! byte-offset fault-injection sweep over the persistence layer, and a
//! bounded interleaving sweep over the sharded cube.

use ddc_array::Shape;
use ddc_check::{
    check_interleavings, fault_sweep, fault_sweep_growable, fuzz, fuzz_with, roster_with_bug,
    run_trace, run_trace_on, CheckEngine, DdcAdapter,
};
use ddc_core::{BaseStore, DdcConfig, DdcEngine, GrowableCube, ShardConfig};
use ddc_tests::for_cases;
use ddc_workload::{BoxState, CheckTrace, CheckTraceConfig};

/// The headline guarantee: with a fixed seed, ≥10,000 mixed operations
/// (updates, sets, range queries, cell reads, growth in any direction,
/// save/load round-trips, flush barriers) replay across the entire
/// engine roster with every answer equal to the oracle's.
#[test]
fn fixed_seed_fuzz_runs_ten_thousand_ops_with_zero_divergences() {
    let outcome = fuzz(
        0xDDC_C4EC,
        60,
        CheckTraceConfig {
            ops: 180,
            max_cells: 768,
        },
    );
    assert!(
        outcome.failure.is_none(),
        "divergence: {}\nshrunk repro:\n{}",
        outcome.failure.as_ref().unwrap().divergence,
        outcome.failure.as_ref().unwrap().shrunk.to_text()
    );
    assert!(
        outcome.ops_run >= 10_000,
        "only {} ops replayed",
        outcome.ops_run
    );
    assert!(outcome.comparisons >= 10_000);
}

/// The harness is not vacuous: an engine with a deliberate off-by-one
/// in its range query (last slab along axis 0 dropped) is caught, the
/// repro shrinks to ≤10 ops, and the shrunk trace replays to the same
/// divergence through the CLI's replay path.
#[test]
fn injected_off_by_one_is_caught_shrunk_and_replayable() {
    let outcome = fuzz_with(
        0xB00,
        20,
        CheckTraceConfig {
            ops: 150,
            max_cells: 512,
        },
        roster_with_bug,
    );
    let failure = outcome.failure.expect("buggy engine must be caught");
    assert_eq!(failure.divergence.engine, "off-by-one (intentional)");
    // The TraceDump hook replayed the shrunk repro with tracing forced
    // on: the failure carries engine spans from the observability layer.
    assert!(
        failure.trace_dump.contains("engine."),
        "trace dump missing engine spans:\n{}",
        failure.trace_dump
    );
    assert!(
        failure.shrunk.ops.len() <= 10,
        "repro did not shrink: {} ops\n{}",
        failure.shrunk.ops.len(),
        failure.shrunk.to_text()
    );

    // The shrunk trace is self-contained: it parses back from its text
    // form and still reproduces against the buggy roster…
    let reparsed = CheckTrace::parse(&failure.shrunk.to_text()).unwrap();
    assert!(
        ddc_check::run_trace_on(
            &reparsed,
            roster_with_bug(&ddc_workload::BoxState::initial(&reparsed))
        )
        .is_err(),
        "shrunk repro lost the failure"
    );
    // …while the healthy roster replays it clean (the bug is in the
    // engine, not the trace).
    assert!(run_trace(&reparsed).is_ok());

    // End to end through `ddc check replay`: write the repro, replay it
    // via the CLI entry point, and expect a clean pass (healthy roster)
    // plus an error report when pointed at a missing file.
    let path = std::env::temp_dir().join("ddc_check_harness_repro.trace");
    std::fs::write(&path, failure.shrunk.to_text()).unwrap();
    let args = vec!["replay".to_string(), path.display().to_string()];
    let report = ddc_cli::check::run(&args).expect("healthy roster replays clean");
    assert!(report.contains("0 divergences"), "{report}");
    std::fs::remove_file(&path).ok();
    assert!(ddc_cli::check::run(&["replay".to_string(), path.display().to_string()]).is_err());
}

/// Committed seeded traces (satellite of the arena rewrite): three
/// checked-in op streams — one per dimensionality — replay with zero
/// divergences across the full roster, which now includes the explicit
/// arena base-store variants (`ddc-bc16`, `ddc-fenwick`, `ddc-elide1`).
/// The arena-only roster additionally reproduces its pinned replay
/// checksums exactly, a determinism anchor for the flat-arena hot path:
/// any change to descent order, box materialization, or free-list reuse
/// that alters an answer shows up here as a checksum drift with the
/// trace file as the ready-made repro.
#[test]
fn committed_traces_replay_clean_and_pin_arena_checksums() {
    let arena_roster = |init: &BoxState| -> Vec<Box<dyn CheckEngine>> {
        vec![
            Box::new(DdcAdapter::new("ddc-dynamic", init, DdcConfig::dynamic())),
            Box::new(DdcAdapter::new(
                "ddc-bc16",
                init,
                DdcConfig::dynamic().with_base(BaseStore::Bc { fanout: 16 }),
            )),
            Box::new(DdcAdapter::new(
                "ddc-fenwick",
                init,
                DdcConfig::dynamic().with_base(BaseStore::Fenwick),
            )),
            Box::new(DdcAdapter::new(
                "ddc-elide1",
                init,
                DdcConfig::dynamic().with_elision(1),
            )),
        ]
    };
    // (file, ops, arena comparisons, arena checksum)
    let pinned: [(&str, &str, usize, usize, i64); 3] = [
        (
            "seed_d1",
            include_str!("traces/seed_d1.trace"),
            120,
            196,
            2684,
        ),
        (
            "seed_d2",
            include_str!("traces/seed_d2.trace"),
            160,
            224,
            -8132,
        ),
        (
            "seed_d3",
            include_str!("traces/seed_d3.trace"),
            140,
            216,
            -3692,
        ),
    ];
    for (name, text, ops, comparisons, checksum) in pinned {
        let trace = CheckTrace::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(trace.ops.len(), ops, "{name} op count");
        let full =
            run_trace(&trace).unwrap_or_else(|d| panic!("{name} diverged on the full roster: {d}"));
        assert_eq!(full.ops, ops, "{name} full-roster ops replayed");
        let arena = run_trace_on(&trace, arena_roster(&BoxState::initial(&trace)))
            .unwrap_or_else(|d| panic!("{name} diverged on the arena roster: {d}"));
        assert_eq!(arena.comparisons, comparisons, "{name} arena comparisons");
        assert_eq!(arena.checksum, checksum, "{name} arena replay checksum");
    }
}

/// The CLI fuzz entry point reports a clean run (exercises flag
/// parsing, the default output path logic, and the report format).
#[test]
fn cli_check_run_reports_clean() {
    let args: Vec<String> = ["run", "--seed", "11", "--cases", "4", "--ops", "80"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let report = ddc_cli::check::run(&args).unwrap();
    assert!(report.contains("0 divergences"), "{report}");
}

for_cases! {
    /// Fault-injection sweep (satellite of the persistence hardening):
    /// for randomized cubes, truncating the snapshot at *every* byte
    /// offset, failing the reader mid-stream, and failing the writer
    /// mid-stream must all produce clean `io::Error`s — no panics, no
    /// silently accepted corruption — and the undamaged snapshot must
    /// round-trip exactly.
    fn persistence_fault_sweep_is_clean(rng, cases = 6) {
        let d = rng.gen_range(1usize..=3);
        let dims: Vec<usize> = (0..d).map(|_| rng.gen_range(2usize..7)).collect();
        let shape = Shape::new(&dims);
        let mut fixed = DdcEngine::<i64>::dynamic(shape.clone());
        let mut growable = GrowableCube::<i64>::new(d, DdcConfig::dynamic());
        for _ in 0..rng.gen_range(1usize..15) {
            let p: Vec<usize> = dims.iter().map(|&n| rng.gen_range(0usize..n)).collect();
            let v = rng.gen_range(-99i64..=99);
            use ddc_array::RangeSumEngine;
            fixed.apply_delta(&p, v);
            let signed: Vec<i64> = p.iter().map(|&c| c as i64 - 3).collect();
            growable.add(&signed, v);
        }
        let report = fault_sweep(&fixed, DdcConfig::dynamic());
        assert!(report.is_clean(), "fixed cube: {report:?}");
        assert!(report.offsets > 0);
        let report = fault_sweep_growable(&growable, DdcConfig::dynamic());
        assert!(report.is_clean(), "growable cube: {report:?}");
    }

    /// Bounded interleaving exploration: every merge order of two
    /// writers' update sequences leaves the sharded cube in the same
    /// state the oracle predicts, and reads through the write queues
    /// see every enqueued update immediately — across write-through,
    /// small-batch, and never-flushing configurations.
    fn sharded_interleavings_match_oracle(rng, cases = 4) {
        let shape = Shape::new(&[6, 4]);
        let gen_updates = |rng: &mut ddc_tests::DdcRng, n: usize| -> Vec<(Vec<usize>, i64)> {
            (0..n)
                .map(|_| {
                    (
                        vec![rng.gen_range(0usize..6), rng.gen_range(0usize..4)],
                        rng.gen_range(-20i64..=20),
                    )
                })
                .collect()
        };
        let a = gen_updates(rng, 4);
        let b = gen_updates(rng, 4);
        for batch_capacity in [1usize, 2, 1_000] {
            for shards in [1usize, 3] {
                let report = check_interleavings(
                    &shape,
                    DdcConfig::dynamic(),
                    ShardConfig { shards, batch_capacity, ..ShardConfig::default() },
                    &a,
                    &b,
                    128,
                )
                .unwrap_or_else(|e| panic!("shards={shards} batch={batch_capacity}: {e}"));
                // C(8, 4) = 70 full merge orders per configuration.
                assert_eq!(report.orders, 70);
                assert_eq!(report.ops_run, 70 * 8);
            }
        }
    }

    /// Growth × persistence (satellite): grow a cube in two different
    /// directions mid-stream, save, load, and differential-check the
    /// restored cube cell by cell against the oracle.
    fn growth_then_snapshot_roundtrips_against_oracle(rng, cases = 12) {
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::dynamic());
        let mut oracle = ddc_check::Oracle::new(2);
        // Phase 1: populate a small box around the origin.
        for _ in 0..rng.gen_range(5usize..25) {
            let p = [rng.gen_range(0i64..4), rng.gen_range(0i64..4)];
            let v = rng.gen_range(-50i64..=50);
            cube.add(&p, v);
            oracle.add(&p, v);
        }
        // Phase 2: grow low on axis 0 and high on axis 1 by touching
        // cells beyond the current extent (§5 growth in any direction).
        for _ in 0..rng.gen_range(5usize..25) {
            let p = [rng.gen_range(-6i64..0), rng.gen_range(4i64..10)];
            let v = rng.gen_range(-50i64..=50);
            cube.add(&p, v);
            oracle.add(&p, v);
        }
        let mut buf = Vec::new();
        cube.save(&mut buf).unwrap();
        let restored = GrowableCube::<i64>::load(&mut buf.as_slice(), DdcConfig::sparse()).unwrap();
        for (p, v) in oracle.entries() {
            assert_eq!(restored.cell(&p), v, "cell {p:?} after grow+save+load");
        }
        assert_eq!(restored.total(), oracle.total());
        assert_eq!(
            restored.range_sum(&[-6, 0], &[3, 9]),
            oracle.range_sum(&[-6, 0], &[3, 9])
        );
    }
}
