//! End-to-end integration: the OLAP layer over generated workloads, every
//! engine kind answering the same analytical questions, and the paper's
//! §1/§2 aggregate semantics (SUM / COUNT / AVERAGE with retraction).

use ddc_olap::{CubeBuilder, DataCube, Dimension, EngineKind, RangeSpec, SumCountCube};
use ddc_workload::rng;

fn build_cube(kind: EngineKind) -> SumCountCube {
    CubeBuilder::new()
        .dimension(Dimension::int_range("customer_age", 18, 81)) // 64 ages
        .dimension(Dimension::bucketed("time", 0, 3_600, 128)) // hours
        .engine(kind)
        .build()
}

/// One synthetic day of commerce: deterministic, replayed into every
/// engine.
fn workload() -> Vec<(i64, i64, i64)> {
    let mut r = rng(20_000);
    (0..500)
        .map(|_| {
            let age = r.gen_range(18..=81);
            let t = r.gen_range(0..128 * 3_600);
            let amount = r.gen_range(1..500);
            (age, t, amount)
        })
        .collect()
}

#[test]
fn every_engine_answers_the_same_analytics() {
    let sales = workload();
    let questions: Vec<[RangeSpec<'static>; 2]> = vec![
        [RangeSpec::All, RangeSpec::All],
        [RangeSpec::Between(27.into(), 45.into()), RangeSpec::All],
        [
            RangeSpec::Between(27.into(), 45.into()),
            RangeSpec::Between((24 * 3_600).into(), (48 * 3_600 - 1).into()),
        ],
        [
            RangeSpec::Eq(37.into()),
            RangeSpec::Between(0.into(), 3_599.into()),
        ],
    ];

    let mut answers: Vec<Vec<(i64, i64)>> = Vec::new();
    for kind in EngineKind::ALL {
        let mut cube = build_cube(kind);
        for (age, t, amount) in &sales {
            cube.add_observation(&[(*age).into(), (*t).into()], *amount)
                .unwrap();
        }
        let per_engine: Vec<(i64, i64)> = questions
            .iter()
            .map(|q| (cube.sum(q).unwrap(), cube.count(q).unwrap()))
            .collect();
        answers.push(per_engine);
    }
    for a in &answers[1..] {
        assert_eq!(a, &answers[0]);
    }
    // Whole-cube totals equal the raw workload totals.
    let total: i64 = sales.iter().map(|(_, _, v)| v).sum();
    assert_eq!(answers[0][0], (total, sales.len() as i64));
}

#[test]
fn average_consistency_under_retraction() {
    let mut cube = build_cube(EngineKind::DynamicDdc);
    let sales = workload();
    for (age, t, amount) in &sales {
        cube.add_observation(&[(*age).into(), (*t).into()], *amount)
            .unwrap();
    }
    // Retract every other sale; averages must match a recomputed cube.
    let mut fresh = build_cube(EngineKind::DynamicDdc);
    for (i, (age, t, amount)) in sales.iter().enumerate() {
        if i % 2 == 0 {
            cube.retract_observation(&[(*age).into(), (*t).into()], *amount)
                .unwrap();
        } else {
            fresh
                .add_observation(&[(*age).into(), (*t).into()], *amount)
                .unwrap();
        }
    }
    let q = [RangeSpec::Between(30.into(), 60.into()), RangeSpec::All];
    assert_eq!(cube.sum(&q).unwrap(), fresh.sum(&q).unwrap());
    assert_eq!(cube.count(&q).unwrap(), fresh.count(&q).unwrap());
    assert_eq!(cube.average(&q).unwrap(), fresh.average(&q).unwrap());
}

#[test]
fn three_dimensional_cube_with_categorical_dimension() {
    let mut cube: DataCube<i64> = CubeBuilder::new()
        .dimension(Dimension::categorical("region", &["na", "eu", "apac"]))
        .dimension(Dimension::categorical(
            "product",
            &["widget", "gadget", "gizmo", "doodad"],
        ))
        .dimension(Dimension::int_range("week", 1, 52))
        .engine(EngineKind::DynamicDdc)
        .build();

    let mut r = rng(5_000);
    let regions = ["na", "eu", "apac"];
    let products = ["widget", "gadget", "gizmo", "doodad"];
    let mut eu_gadget_total = 0i64;
    for _ in 0..300 {
        let region = regions[r.gen_range(0usize..3)];
        let product = products[r.gen_range(0usize..4)];
        let week = r.gen_range(1..=52i64);
        let revenue = r.gen_range(10..1_000i64);
        cube.add(&[region.into(), product.into(), week.into()], revenue)
            .unwrap();
        if region == "eu" && product == "gadget" {
            eu_gadget_total += revenue;
        }
    }
    assert_eq!(
        cube.range_sum(&[
            RangeSpec::Eq("eu".into()),
            RangeSpec::Eq("gadget".into()),
            RangeSpec::All
        ])
        .unwrap(),
        eu_gadget_total
    );
}

#[test]
fn heap_accounting_is_monotone_in_data() {
    let mut cube: DataCube<i64> = CubeBuilder::new()
        .dimension(Dimension::int_range("x", 0, 255))
        .dimension(Dimension::int_range("y", 0, 255))
        .engine(EngineKind::CustomDdc(ddc_core::DdcConfig::sparse()))
        .build();
    let empty = cube.heap_bytes();
    let mut r = rng(1);
    for _ in 0..100 {
        let x = r.gen_range(0..256i64);
        let y = r.gen_range(0..256i64);
        cube.add(&[x.into(), y.into()], 1).unwrap();
    }
    assert!(cube.heap_bytes() > empty);
}
