//! Arena invariant properties (satellite of the flat-arena rewrite).
//!
//! The primary tree now lives in `Vec`-indexed arenas with free-list
//! slot reuse and opportunistic compaction. These suites churn trees
//! through randomized update / cancel / grow / prune cycles and, after
//! every phase, audit the bookkeeping the pointer-based tree never
//! needed: every slot reachable-or-free, no dangling or duplicated
//! references, free-list entries cleared — plus the structural
//! invariants and a sparse oracle for answers. A deterministic
//! regression test pins `TreeStats`' arena-slot accounting and the
//! `heap_bytes` reclamation curve across a full lifecycle.

use std::collections::HashMap;

use ddc_core::{BaseStore, DdcConfig, DdcTree};
use ddc_tests::for_cases;

type Oracle = HashMap<Vec<usize>, i64>;

fn oracle_add(oracle: &mut Oracle, p: &[usize], delta: i64) {
    let v = oracle.entry(p.to_vec()).or_insert(0);
    *v += delta;
    if *v == 0 {
        oracle.remove(p);
    }
}

fn oracle_total(oracle: &Oracle) -> i64 {
    oracle.values().sum()
}

fn oracle_prefix(oracle: &Oracle, x: &[usize]) -> i64 {
    oracle
        .iter()
        .filter(|(p, _)| p.iter().zip(x).all(|(&c, &b)| c <= b))
        .map(|(_, &v)| v)
        .sum()
}

/// Full audit after a phase: arena bookkeeping, structural invariants,
/// and the invariant-walk total against the oracle.
fn audit(tree: &DdcTree<i64>, oracle: &Oracle) {
    let (reachable_nodes, reachable_leaves) = tree.check_arena();
    assert_eq!(tree.check_invariants(), oracle_total(oracle));
    let stats = tree.stats();
    assert_eq!(
        stats.node_slots - stats.free_node_slots,
        reachable_nodes,
        "live node slots vs reachable nodes"
    );
    assert_eq!(
        stats.leaf_slots - stats.free_leaf_slots,
        reachable_leaves,
        "live leaf slots vs reachable leaves"
    );
}

fn configs() -> [DdcConfig; 4] {
    [
        DdcConfig::dynamic(),
        DdcConfig::dynamic().with_base(BaseStore::Bc { fanout: 4 }),
        DdcConfig::dynamic().with_elision(1),
        DdcConfig::sparse(),
    ]
}

for_cases! {
    /// Randomized churn: interleaved updates, cancellations (driving
    /// cells back to zero), growth in random directions, and prunes.
    /// After every phase the arena audit passes, the invariant walk
    /// reconciles with the oracle total, and sampled prefix sums agree.
    fn arena_survives_update_cancel_grow_prune_churn(rng, cases = 24) {
        let d = rng.gen_range(1usize..=3);
        let side = [8, 16][rng.gen_range(0usize..2)];
        let config = configs()[rng.gen_range(0usize..4)];
        let mut tree = DdcTree::<i64>::new(d, side, config);
        let mut oracle = Oracle::new();
        let mut side_now = side;

        for _phase in 0..6 {
            match rng.gen_range(0usize..10) {
                // Mostly updates: a burst of random deltas.
                0..=5 => {
                    for _ in 0..rng.gen_range(4usize..20) {
                        let p: Vec<usize> =
                            (0..d).map(|_| rng.gen_range(0..side_now)).collect();
                        let delta = rng.gen_range(-30i64..=30);
                        tree.apply_delta(&p, delta);
                        oracle_add(&mut oracle, &p, delta);
                    }
                }
                // Cancellation: zero out a handful of populated cells.
                6..=7 => {
                    let cells: Vec<(Vec<usize>, i64)> =
                        oracle.iter().map(|(p, &v)| (p.clone(), v)).collect();
                    for (p, v) in cells.into_iter().take(5) {
                        tree.apply_delta(&p, -v);
                        oracle_add(&mut oracle, &p, -v);
                    }
                }
                // Growth: double the side, shifting content on the
                // low-grown axes by the old side.
                8 => {
                    let low: Vec<bool> = (0..d).map(|_| rng.gen_range(0usize..2) == 0).collect();
                    tree.grow(&low);
                    oracle = oracle
                        .into_iter()
                        .map(|(p, v)| {
                            let q: Vec<usize> = p
                                .iter()
                                .zip(&low)
                                .map(|(&c, &l)| if l { c + side_now } else { c })
                                .collect();
                            (q, v)
                        })
                        .collect();
                    side_now *= 2;
                }
                // Prune: structure-only, answers must not move.
                _ => {
                    tree.prune();
                }
            }
            audit(&tree, &oracle);
            for _ in 0..4 {
                let x: Vec<usize> = (0..d).map(|_| rng.gen_range(0..side_now)).collect();
                assert_eq!(tree.prefix_sum(&x), oracle_prefix(&oracle, &x), "prefix at {x:?}");
                assert_eq!(tree.cell(&x), oracle.get(&x).copied().unwrap_or(0));
            }
        }
        assert_eq!(tree.total(), oracle_total(&oracle));
    }

    /// Free-list discipline: cancelling and pruning a populated tree
    /// frees slots without leaking them, and rebuilding the same
    /// population reuses freed slots rather than growing the arenas —
    /// the arena never exceeds its previous peak across the cycle.
    fn freed_slots_are_reused_not_leaked(rng, cases = 16) {
        let d = rng.gen_range(1usize..=2);
        let side = 16;
        let config = configs()[rng.gen_range(0usize..4)];
        let mut tree = DdcTree::<i64>::new(d, side, config);
        let points: Vec<Vec<usize>> = (0..12)
            .map(|_| (0..d).map(|_| rng.gen_range(0..side)).collect())
            .collect();

        for p in &points {
            tree.apply_delta(p, 7);
        }
        let peak = tree.stats().node_slots;
        // Cancel everything; prune reclaims the dead structure.
        for p in &points {
            tree.apply_delta(p, -7);
        }
        tree.prune();
        tree.check_arena();
        assert_eq!(tree.total(), 0);

        // The same population must fit in the recycled (or compacted)
        // arena: no monotonic slot growth across cycles.
        for p in &points {
            tree.apply_delta(p, 9);
        }
        let after = tree.stats();
        assert!(
            after.node_slots <= peak,
            "node arena grew across a cancel/prune/rebuild cycle: {} -> {}",
            peak,
            after.node_slots
        );
        tree.check_arena();
        assert_eq!(tree.check_invariants(), 9 * points.len() as i64);
    }

    /// Build-path equivalence: a tree grown update-by-update, one built
    /// by the sequential bulk path, and one by the parallel bulk path
    /// land on identical answers and pass the same arena audit.
    fn bulk_builds_match_incremental_and_pass_audit(rng, cases = 12) {
        use ddc_array::NdArray;
        let d = rng.gen_range(1usize..=2);
        let side = 16;
        let config = configs()[rng.gen_range(0usize..4)];
        let shape = ddc_array::Shape::new(&vec![side; d]);
        let mut cells = Oracle::new();
        let mut incremental = DdcTree::<i64>::new(d, side, config);
        for _ in 0..rng.gen_range(5usize..40) {
            let p: Vec<usize> = (0..d).map(|_| rng.gen_range(0..side)).collect();
            let delta = rng.gen_range(-20i64..=20);
            oracle_add(&mut cells, &p, delta);
            incremental.apply_delta(&p, delta);
        }
        let dense = NdArray::from_fn(shape, |p| cells.get(p).copied().unwrap_or(0));
        let bulk = DdcTree::from_array_sized(&dense, side, config);
        let parallel = DdcTree::from_array_parallel(&dense, side, config);
        for t in [&incremental, &bulk, &parallel] {
            t.check_arena();
            t.check_invariants();
        }
        for _ in 0..8 {
            let x: Vec<usize> = (0..d).map(|_| rng.gen_range(0..side)).collect();
            let want = incremental.prefix_sum(&x);
            assert_eq!(bulk.prefix_sum(&x), want, "bulk prefix at {x:?}");
            assert_eq!(parallel.prefix_sum(&x), want, "parallel prefix at {x:?}");
        }
    }
}

/// Deterministic `TreeStats` / `heap_bytes` regression (satellite 4):
/// a fixed lifecycle on a d=2 tree pins the arena-slot accounting at
/// every stage. Structural counts are exact; byte totals are asserted
/// relationally (monotone under reclamation, consistent with `stats`)
/// so the test does not depend on allocator or `Vec` growth policy.
#[test]
fn stats_and_heap_bytes_track_the_arena_lifecycle() {
    let mut tree = DdcTree::<i64>::new(2, 16, DdcConfig::dynamic());

    // Empty tree: no slots anywhere.
    let s0 = tree.stats();
    assert_eq!(
        (
            s0.node_slots,
            s0.free_node_slots,
            s0.leaf_slots,
            s0.free_leaf_slots
        ),
        (0, 0, 0, 0)
    );
    assert_eq!(s0.nodes, 0);
    assert_eq!(s0.total_bytes, tree.heap_bytes());

    // One deep path: root(16) -> node(8) -> node(4) -> leaf block(2x2).
    tree.apply_delta(&[0, 0], 5);
    let s1 = tree.stats();
    assert_eq!(s1.nodes, 3, "three interior levels above the leaf block");
    assert_eq!(s1.leaf_blocks, 1);
    assert_eq!(s1.leaf_cells, 4);
    assert_eq!((s1.node_slots, s1.free_node_slots), (3, 0));
    assert_eq!((s1.leaf_slots, s1.free_leaf_slots), (1, 0));
    assert_eq!(s1.boxes, 3, "one overlay box per interior level");
    assert_eq!(s1.depth, 3);
    assert_eq!(s1.total_bytes, tree.heap_bytes());
    assert!(s1.secondary_bytes > 0, "faces must be accounted");

    // A second, disjoint path shares the root only.
    tree.apply_delta(&[15, 15], 7);
    let s2 = tree.stats();
    assert_eq!(
        s2.nodes, 5,
        "two extra interior nodes under the shared root"
    );
    assert_eq!(s2.leaf_blocks, 2);
    assert_eq!((s2.node_slots, s2.free_node_slots), (5, 0));
    assert_eq!((s2.leaf_slots, s2.free_leaf_slots), (2, 0));
    let populated_bytes = tree.heap_bytes();
    assert_eq!(s2.total_bytes, populated_bytes);

    // Cancel one path and prune: its slots are freed (or the arena is
    // compacted outright), and the accounting stays reconciled.
    tree.apply_delta(&[15, 15], -7);
    let freed = tree.prune();
    assert!(freed > 0, "prune must reclaim the dead path");
    let s3 = tree.stats();
    let (reach_nodes, reach_leaves) = tree.check_arena();
    assert_eq!(reach_nodes, 3, "back to the single-path structure");
    assert_eq!(reach_leaves, 1);
    assert_eq!(s3.node_slots - s3.free_node_slots, reach_nodes);
    assert_eq!(s3.leaf_slots - s3.free_leaf_slots, reach_leaves);
    assert_eq!(s3.total_bytes, tree.heap_bytes());

    // Cancel the last path: after prune + compaction the tree is empty
    // and the bytes drop strictly below the populated peak.
    tree.apply_delta(&[0, 0], -5);
    tree.prune();
    let s4 = tree.stats();
    assert_eq!(tree.check_arena(), (0, 0));
    assert_eq!((s4.nodes, s4.leaf_blocks), (0, 0));
    assert_eq!(
        s4.node_slots, s4.free_node_slots,
        "every remaining node slot is on the free list"
    );
    assert_eq!(s4.leaf_slots, s4.free_leaf_slots);
    assert!(
        tree.heap_bytes() < populated_bytes,
        "empty tree must not hold the populated peak: {} vs {}",
        tree.heap_bytes(),
        populated_bytes
    );
    assert_eq!(tree.total(), 0);
}
