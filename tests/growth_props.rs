//! Property tests for §5 dynamic growth: a [`GrowableCube`] fed arbitrary
//! signed points agrees with a hash-map reference on every range query,
//! across every configuration, and its invariants hold after any growth
//! sequence.

use ddc_core::{BaseStore, DdcConfig, GrowableCube};
use proptest::prelude::*;
use std::collections::HashMap;

fn configs() -> Vec<DdcConfig> {
    vec![
        DdcConfig::dynamic(),
        DdcConfig::sparse(),
        DdcConfig::basic(),
        DdcConfig::dynamic().with_elision(2),
        DdcConfig::dynamic().with_base(BaseStore::Fenwick),
    ]
}

fn reference_sum(cells: &HashMap<Vec<i64>, i64>, lo: &[i64], hi: &[i64]) -> i64 {
    cells
        .iter()
        .filter(|(p, _)| {
            p.iter()
                .zip(lo.iter().zip(hi.iter()))
                .all(|(&c, (&l, &h))| l <= c && c <= h)
        })
        .map(|(_, &v)| v)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn growable_cube_matches_reference(
        d in 1usize..=3,
        points in proptest::collection::vec(
            (proptest::collection::vec(-200i64..200, 3), -100i64..100), 1..30),
        queries in proptest::collection::vec(
            (proptest::collection::vec(-250i64..250, 3),
             proptest::collection::vec(-250i64..250, 3)), 1..8),
    ) {
        for config in configs() {
            let mut cube = GrowableCube::<i64>::new(d, config);
            let mut reference: HashMap<Vec<i64>, i64> = HashMap::new();
            for (p, v) in &points {
                let p = p[..d].to_vec();
                cube.add(&p, *v);
                *reference.entry(p).or_insert(0) += *v;
            }
            reference.retain(|_, v| *v != 0);

            prop_assert_eq!(cube.total(), reference.values().sum::<i64>());
            prop_assert_eq!(cube.populated_cells(), reference.len());

            for (a, b) in &queries {
                let lo: Vec<i64> =
                    a[..d].iter().zip(b[..d].iter()).map(|(&x, &y)| x.min(y)).collect();
                let hi: Vec<i64> =
                    a[..d].iter().zip(b[..d].iter()).map(|(&x, &y)| x.max(y)).collect();
                prop_assert_eq!(
                    cube.range_sum(&lo, &hi),
                    reference_sum(&reference, &lo, &hi),
                    "config {:?} query {:?}..{:?}", config, lo, hi
                );
            }
            cube.check_invariants();
        }
    }

    #[test]
    fn growth_then_update_is_consistent(
        first in proptest::collection::vec(-50i64..50, 2),
        far in proptest::collection::vec(-5000i64..5000, 2),
        v1 in 1i64..100,
        v2 in 1i64..100,
    ) {
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::sparse());
        cube.add(&first, v1);
        cube.add(&far, v2); // may trigger several doublings
        // Re-touch the first point after growth.
        cube.add(&first, v1);
        let expect_first = if first == far { 2 * v1 + v2 } else { 2 * v1 };
        prop_assert_eq!(cube.cell(&first), if first == far { expect_first } else { 2 * v1 });
        prop_assert_eq!(cube.total(), 2 * v1 + v2);
        prop_assert_eq!(
            cube.range_sum(&[-10_000, -10_000], &[10_000, 10_000]),
            2 * v1 + v2
        );
        let _ = expect_first;
        cube.check_invariants();
    }

    #[test]
    fn set_is_idempotent_across_growth(
        points in proptest::collection::vec(
            (proptest::collection::vec(-300i64..300, 2), -50i64..50), 1..15),
    ) {
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::dynamic());
        let mut reference: HashMap<Vec<i64>, i64> = HashMap::new();
        for (p, v) in &points {
            let old = cube.set(p, *v);
            let expect_old = reference.insert(p.clone(), *v).unwrap_or(0);
            prop_assert_eq!(old, expect_old, "{:?}", p);
        }
        reference.retain(|_, v| *v != 0);
        prop_assert_eq!(cube.total(), reference.values().sum::<i64>());
    }
}
