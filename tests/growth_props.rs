//! Property tests for §5 dynamic growth: a [`GrowableCube`] fed arbitrary
//! signed points agrees with a hash-map reference on every range query,
//! across every configuration, and its invariants hold after any growth
//! sequence.

use ddc_core::{BaseStore, DdcConfig, GrowableCube};
use ddc_tests::for_cases;
use std::collections::HashMap;

fn configs() -> Vec<DdcConfig> {
    vec![
        DdcConfig::dynamic(),
        DdcConfig::sparse(),
        DdcConfig::basic(),
        DdcConfig::dynamic().with_elision(2),
        DdcConfig::dynamic().with_base(BaseStore::Fenwick),
    ]
}

fn reference_sum(cells: &HashMap<Vec<i64>, i64>, lo: &[i64], hi: &[i64]) -> i64 {
    cells
        .iter()
        .filter(|(p, _)| {
            p.iter()
                .zip(lo.iter().zip(hi.iter()))
                .all(|(&c, (&l, &h))| l <= c && c <= h)
        })
        .map(|(_, &v)| v)
        .sum()
}

for_cases! {
    fn growable_cube_matches_reference(rng, cases = 40) {
        let d = rng.gen_range(1usize..=3);
        // Keep the grown extent manageable for the dense configs: the cube
        // doubles toward each touched coordinate, so the span must shrink
        // with dimensionality (512 cells in 1d, ~128² in 2d, ~32³ in 3d).
        let span = [200i64, 60, 12][d - 1];
        let qspan = span + span / 4;
        let points: Vec<(Vec<i64>, i64)> = (0..rng.gen_range(1usize..30))
            .map(|_| {
                let p: Vec<i64> = (0..3).map(|_| rng.gen_range(-span..span)).collect();
                (p, rng.gen_range(-100i64..100))
            })
            .collect();
        let queries: Vec<(Vec<i64>, Vec<i64>)> = (0..rng.gen_range(1usize..8))
            .map(|_| {
                let a: Vec<i64> = (0..3).map(|_| rng.gen_range(-qspan..qspan)).collect();
                let b: Vec<i64> = (0..3).map(|_| rng.gen_range(-qspan..qspan)).collect();
                (a, b)
            })
            .collect();
        for config in configs() {
            let mut cube = GrowableCube::<i64>::new(d, config);
            let mut reference: HashMap<Vec<i64>, i64> = HashMap::new();
            for (p, v) in &points {
                let p = p[..d].to_vec();
                cube.add(&p, *v);
                *reference.entry(p).or_insert(0) += *v;
            }
            reference.retain(|_, v| *v != 0);

            assert_eq!(cube.total(), reference.values().sum::<i64>());
            assert_eq!(cube.populated_cells(), reference.len());

            for (a, b) in &queries {
                let lo: Vec<i64> =
                    a[..d].iter().zip(b[..d].iter()).map(|(&x, &y)| x.min(y)).collect();
                let hi: Vec<i64> =
                    a[..d].iter().zip(b[..d].iter()).map(|(&x, &y)| x.max(y)).collect();
                assert_eq!(
                    cube.range_sum(&lo, &hi),
                    reference_sum(&reference, &lo, &hi),
                    "config {:?} query {:?}..{:?}", config, lo, hi
                );
            }
            cube.check_invariants();
        }
    }

    fn growth_then_update_is_consistent(rng, cases = 40) {
        let first: Vec<i64> = (0..2).map(|_| rng.gen_range(-50i64..50)).collect();
        let far: Vec<i64> = (0..2).map(|_| rng.gen_range(-5000i64..5000)).collect();
        let v1 = rng.gen_range(1i64..100);
        let v2 = rng.gen_range(1i64..100);
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::sparse());
        cube.add(&first, v1);
        cube.add(&far, v2); // may trigger several doublings
        // Re-touch the first point after growth.
        cube.add(&first, v1);
        assert_eq!(cube.cell(&first), if first == far { 2 * v1 + v2 } else { 2 * v1 });
        assert_eq!(cube.total(), 2 * v1 + v2);
        assert_eq!(
            cube.range_sum(&[-10_000, -10_000], &[10_000, 10_000]),
            2 * v1 + v2
        );
        cube.check_invariants();
    }

    fn set_is_idempotent_across_growth(rng, cases = 40) {
        let points: Vec<(Vec<i64>, i64)> = (0..rng.gen_range(1usize..15))
            .map(|_| {
                let p: Vec<i64> = (0..2).map(|_| rng.gen_range(-100i64..100)).collect();
                (p, rng.gen_range(-50i64..50))
            })
            .collect();
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::dynamic());
        let mut reference: HashMap<Vec<i64>, i64> = HashMap::new();
        for (p, v) in &points {
            let old = cube.set(p, *v);
            let expect_old = reference.insert(p.clone(), *v).unwrap_or(0);
            assert_eq!(old, expect_old, "{:?}", p);
        }
        reference.retain(|_, v| *v != 0);
        assert_eq!(cube.total(), reference.values().sum::<i64>());
    }
}
