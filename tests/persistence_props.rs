//! Property tests for the binary snapshot format and float-measure cubes.

use ddc_array::{RangeSumEngine, Shape};
use ddc_core::{DdcConfig, DdcEngine, GrowableCube};
use ddc_tests::for_cases;

for_cases! {
    fn engine_snapshots_roundtrip(rng, cases = 32) {
        let d = rng.gen_range(1usize..=3);
        let dims: Vec<usize> = (0..d).map(|_| rng.gen_range(1usize..12)).collect();
        let cells: Vec<(Vec<f64>, i64)> = (0..rng.gen_range(0usize..25))
            .map(|_| {
                let frac: Vec<f64> = (0..3).map(|_| rng.next_f64()).collect();
                (frac, rng.gen_range(-1000i64..1000))
            })
            .collect();
        let shape = Shape::new(&dims);
        let mut e = DdcEngine::<i64>::dynamic(shape.clone());
        for (frac, v) in &cells {
            let p: Vec<usize> = dims.iter().enumerate()
                .map(|(i, &n)| ((frac[i % 3] * n as f64) as usize).min(n - 1)).collect();
            e.apply_delta(&p, *v);
        }
        let mut buf = Vec::new();
        e.save(&mut buf).unwrap();
        let restored = DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::sparse()).unwrap();
        for p in shape.iter_points() {
            assert_eq!(restored.cell(&p), e.cell(&p));
        }
        // Snapshot size is header + entries only.
        let entries = e.entries().len();
        assert!(buf.len() <= 17 + dims.len() * 8 + entries * (dims.len() + 1) * 8 + 8);
    }

    fn growable_snapshots_roundtrip(rng, cases = 32) {
        let points: Vec<(Vec<i64>, i64)> = (0..rng.gen_range(0usize..20))
            .map(|_| {
                let p: Vec<i64> = (0..2).map(|_| rng.gen_range(-500i64..500)).collect();
                (p, rng.gen_range(-100i64..100))
            })
            .collect();
        let mut cube = GrowableCube::<i64>::new(2, DdcConfig::sparse());
        for (p, v) in &points {
            cube.add(p, *v);
        }
        let mut buf = Vec::new();
        cube.save(&mut buf).unwrap();
        let restored =
            GrowableCube::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap();
        assert_eq!(restored.total(), cube.total());
        assert_eq!(restored.populated_cells(), cube.populated_cells());
        for (p, _) in &points {
            assert_eq!(restored.cell(p), cube.cell(p), "{:?}", p);
        }
    }

    fn truncated_snapshots_error_not_panic(rng, cases = 32) {
        let cut = rng.gen_range(0usize..64);
        let mut e = DdcEngine::<i64>::dynamic(Shape::new(&[4, 4]));
        e.apply_delta(&[1, 2], 7);
        e.apply_delta(&[3, 3], -2);
        let mut buf = Vec::new();
        e.save(&mut buf).unwrap();
        if cut < buf.len() {
            let r = DdcEngine::<i64>::load(&mut &buf[..cut], DdcConfig::dynamic());
            assert!(r.is_err(), "truncation at {} accepted", cut);
        }
    }
}

/// Float cubes: tree summation reorders additions, so engines may differ
/// from the naive scan by rounding. Verify agreement within an epsilon
/// scaled to the magnitudes involved.
#[test]
fn float_cube_engines_agree_within_epsilon() {
    use ddc_baselines::NaiveEngine;
    use ddc_workload::{rng, uniform_regions};

    let shape = Shape::cube(2, 32);
    let mut r = rng(91);
    let mut ddc = DdcEngine::<f64>::dynamic(shape.clone());
    let mut naive = NaiveEngine::<f64>::zeroed(shape.clone());
    for p in shape.iter_points() {
        let v: f64 = r.gen_range(-1.0..1.0);
        ddc.apply_delta(&p, v);
        naive.apply_delta(&p, v);
    }
    for q in uniform_regions(&shape, 64, &mut r) {
        let a = ddc.range_sum(&q);
        let b = naive.range_sum(&q);
        assert!(
            (a - b).abs() < 1e-9 * (1.0 + q.cells() as f64),
            "{q:?}: {a} vs {b}"
        );
    }
}

/// Pair snapshots preserve both components.
#[test]
fn pair_snapshot_components_survive() {
    use ddc_array::Pair;
    let mut e = DdcEngine::<Pair<i64, i64>>::dynamic(Shape::new(&[6, 6]));
    e.apply_delta(&[2, 2], Pair::new(100, 1));
    e.apply_delta(&[2, 2], Pair::new(50, 1));
    e.apply_delta(&[5, 0], Pair::new(-10, 1));
    let mut buf = Vec::new();
    e.save(&mut buf).unwrap();
    let restored =
        DdcEngine::<Pair<i64, i64>>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap();
    assert_eq!(restored.cell(&[2, 2]), Pair::new(150, 2));
    assert_eq!(restored.cell(&[5, 0]), Pair::new(-10, 1));
}

/// A snapshot taken mid-life — after the cube has grown low on one axis
/// and high on another (§5 growth in any direction) — restores every
/// cell, including the ones in grown territory, and keeps answering
/// range sums that straddle the original and grown regions.
#[test]
fn snapshot_after_two_direction_growth_restores_exactly() {
    let mut cube = GrowableCube::<i64>::new(2, DdcConfig::dynamic());
    // Seed the initial neighborhood.
    cube.add(&[0, 0], 10);
    cube.add(&[2, 3], -4);
    // Grow low on axis 0 and high on axis 1 by addressing cells there.
    cube.add(&[-7, 1], 5);
    cube.add(&[1, 50], 8);

    let mut buf = Vec::new();
    cube.save(&mut buf).unwrap();
    let restored = GrowableCube::<i64>::load(&mut buf.as_slice(), DdcConfig::sparse()).unwrap();

    for (p, v) in cube.entries() {
        assert_eq!(restored.cell(&p), v, "{p:?}");
    }
    assert_eq!(restored.total(), 19);
    // Straddling queries: original box only, grown-low only, and the
    // whole covered region.
    assert_eq!(restored.range_sum(&[0, 0], &[2, 3]), 6);
    assert_eq!(restored.range_sum(&[-7, 0], &[-1, 10]), 5);
    assert_eq!(restored.range_sum(&[-7, 0], &[2, 50]), 19);
}

/// Malformed headers surface as descriptive errors, not panics or blind
/// allocations: overflowing shapes, lying entry counts, and oversized
/// extents are all rejected before any payload is trusted.
#[test]
fn malformed_headers_are_rejected_descriptively() {
    let header = |dims: &[u64], count: u64| -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"DDC1");
        buf.push(0);
        buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
        for &n in dims {
            buf.extend_from_slice(&n.to_le_bytes());
        }
        buf.extend_from_slice(&count.to_le_bytes());
        buf
    };
    // Cell-count overflow must not reach an allocator.
    let buf = header(&[1 << 40, 1 << 40], 0);
    let e = DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap_err();
    assert!(e.to_string().contains("implausible shape"), "{e}");
    // Entry count beyond the cube's capacity.
    let buf = header(&[3, 3], 10);
    let e = DdcEngine::<i64>::load(&mut buf.as_slice(), DdcConfig::dynamic()).unwrap_err();
    assert!(e.to_string().contains("entry count"), "{e}");
}
