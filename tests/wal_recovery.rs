//! Acceptance tests for crash-safe WAL recovery (the tentpole): a kill
//! simulated at **every byte offset** of a 1000-op seeded trace's log
//! recovers exactly the acknowledged prefix — no acked op lost, no
//! unacked op resurrected; torn tails truncate instead of failing; an
//! injected checksum bug is caught, and with verification disabled the
//! same damage is exposed as a divergence and shrunk to a replayable
//! `.trace`; and the operator CLI (`ddc wal recover` /
//! `ddc wal truncate-check`) round-trips real files.

use ddc_check::{corruption_divergence, crash_sweep, refind_seeded_bug, FaultSchedule};
use ddc_core::wal::IoError;
use ddc_core::{
    wal, DdcConfig, DurableCube, FaultKind, FaultVfs, GrowableCube, PlannedFault, RetryPolicy,
    WalConfig,
};
use ddc_tests::for_cases;
use ddc_workload::{shrink_trace, CheckOp, CheckTrace, CheckTraceConfig, DdcRng};

type FaultCube = DurableCube<i64, ddc_core::vfs::FaultFile<ddc_core::vfs::MemFile>>;

/// Boots a durable cube on a fault-injecting in-memory namespace.
fn boot_on(vfs: &FaultVfs) -> FaultCube {
    wal::recover_vfs::<i64, _>(
        vfs,
        "wal.log",
        Some("snapshot.ddc"),
        2,
        DdcConfig::dynamic(),
        WalConfig::default(),
        RetryPolicy::instant(),
    )
    .expect("boot")
    .0
}

/// The headline sweep: 1000 mixed ops (updates, sets, growth records,
/// checkpoints, mid-trace crashes) and a kill at every byte offset of
/// the surviving log.
#[test]
fn thousand_op_seeded_trace_survives_a_kill_at_every_wal_byte_offset() {
    let mut rng = DdcRng::seed_from_u64(0xDDC_3A1);
    let mut trace = CheckTrace::generate(
        2,
        CheckTraceConfig {
            ops: 1000,
            max_cells: 4096,
        },
        &mut rng,
    );
    // Checkpoints and mid-trace crashes truncate the log; drop them so
    // all 1000 ops accumulate into the single log under sweep (the
    // property test below keeps those paths covered).
    trace
        .ops
        .retain(|op| !matches!(op, CheckOp::SaveLoad | CheckOp::Crash));
    let report = crash_sweep(&trace).expect("sweep harness");
    assert!(
        report.is_clean(),
        "violations: {:?}",
        report.failures.iter().take(5).collect::<Vec<_>>()
    );
    assert_eq!(report.offsets, report.wal_bytes + 1);
    assert!(
        report.records >= 100,
        "trace logged only {} records",
        report.records
    );
    // One recovery per distinct surviving record count.
    assert_eq!(report.recoveries, report.records + 1);
    assert!(report.corruption_caught);
}

for_cases! {
    /// Property form over random dimensionalities and op mixes.
    fn random_traces_survive_byte_level_kill_sweep(rng, cases = 6) {
        let d = rng.gen_range(1usize..=3);
        let ops = rng.gen_range(30usize..90);
        let trace = CheckTrace::generate(d, CheckTraceConfig { ops, max_cells: 600 }, rng);
        let report = crash_sweep(&trace).expect("sweep harness");
        assert!(
            report.is_clean(),
            "d={d} ops={ops}: {:?}",
            report.failures.iter().take(3).collect::<Vec<_>>()
        );
    }
}

/// The checksum is load-bearing: a flipped payload byte silently
/// diverges when verification is off — and the shrinker minimizes that
/// divergence to a tiny, self-contained, replayable trace.
#[test]
fn injected_checksum_bug_is_caught_and_shrunk_to_a_replayable_trace() {
    let mut found = None;
    for seed in 0..20u64 {
        let mut rng = DdcRng::seed_from_u64(0xBAD_C4C ^ seed);
        let trace = CheckTrace::generate(
            2,
            CheckTraceConfig {
                ops: 80,
                max_cells: 512,
            },
            &mut rng,
        );
        if corruption_divergence(&trace) {
            found = Some(trace);
            break;
        }
    }
    let trace = found.expect("a seeded trace must expose the unchecked-CRC divergence");

    // With verification on, the same damage truncates cleanly.
    assert!(crash_sweep(&trace).expect("sweep harness").is_clean());

    let shrunk = shrink_trace(&trace, corruption_divergence);
    assert!(corruption_divergence(&shrunk), "shrunk repro lost the bug");
    assert!(
        shrunk.ops.len() <= 10,
        "repro did not shrink: {} ops\n{}",
        shrunk.ops.len(),
        shrunk.to_text()
    );
    // The repro survives the text round-trip — a `.trace` artifact.
    let reparsed = CheckTrace::parse(&shrunk.to_text()).unwrap();
    assert!(corruption_divergence(&reparsed));
}

/// `ddc check crash` end to end: a fixed-seed sweep reports clean.
#[test]
fn cli_check_crash_reports_clean() {
    let args: Vec<String> = ["crash", "--seed", "5", "--cases", "3", "--ops", "50"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let report = ddc_cli::check::run(&args).unwrap();
    assert!(report.contains("0 violations"), "{report}");
}

/// ENOSPC mid-append: the cube degrades to read-only instead of
/// crashing, queries keep serving the acked prefix, and recovery after
/// the fault restores exactly the acked ops.
#[test]
fn enospc_mid_append_degrades_and_preserves_the_acked_prefix() {
    // Probe run (no faults, never armed) learns the op index at which
    // the third add's frame write happens; the real run plants ENOSPC
    // exactly there.
    let probe = FaultVfs::explicit_mem(Vec::new());
    let mut cube = boot_on(&probe);
    cube.add(&[1, 2], 5).expect("acked");
    cube.add(&[3, 4], 7).expect("acked");
    let third_write = probe.ops();

    let vfs = FaultVfs::explicit_mem(vec![PlannedFault {
        op: third_write,
        kind: FaultKind::NoSpace,
    }]);
    let mut cube = boot_on(&vfs);
    vfs.arm(true);
    cube.add(&[1, 2], 5).expect("acked");
    cube.add(&[3, 4], 7).expect("acked");
    let err = cube.add(&[5, 6], 9).expect_err("disk is full");
    assert!(matches!(err, IoError::ReadOnly { .. }), "{err}");
    assert!(cube.degraded().is_some());
    // Degraded mode serves reads from the acked state…
    assert_eq!(cube.cube().range_sum(&[0, 0], &[9, 9]), 12);
    // …and rejects further mutations without touching the log.
    let (bytes_before, records_before) = cube.wal_stats();
    assert!(matches!(
        cube.add(&[7, 7], 1),
        Err(IoError::ReadOnly { .. })
    ));
    assert_eq!(cube.wal_stats(), (bytes_before, records_before));

    // The kill: only the namespace survives. Recovery restores exactly
    // the two acked ops — the rejected ones never existed.
    drop(cube);
    vfs.arm(false);
    let recovered = boot_on(&vfs);
    let mut entries = recovered.cube().entries();
    entries.sort();
    assert_eq!(entries, vec![(vec![1, 2], 5), (vec![3, 4], 7)]);
}

/// A sync barrier that fails through the whole retry budget, then a
/// crash: the unacked op must NOT be resurrected by recovery (the
/// production truncate-on-retry protocol removes the synced-but-unacked
/// frame before every retry).
#[test]
fn failed_fsync_then_crash_never_resurrects_the_unacked_op() {
    let probe = FaultVfs::explicit_mem(Vec::new());
    let mut cube = boot_on(&probe);
    cube.add(&[1, 1], 3).expect("acked");
    let second_write = probe.ops();

    // Every attempt is write (even op) then sync (odd op); fail the
    // sync of all five attempts (1 try + 4 retries).
    let faults = (0..5)
        .map(|attempt| PlannedFault {
            op: second_write + 2 * attempt + 1,
            kind: FaultKind::SyncFail,
        })
        .collect();
    let vfs = FaultVfs::explicit_mem(faults);
    let mut cube = boot_on(&vfs);
    vfs.arm(true);
    cube.add(&[1, 1], 3).expect("acked");
    let err = cube.add(&[2, 2], 8).expect_err("sync keeps failing");
    match &err {
        IoError::Exhausted { retries, .. } => assert_eq!(*retries, 4),
        other => panic!("expected exhaustion, got {other}"),
    }
    assert!(cube.degraded().is_some());

    drop(cube);
    vfs.arm(false);
    let recovered = boot_on(&vfs);
    assert_eq!(
        recovered.cube().entries(),
        vec![(vec![1, 1], 3)],
        "the never-acked op about [2,2] must not survive recovery"
    );
}

/// The committed chaos schedules stay sharp: each must re-find its
/// corruption class when the tail-truncation protocol is disabled, and
/// stay clean under the production policy (the same check `ddc check
/// disk` runs in CI, here hermetically via `include_str!`).
#[test]
fn committed_fault_schedules_refind_the_seeded_bug() {
    for (name, text) in [
        ("torn_append", include_str!("faults/torn_append.sched")),
        (
            "sync_ambiguity",
            include_str!("faults/sync_ambiguity.sched"),
        ),
    ] {
        let schedule = FaultSchedule::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = refind_seeded_bug(&schedule).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!report.shrunk.is_empty(), "{name}: empty shrunk schedule");
    }
}

/// A file-backed [`DurableCube`] killed mid-stream — with a checkpoint,
/// a log truncation, post-checkpoint writes, and a torn tail — is
/// repaired and recovered through the operator CLI.
#[test]
fn durable_file_cube_recovers_via_the_cli() {
    let dir = std::env::temp_dir();
    let wal_path = dir.join("ddc_wal_recovery_test.wal");
    let snap_path = dir.join("ddc_wal_recovery_test.snap");
    let out_path = dir.join("ddc_wal_recovery_test.out");
    let p = |path: &std::path::Path| path.display().to_string();

    // Phase 1: live process — populate, checkpoint, keep writing.
    {
        let file = std::fs::File::create(&wal_path).unwrap();
        let mut cube =
            DurableCube::<i64, std::fs::File>::new(2, DdcConfig::dynamic(), file).unwrap();
        cube.add(&[1, 2], 5).unwrap();
        cube.add(&[-3, 7], 9).unwrap();
        let mut snap = std::fs::File::create(&snap_path).unwrap();
        cube.checkpoint(&mut snap).unwrap();
        cube.reset_wal(std::fs::File::create(&wal_path).unwrap())
            .unwrap();
        cube.add(&[4, 4], -2).unwrap();
        assert_eq!(cube.set(&[1, 2], 11).unwrap(), 5);
        // The kill: the cube drops here; only the two files survive.
    }

    // The kill also tore the tail: a partial frame of a record that was
    // never acknowledged.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .unwrap();
        f.write_all(&[42, 0, 0]).unwrap();
    }

    // Library-level recovery tolerates the torn tail directly…
    let log = std::fs::read(&wal_path).unwrap();
    let snap_bytes = std::fs::read(&snap_path).unwrap();
    let (cube, report) = wal::recover::<i64>(
        2,
        Some(&snap_bytes),
        &log,
        DdcConfig::dynamic(),
        WalConfig::default(),
    )
    .unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(report.replayed, 2);
    assert!(report.truncated.is_some());
    assert_eq!(cube.cell(&[1, 2]), 11);
    assert_eq!(cube.total(), 11 + 9 - 2);

    // …while the CLI surfaces it, repairs it on request, and then
    // reports the log clean.
    let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
    let err = ddc_cli::wal::run(&args(&["truncate-check", "--wal", &p(&wal_path)])).unwrap_err();
    assert!(err.contains("torn tail"), "{err}");
    let fixed =
        ddc_cli::wal::run(&args(&["truncate-check", "--wal", &p(&wal_path), "--fix"])).unwrap();
    assert!(fixed.contains("truncated to 2 records"), "{fixed}");
    let clean = ddc_cli::wal::run(&args(&["truncate-check", "--wal", &p(&wal_path)])).unwrap();
    assert!(clean.contains("no torn tail"), "{clean}");

    // Full CLI recovery: snapshot + repaired log -> fresh snapshot.
    let recovered = ddc_cli::wal::run(&args(&[
        "recover",
        "--wal",
        &p(&wal_path),
        "--snapshot",
        &p(&snap_path),
        "--out",
        &p(&out_path),
    ]))
    .unwrap();
    assert!(recovered.contains("2 records replayed"), "{recovered}");
    assert!(recovered.contains("snapshot written"), "{recovered}");
    // The snapshot now bakes in the log's records; without --rotate the
    // CLI must warn that pairing the two would double-apply.
    assert!(recovered.contains("--rotate"), "{recovered}");
    let restored = GrowableCube::<i64>::load(
        &mut std::fs::read(&out_path).unwrap().as_slice(),
        DdcConfig::dynamic(),
    )
    .unwrap();
    assert_eq!(restored.cell(&[1, 2]), 11);
    assert_eq!(restored.cell(&[-3, 7]), 9);
    assert_eq!(restored.cell(&[4, 4]), -2);
    assert_eq!(restored.total(), 18);

    // With --rotate the log is reset to a bare header, so snapshot +
    // log recover to the same state instead of applying records twice.
    let rotated = ddc_cli::wal::run(&args(&[
        "recover",
        "--wal",
        &p(&wal_path),
        "--snapshot",
        &p(&snap_path),
        "--out",
        &p(&out_path),
        "--rotate",
    ]))
    .unwrap();
    assert!(rotated.contains("log rotated"), "{rotated}");
    let log = std::fs::read(&wal_path).unwrap();
    assert_eq!(log.len(), wal::WAL_HEADER_BYTES);
    let snap_bytes = std::fs::read(&out_path).unwrap();
    let (cube, report) = wal::recover::<i64>(
        2,
        Some(&snap_bytes),
        &log,
        DdcConfig::dynamic(),
        WalConfig::default(),
    )
    .unwrap();
    assert_eq!(report.replayed, 0);
    assert_eq!(cube.total(), 18);

    for path in [&wal_path, &snap_path, &out_path] {
        std::fs::remove_file(path).ok();
    }
}
