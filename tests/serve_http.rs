//! End-to-end differential suite for the serving layer (`ddc-serve`).
//!
//! A real [`Server`] is booted on an ephemeral port and driven over
//! real sockets:
//!
//! * **Differential**: N client threads own disjoint dim-0 slabs of
//!   one `ShardedCube` and drive pipelined mixed traffic, each thread
//!   checking the server's responses *byte-for-byte* against a naive
//!   dense-grid oracle maintained alongside the request stream.
//!   Disjoint slabs make every thread's expected answers deterministic
//!   even though the cube is shared.
//! * **Backpressure**: a one-shard cube with a tiny write queue and the
//!   flush fault hook armed must ack exactly `queue_capacity` updates
//!   and answer `busy`/429 for the rest — and after healing, the cube
//!   holds exactly the sum of the acked deltas: no acked update lost,
//!   no rejected update applied.

use ddc_array::Shape;
use ddc_core::sync::Arc;
use ddc_core::{DdcConfig, ShardConfig, ShardedCube};
use ddc_serve::{ServeBackend, Server, ServerConfig, ShardedBackend};
use ddc_workload::DdcRng;
use std::io::{Read, Write};
use std::net::TcpStream;

fn start(cube: ShardedCube<i64>, workers: usize) -> (Server, Arc<ShardedBackend>) {
    let backend = Arc::new(ShardedBackend::new(cube));
    let server = Server::start(
        Arc::clone(&backend) as Arc<dyn ServeBackend>,
        ServerConfig {
            workers,
            max_connections: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server binds an ephemeral port");
    (server, backend)
}

/// Writes `request` and reads one `\n`-terminated response line.
fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
    stream
        .write_all(request.as_bytes())
        .expect("request written");
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte).expect("response byte");
        assert_ne!(n, 0, "server closed mid-response");
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
    }
    String::from_utf8(line).expect("utf-8 response")
}

/// Reads exactly `want.len()` bytes and asserts byte equality.
fn expect_exact(stream: &mut TcpStream, want: &str, context: &str) {
    let mut got = vec![0u8; want.len()];
    stream.read_exact(&mut got).expect("full response read");
    assert_eq!(
        String::from_utf8_lossy(&got),
        want,
        "response stream diverged from oracle ({context})"
    );
}

const SIDE: usize = 32;
const THREADS: usize = 4;
const ROWS_PER_THREAD: usize = SIDE / THREADS;
const OPS_PER_THREAD: usize = 300;
const PIPELINE: usize = 50;

/// One client thread: seeded mixed traffic on its own dim-0 slab,
/// pipelined `PIPELINE` requests at a time, each flight compared
/// byte-for-byte against the local oracle. Returns the slab's total.
fn drive_slab(addr: String, thread: usize) -> i64 {
    let mut stream = TcpStream::connect(addr).expect("client connects");
    stream.set_nodelay(true).expect("nodelay");
    let mut rng = DdcRng::seed_from_u64(0x5E2E ^ (thread as u64) << 8);
    let row0 = thread * ROWS_PER_THREAD;
    // The naive oracle: the slab as a dense grid, updated in lockstep
    // with the request stream.
    let mut grid = vec![0i64; ROWS_PER_THREAD * SIDE];
    let mut sent = 0usize;
    while sent < OPS_PER_THREAD {
        let flight = PIPELINE.min(OPS_PER_THREAD - sent);
        let mut wire = String::new();
        let mut want = String::new();
        for _ in 0..flight {
            let r = rng.gen_range(0..ROWS_PER_THREAD);
            let c = rng.gen_range(0..SIDE);
            if rng.gen_bool(0.5) {
                let delta = rng.gen_range(-100i64..=100);
                grid[r * SIDE + c] += delta;
                wire.push_str(&format!("u {},{c} {delta}\n", row0 + r));
                want.push_str("ok\n");
            } else {
                let r2 = r + rng.gen_range(0..ROWS_PER_THREAD - r);
                let c2 = c + rng.gen_range(0..SIDE - c);
                let g = &grid;
                let sum: i64 = (r..=r2)
                    .flat_map(|rr| (c..=c2).map(move |cc| g[rr * SIDE + cc]))
                    .sum();
                wire.push_str(&format!("q {},{c} {},{c2}\n", row0 + r, row0 + r2));
                want.push_str(&format!("{sum}\n"));
            }
        }
        stream.write_all(wire.as_bytes()).expect("flight written");
        expect_exact(&mut stream, &want, &format!("thread {thread}, op {sent}"));
        sent += flight;
    }
    grid.iter().sum()
}

#[test]
fn concurrent_clients_agree_with_naive_oracle_byte_for_byte() {
    let cube = ShardedCube::<i64>::new(
        Shape::new(&[SIDE, SIDE]),
        DdcConfig::default(),
        ShardConfig::with_shards(THREADS),
    );
    let (server, backend) = start(cube, THREADS);
    let addr = server.local_addr().to_string();

    let totals: Vec<i64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let addr = addr.clone();
                scope.spawn(move || drive_slab(addr, t))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let grand_total: i64 = totals.iter().sum();

    // The cube holds exactly the union of the slabs: one line query…
    let mut stream = TcpStream::connect(&addr).expect("audit connection");
    let last = SIDE - 1;
    assert_eq!(
        roundtrip(&mut stream, &format!("q 0,0 {last},{last}\n")),
        grand_total.to_string()
    );
    // …and the same box over HTTP, compared as exact wire bytes.
    let mut http = TcpStream::connect(&addr).expect("http connection");
    http.write_all(
        format!("GET /query?lo=0,0&hi={last},{last} HTTP/1.1\r\nHost: e2e\r\n\r\n").as_bytes(),
    )
    .expect("http request");
    http.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut got = Vec::new();
    http.read_to_end(&mut got).expect("http response");
    let body = format!("{grand_total}\n");
    let want = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    assert_eq!(String::from_utf8_lossy(&got), want);

    // The backend handle agrees with what the wire reported.
    assert_eq!(
        backend.query(&[0, 0], &[last as i64, last as i64]),
        Ok(grand_total)
    );
    server.shutdown();
}

#[test]
fn backpressure_answers_429_only_when_shard_queues_are_full_and_loses_no_acked_update() {
    const QUEUE: usize = 4;
    let cube = ShardedCube::<i64>::new(
        Shape::new(&[8, 8]),
        DdcConfig::default(),
        ShardConfig {
            shards: 1,
            // Group commits only via the fault-armed full-queue path,
            // never from batch pressure.
            batch_capacity: 1024,
            queue_capacity: QUEUE,
            // Keep the shard quarantined (429), never failed (503).
            max_restarts: 1_000_000,
            ..ShardConfig::default()
        },
    );
    let (server, backend) = start(cube, 2);
    let addr = server.local_addr().to_string();
    backend.cube().fail_next_flushes(0, 1_000_000);

    let mut stream = TcpStream::connect(&addr).expect("client connects");
    let mut acked_sum = 0i64;
    for i in 0..10i64 {
        let delta = i + 1;
        let (r, c) = (i % 8, i % 8);
        let response = roundtrip(&mut stream, &format!("u {r},{c} {delta}\n"));
        if (i as usize) < QUEUE {
            assert_eq!(response, "ok", "update {i} fits the queue");
            acked_sum += delta;
        } else {
            assert!(
                response.starts_with("busy "),
                "update {i} must be backpressured, got {response:?}"
            );
        }
    }

    // The same overload over HTTP is a 429, not a dropped write.
    let mut http = TcpStream::connect(&addr).expect("http connection");
    http.write_all(b"POST /ingest HTTP/1.1\r\nContent-Length: 6\r\n\r\n0,0 5\n")
        .expect("ingest request");
    http.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut got = String::new();
    http.read_to_string(&mut got).expect("ingest response");
    assert!(
        got.starts_with("HTTP/1.1 429 "),
        "overloaded ingest must answer 429, got {got:?}"
    );
    assert!(got.contains("applied 0 of 1"), "{got:?}");

    // Heal the shard and flush: the cube must hold exactly the acked
    // deltas — nothing acked lost, nothing rejected applied.
    backend.cube().fail_next_flushes(0, 0);
    backend.cube().flush();
    assert_eq!(roundtrip(&mut stream, "q 0,0 7,7\n"), acked_sum.to_string());
    assert_eq!(backend.cube().query_prefix(&[7, 7]), acked_sum);
    server.shutdown();
}

#[test]
fn metrics_scrape_exposes_serving_counters_after_traffic() {
    let cube = ShardedCube::<i64>::new(
        Shape::new(&[8, 8]),
        DdcConfig::default(),
        ShardConfig::with_shards(2),
    );
    let (server, _backend) = start(cube, 2);
    let mut stream = TcpStream::connect(server.local_addr()).expect("client connects");
    assert_eq!(roundtrip(&mut stream, "ping\n"), "pong");
    assert_eq!(roundtrip(&mut stream, "u 1,1 7\n"), "ok");

    let mut http = TcpStream::connect(server.local_addr()).expect("metrics connection");
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: e2e\r\n\r\n")
        .expect("scrape request");
    http.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut got = String::new();
    http.read_to_string(&mut got).expect("scrape response");
    assert!(got.starts_with("HTTP/1.1 200 OK\r\n"), "{got:?}");
    assert!(
        got.contains("ddc_serve_requests"),
        "scrape must carry the serve counters: {got:?}"
    );
    server.shutdown();
}
