//! Property tests: every range-sum method in the paper answers every
//! query identically to the naive ground truth, under arbitrary
//! interleavings of updates and queries, for d ∈ 1..=4.

use ddc_array::{NdArray, RangeSumEngine, Region, Shape};
use ddc_core::{BaseStore, DdcConfig};
use ddc_olap::EngineKind;
use proptest::prelude::*;

/// A random cube shape with at most ~4k cells to keep PS updates fast.
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        proptest::collection::vec(1usize..=48, 1),
        proptest::collection::vec(1usize..=16, 2),
        proptest::collection::vec(1usize..=8, 3),
        proptest::collection::vec(1usize..=5, 4),
    ]
}

#[derive(Clone, Debug)]
enum Op {
    /// Fractional coordinates scaled into the shape at runtime.
    Update(Vec<f64>, i64),
    Set(Vec<f64>, i64),
    Query(Vec<f64>, Vec<f64>),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    let coord = proptest::collection::vec(0.0f64..1.0, 1..=4);
    let op = prop_oneof![
        (coord.clone(), -1000i64..1000).prop_map(|(c, v)| Op::Update(c, v)),
        (coord.clone(), -1000i64..1000).prop_map(|(c, v)| Op::Set(c, v)),
        (coord.clone(), coord).prop_map(|(a, b)| Op::Query(a, b)),
    ];
    proptest::collection::vec(op, 1..24)
}

fn scale(frac: &[f64], dims: &[usize]) -> Vec<usize> {
    dims.iter()
        .enumerate()
        .map(|(i, &n)| {
            let f = frac.get(i).copied().unwrap_or(0.0);
            ((f * n as f64) as usize).min(n - 1)
        })
        .collect()
}

fn all_kinds() -> Vec<EngineKind> {
    let mut v = EngineKind::ALL.to_vec();
    v.push(EngineKind::CustomDdc(DdcConfig::sparse()));
    v.push(EngineKind::CustomDdc(DdcConfig::dynamic().with_elision(2)));
    v.push(EngineKind::CustomDdc(
        DdcConfig::dynamic().with_base(BaseStore::Fenwick),
    ));
    v.push(EngineKind::CustomDdc(
        DdcConfig::basic().with_elision(1),
    ));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_engines_match_ground_truth(dims in shape_strategy(), ops in ops_strategy()) {
        let shape = Shape::new(&dims);
        let mut truth = NdArray::<i64>::zeroed(shape.clone());
        let mut engines: Vec<Box<dyn RangeSumEngine<i64>>> =
            all_kinds().iter().map(|k| k.build(shape.clone())).collect();

        for op in &ops {
            match op {
                Op::Update(c, v) => {
                    let p = scale(c, &dims);
                    truth.add_assign(&p, *v);
                    for e in engines.iter_mut() {
                        e.apply_delta(&p, *v);
                    }
                }
                Op::Set(c, v) => {
                    let p = scale(c, &dims);
                    truth.set(&p, *v);
                    for e in engines.iter_mut() {
                        let old = e.set(&p, *v);
                        // All engines must agree on the previous value too.
                        prop_assert_eq!(old + *v - *v, old);
                    }
                }
                Op::Query(a, b) => {
                    let pa = scale(a, &dims);
                    let pb = scale(b, &dims);
                    let lo: Vec<usize> =
                        pa.iter().zip(pb.iter()).map(|(&x, &y)| x.min(y)).collect();
                    let hi: Vec<usize> =
                        pa.iter().zip(pb.iter()).map(|(&x, &y)| x.max(y)).collect();
                    let q = Region::new(&lo, &hi);
                    let expect = truth.region_sum(&q);
                    for e in engines.iter() {
                        prop_assert_eq!(
                            e.range_sum(&q), expect,
                            "{} on {:?}", e.name(), q
                        );
                    }
                }
            }
        }

        // Terminal check: every prefix and every cell agrees.
        let corner: Vec<usize> = dims.iter().map(|&n| n - 1).collect();
        let expect = truth.prefix_sum(&corner);
        for e in engines.iter() {
            prop_assert_eq!(e.prefix_sum(&corner), expect, "{}", e.name());
            let p = scale(&[0.5, 0.5, 0.5, 0.5], &dims);
            prop_assert_eq!(e.cell(&p), truth.get(&p), "{} cell", e.name());
        }
    }

    #[test]
    fn from_array_equals_incremental(dims in shape_strategy(), seed in 0u64..1000) {
        let shape = Shape::new(&dims);
        let base = ddc_workload::uniform_array(&shape, -20, 20, &mut ddc_workload::rng(seed));
        let built = ddc_core::DdcEngine::from_array(&base);
        let mut incremental = ddc_core::DdcEngine::dynamic(shape.clone());
        for p in shape.iter_points() {
            let v = base.get(&p);
            if v != 0 {
                incremental.apply_delta(&p, v);
            }
        }
        let corner: Vec<usize> = dims.iter().map(|&n| n - 1).collect();
        prop_assert_eq!(built.prefix_sum(&corner), incremental.prefix_sum(&corner));
        built.check_invariants();
        incremental.check_invariants();
    }
}
