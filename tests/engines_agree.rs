//! Property tests: every range-sum method in the paper answers every
//! query identically to the naive ground truth, under arbitrary
//! interleavings of updates and queries, for d ∈ 1..=4.

use ddc_array::{NdArray, RangeSumEngine, Region, Shape};
use ddc_core::{BaseStore, DdcConfig};
use ddc_olap::EngineKind;
use ddc_tests::{for_cases, DdcRng};

/// A random cube shape with at most ~4k cells to keep PS updates fast.
fn gen_shape(rng: &mut DdcRng) -> Vec<usize> {
    match rng.gen_range(0usize..4) {
        0 => vec![rng.gen_range(1usize..=48)],
        1 => (0..2).map(|_| rng.gen_range(1usize..=16)).collect(),
        2 => (0..3).map(|_| rng.gen_range(1usize..=8)).collect(),
        _ => (0..4).map(|_| rng.gen_range(1usize..=5)).collect(),
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Fractional coordinates scaled into the shape at runtime.
    Update(Vec<f64>, i64),
    Set(Vec<f64>, i64),
    Query(Vec<f64>, Vec<f64>),
}

fn gen_coord(rng: &mut DdcRng) -> Vec<f64> {
    let len = rng.gen_range(1usize..=4);
    (0..len).map(|_| rng.next_f64()).collect()
}

fn gen_ops(rng: &mut DdcRng) -> Vec<Op> {
    let count = rng.gen_range(1usize..24);
    (0..count)
        .map(|_| match rng.gen_range(0usize..3) {
            0 => Op::Update(gen_coord(rng), rng.gen_range(-1000i64..1000)),
            1 => Op::Set(gen_coord(rng), rng.gen_range(-1000i64..1000)),
            _ => Op::Query(gen_coord(rng), gen_coord(rng)),
        })
        .collect()
}

fn scale(frac: &[f64], dims: &[usize]) -> Vec<usize> {
    dims.iter()
        .enumerate()
        .map(|(i, &n)| {
            let f = frac.get(i).copied().unwrap_or(0.0);
            ((f * n as f64) as usize).min(n - 1)
        })
        .collect()
}

fn all_kinds() -> Vec<EngineKind> {
    let mut v = EngineKind::ALL.to_vec();
    v.push(EngineKind::CustomDdc(DdcConfig::sparse()));
    v.push(EngineKind::CustomDdc(DdcConfig::dynamic().with_elision(2)));
    v.push(EngineKind::CustomDdc(
        DdcConfig::dynamic().with_base(BaseStore::Fenwick),
    ));
    v.push(EngineKind::CustomDdc(DdcConfig::basic().with_elision(1)));
    v
}

for_cases! {
    fn all_engines_match_ground_truth(rng, cases = 48) {
        let dims = gen_shape(rng);
        let ops = gen_ops(rng);
        let shape = Shape::new(&dims);
        let mut truth = NdArray::<i64>::zeroed(shape.clone());
        let mut engines: Vec<Box<dyn RangeSumEngine<i64>>> =
            all_kinds().iter().map(|k| k.build(shape.clone())).collect();

        for op in &ops {
            match op {
                Op::Update(c, v) => {
                    let p = scale(c, &dims);
                    truth.add_assign(&p, *v);
                    for e in engines.iter_mut() {
                        e.apply_delta(&p, *v);
                    }
                }
                Op::Set(c, v) => {
                    let p = scale(c, &dims);
                    let expect_old = truth.get(&p);
                    truth.set(&p, *v);
                    for e in engines.iter_mut() {
                        // All engines must agree on the previous value too.
                        assert_eq!(e.set(&p, *v), expect_old, "{} old value", e.name());
                    }
                }
                Op::Query(a, b) => {
                    let pa = scale(a, &dims);
                    let pb = scale(b, &dims);
                    let lo: Vec<usize> =
                        pa.iter().zip(pb.iter()).map(|(&x, &y)| x.min(y)).collect();
                    let hi: Vec<usize> =
                        pa.iter().zip(pb.iter()).map(|(&x, &y)| x.max(y)).collect();
                    let q = Region::new(&lo, &hi);
                    let expect = truth.region_sum(&q);
                    for e in engines.iter() {
                        assert_eq!(
                            e.range_sum(&q), expect,
                            "{} on {:?}", e.name(), q
                        );
                    }
                }
            }
        }

        // Terminal check: every prefix and every cell agrees.
        let corner: Vec<usize> = dims.iter().map(|&n| n - 1).collect();
        let expect = truth.prefix_sum(&corner);
        for e in engines.iter() {
            assert_eq!(e.prefix_sum(&corner), expect, "{}", e.name());
            let p = scale(&[0.5, 0.5, 0.5, 0.5], &dims);
            assert_eq!(e.cell(&p), truth.get(&p), "{} cell", e.name());
        }
    }

    fn from_array_equals_incremental(rng, cases = 48) {
        let dims = gen_shape(rng);
        let seed = rng.next_u64();
        let shape = Shape::new(&dims);
        let base = ddc_workload::uniform_array(&shape, -20, 20, &mut ddc_workload::rng(seed));
        let built = ddc_core::DdcEngine::from_array(&base);
        let mut incremental = ddc_core::DdcEngine::dynamic(shape.clone());
        for p in shape.iter_points() {
            let v = base.get(&p);
            if v != 0 {
                incremental.apply_delta(&p, v);
            }
        }
        let corner: Vec<usize> = dims.iter().map(|&n| n - 1).collect();
        assert_eq!(built.prefix_sum(&corner), incremental.prefix_sum(&corner));
        built.check_invariants();
        incremental.check_invariants();
    }
}
