//! Integration tests for the observability layer (`ddc_core::obs`): the
//! registry under multi-threaded fire, and end-to-end proof that the
//! instrumented hot paths — engine, shards, WAL, growth, persistence —
//! actually report into it.

use ddc_array::{RangeSumEngine, Shape};
use ddc_core::{
    obs, wal, DdcConfig, DdcEngine, GrowableCube, ShardConfig, ShardedCube, WalOp, WalWriter,
};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 10_000;

/// Eight threads hammer one counter, one gauge, and one histogram
/// through the registry; the totals must be exact — relaxed atomics
/// lose ordering, never increments.
#[test]
fn registry_is_exact_under_eight_threads() {
    let counter = obs::counter("test.obs.hammer.count");
    let gauge = obs::gauge("test.obs.hammer.gauge");
    let hist = obs::histogram("test.obs.hammer.ns");
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                // Re-resolve through the registry on the thread: every
                // thread must get the same underlying metric.
                let counter = obs::counter("test.obs.hammer.count");
                let gauge = obs::gauge("test.obs.hammer.gauge");
                let hist = obs::histogram("test.obs.hammer.ns");
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.add(if t % 2 == 0 { 1 } else { -1 });
                    hist.record(i % 1024);
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS * PER_THREAD);
    assert_eq!(gauge.get(), 0, "paired +1/-1 threads must cancel exactly");
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.max, 1023);
    assert!(snap.quantile(0.5) > 0);
}

/// Distinct names must resolve to distinct metrics even when registered
/// concurrently.
#[test]
fn concurrent_registration_keeps_names_distinct() {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let names: [&'static str; 8] = [
                    "test.obs.distinct.0",
                    "test.obs.distinct.1",
                    "test.obs.distinct.2",
                    "test.obs.distinct.3",
                    "test.obs.distinct.4",
                    "test.obs.distinct.5",
                    "test.obs.distinct.6",
                    "test.obs.distinct.7",
                ];
                obs::counter(names[t as usize]).add(t + 1);
            });
        }
    });
    for t in 0..THREADS {
        let name: &'static str = match t {
            0 => "test.obs.distinct.0",
            1 => "test.obs.distinct.1",
            2 => "test.obs.distinct.2",
            3 => "test.obs.distinct.3",
            4 => "test.obs.distinct.4",
            5 => "test.obs.distinct.5",
            6 => "test.obs.distinct.6",
            _ => "test.obs.distinct.7",
        };
        assert_eq!(obs::counter(name).get(), t + 1);
    }
}

/// Drives every instrumented subsystem once and asserts each reported:
/// the `ddc stats` acceptance list — engine updates, engine prefix sums,
/// shard queue wait, WAL appends, WAL recovery replay — plus growth and
/// persistence.
#[test]
fn instrumented_hot_paths_report_nonzero() {
    // Engine (both kinds).
    let mut basic = DdcEngine::<i64>::basic(Shape::new(&[8, 8]));
    let mut dynamic = DdcEngine::<i64>::dynamic(Shape::new(&[8, 8]));
    for engine in [&mut basic, &mut dynamic] {
        for i in 0..8 {
            engine.apply_delta(&[i, i], 1);
            let _ = engine.prefix_sum(&[i, i]);
        }
    }

    // Shards.
    let cube = ShardedCube::<i64>::new(
        Shape::new(&[16, 4]),
        DdcConfig::dynamic(),
        ShardConfig::with_shards(2),
    );
    for i in 0..16 {
        cube.update(&[i, i % 4], 1);
    }
    cube.flush();

    // WAL append + recovery replay.
    let mut writer = WalWriter::create(Vec::new()).expect("wal header");
    for i in 0..4i64 {
        writer
            .append(&WalOp::Update {
                point: vec![i, -i],
                delta: 1,
            })
            .expect("append");
    }
    let log = writer.into_inner();
    let (_cube, report) = wal::recover::<i64>(
        2,
        None,
        &log,
        DdcConfig::dynamic(),
        ddc_core::WalConfig::default(),
    )
    .expect("recover");
    assert_eq!(report.replayed, 4);

    // Growth and persistence.
    let mut grown = GrowableCube::<i64>::new(2, DdcConfig::sparse());
    grown.add(&[0, 0], 1);
    grown.add(&[-300, 300], 1);
    let mut snapshot = Vec::new();
    grown.save(&mut snapshot).expect("save");
    let reloaded =
        GrowableCube::<i64>::load(&mut snapshot.as_slice(), DdcConfig::sparse()).expect("load");
    assert_eq!(reloaded.total(), 2);

    let histograms: std::collections::BTreeMap<&'static str, u64> = obs::registry()
        .histograms()
        .into_iter()
        .map(|(name, snap)| (name, snap.count))
        .collect();
    for name in [
        "engine.update.basic_ddc",
        "engine.update.dynamic_ddc",
        "engine.prefix_sum.basic_ddc",
        "engine.prefix_sum.dynamic_ddc",
        "shard.queue_wait",
        "shard.commit",
        "wal.append",
        "wal.fsync",
        "wal.recover",
        "persist.save",
        "persist.load",
        "growth.grow",
    ] {
        assert!(
            histograms.get(name).copied().unwrap_or(0) > 0,
            "histogram {name:?} recorded nothing; registry: {histograms:?}"
        );
    }
    assert!(obs::counter("wal.append.records").get() >= 4);
    assert!(obs::counter("wal.recover.records").get() >= 4);
    assert!(obs::counter("growth.doublings").get() > 0);
    assert!(obs::counter("persist.save.bytes").get() > 0);

    // Both renderers include the instrumented families.
    let prom = obs::prometheus_text();
    assert!(prom.contains("ddc_engine_update_dynamic_ddc_count"));
    assert!(prom.contains("ddc_shard_queue_wait_ns{quantile=\"0.99\"}"));
    assert!(prom.contains("ddc_wal_append_records"));
    let json = obs::render_json();
    assert!(json.contains("\"wal.recover.records\""));
    assert!(json.contains("\"shard.commit\""));
}
