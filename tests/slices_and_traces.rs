//! Integration: slice views and query traces over the real engines, and
//! trace replay as a cross-engine equivalence oracle under the seeded
//! property harness.

use ddc_array::{NdArray, RangeSumEngine, Region, Shape, SliceView};
use ddc_core::{DdcConfig, DdcEngine};
use ddc_olap::EngineKind;
use ddc_tests::for_cases;
use ddc_workload::{rng, uniform_array, Trace, TraceOp};

#[test]
fn slices_over_the_ddc_match_manual_plane_sums() {
    let shape = Shape::cube(3, 8);
    let a = uniform_array(&shape, -9, 9, &mut rng(31));
    let e = DdcEngine::from_array(&a);
    for axis in 0..3 {
        for index in [0usize, 3, 7] {
            let v = SliceView::new(&e, axis, index);
            // Compare against a naive slice of the raw array.
            let mut manual = NdArray::<i64>::zeroed(shape.drop_axis(axis));
            for p in shape.iter_points() {
                if p[axis] == index {
                    let rest: Vec<usize> = p
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != axis)
                        .map(|(_, &c)| c)
                        .collect();
                    manual.add_assign(&rest, a.get(&p));
                }
            }
            for q in manual.shape().iter_points() {
                assert_eq!(
                    v.prefix_sum(&q),
                    manual.prefix_sum(&q),
                    "axis {axis} index {index} {q:?}"
                );
            }
        }
    }
}

#[test]
fn trace_of_every_query_sums_to_the_prefix() {
    let shape = Shape::new(&[16, 16]);
    let a = uniform_array(&shape, -20, 20, &mut rng(32));
    for config in [
        DdcConfig::dynamic(),
        DdcConfig::sparse(),
        DdcConfig::dynamic().with_elision(2),
    ] {
        let e = DdcEngine::from_array_with(&a, config);
        for p in shape.iter_points() {
            let steps = e.tree().trace_prefix(&p);
            let total: i64 = steps.iter().map(|s| s.value).sum();
            assert_eq!(total, a.prefix_sum(&p), "{config:?} {p:?}");
        }
    }
}

#[test]
fn trace_visits_at_most_constant_boxes_per_level() {
    let shape = Shape::cube(2, 256);
    let a = uniform_array(&shape, 1, 5, &mut rng(33));
    let e = DdcEngine::from_array(&a);
    let steps = e.tree().trace_prefix(&[201, 77]);
    // ≤ 2^d contributions at each level (paper Theorem 1).
    let max_level = steps.iter().map(|s| s.level).max().unwrap_or(0);
    for level in 0..=max_level {
        let at_level = steps.iter().filter(|s| s.level == level).count();
        assert!(at_level <= 4, "level {level} had {at_level} contributions");
    }
}

for_cases! {
    /// Any generated trace replayed through every engine yields one
    /// checksum — the replay harness as an equivalence oracle.
    fn traces_replay_identically_across_engines(rng_, cases = 24) {
        let seed = rng_.next_u64();
        let n = rng_.gen_range(4usize..20);
        let ops = rng_.gen_range(1usize..60);
        let update_fraction = rng_.next_f64();
        let shape = Shape::cube(2, n);
        let trace = Trace::generate(&shape, ops, update_fraction, &mut rng(seed));
        let mut checksums = Vec::new();
        for kind in EngineKind::ALL {
            let mut engine = kind.build::<i64>(shape.clone());
            checksums.push(trace.replay(engine.as_mut()).checksum);
        }
        // …including the non-paper comparator.
        let mut bit = EngineKind::FenwickNd.build::<i64>(shape.clone());
        checksums.push(trace.replay(bit.as_mut()).checksum);
        assert!(checksums.windows(2).all(|w| w[0] == w[1]), "{checksums:?}");
    }

    /// Round-tripping a trace through its text format replays the same.
    fn trace_text_roundtrip_preserves_replay(rng_, cases = 24) {
        let seed = rng_.next_u64();
        let shape = Shape::cube(2, 12);
        let trace = Trace::generate(&shape, 40, 0.5, &mut rng(seed));
        let reparsed = Trace::parse(&trace.to_text()).expect("own output parses");
        let mut a = EngineKind::DynamicDdc.build::<i64>(shape.clone());
        let mut b = EngineKind::DynamicDdc.build::<i64>(shape.clone());
        assert_eq!(trace.replay(a.as_mut()), reparsed.replay(b.as_mut()));
    }

    /// Slicing commutes with updating: update-then-slice equals
    /// slice-of-updated for arbitrary cells.
    fn slice_reflects_updates(rng_, cases = 24) {
        let axis = rng_.gen_range(0usize..3);
        let index = rng_.gen_range(0usize..6);
        let cell: Vec<usize> = (0..3).map(|_| rng_.gen_range(0usize..6)).collect();
        let delta = rng_.gen_range(-100i64..100);
        let shape = Shape::cube(3, 6);
        let mut e = DdcEngine::<i64>::dynamic(shape.clone());
        e.apply_delta(&cell, delta);
        let v = SliceView::new(&e, axis, index);
        let rest: Vec<usize> = cell
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != axis)
            .map(|(_, &c)| c)
            .collect();
        let expected = if cell[axis] == index { delta } else { 0 };
        assert_eq!(v.cell(&rest), expected);
        let full = Region::full(v.shape());
        assert_eq!(v.range_sum(&full), expected);
    }

    /// TraceOp structural sanity for generated traces.
    fn generated_traces_are_well_formed(rng_, cases = 24) {
        let seed = rng_.next_u64();
        let shape = Shape::new(&[7, 13]);
        let t = Trace::generate(&shape, 50, 0.3, &mut rng(seed));
        for op in &t.ops {
            match op {
                TraceOp::Update { point, .. } => assert!(shape.contains(point)),
                TraceOp::Query { lo, hi } => {
                    assert!(shape.contains(lo) && shape.contains(hi));
                    assert!(lo.iter().zip(hi).all(|(l, h)| l <= h));
                }
            }
        }
    }
}
