//! Adversarial and fault-detection tests: lockstep shadow runs against
//! the naive ground truth under pathological update patterns, numeric
//! extremes, and configuration corners.

use ddc_array::{RangeSumEngine, Region, ShadowEngine, Shape};
use ddc_baselines::NaiveEngine;
use ddc_core::{BaseStore, DdcConfig, DdcEngine};
use ddc_workload::{rng, skewed_updates, uniform_regions};

fn shadowed(
    shape: &Shape,
    config: DdcConfig,
) -> ShadowEngine<i64, DdcEngine<i64>, NaiveEngine<i64>> {
    ShadowEngine::new(
        DdcEngine::with_config(shape.clone(), config),
        NaiveEngine::zeroed(shape.clone()),
    )
}

/// Every query here goes through both engines and asserts equality, so a
/// silent divergence in any structure fails loudly at the exact query.
fn stress(shape: Shape, config: DdcConfig, pattern: impl Fn(usize, &Shape) -> Vec<usize>) {
    let mut engine = shadowed(&shape, config);
    let mut r = rng(13);
    let queries = uniform_regions(&shape, 8, &mut r);
    for step in 0..200 {
        let p = pattern(step, &shape);
        let delta = (step as i64 % 19) - 9;
        engine.apply_delta(&p, delta);
        if step % 20 == 0 {
            for q in &queries {
                let _ = engine.range_sum(q);
            }
            let _ = engine.cell(&p);
        }
    }
    engine.into_primary().check_invariants();
}

#[test]
fn diagonal_updates() {
    // Diagonal cells share no rows/columns — every overlay box on the
    // path sees a fresh cross-position.
    stress(Shape::cube(2, 64), DdcConfig::dynamic(), |i, s| {
        let n = s.dim(0);
        vec![i % n, i % n]
    });
}

#[test]
fn corner_hammering() {
    // All 2^d corners in rotation: maximal cascade targets for every
    // engine family.
    stress(Shape::cube(3, 16), DdcConfig::dynamic(), |i, s| {
        (0..3)
            .map(|axis| {
                if (i >> axis) & 1 == 1 {
                    s.dim(axis) - 1
                } else {
                    0
                }
            })
            .collect()
    });
}

#[test]
fn single_cell_oscillation() {
    // One cell takes alternating ±deltas; intermediate states pass
    // through zero (exercising is_zero short-circuits).
    stress(Shape::cube(2, 32), DdcConfig::sparse(), |_, _| vec![17, 3]);
}

#[test]
fn zipf_hotspots_under_every_config() {
    let shape = Shape::cube(2, 32);
    for config in [
        DdcConfig::dynamic(),
        DdcConfig::basic(),
        DdcConfig::sparse(),
        DdcConfig::dynamic().with_elision(2),
        DdcConfig::dynamic().with_base(BaseStore::Fenwick),
        DdcConfig::dynamic().with_base(BaseStore::Bc { fanout: 3 }),
    ] {
        let mut engine = shadowed(&shape, config);
        let mut r = rng(77);
        let stream = skewed_updates(&shape, 150, 1.2, &mut r);
        let queries = uniform_regions(&shape, 6, &mut r);
        for (i, (p, delta)) in stream.updates.iter().enumerate() {
            engine.apply_delta(p, *delta);
            if i % 25 == 0 {
                for q in &queries {
                    let _ = engine.range_sum(q);
                }
            }
        }
        engine.into_primary().check_invariants();
    }
}

#[test]
fn extreme_magnitudes_wrap_consistently() {
    // Wrapping arithmetic must wrap the same way in every structure.
    let shape = Shape::cube(2, 8);
    let mut engine = shadowed(&shape, DdcConfig::dynamic());
    engine.apply_delta(&[0, 0], i64::MAX);
    engine.apply_delta(&[0, 0], i64::MAX);
    engine.apply_delta(&[7, 7], i64::MIN);
    let full = Region::full(&shape);
    let _ = engine.range_sum(&full);
    let _ = engine.prefix_sum(&[3, 3]);
}

#[test]
fn narrow_shapes() {
    // 1×n and n×1 cubes: every box is degenerate in one dimension.
    for dims in [[1usize, 64], [64, 1], [1, 1]] {
        let shape = Shape::new(&dims);
        let mut engine = shadowed(&shape, DdcConfig::dynamic());
        for i in 0..40 {
            let p = vec![i % dims[0], i % dims[1]];
            engine.apply_delta(&p, i as i64 + 1);
        }
        let full = Region::full(&shape);
        let _ = engine.range_sum(&full);
        engine.into_primary().check_invariants();
    }
}

#[test]
fn set_after_heavy_churn() {
    let shape = Shape::cube(2, 32);
    let mut engine = shadowed(&shape, DdcConfig::dynamic());
    let mut r = rng(5);
    let stream = skewed_updates(&shape, 100, 0.5, &mut r);
    for (p, delta) in &stream.updates {
        engine.apply_delta(p, *delta);
    }
    // set() must return identical old values from both engines (checked
    // inside ShadowEngine::set).
    for (p, _) in stream.updates.iter().take(30) {
        let _ = engine.set(p, 42);
    }
    let _ = engine.range_sum(&Region::full(&shape));
}
