//! Concurrent read sharing and sparse snapshot round-trips.
//!
//! The paper's motivating deployment is interactive analysis: many
//! analysts querying one cube. All engines are `Sync` for reads (operation
//! counters are relaxed atomics), so a cube can be shared across threads
//! without locks; writers take `&mut` exclusivity as usual.

use ddc_array::{RangeSumEngine, Shape};
use ddc_core::{DdcConfig, DdcEngine, GrowableCube};
use ddc_workload::{rng, uniform_array, uniform_regions};

#[test]
fn parallel_queries_share_one_cube() {
    let shape = Shape::cube(2, 128);
    let base = uniform_array(&shape, -100, 100, &mut rng(55));
    let engine = DdcEngine::from_array(&base);
    let queries = uniform_regions(&shape, 64, &mut rng(56));

    // Sequential ground truth.
    let expected: Vec<i64> = queries.iter().map(|q| base.region_sum(q)).collect();

    // Eight threads hammer the same engine concurrently.
    let results: Vec<Vec<i64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(|| {
                    queries
                        .iter()
                        .map(|q| engine.range_sum(q))
                        .collect::<Vec<i64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    for r in &results {
        assert_eq!(r, &expected);
    }
}

#[test]
fn engine_snapshot_roundtrip() {
    let shape = Shape::new(&[37, 22]);
    let base = uniform_array(&shape, -5, 5, &mut rng(60));
    let original = DdcEngine::from_array_with(&base, DdcConfig::dynamic().with_elision(1));
    let entries = original.entries();
    assert_eq!(entries.len(), base.populated_cells());

    // Restore into a *different* configuration; answers must match.
    let restored = DdcEngine::from_entries(shape.clone(), DdcConfig::sparse(), &entries);
    for q in uniform_regions(&shape, 32, &mut rng(61)) {
        assert_eq!(restored.range_sum(&q), original.range_sum(&q), "{q:?}");
    }
    restored.check_invariants();
}

#[test]
fn growable_snapshot_roundtrip_preserves_logical_coords() {
    let mut cube = GrowableCube::<i64>::new(2, DdcConfig::sparse());
    let points: [([i64; 2], i64); 5] = [
        ([0, 0], 1),
        ([-40, 3], 7),
        ([99, -250], -4),
        ([-1, -1], 9),
        ([500, 500], 2),
    ];
    for (p, v) in points {
        cube.add(&p, v);
    }
    let entries = cube.entries();
    assert_eq!(entries.len(), 5);

    let restored = GrowableCube::from_entries(2, DdcConfig::dynamic(), &entries);
    assert_eq!(restored.total(), cube.total());
    for (p, v) in points {
        assert_eq!(restored.cell(&p), v, "{p:?}");
    }
    assert_eq!(
        restored.range_sum(&[-300, -300], &[100, 100]),
        cube.range_sum(&[-300, -300], &[100, 100])
    );
}

#[test]
fn snapshot_of_empty_cube_is_empty() {
    let e = DdcEngine::<i64>::dynamic(Shape::cube(3, 8));
    assert!(e.entries().is_empty());
    let g = GrowableCube::<i64>::new(2, DdcConfig::dynamic());
    assert!(g.entries().is_empty());
}
