//! Statistical verification of the paper's complexity claims: measure
//! worst-case update cost over doubling `n` and fit the log–log slope.
//! A method with cost `Θ(n^p · polylog)` must show slope ≈ `p`; the
//! Dynamic Data Cube must show slope ≈ 0 (polylog only). This turns the
//! Table 1 asymptotics into CI-checked assertions.

use ddc_array::Shape;
use ddc_olap::EngineKind;

/// Worst-case update cost (values touched) at the origin cell.
fn worst_update(kind: EngineKind, d: usize, n: usize) -> f64 {
    let shape = Shape::cube(d, n);
    let mut e = kind.build::<i64>(shape);
    let origin = vec![0usize; d];
    e.apply_delta(&origin, 1); // materialize
    e.reset_ops();
    e.apply_delta(&origin, 1);
    e.ops().touched() as f64
}

/// Least-squares slope of `log2(cost)` against `log2(n)`.
fn loglog_slope(kind: EngineKind, d: usize, sizes: &[usize]) -> f64 {
    let points: Vec<(f64, f64)> = sizes
        .iter()
        .map(|&n| ((n as f64).log2(), worst_update(kind, d, n).log2()))
        .collect();
    let k = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (k * sxy - sx * sy) / (k * sxx - sx * sx)
}

const SIZES_2D: [usize; 4] = [32, 64, 128, 256];
const SIZES_3D: [usize; 3] = [8, 16, 32];

#[test]
fn prefix_sum_update_slope_is_d() {
    let s2 = loglog_slope(EngineKind::PrefixSum, 2, &SIZES_2D);
    assert!((1.9..=2.1).contains(&s2), "d=2 slope {s2}");
    let s3 = loglog_slope(EngineKind::PrefixSum, 3, &SIZES_3D);
    assert!((2.9..=3.1).contains(&s3), "d=3 slope {s3}");
}

#[test]
fn relative_prefix_update_slope_is_half_d() {
    let s2 = loglog_slope(EngineKind::RelativePrefix, 2, &SIZES_2D);
    assert!((0.8..=1.2).contains(&s2), "d=2 slope {s2}");
    let s3 = loglog_slope(EngineKind::RelativePrefix, 3, &SIZES_3D);
    assert!((1.2..=1.8).contains(&s3), "d=3 slope {s3}");
}

#[test]
fn basic_ddc_update_slope_is_d_minus_one() {
    let s2 = loglog_slope(EngineKind::BasicDdc, 2, &SIZES_2D);
    assert!((0.9..=1.1).contains(&s2), "d=2 slope {s2}");
    let s3 = loglog_slope(EngineKind::BasicDdc, 3, &SIZES_3D);
    assert!((1.8..=2.2).contains(&s3), "d=3 slope {s3}");
}

#[test]
fn dynamic_ddc_update_slope_is_sublinear_in_every_dimension() {
    // Polylog cost: the log–log slope must sit well below 1 and shrink
    // relative to every polynomial competitor.
    let s2 = loglog_slope(EngineKind::DynamicDdc, 2, &SIZES_2D);
    assert!(s2 < 0.65, "d=2 slope {s2} not sublinear");
    let s3 = loglog_slope(EngineKind::DynamicDdc, 3, &SIZES_3D);
    assert!(s3 < 1.0, "d=3 slope {s3} not sublinear");
    // And the absolute costs stay tiny where PS has exploded.
    assert!(worst_update(EngineKind::DynamicDdc, 2, 256) < 64.0);
    assert!(worst_update(EngineKind::PrefixSum, 2, 256) == 65_536.0);
}

#[test]
fn ordering_holds_at_every_measured_size() {
    for d in [2usize, 3] {
        let sizes: &[usize] = if d == 2 { &SIZES_2D } else { &SIZES_3D };
        for &n in sizes {
            let ps = worst_update(EngineKind::PrefixSum, d, n);
            let rps = worst_update(EngineKind::RelativePrefix, d, n);
            let basic = worst_update(EngineKind::BasicDdc, d, n);
            let ddc = worst_update(EngineKind::DynamicDdc, d, n);
            assert!(ddc < basic, "d={d} n={n}: ddc {ddc} !< basic {basic}");
            assert!(basic <= ps, "d={d} n={n}: basic {basic} !<= ps {ps}");
            assert!(rps < ps, "d={d} n={n}: rps {rps} !< ps {ps}");
        }
    }
}

#[test]
fn query_cost_is_polylog_for_ddc() {
    // Full-corner prefix query read counts across doublings.
    for d in [2usize, 3] {
        let sizes: &[usize] = if d == 2 { &SIZES_2D } else { &SIZES_3D };
        let mut prev = 0.0f64;
        for &n in sizes {
            let shape = Shape::cube(d, n);
            let mut e = EngineKind::DynamicDdc.build::<i64>(shape.clone());
            for p in shape.iter_points() {
                e.apply_delta(&p, 1);
            }
            let corner: Vec<usize> = shape.dims().iter().map(|&m| m - 1).collect();
            e.reset_ops();
            let _ = e.prefix_sum(&corner);
            let reads = e.ops().reads as f64;
            if prev > 0.0 {
                // Doubling n multiplies log^d n by ((log 2n)/(log n))^d;
                // a linear-or-worse method would multiply by ≥ 2·that.
                let l = (n as f64 / 2.0).log2();
                let polylog_step = ((l + 1.0) / l).powi(d as i32);
                assert!(
                    reads / prev < polylog_step * 1.3,
                    "d={d} n={n}: {prev} → {reads} exceeds polylog step {polylog_step}"
                );
            }
            prev = reads;
        }
    }
}
