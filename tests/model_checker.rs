//! Integration suite for the deterministic concurrency model checker
//! (`cargo test -p ddc-tests --features model --test model_checker`).
//!
//! Three obligations, straight from the roadmap:
//!
//! 1. The checker FINDS seeded bugs: a racy two-thread counter and an
//!    unbuffered handoff with a lost wakeup, each with a replayable
//!    minimal trace, deterministically.
//! 2. The ported `core::shard` / `core::wal` models run green.
//! 3. The default sweep explores a nontrivial schedule space (≥10k
//!    interleavings across scenarios) in well under a minute.

use ddc_core::models;
use ddc_model::{CheckerConfig, FailureKind};

fn cfg() -> CheckerConfig {
    CheckerConfig::default()
}

/// Deeper bound used for the exploration-volume budget check.
fn sweep_cfg() -> CheckerConfig {
    CheckerConfig {
        preemption_bound: 3,
        ..CheckerConfig::default()
    }
}

#[test]
fn finds_buggy_counter_with_minimal_trace() {
    let report = models::buggy_counter(cfg());
    let failure = report.failure.expect("racy counter must be detected");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure message: {}",
        failure.message
    );
    // The minimal schedule needs exactly one preemption: interrupting
    // one thread between its load and its store.
    assert_eq!(failure.preemptions, 1, "trace not minimal");
    assert!(!failure.trace.is_empty(), "no replayable trace");
}

#[test]
fn finds_buggy_handoff_as_deadlock() {
    let report = models::buggy_handoff(cfg());
    let failure = report.failure.expect("lost wakeup must be detected");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("condvar"),
        "unexpected failure message: {}",
        failure.message
    );
    assert_eq!(failure.preemptions, 1, "trace not minimal");
    assert!(!failure.trace.is_empty(), "no replayable trace");
}

#[test]
fn detection_is_deterministic() {
    let a = models::buggy_counter(cfg());
    let b = models::buggy_counter(cfg());
    let (fa, fb) = (
        a.failure.expect("detected on run 1"),
        b.failure.expect("detected on run 2"),
    );
    assert_eq!(a.iterations, b.iterations, "exploration order diverged");
    assert_eq!(fa.found_after, fb.found_after, "detection point diverged");
    let trace = |f: &ddc_model::FailureReport| {
        f.trace
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(trace(&fa), trace(&fb), "minimal trace diverged");
}

#[test]
fn ported_shard_model_is_linearizable() {
    let report = models::shard_concurrent_updates(cfg());
    assert!(
        report.passed(),
        "shard_concurrent_updates failed:\n{}",
        report.failure.map(|f| f.to_string()).unwrap_or_default()
    );
    assert!(!report.capped, "bounded space should be exhausted");
}

#[test]
fn ported_shard_model_never_loses_queued_deltas() {
    let report = models::shard_queue_drain(cfg());
    assert!(
        report.passed(),
        "shard_queue_drain failed:\n{}",
        report.failure.map(|f| f.to_string()).unwrap_or_default()
    );
    assert!(!report.capped, "bounded space should be exhausted");
}

#[test]
fn ported_wal_model_never_acks_before_append() {
    let report = models::wal_ack_after_append(cfg());
    assert!(
        report.passed(),
        "wal_ack_after_append failed:\n{}",
        report.failure.map(|f| f.to_string()).unwrap_or_default()
    );
    assert!(!report.capped, "bounded space should be exhausted");
}

#[test]
fn sweep_explores_ten_thousand_interleavings_in_budget() {
    let started = std::time::Instant::now();
    let total: u64 = models::all_green(sweep_cfg())
        .into_iter()
        .map(|(name, r)| {
            assert!(r.passed(), "{name} failed during sweep");
            r.iterations
        })
        .sum();
    let elapsed = started.elapsed();
    assert!(
        total >= 10_000,
        "sweep explored only {total} interleavings (need >= 10k)"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(60),
        "sweep took {elapsed:?} (budget 60s)"
    );
}
