//! Property tests: the three one-dimensional cumulative stores (B^c tree,
//! Fenwick tree, sparse segment tree) agree with a scanned `Vec` reference
//! under arbitrary update sequences, fanouts, and insertions.

use ddc_btree::{BcTree, CumulativeStore, Fenwick, SparseSegTree};
use ddc_tests::{for_cases, DdcRng};

#[derive(Clone, Debug)]
enum Op {
    Add(usize, i64),
    Set(usize, i64),
    Prefix(usize),
    Range(usize, usize),
}

fn gen_ops(rng: &mut DdcRng) -> Vec<Op> {
    let count = rng.gen_range(1usize..60);
    (0..count)
        .map(|_| match rng.gen_range(0usize..4) {
            0 => Op::Add(rng.gen_range(0usize..64), rng.gen_range(-500i64..500)),
            1 => Op::Set(rng.gen_range(0usize..64), rng.gen_range(-500i64..500)),
            2 => Op::Prefix(rng.gen_range(0usize..64)),
            _ => {
                let a = rng.gen_range(0usize..64);
                let b = rng.gen_range(0usize..64);
                Op::Range(a.min(b), a.max(b))
            }
        })
        .collect()
}

for_cases! {
    fn stores_match_vec_reference(rng, cases = 64) {
        let len = rng.gen_range(1usize..64);
        let fanout = rng.gen_range(3usize..12);
        let ops = gen_ops(rng);
        let mut reference = vec![0i64; len];
        let mut stores: Vec<Box<dyn CumulativeStore<i64>>> = vec![
            Box::new(BcTree::zeroed(fanout, len)),
            Box::new(Fenwick::zeroed(len)),
            Box::new(SparseSegTree::zeroed(len)),
        ];
        for op in &ops {
            match op {
                Op::Add(i, v) => {
                    let i = i % len;
                    reference[i] += v;
                    for s in stores.iter_mut() {
                        s.add(i, *v);
                    }
                }
                Op::Set(i, v) => {
                    let i = i % len;
                    reference[i] = *v;
                    for s in stores.iter_mut() {
                        s.set(i, *v);
                    }
                }
                Op::Prefix(i) => {
                    let i = i % len;
                    let expect: i64 = reference[..=i].iter().sum();
                    for s in stores.iter() {
                        assert_eq!(s.prefix(i), expect, "{}", s.name());
                    }
                }
                Op::Range(a, b) => {
                    let (a, b) = (a % len, b % len);
                    let (a, b) = (a.min(b), a.max(b));
                    let expect: i64 = reference[a..=b].iter().sum();
                    for s in stores.iter() {
                        assert_eq!(s.range(a, b), expect, "{}", s.name());
                    }
                }
            }
        }
        // Terminal: totals and every value agree.
        for s in stores.iter() {
            assert_eq!(s.total(), reference.iter().sum::<i64>(), "{}", s.name());
            for (i, &v) in reference.iter().enumerate() {
                assert_eq!(s.value(i), v, "{} value({})", s.name(), i);
            }
        }
    }

    fn bc_insertion_matches_vec(rng, cases = 64) {
        let fanout = rng.gen_range(3usize..8);
        let count = rng.gen_range(1usize..80);
        let inserts: Vec<(usize, i64)> = (0..count)
            .map(|_| (rng.gen_range(0usize..100), rng.gen_range(-100i64..100)))
            .collect();
        let mut reference: Vec<i64> = Vec::new();
        let mut tree = BcTree::<i64>::new(fanout);
        for (pos, v) in &inserts {
            let pos = pos % (reference.len() + 1);
            reference.insert(pos, *v);
            tree.insert(pos, *v);
        }
        assert_eq!(tree.len(), reference.len());
        let mut acc = 0i64;
        for (i, &v) in reference.iter().enumerate() {
            acc += v;
            assert_eq!(tree.prefix(i), acc, "prefix({})", i);
        }
    }

    fn bc_insert_remove_matches_vec(rng, cases = 64) {
        let fanout = rng.gen_range(3usize..8);
        let count = rng.gen_range(1usize..120);
        let ops: Vec<(bool, usize, i64)> = (0..count)
            .map(|_| (rng.gen_bool(0.5), rng.gen_range(0usize..100), rng.gen_range(-100i64..100)))
            .collect();
        let mut reference: Vec<i64> = Vec::new();
        let mut tree = BcTree::<i64>::new(fanout);
        for (is_insert, pos, v) in &ops {
            if *is_insert || reference.is_empty() {
                let pos = pos % (reference.len() + 1);
                reference.insert(pos, *v);
                tree.insert(pos, *v);
            } else {
                let pos = pos % reference.len();
                assert_eq!(tree.remove(pos), reference.remove(pos));
            }
        }
        assert_eq!(tree.len(), reference.len());
        let mut acc = 0i64;
        for (i, &v) in reference.iter().enumerate() {
            acc += v;
            assert_eq!(tree.prefix(i), acc, "prefix({})", i);
            assert_eq!(tree.value(i), v, "value({})", i);
        }
    }

    fn fenwick_push_matches_from_values(rng, cases = 64) {
        let count = rng.gen_range(1usize..120);
        let values: Vec<i64> = (0..count).map(|_| rng.gen_range(-100i64..100)).collect();
        let bulk = Fenwick::from_values(&values);
        let mut grown = Fenwick::<i64>::zeroed(0);
        for &v in &values {
            grown.push(v);
        }
        for i in 0..values.len() {
            assert_eq!(bulk.prefix(i), grown.prefix(i), "prefix({})", i);
        }
    }

    fn sparse_seg_memory_tracks_population(rng, cases = 64) {
        let count = rng.gen_range(1usize..20);
        let indices: Vec<usize> = (0..count).map(|_| rng.gen_range(0usize..10_000)).collect();
        let mut t = SparseSegTree::<i64>::zeroed(10_000);
        for &i in &indices {
            t.add(i, 1);
        }
        // Path length is ⌈log2 10000⌉ + 1 = 15 nodes max per insert.
        assert!(t.node_count() <= indices.len() * 15);
    }
}
