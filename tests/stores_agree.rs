//! Property tests: the three one-dimensional cumulative stores (B^c tree,
//! Fenwick tree, sparse segment tree) agree with a scanned `Vec` reference
//! under arbitrary update sequences, fanouts, and insertions.

use ddc_btree::{BcTree, CumulativeStore, Fenwick, SparseSegTree};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Add(usize, i64),
    Set(usize, i64),
    Prefix(usize),
    Range(usize, usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0usize..64, -500i64..500).prop_map(|(i, v)| Op::Add(i, v)),
        (0usize..64, -500i64..500).prop_map(|(i, v)| Op::Set(i, v)),
        (0usize..64).prop_map(Op::Prefix),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ];
    proptest::collection::vec(op, 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stores_match_vec_reference(len in 1usize..64, fanout in 3usize..12, ops in ops()) {
        let mut reference = vec![0i64; len];
        let mut stores: Vec<Box<dyn CumulativeStore<i64>>> = vec![
            Box::new(BcTree::zeroed(fanout, len)),
            Box::new(Fenwick::zeroed(len)),
            Box::new(SparseSegTree::zeroed(len)),
        ];
        for op in &ops {
            match op {
                Op::Add(i, v) => {
                    let i = i % len;
                    reference[i] += v;
                    for s in stores.iter_mut() {
                        s.add(i, *v);
                    }
                }
                Op::Set(i, v) => {
                    let i = i % len;
                    reference[i] = *v;
                    for s in stores.iter_mut() {
                        s.set(i, *v);
                    }
                }
                Op::Prefix(i) => {
                    let i = i % len;
                    let expect: i64 = reference[..=i].iter().sum();
                    for s in stores.iter() {
                        prop_assert_eq!(s.prefix(i), expect, "{}", s.name());
                    }
                }
                Op::Range(a, b) => {
                    let (a, b) = (a % len, b % len);
                    let (a, b) = (a.min(b), a.max(b));
                    let expect: i64 = reference[a..=b].iter().sum();
                    for s in stores.iter() {
                        prop_assert_eq!(s.range(a, b), expect, "{}", s.name());
                    }
                }
            }
        }
        // Terminal: totals and every value agree.
        for s in stores.iter() {
            prop_assert_eq!(s.total(), reference.iter().sum::<i64>(), "{}", s.name());
            for (i, &v) in reference.iter().enumerate() {
                prop_assert_eq!(s.value(i), v, "{} value({})", s.name(), i);
            }
        }
    }

    #[test]
    fn bc_insertion_matches_vec(fanout in 3usize..8,
                                inserts in proptest::collection::vec((0usize..100, -100i64..100), 1..80)) {
        let mut reference: Vec<i64> = Vec::new();
        let mut tree = BcTree::<i64>::new(fanout);
        for (pos, v) in &inserts {
            let pos = pos % (reference.len() + 1);
            reference.insert(pos, *v);
            tree.insert(pos, *v);
        }
        prop_assert_eq!(tree.len(), reference.len());
        let mut acc = 0i64;
        for (i, &v) in reference.iter().enumerate() {
            acc += v;
            prop_assert_eq!(tree.prefix(i), acc, "prefix({})", i);
        }
    }

    #[test]
    fn bc_insert_remove_matches_vec(
        fanout in 3usize..8,
        ops in proptest::collection::vec((any::<bool>(), 0usize..100, -100i64..100), 1..120),
    ) {
        let mut reference: Vec<i64> = Vec::new();
        let mut tree = BcTree::<i64>::new(fanout);
        for (is_insert, pos, v) in &ops {
            if *is_insert || reference.is_empty() {
                let pos = pos % (reference.len() + 1);
                reference.insert(pos, *v);
                tree.insert(pos, *v);
            } else {
                let pos = pos % reference.len();
                prop_assert_eq!(tree.remove(pos), reference.remove(pos));
            }
        }
        prop_assert_eq!(tree.len(), reference.len());
        let mut acc = 0i64;
        for (i, &v) in reference.iter().enumerate() {
            acc += v;
            prop_assert_eq!(tree.prefix(i), acc, "prefix({})", i);
            prop_assert_eq!(tree.value(i), v, "value({})", i);
        }
    }

    #[test]
    fn fenwick_push_matches_from_values(values in proptest::collection::vec(-100i64..100, 1..120)) {
        let bulk = Fenwick::from_values(&values);
        let mut grown = Fenwick::<i64>::zeroed(0);
        for &v in &values {
            grown.push(v);
        }
        for i in 0..values.len() {
            prop_assert_eq!(bulk.prefix(i), grown.prefix(i), "prefix({})", i);
        }
    }

    #[test]
    fn sparse_seg_memory_tracks_population(indices in proptest::collection::vec(0usize..10_000, 1..20)) {
        let mut t = SparseSegTree::<i64>::zeroed(10_000);
        for &i in &indices {
            t.add(i, 1);
        }
        // Path length is ⌈log2 10000⌉ + 1 = 15 nodes max per insert.
        prop_assert!(t.node_count() <= indices.len() * 15);
    }
}
