//! Property tests for the algebraic substrate: group laws (the paper's
//! §2 invertible-operator requirement) and the Figure-4 prefix
//! decomposition identity on arbitrary regions.

use ddc_array::{AbelianGroup, NdArray, Pair, Region, Shape};
use ddc_tests::for_cases;

for_cases! {
    fn i64_group_laws(rng, cases = 128) {
        let a = rng.next_u64() as i64;
        let b = rng.next_u64() as i64;
        let c = rng.next_u64() as i64;
        assert_eq!(a.add(b), b.add(a));
        assert_eq!(a.add(b.add(c)), a.add(b).add(c));
        assert_eq!(a.add(i64::ZERO), a);
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(a.add(a.neg()), 0);
    }

    fn pair_group_laws(rng, cases = 128) {
        let x = Pair::new(rng.next_u64() as i32 as i64, rng.next_u64() as i32 as i64);
        let y = Pair::new(rng.next_u64() as i32 as i64, rng.next_u64() as i32 as i64);
        assert_eq!(x.add(y), y.add(x));
        assert_eq!(x.add(y).sub(y), x);
        assert_eq!(x.add(Pair::ZERO), x);
    }

    /// Figure 4: for any region R and any array A,
    /// Sum(R) = Σ ± prefix-sums of the decomposition corners.
    fn prefix_decomposition_identity(rng, cases = 128) {
        let d = rng.gen_range(1usize..4);
        let dims: Vec<usize> = (0..d).map(|_| rng.gen_range(1usize..8)).collect();
        let seed = rng.next_u64();
        let fracs: Vec<(f64, f64)> = (0..4).map(|_| (rng.next_f64(), rng.next_f64())).collect();

        let shape = Shape::new(&dims);
        let a = ddc_workload::uniform_array(&shape, -50, 50, &mut ddc_workload::rng(seed));
        let lo: Vec<usize> = dims.iter().enumerate()
            .map(|(i, &n)| ((fracs[i % 4].0 * n as f64) as usize).min(n - 1)).collect();
        let hi: Vec<usize> = dims.iter().enumerate()
            .map(|(i, &n)| ((fracs[i % 4].1 * n as f64) as usize).min(n - 1)).collect();
        let (lo, hi): (Vec<usize>, Vec<usize>) = lo.iter().zip(hi.iter())
            .map(|(&l, &h)| (l.min(h), l.max(h))).unzip();
        let region = Region::new(&lo, &hi);

        let direct = a.region_sum(&region);
        let mut via_prefix = 0i64;
        for term in region.prefix_decomposition() {
            let p = a.prefix_sum(&term.corner);
            via_prefix = if term.sign > 0 { via_prefix + p } else { via_prefix - p };
        }
        assert_eq!(direct, via_prefix);
    }

    /// Decomposition terms are unique corners with correct sign parity.
    fn decomposition_structure(rng, cases = 128) {
        let d = rng.gen_range(1usize..4);
        let lo: Vec<usize> = (0..d).map(|_| rng.gen_range(0usize..6)).collect();
        let extent: Vec<usize> = (0..d).map(|_| rng.gen_range(1usize..5)).collect();
        let hi: Vec<usize> = lo.iter().zip(&extent).map(|(&l, &e)| l + e).collect();
        let region = Region::new(&lo, &hi);
        let terms = region.prefix_decomposition();
        assert!(terms.len() <= 1 << d);
        assert!(!terms.is_empty());
        // Corners are pairwise distinct.
        let mut corners: Vec<&Vec<usize>> = terms.iter().map(|t| &t.corner).collect();
        corners.sort();
        corners.dedup();
        assert_eq!(corners.len(), terms.len());
        // Signs sum to the inclusion–exclusion invariant: exactly one net
        // positive region (the query region itself) for an indicator test
        // array of all-ones restricted to the region's upper corner.
        let shape = Shape::new(&hi.iter().map(|&h| h + 1).collect::<Vec<_>>());
        let mut ones = NdArray::<i64>::zeroed(shape);
        ones.set(&hi, 1); // only the region's top corner is populated
        let mut total = 0i64;
        for t in &terms {
            let p = ones.prefix_sum(&t.corner);
            total = if t.sign > 0 { total + p } else { total - p };
        }
        assert_eq!(total, 1);
    }

    fn linearize_roundtrip(rng, cases = 128) {
        let d = rng.gen_range(1usize..5);
        let dims: Vec<usize> = (0..d).map(|_| rng.gen_range(1usize..9)).collect();
        let frac = rng.next_f64();
        let shape = Shape::new(&dims);
        let idx = ((frac * shape.cells() as f64) as usize).min(shape.cells() - 1);
        let p = shape.delinearize(idx);
        assert_eq!(shape.linear(&p), idx);
        assert!(shape.contains(&p));
    }
}
