//! Property tests for the algebraic substrate: group laws (the paper's
//! §2 invertible-operator requirement) and the Figure-4 prefix
//! decomposition identity on arbitrary regions.

use ddc_array::{AbelianGroup, NdArray, Pair, Region, Shape};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn i64_group_laws(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        prop_assert_eq!(a.add(b), b.add(a));
        prop_assert_eq!(a.add(b.add(c)), a.add(b).add(c));
        prop_assert_eq!(a.add(i64::ZERO), a);
        prop_assert_eq!(a.add(b).sub(b), a);
        prop_assert_eq!(a.add(a.neg()), 0);
    }

    #[test]
    fn pair_group_laws(a in any::<(i32, i32)>(), b in any::<(i32, i32)>()) {
        let x = Pair::new(a.0 as i64, a.1 as i64);
        let y = Pair::new(b.0 as i64, b.1 as i64);
        prop_assert_eq!(x.add(y), y.add(x));
        prop_assert_eq!(x.add(y).sub(y), x);
        prop_assert_eq!(x.add(Pair::ZERO), x);
    }

    /// Figure 4: for any region R and any array A,
    /// Sum(R) = Σ ± prefix-sums of the decomposition corners.
    #[test]
    fn prefix_decomposition_identity(
        dims in proptest::collection::vec(1usize..8, 1..4),
        seed in 0u64..500,
        fracs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 4),
    ) {
        let shape = Shape::new(&dims);
        let a = ddc_workload::uniform_array(&shape, -50, 50, &mut ddc_workload::rng(seed));
        let lo: Vec<usize> = dims.iter().enumerate()
            .map(|(i, &n)| ((fracs[i % 4].0 * n as f64) as usize).min(n - 1)).collect();
        let hi: Vec<usize> = dims.iter().enumerate()
            .map(|(i, &n)| ((fracs[i % 4].1 * n as f64) as usize).min(n - 1)).collect();
        let (lo, hi): (Vec<usize>, Vec<usize>) = lo.iter().zip(hi.iter())
            .map(|(&l, &h)| (l.min(h), l.max(h))).unzip();
        let region = Region::new(&lo, &hi);

        let direct = a.region_sum(&region);
        let mut via_prefix = 0i64;
        for term in region.prefix_decomposition() {
            let p = a.prefix_sum(&term.corner);
            via_prefix = if term.sign > 0 { via_prefix + p } else { via_prefix - p };
        }
        prop_assert_eq!(direct, via_prefix);
    }

    /// Decomposition terms are unique corners with correct sign parity.
    #[test]
    fn decomposition_structure(
        lo in proptest::collection::vec(0usize..6, 1..4),
        extent in proptest::collection::vec(1usize..5, 1..4),
    ) {
        let d = lo.len().min(extent.len());
        let lo = &lo[..d];
        let hi: Vec<usize> = lo.iter().zip(&extent[..d]).map(|(&l, &e)| l + e).collect();
        let region = Region::new(lo, &hi);
        let terms = region.prefix_decomposition();
        prop_assert!(terms.len() <= 1 << d);
        prop_assert!(!terms.is_empty());
        // Corners are pairwise distinct.
        let mut corners: Vec<&Vec<usize>> = terms.iter().map(|t| &t.corner).collect();
        corners.sort();
        corners.dedup();
        prop_assert_eq!(corners.len(), terms.len());
        // Signs sum to the inclusion–exclusion invariant: exactly one net
        // positive region (the query region itself) for an indicator test
        // array of all-ones restricted to the region's upper corner.
        let shape = Shape::new(&hi.iter().map(|&h| h + 1).collect::<Vec<_>>());
        let mut ones = NdArray::<i64>::zeroed(shape);
        ones.set(&hi, 1); // only the region's top corner is populated
        let mut total = 0i64;
        for t in &terms {
            let p = ones.prefix_sum(&t.corner);
            total = if t.sign > 0 { total + p } else { total - p };
        }
        prop_assert_eq!(total, 1);
    }

    #[test]
    fn linearize_roundtrip(dims in proptest::collection::vec(1usize..9, 1..5), frac in 0.0f64..1.0) {
        let shape = Shape::new(&dims);
        let idx = ((frac * shape.cells() as f64) as usize).min(shape.cells() - 1);
        let p = shape.delinearize(idx);
        prop_assert_eq!(shape.linear(&p), idx);
        prop_assert!(shape.contains(&p));
    }
}
