//! Concurrency tests for the sharded cube (the tentpole of the
//! `core::shard` work): a lockstep differential replay proving the
//! sharded protocol is observably identical to an unsharded engine, and
//! a reader/writer stress test proving no update is lost or duplicated
//! under contention.

use std::sync::atomic::{AtomicBool, Ordering};

use ddc_array::{RangeSumEngine, Region, ShadowEngine, Shape};
use ddc_core::{DdcConfig, DdcEngine, ShardConfig, ShardedCube, TryUpdateError};
use ddc_tests::for_cases;
use ddc_workload::Trace;

for_cases! {
    /// Replays a recorded trace through a `ShardedCube` shadowed by a
    /// plain `DdcEngine`: the `ShadowEngine` panics on the first query
    /// where the two disagree, and the final checksums must match a
    /// third, independent replay bit for bit.
    fn sharded_replay_is_bit_identical_to_unsharded(rng, cases = 24) {
        let n0 = rng.gen_range(8usize..40);
        let n1 = rng.gen_range(4usize..24);
        let shape = Shape::new(&[n0, n1]);
        let shards = rng.gen_range(1usize..=6);
        let batch = [1usize, 4, 64, 1_000_000][rng.gen_range(0usize..4)];
        let trace = Trace::generate(&shape, rng.gen_range(50usize..300), 0.6, rng);

        let sharded = ShardedCube::<i64>::new(
            shape.clone(),
            DdcConfig::dynamic(),
            ShardConfig { shards, batch_capacity: batch, ..ShardConfig::default() },
        );
        let plain = DdcEngine::<i64>::dynamic(shape.clone());
        let mut lockstep = ShadowEngine::new(sharded, plain);
        let shadowed = trace.replay(&mut lockstep);

        let mut reference = DdcEngine::<i64>::dynamic(shape);
        let independent = trace.replay(&mut reference);
        assert_eq!(shadowed, independent, "shards={shards} batch={batch}");
    }

    /// Same lockstep replay with parallel query fan-out enabled.
    fn parallel_fanout_replay_is_bit_identical(rng, cases = 8) {
        let shape = Shape::new(&[24, 12]);
        let trace = Trace::generate(&shape, 120, 0.5, rng);
        let sharded = ShardedCube::<i64>::new(
            shape.clone(),
            DdcConfig::dynamic(),
            ShardConfig { shards: 4, batch_capacity: 16, parallel_queries: true, ..ShardConfig::default() },
        );
        let mut lockstep = ShadowEngine::new(sharded, DdcEngine::<i64>::dynamic(shape));
        let _ = trace.replay(&mut lockstep);
    }
}

/// 4 readers + 2 writers hammer a 256² sharded cube; afterwards every
/// prefix sum must equal a single-threaded replay of the same updates —
/// nothing lost, nothing applied twice, no torn batch.
#[test]
fn stress_readers_and_writers_preserve_every_update() {
    const N: usize = 256;
    const WRITERS: usize = 2;
    const READERS: usize = 4;
    const UPDATES_PER_WRITER: usize = 2_000;

    let shape = Shape::new(&[N, N]);
    // Deterministic per-writer update streams, generated up front.
    let streams: Vec<Vec<(Vec<usize>, i64)>> = (0..WRITERS)
        .map(|w| {
            let mut rng = ddc_tests::DdcRng::seed_from_u64(0x5EED_0000 + w as u64);
            (0..UPDATES_PER_WRITER)
                .map(|_| {
                    let p = vec![rng.gen_range(0..N), rng.gen_range(0..N)];
                    (p, rng.gen_range(-1_000i64..=1_000))
                })
                .collect()
        })
        .collect();

    let cube = ShardedCube::<i64>::new(
        shape.clone(),
        DdcConfig::dynamic(),
        ShardConfig {
            shards: 4,
            batch_capacity: 64,
            ..ShardConfig::default()
        },
    );
    let done = AtomicBool::new(false);
    let (cube_ref, done_ref) = (&cube, &done);

    std::thread::scope(|scope| {
        for stream in &streams {
            scope.spawn(move || {
                for (p, v) in stream {
                    cube_ref.update(p, *v);
                }
            });
        }
        for r in 0..READERS {
            scope.spawn(move || {
                let mut rng = ddc_tests::DdcRng::seed_from_u64(0xBEEF_0000 + r as u64);
                while !done_ref.load(Ordering::Relaxed) {
                    // Results are unspecified mid-stream; the point is that
                    // concurrent queries neither crash nor disturb state.
                    let a = rng.gen_range(0..N);
                    let b = rng.gen_range(0..N);
                    let q = Region::new(&[a.min(b), 0], &[a.max(b), N - 1]);
                    let _ = cube_ref.query(&q);
                    let _ = cube_ref.query_prefix(&[rng.gen_range(0..N), rng.gen_range(0..N)]);
                }
            });
        }
        // Readers run until every writer delta has been enqueued; without
        // the flag the scope's implicit join would deadlock on them.
        let expected = (WRITERS * UPDATES_PER_WRITER) as u64;
        while cube.metrics().iter().map(|m| m.ops_enqueued).sum::<u64>() < expected {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
    });

    cube.flush();

    // Single-threaded ground truth over the concatenated streams (group
    // addition commutes, so interleaving order cannot matter).
    let mut reference = DdcEngine::<i64>::dynamic(shape);
    for stream in &streams {
        for (p, v) in stream {
            reference.apply_delta(p, *v);
        }
    }

    // Full-cube checksum plus a grid of prefix sums.
    assert_eq!(
        cube.query(&Region::full(reference.shape())),
        reference.range_sum(&Region::full(reference.shape()))
    );
    let mut checksum = 0i64;
    let mut expected = 0i64;
    for i in (0..N).step_by(17) {
        for j in (0..N).step_by(13) {
            checksum = checksum.wrapping_add(cube.query_prefix(&[i, j]));
            expected = expected.wrapping_add(reference.prefix_sum(&[i, j]));
        }
    }
    assert_eq!(checksum, expected);

    // The metrics must account for every update exactly once.
    let applied: u64 = cube.metrics().iter().map(|m| m.ops_applied).sum();
    assert_eq!(applied, (WRITERS * UPDATES_PER_WRITER) as u64);
}

/// `update_batch` agrees with one-at-a-time updates and a plain engine.
#[test]
fn batched_updates_match_single_updates() {
    let shape = Shape::new(&[40, 10]);
    let mut rng = ddc_tests::DdcRng::seed_from_u64(77);
    let updates: Vec<(Vec<usize>, i64)> = (0..500)
        .map(|_| {
            (
                vec![rng.gen_range(0..40), rng.gen_range(0..10)],
                rng.gen_range(-50i64..=50),
            )
        })
        .collect();

    let batched = ShardedCube::<i64>::new(
        shape.clone(),
        DdcConfig::dynamic(),
        ShardConfig::with_shards(3),
    );
    batched.update_batch(&updates);

    let mut plain = DdcEngine::<i64>::dynamic(shape.clone());
    for (p, v) in &updates {
        plain.apply_delta(p, *v);
    }

    for p in shape.iter_points().step_by(7) {
        assert_eq!(batched.query_prefix(&p), plain.prefix_sum(&p), "{p:?}");
    }
}

/// Queue semantics (read-through and explicit drain): an enqueued update
/// is visible to point reads and range queries *immediately* — before
/// any group commit — and an explicit `flush` moves it from the queue to
/// the underlying engine without changing any observable value.
#[test]
fn queued_updates_read_through_and_flush_is_observably_silent() {
    let shape = Shape::new(&[8, 8]);
    let cube = ShardedCube::<i64>::new(
        shape.clone(),
        DdcConfig::dynamic(),
        // A batch capacity far above the update count: nothing will
        // group-commit on its own, so every read below goes through a
        // non-empty queue.
        ShardConfig {
            shards: 2,
            batch_capacity: 1_000_000,
            ..ShardConfig::default()
        },
    );

    cube.update(&[1, 2], 5);
    cube.update(&[7, 0], -3);
    cube.update(&[1, 2], 4);

    // Visible immediately after enqueue, before any flush.
    assert_eq!(cube.cell_value(&[1, 2]), 9);
    assert_eq!(cube.cell_value(&[7, 0]), -3);
    assert_eq!(cube.query(&Region::full(&shape)), 6);
    let applied_before: u64 = cube.metrics().iter().map(|m| m.ops_applied).sum();
    assert_eq!(applied_before, 0, "nothing should have committed yet");

    // Explicit flush drains the queues into the engine…
    cube.flush();
    let applied_after: u64 = cube.metrics().iter().map(|m| m.ops_applied).sum();
    assert_eq!(applied_after, 3, "flush must apply every queued delta once");

    // …without changing what any observer sees.
    assert_eq!(cube.cell_value(&[1, 2]), 9);
    assert_eq!(cube.cell_value(&[7, 0]), -3);
    assert_eq!(cube.query(&Region::full(&shape)), 6);

    // A second flush of empty queues is a no-op, not a double apply.
    cube.flush();
    let applied_again: u64 = cube.metrics().iter().map(|m| m.ops_applied).sum();
    assert_eq!(applied_again, 3);
    assert_eq!(cube.query(&Region::full(&shape)), 6);
}

/// Crossing `batch_capacity` triggers the group commit automatically:
/// the queue drains without an explicit flush, and values still read
/// identically before and after the threshold.
#[test]
fn batch_capacity_threshold_group_commits_automatically() {
    let cube = ShardedCube::<i64>::new(
        Shape::new(&[4, 4]),
        DdcConfig::dynamic(),
        ShardConfig {
            shards: 1,
            batch_capacity: 4,
            ..ShardConfig::default()
        },
    );
    // Three updates sit in the queue (below capacity)…
    for i in 0..3 {
        cube.update(&[i, i], 1);
    }
    assert_eq!(cube.metrics()[0].ops_applied, 0);
    assert_eq!(cube.metrics()[0].ops_enqueued, 3);
    // …the fourth crosses the threshold and commits the batch.
    cube.update(&[3, 3], 1);
    assert_eq!(cube.metrics()[0].ops_applied, 4);
    assert!(cube.metrics()[0].batches_flushed >= 1);
    for i in 0..4 {
        assert_eq!(cube.cell_value(&[i, i]), 1);
    }
}

/// Backpressure (robustness satellite): a shard whose commits keep
/// panicking cannot drain, so a paced feed of thousands of updates must
/// hit the queue bound and *reject* — the queue never grows past its
/// capacity (no unbounded buffering, no OOM) — while the sibling shard
/// keeps accepting. Once the fault clears, `flush()` drains the survivor
/// deterministically and the accepted updates are all accounted for.
#[test]
fn slow_shard_under_paced_feed_rejects_instead_of_buffering_unboundedly() {
    const FEED: usize = 5_000;
    const CAPACITY: usize = 32;
    let cube = ShardedCube::<i64>::new(
        Shape::new(&[16, 8]),
        DdcConfig::dynamic(),
        ShardConfig {
            shards: 2,
            batch_capacity: 8,
            queue_capacity: CAPACITY,
            max_restarts: u32::MAX, // quarantined forever, never failed
            ..ShardConfig::default()
        },
    );
    // Shard 0 (rows 0..8) panics on every commit for the whole feed.
    cube.fail_next_flushes(0, u64::MAX);

    let mut accepted_slow = 0u64;
    let mut rejected_slow = 0u64;
    for i in 0..FEED {
        // Paced feed alternating between the wedged shard and a healthy one.
        match cube.try_update(&[i % 8, i % 8], 1) {
            Ok(()) => accepted_slow += 1,
            Err(TryUpdateError::QueueFull { shard, capacity }) => {
                assert_eq!((shard, capacity), (0, CAPACITY));
                rejected_slow += 1;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
        cube.try_update(&[8 + i % 8, i % 8], 1).unwrap();
    }

    let m = cube.metrics();
    // The wedged shard held at most `CAPACITY` deltas at any moment and
    // shed the overflow instead of buffering it.
    assert!(m[0].queue_depth_max <= CAPACITY as u64, "{m:?}");
    assert_eq!(accepted_slow + rejected_slow, FEED as u64);
    assert!(rejected_slow > 0, "feed never hit the bound: {m:?}");
    assert_eq!(m[0].ops_rejected, rejected_slow);
    assert!(m[0].worker_panics > 0);
    // The healthy shard was untouched by its sibling's quarantine.
    assert_eq!(m[1].ops_rejected, 0);
    assert_eq!(
        cube.query_prefix(&[15, 7]) - cube.query_prefix(&[7, 7]),
        FEED as i64
    );

    // Fault clears → an explicit flush drains both shards completely and
    // deterministically: applied == accepted, queues empty.
    cube.fail_next_flushes(0, 0);
    cube.flush();
    let m = cube.metrics();
    assert_eq!(m[0].ops_applied, accepted_slow);
    assert_eq!(m[1].ops_applied, FEED as u64);
    assert_eq!(m[0].worker_restarts, 1);
    assert_eq!(cube.query_prefix(&[7, 7]), accepted_slow as i64);
}

/// Acceptance criterion: a deliberately panicking shard worker (armed
/// via the test-only hook) is quarantined, `flush()` does not deadlock
/// on it, and after the fault clears the worker restarts — visibly, in
/// `MetricsSnapshot::worker_restarts` — with no update lost.
#[test]
fn panicking_worker_is_quarantined_then_restarted_without_deadlocking_flush() {
    let cube = ShardedCube::<i64>::new(
        Shape::new(&[8, 8]),
        DdcConfig::dynamic(),
        ShardConfig {
            shards: 2,
            batch_capacity: 1_000_000, // only explicit flushes commit
            ..ShardConfig::default()
        },
    );
    for i in 0..8 {
        cube.update(&[i, 0], 1);
    }
    cube.fail_next_flushes(0, 2);

    // Two flushes hit the armed hook: each panic is contained, the call
    // returns (no deadlock), and the deltas stay queued and readable.
    cube.flush();
    cube.flush();
    let m = cube.metrics();
    assert_eq!(m[0].worker_panics, 2, "{m:?}");
    assert_eq!(m[0].worker_restarts, 0);
    assert_eq!(m[0].ops_applied, 0);
    assert_eq!(cube.query_prefix(&[7, 7]), 8, "quarantined deltas readable");

    // Hook exhausted: the next flush lands, ending the quarantine.
    cube.flush();
    let m = cube.metrics();
    assert_eq!(m[0].worker_restarts, 1, "{m:?}");
    assert_eq!(m[0].ops_applied + m[1].ops_applied, 8);
    assert_eq!(cube.query_prefix(&[7, 7]), 8);
    assert_eq!(cube.entries().len(), 8);
}
