//! Consolidated regression suite for the paper's *quantitative textual
//! claims* — every number the prose states, asserted in one place so
//! EXPERIMENTS.md stays honest.

use ddc_costmodel::{complexity, table1, table2};

/// §1: "with d = 8 … when n = 10², the size of each dimension is only
/// 100 elements; yet the full data cube is [10^16] cells."
#[test]
fn intro_cube_size() {
    assert_eq!(
        table1::nearest_power_of_ten(table1::full_cube_size(1e2, 8)),
        16
    );
}

/// §1: "the prefix sum method requires on the order of [10^9] times more
/// instructions than the Dynamic Data Cube" at n = 10², d = 8.
#[test]
fn intro_instruction_ratio() {
    let ratio = table1::prefix_sum_update(1e2, 8) / table1::ddc_update(1e2, 8);
    let order = ratio.log10().round() as i32;
    assert!((8..=10).contains(&order), "ratio 10^{order}");
}

/// §1: "the prefix sum method may require more than 6 months of
/// processing to update a single cell … The Dynamic Data Cube can update
/// that same cell in under [two] seconds" (500 MIPS).
#[test]
fn intro_processing_times() {
    let ps = table1::seconds_at_mips(table1::prefix_sum_update(1e2, 8), 500.0);
    assert!(ps > 0.5 * 365.25 * 86_400.0, "PS took only {ps} s");
    let ddc = table1::seconds_at_mips(table1::ddc_update(1e2, 8), 500.0);
    assert!(ddc < 2.0, "DDC took {ddc} s");
}

/// §1: "When n = 10⁴, the relative prefix sum method requires 231 days to
/// update a single cell … whereas the Dynamic Data Cube requires under 2
/// seconds."
#[test]
fn intro_rps_231_days() {
    let rps = table1::seconds_at_mips(table1::relative_prefix_update(1e4, 8), 500.0);
    let days = rps / 86_400.0;
    assert!((230.0..233.0).contains(&days), "{days} days");
    let ddc = table1::seconds_at_mips(table1::ddc_update(1e4, 8), 500.0);
    assert!(ddc < 2.0, "{ddc} s");
}

/// §3.1: "each box stores exactly (k^d − (k−1)^d) values" — at k = 4,
/// d = 2 that is 7 values for a 16-cell region (the Figure 6 overlay).
#[test]
fn overlay_value_counts() {
    assert_eq!(table2::overlay_cells(4.0, 2), 7.0);
    assert_eq!(table2::covered_cells(4.0, 2), 16.0);
    // …and the 2-D identity d(k−1)+1 from §3.3's discussion.
    for k in [2.0f64, 4.0, 8.0, 32.0] {
        assert_eq!(table2::overlay_cells(k, 2), 2.0 * (k - 1.0) + 1.0);
    }
}

/// §3.3: the Basic tree's series sums to d[(n^{d-1} − 1)/(2^{d-1} − 1)],
/// which is O(n) in two dimensions — "the worst-case update cost of the
/// Basic Dynamic Data Cube becomes O(n) in the two-dimensional case."
#[test]
fn basic_two_dimensional_cost_is_linear() {
    for n in [64.0, 256.0, 1024.0] {
        let c = complexity::basic_update_cost(n, 2);
        assert_eq!(c, 2.0 * (n - 1.0));
    }
}

/// §4.3 base case: the B^c-tree query series evaluates to
/// 3·[log(n/2) + … + 1] = 3·½·log(n/2)(log(n/2)+1).
#[test]
fn two_dimensional_series_closed_form() {
    for n in [8.0f64, 64.0, 4096.0] {
        let l = (n / 2.0).log2();
        let direct: f64 = (1..=(l as u32)).map(|i| 3.0 * i as f64).sum();
        assert!((complexity::ddc_2d_cost(n) - direct).abs() < 1e-9, "n={n}");
    }
}

/// Table 2's printed percentages for d = 2.
#[test]
fn table2_rows() {
    let expect = [
        (2.0, 75.0),
        (4.0, 43.75),
        (8.0, 23.4375),
        (16.0, 12.109375),
        (32.0, 6.15234375),
    ];
    for (k, pct) in expect {
        assert!((table2::percentage(k, 2) - pct).abs() < 1e-9, "k={k}");
    }
}

/// §4.4: "By setting the appropriate value of h, one can reduce the
/// storage … to within ε of the size of array A" — measured on the real
/// structure: h = 4 must bring a 256² cube under 1.5× |A|.
#[test]
fn elision_brings_storage_near_array_size() {
    use ddc_array::{RangeSumEngine, Shape};
    use ddc_core::{DdcConfig, DdcEngine};
    use ddc_workload::{rng, uniform_array};
    let shape = Shape::cube(2, 256);
    let a = uniform_array(&shape, -20, 20, &mut rng(3));
    let raw = a.heap_bytes();
    let e = DdcEngine::from_array_with(&a, DdcConfig::dynamic().with_elision(4));
    let ratio = e.heap_bytes() as f64 / raw as f64;
    assert!(ratio < 1.5, "h=4 ratio {ratio}");
    // And h = 0 is strictly larger — the optimization does something.
    let e0 = DdcEngine::from_array_with(&a, DdcConfig::dynamic());
    assert!(e0.heap_bytes() > e.heap_bytes());
}

/// §4.4: "the maximum size of the union of these deleted regions is
/// 2^{(h+1)d} leaf cells" — measured: the worst-case extra reads of an
/// elided tree versus h = 0 stay within that bound.
#[test]
fn elision_query_penalty_is_bounded() {
    use ddc_array::{RangeSumEngine, Shape};
    use ddc_core::{DdcConfig, DdcEngine};
    use ddc_workload::{rng, uniform_array};
    let shape = Shape::cube(2, 64);
    let a = uniform_array(&shape, 1, 9, &mut rng(4));
    for h in 1..=3usize {
        let base = DdcEngine::from_array_with(&a, DdcConfig::dynamic());
        let elided = DdcEngine::from_array_with(&a, DdcConfig::dynamic().with_elision(h));
        let bound = 1u64 << ((h + 1) * 2);
        for p in [[0usize, 0], [63, 63], [31, 32], [17, 55]] {
            base.reset_ops();
            let _ = base.prefix_sum(&p);
            let b = base.ops().reads;
            elided.reset_ops();
            let _ = elided.prefix_sum(&p);
            let e = elided.ops().reads;
            assert!(
                e <= b + bound,
                "h={h} point {p:?}: {e} reads vs base {b} + bound {bound}"
            );
        }
    }
}
