//! Interactive "what-if" analysis: the paper's §1 vision of business
//! leaders constructing what-if scenarios on data cubes "in much the same
//! way that they construct what-if scenarios using spreadsheets now" —
//! possible only because DDC updates are sublinear.
//!
//! The example measures the update+requery round-trip on the Dynamic Data
//! Cube versus the prefix-sum method to show why batch-update systems
//! cannot offer this interaction model.
//!
//! ```text
//! cargo run --release -p ddc-examples --example whatif
//! ```

use ddc_array::{RangeSumEngine, Region, Shape};
use ddc_olap::EngineKind;
use ddc_workload::{rng, uniform_array};
use std::time::Instant;

fn main() {
    // Revenue by (region-index, product-index, week): a 64×64×64 cube.
    let shape = Shape::cube(3, 64);
    let mut r = rng(99);
    let base = uniform_array(&shape, 0, 1000, &mut r);

    let mut scenario: Vec<(EngineKind, Box<dyn RangeSumEngine<i64>>)> = Vec::new();
    for kind in [EngineKind::DynamicDdc, EngineKind::PrefixSum] {
        let mut e = kind.build(shape.clone());
        for p in shape.iter_points() {
            let v = base.get(&p);
            if v != 0 {
                e.apply_delta(&p, v);
            }
        }
        scenario.push((kind, e));
    }

    // The analyst's question: revenue for regions 0..16, all products,
    // weeks 20..40.
    let question = Region::new(&[0, 0, 20], &[15, 63, 39]);

    // What-if loop: tweak one cell (e.g. "what if we had sold 500 more of
    // product 7 in region 3 in week 25?"), re-ask the question, repeat.
    for (kind, engine) in scenario.iter_mut() {
        let start = Instant::now();
        let mut answer = 0i64;
        const ROUNDS: usize = 200;
        for i in 0..ROUNDS {
            let cell = [3 + i % 4, 7, 25];
            engine.apply_delta(&cell, 500);
            answer = engine.range_sum(&question);
            engine.apply_delta(&cell, -500); // roll the hypothesis back
        }
        let per_round = start.elapsed() / ROUNDS as u32;
        println!(
            "{:<14} {ROUNDS} what-if rounds, {:>10.1?} per update+query+rollback (answer {answer})",
            kind.label(),
            per_round
        );
    }

    println!(
        "\nThe Dynamic Data Cube sustains interactive what-if rates; the \
         prefix\nsum method pays its O(n^d) cascade on every hypothesis."
    );
}
