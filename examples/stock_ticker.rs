//! Stock ticker: "Stock brokers might wish to dynamically analyze the
//! implications of millions of trades as they occur" (§1). A
//! [`DynamicDataCube`] learns ticker symbols as trades arrive and buckets
//! timestamps into minutes; analysts read volume aggregates and rolling
//! windows while the stream is live — no batch loading window.
//!
//! ```text
//! cargo run --release -p ddc-examples --example stock_ticker
//! ```

use ddc_core::DdcConfig;
use ddc_olap::{DynamicDataCube, DynamicDimension, DynamicRange};
use ddc_workload::rng;
use std::time::Instant;

fn main() {
    // Dimensions: symbol (learned), minute (bucketed seconds), signed
    // price-move in ticks (can be negative — the cube grows both ways).
    let mut cube: DynamicDataCube<i64> = DynamicDataCube::new(
        vec![
            DynamicDimension::categorical("symbol"),
            DynamicDimension::bucketed("minute", 60),
            DynamicDimension::int("tick_move"),
        ],
        DdcConfig::sparse(),
    );

    let symbols = ["ACME", "GLOBEX", "INITECH", "UMBRELLA", "WONKA", "STARK"];
    let mut r = rng(404);
    let trades = 200_000usize;
    let start = Instant::now();
    for i in 0..trades {
        let symbol = symbols[r.gen_range(0..symbols.len())];
        let t = i as i64 / 8; // ≈8 trades per second of tape
        let ticks: i64 = r.gen_range(-12..=12);
        let volume = r.gen_range(1..=500i64);
        cube.add(&[symbol.into(), t.into(), ticks.into()], volume)
            .unwrap();
    }
    let ingest = start.elapsed();
    println!(
        "ingested {trades} trades in {ingest:?} ({:.0} trades/s)\n",
        trades as f64 / ingest.as_secs_f64()
    );

    let t0 = Instant::now();
    let total = cube.total();
    for symbol in &symbols[..3] {
        let vol = cube
            .range_sum(&[
                DynamicRange::Eq((*symbol).into()),
                DynamicRange::All,
                DynamicRange::All,
            ])
            .unwrap();
        let down_vol = cube
            .range_sum(&[
                DynamicRange::Eq((*symbol).into()),
                DynamicRange::All,
                DynamicRange::Between((-12).into(), (-1).into()),
            ])
            .unwrap();
        println!(
            "{symbol:<9} volume {vol:>10}  on down-ticks {down_vol:>10}  ({:.1}%)",
            100.0 * down_vol as f64 / vol as f64
        );
    }
    // Minute-window market scan: last 5 minutes of tape.
    let last_min = (trades as i64 / 8) / 60;
    let recent = cube
        .range_sum(&[
            DynamicRange::All,
            DynamicRange::Between(((last_min - 5) * 60).into(), (last_min * 60).into()),
            DynamicRange::All,
        ])
        .unwrap();
    println!("\nmarket volume, last 5 minutes    : {recent}");
    println!("market volume, whole session     : {total}");
    println!("analytics time                   : {:?}", t0.elapsed());
    println!(
        "\ncube: {} populated cells, {} KiB — every query above ran against\n\
         live data with no batch-load window (the paper's §1 thesis).",
        cube.storage().populated_cells(),
        cube.storage().heap_bytes() / 1024
    );
}
