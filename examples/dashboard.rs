//! Dashboard: GROUP BY and rolling-window analytics over a live cube —
//! the aggregate operators the paper lists in §2 (SUM, COUNT, AVERAGE,
//! ROLLING SUM, ROLLING AVERAGE), refreshed after every update instead of
//! after a nightly batch load.
//!
//! ```text
//! cargo run -p ddc-examples --example dashboard
//! ```

use ddc_olap::{CubeBuilder, Dimension, EngineKind, RangeSpec, SumCountCube};
use ddc_workload::rng;

fn print_report(cube: &SumCountCube, title: &str) {
    println!("── {title} ──");
    // Revenue by region (GROUP BY dimension 0).
    let rows = cube.group_by(0, &[RangeSpec::All, RangeSpec::All]).unwrap();
    for row in &rows {
        let avg = if row.value.b == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", row.value.a as f64 / row.value.b as f64)
        };
        println!(
            "  {:<8} revenue {:>8}  orders {:>5}  avg {avg:>8}",
            row.label, row.value.a, row.value.b
        );
    }
    // 7-day rolling revenue for the last week of the quarter.
    let rolling = cube
        .rolling_sum(
            1,
            7,
            &[RangeSpec::All, RangeSpec::Between(84.into(), 90.into())],
        )
        .unwrap();
    for row in &rolling {
        println!(
            "  7-day window ending day {:<3}     : {:>8}",
            row.label, row.value.a
        );
    }
    println!();
}

fn main() {
    let mut cube: SumCountCube = CubeBuilder::new()
        .dimension(Dimension::categorical("region", &["amer", "emea", "apac"]))
        .dimension(Dimension::int_range("day", 1, 90)) // one quarter
        .engine(EngineKind::DynamicDdc)
        .build();

    let regions = ["amer", "emea", "apac"];
    let mut r = rng(2026);
    for _ in 0..5_000 {
        let region = regions[r.gen_range(0usize..3)];
        let day = r.gen_range(1..=90i64);
        let amount = r.gen_range(10..400i64);
        cube.add_observation(&[region.into(), day.into()], amount)
            .unwrap();
    }
    print_report(&cube, "quarter to date");

    // A correction lands: a large EMEA order on day 88 was double-keyed.
    cube.retract_observation(&[("emea").into(), 88.into()], 399)
        .unwrap();
    cube.add_observation(&[("emea").into(), 88.into()], 399)
        .unwrap(); // and re-added
                   // …and a new bulk order arrives while the dashboard is open.
    cube.add_observation(&[("apac").into(), 90.into()], 25_000)
        .unwrap();
    print_report(&cube, "after live corrections");

    println!(
        "every panel above is recomputed from range sums in O(log² n) per\n\
         bucket — no batch rebuild, which is the paper's §1 thesis."
    );
}
