//! Star catalog: the paper's §5 astronomy scenario. Stars are discovered
//! in *any* direction relative to existing systems; the cube grows to suit
//! the data instead of preallocating "all possible locations of star
//! systems in the Universe".
//!
//! ```text
//! cargo run -p ddc-examples --example star_catalog
//! ```

use ddc_core::{DdcConfig, GrowableCube};
use ddc_workload::{clustered_points, random_clusters, rng};

fn main() {
    // 3-D sky cube counting stars per sector, sparse base stores so empty
    // space costs nothing.
    let mut sky = GrowableCube::<i64>::new(3, DdcConfig::sparse());
    let mut r = rng(42);

    // Discovery proceeds in surveys, each probing farther out — in every
    // direction, including negative coordinates.
    for survey in 0..5u32 {
        let reach = 50i64 << (2 * survey);
        let clusters = random_clusters(3, 3, reach, (reach as f64 / 30.0).max(1.5), &mut r);
        let stars = clustered_points(&clusters, 400, 1, &mut r);
        for (pos, _) in &stars {
            sky.add(pos, 1); // one star counted at its sector
        }
        println!(
            "survey {survey}: reach ±{reach:<8} covered extent {:>9}  stars {:>5}  heap {:>6} KiB",
            sky.extent()[0],
            sky.total(),
            sky.heap_bytes() / 1024
        );
    }

    // Aggregate astronomy queries over arbitrary sky boxes.
    let hemisphere = sky.range_sum(
        &[0, i64::MIN / 2, i64::MIN / 2],
        &[i64::MAX / 2, i64::MAX / 2, i64::MAX / 2],
    );
    println!("\nstars with x ≥ 0                : {hemisphere}");
    let core = sky.range_sum(&[-100, -100, -100], &[100, 100, 100]);
    println!("stars within ±100 of the origin : {core}");
    println!(
        "densest storage fact: {} populated sectors in a {:.2e}-cell space",
        sky.populated_cells(),
        sky.extent().iter().map(|&e| e as f64).product::<f64>()
    );

    sky.check_invariants();
    println!("\nstructure invariants verified — total {}", sky.total());
}
