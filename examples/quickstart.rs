//! Quickstart: build a sales data cube, ingest records, run range-sum
//! queries, and apply live updates — the paper's §1 scenario.
//!
//! ```text
//! cargo run -p ddc-examples --example quickstart
//! ```

use ddc_olap::{CubeBuilder, Dimension, EngineKind, RangeSpec, SumCountCube};

fn main() {
    // A cube with SALES as the measure attribute and CUSTOMER_AGE and
    // DAY-of-year as dimensions, backed by the Dynamic Data Cube.
    let mut cube: SumCountCube = CubeBuilder::new()
        .dimension(Dimension::int_range("customer_age", 18, 99))
        .dimension(Dimension::int_range("day", 1, 365))
        .engine(EngineKind::DynamicDdc)
        .build();

    // Ingest some sales: (age, day, amount).
    let sales: [(i64, i64, i64); 7] = [
        (37, 220, 120),
        (37, 220, 80),
        (45, 342, 310),
        (27, 365, 95),
        (30, 355, 150),
        (26, 350, 999), // outside the demo query's age range
        (70, 100, 500),
    ];
    for (age, day, amount) in sales {
        cube.add_observation(&[age.into(), day.into()], amount)
            .unwrap();
    }

    // "What were the total sales to 37-year-old customers on day 220?"
    let cell = cube
        .sum(&[RangeSpec::Eq(37.into()), RangeSpec::Eq(220.into())])
        .unwrap();
    println!("sales to 37-year-olds on day 220 : {cell}");
    assert_eq!(cell, 200);

    // "Find the average daily sales to customers between the ages of 27
    // and 45 during the time period December 7 to December 31"
    // (days 341..=365 of a non-leap year).
    let window = [
        RangeSpec::Between(27.into(), 45.into()),
        RangeSpec::Between(341.into(), 365.into()),
    ];
    println!(
        "sum   27–45yo, Dec 7–31          : {}",
        cube.sum(&window).unwrap()
    );
    println!(
        "count 27–45yo, Dec 7–31          : {}",
        cube.count(&window).unwrap()
    );
    println!(
        "avg   27–45yo, Dec 7–31          : {:?}",
        cube.average(&window).unwrap()
    );

    // Updates are cheap (O(log² n), §4): retract a mis-keyed sale and
    // re-query instantly.
    cube.retract_observation(&[26.into(), 350.into()], 999)
        .unwrap();
    println!(
        "total after retraction           : {}",
        cube.sum(&[RangeSpec::All, RangeSpec::All]).unwrap()
    );

    println!(
        "\nengine: {} | heap: {} KiB",
        cube.engine_name(),
        cube.heap_bytes() / 1024
    );
}
