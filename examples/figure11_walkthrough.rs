//! Figure 11, narrated by the implementation: build the paper's 8×8
//! example cube, trace the range-sum query, and print each overlay box's
//! contribution — the same walkthrough as the paper's §3.2, produced by
//! [`ddc_core::DdcTree::trace_prefix`].
//!
//! ```text
//! cargo run -p ddc-examples --example figure11_walkthrough
//! ```

use ddc_array::{NdArray, Shape};
use ddc_core::{Contribution, DdcEngine};

fn main() {
    // An 8×8 array whose regional sums match the figure's components:
    // Q = 51, R = 48, S = 24, U = 16, L = 7, N = 5 (+ decoys outside the
    // target region).
    let mut a = NdArray::<i64>::zeroed(Shape::new(&[8, 8]));
    a.set(&[0, 0], 51);
    a.set(&[0, 4], 48);
    a.set(&[4, 0], 24);
    a.set(&[4, 4], 16);
    a.set(&[6, 6], 7);
    a.set(&[7, 6], 5);
    a.set(&[3, 7], 8);
    a.set(&[6, 7], 2);
    a.set(&[7, 7], 9);

    let cube = DdcEngine::from_array(&a);
    let target = [7usize, 6usize];
    println!("query: SUM(A[0,0] : A[{},{}])\n", target[0], target[1]);

    let steps = cube.tree().trace_prefix(&target);
    let mut total = 0i64;
    for s in &steps {
        let what = match s.kind {
            Contribution::Subtotal => "subtotal (region fully covered)".to_string(),
            Contribution::RowSum { axis } => {
                format!("row-sum value, group axis {axis} (region cuts the box)")
            }
            Contribution::Descend => "← target cell inside: descend".to_string(),
            Contribution::LeafCells { cells } => {
                format!("sum of {cells} leaf cell(s)")
            }
        };
        total += s.value;
        println!(
            "level {}  box@{:?} side {}  {:<52} +{:<4} (running {total})",
            s.level, s.box_anchor, s.box_side, what, s.value
        );
    }
    println!("\ntotal: {total}");
    assert_eq!(total, 151, "the paper's 51+48+24+16+7+5");
    println!("matches the paper's 51 + 48 + 24 + 16 + 7 + 5 = 151 ✓");
}
