//! A guided tour of the paper, section by section, with live numbers.
//!
//! ```text
//! cargo run --release -p ddc-examples --example paper_tour
//! ```
//!
//! §2 — the problem and the prefix-sum family; §3 — the Basic tree and
//! its update pathology; §4 — the Dynamic Data Cube and Theorem 2;
//! §4.4 — the space optimization; §5 — growth and sparsity. Every claim
//! printed is computed on the spot.

use ddc_array::{RangeSumEngine, Region, Shape};
use ddc_baselines::{NaiveEngine, PrefixSumEngine, RelativePrefixEngine};
use ddc_core::{DdcConfig, DdcEngine, GrowableCube};
use ddc_workload::{rng, uniform_array};

fn section(title: &str) {
    println!("\n──── {title} ────");
}

fn main() {
    let n = 128usize;
    let shape = Shape::cube(2, n);
    let base = uniform_array(&shape, -50, 50, &mut rng(1));

    section("§2  Range sums over array A");
    let naive = NaiveEngine::from_array(&base);
    let q = Region::new(&[27, 40], &[45, 90]);
    naive.reset_ops();
    let answer = naive.range_sum(&q);
    println!(
        "naive scan answers {answer} by reading {} cells",
        naive.ops().reads
    );

    let ps = PrefixSumEngine::from_array(&base);
    ps.reset_ops();
    assert_eq!(ps.range_sum(&q), answer);
    println!(
        "prefix sum [HAMS97] answers the same with {} reads (Figure 4)",
        ps.ops().reads
    );

    let mut ps = ps;
    ps.reset_ops();
    ps.apply_delta(&[0, 0], 1);
    println!(
        "…but updating A[0,0] rewrote {} cells of P (Figure 5)",
        ps.ops().writes
    );

    let mut rps = RelativePrefixEngine::from_array(&base);
    rps.apply_delta(&[0, 0], -1); // keep the cubes identical
    rps.reset_ops();
    rps.apply_delta(&[0, 0], 1);
    println!(
        "relative prefix sum [GAES99] bounds that to {} cells",
        rps.ops().writes
    );

    section("§3  The Basic Dynamic Data Cube");
    let mut basic = DdcEngine::from_array_with(&base, DdcConfig::basic());
    basic.apply_delta(&[0, 0], 1);
    basic.reset_ops();
    basic.apply_delta(&[0, 0], 1);
    println!(
        "overlay boxes + direct row sums: worst update now {} values (≈ 2n = {})",
        basic.ops().touched(),
        2 * n
    );

    section("§4  The Dynamic Data Cube (Theorem 2)");
    let mut ddc = DdcEngine::from_array_with(&base, DdcConfig::dynamic());
    ddc.apply_delta(&[0, 0], 2); // match the two deltas applied above
    ddc.reset_ops();
    ddc.apply_delta(&[0, 0], 1);
    let upd = ddc.ops().touched();
    ddc.reset_ops();
    let _ = ddc.prefix_sum(&[n - 1, n - 1]);
    let qry = ddc.ops().reads;
    let logd = (n as f64).log2().powi(2);
    println!("row sums in B^c trees, recursively: update {upd} values, query {qry} reads");
    println!("log²(n) = {logd:.0} — both are O(log² n), balanced (Theorem 2)");

    section("§4.4  The space optimization");
    for h in [0usize, 2, 4] {
        let e = DdcEngine::from_array_with(&base, DdcConfig::dynamic().with_elision(h));
        println!(
            "h = {h}: {:>8} bytes ({:.2}× |A|)",
            e.heap_bytes(),
            e.heap_bytes() as f64 / base.heap_bytes() as f64
        );
    }

    section("§5  Growth in any direction, sparse data");
    let mut sky = GrowableCube::<i64>::new(2, DdcConfig::sparse());
    sky.add(&[0, 0], 1);
    sky.add(&[-40_000, 25_000], 1);
    sky.add(&[90_000, -3], 1);
    println!(
        "3 stars spanning a {:.1e}-cell box cost {} KiB; growth was re-rooting,",
        sky.extent().iter().map(|&e| e as f64).product::<f64>(),
        sky.heap_bytes() / 1024
    );
    println!("not materialization — the §5 contrast with Figure 16.");
    assert_eq!(sky.total(), 3);
}
