//! EOSDIS-style environmental grid: the paper's §5 clustered-data
//! scenario. Methane production is concentrated around agricultural and
//! industrial centers; oceans are empty; new point sources appear when
//! "new cattle ranches or factories come on-line in previously
//! undeveloped areas". Scientists ask for aggregates over arbitrary
//! regions of the globe.
//!
//! ```text
//! cargo run -p ddc-examples --example eosdis_grid
//! ```

use ddc_core::{DdcConfig, GrowableCube};
use ddc_workload::{clustered_points, random_clusters, rng};

fn main() {
    // 2-D grid: 0.01-degree cells, longitude ∈ [-18000, 18000),
    // latitude ∈ [-9000, 9000). Measure: methane production units.
    let mut grid = GrowableCube::<i64>::new(2, DdcConfig::sparse());
    let mut r = rng(7);

    // Industrial/agricultural centers: tight clusters on the populated
    // fraction of the grid.
    let centers = random_clusters(2, 12, 8000, 40.0, &mut r);
    let readings = clustered_points(&centers, 20_000, 50, &mut r);
    for (pos, units) in &readings {
        grid.add(pos, *units);
    }

    println!(
        "ingested {} readings around {} centers",
        readings.len(),
        centers.len()
    );
    println!("populated cells : {}", grid.populated_cells());
    println!(
        "covered space   : {:.2e} cells",
        grid.extent().iter().map(|&e| e as f64).product::<f64>()
    );
    println!("heap            : {} KiB", grid.heap_bytes() / 1024);

    // Regional aggregates: any rectangle of the globe, O(log² n) each.
    let global = grid.range_sum(&[-18000, -9000], &[17999, 8999]);
    println!("\nglobal production                : {global}");
    for (name, lo, hi) in [
        ("north-east quadrant", [0i64, 0i64], [17999i64, 8999i64]),
        ("equatorial band ±500", [-18000, -500], [17999, 500]),
        ("one degree at origin", [-50, -50], [49, 49]),
    ] {
        println!("{name:<32} : {}", grid.range_sum(&lo, &hi));
    }

    // A new factory comes on-line in a previously undeveloped area —
    // a single O(log² n) update, no restructuring:
    let before = grid.heap_bytes();
    grid.add(&[-17990, 8990], 35);
    println!(
        "\nnew point source added; heap grew by only {} KiB",
        (grid.heap_bytes() - before) / 1024
    );
    assert_eq!(grid.range_sum(&[-18000, 8900], &[-17900, 8999]), 35);
    grid.check_invariants();
    println!("invariants verified — total {}", grid.total());
}
