//! Lazily materialized 1-D segment tree — the sparse cumulative store.
//!
//! The B^c tree of §4.1 allocates one leaf per row-sum position, so a
//! secondary structure over a mostly-empty overlay face still pays for the
//! whole face. Section 5 of the paper promises graceful handling of
//! "large regions of empty space"; [`SparseSegTree`] delivers that for the
//! one-dimensional base case by allocating nodes only along update paths —
//! untouched ranges are implicit zeros and occupy no memory. It is the
//! one-dimensional specialization of the Dynamic Data Cube itself (a
//! bisection tree carrying subtotals), which is why it slots in as an
//! alternative base store.

use crate::store::CumulativeStore;
use ddc_array::{AbelianGroup, OpCounter};

#[derive(Clone, Debug)]
struct SegNode<G> {
    /// Sum of the node's whole range.
    sum: G,
    left: Option<Box<SegNode<G>>>,
    right: Option<Box<SegNode<G>>>,
}

impl<G: AbelianGroup> SegNode<G> {
    fn new() -> Self {
        Self {
            sum: G::ZERO,
            left: None,
            right: None,
        }
    }

    fn heap_bytes(&self) -> usize {
        let mut bytes = 0;
        if let Some(l) = &self.left {
            bytes += std::mem::size_of::<SegNode<G>>() + l.heap_bytes();
        }
        if let Some(r) = &self.right {
            bytes += std::mem::size_of::<SegNode<G>>() + r.heap_bytes();
        }
        bytes
    }

    fn node_count(&self) -> usize {
        1 + self.left.as_ref().map_or(0, |n| n.node_count())
            + self.right.as_ref().map_or(0, |n| n.node_count())
    }
}

/// A fixed-capacity sparse segment tree over `len` positions.
///
/// # Examples
///
/// A million implicit zeros cost nothing until touched:
///
/// ```
/// use ddc_btree::{CumulativeStore, SparseSegTree};
///
/// let mut t = SparseSegTree::<i64>::zeroed(1_000_000);
/// assert_eq!(t.node_count(), 0);
/// t.add(123_456, 7);
/// assert_eq!(t.prefix(999_999), 7);
/// assert!(t.node_count() <= 21); // one root-to-leaf path
/// ```
#[derive(Debug)]
pub struct SparseSegTree<G: AbelianGroup> {
    root: Option<Box<SegNode<G>>>,
    /// Power-of-two internal span covering `len`.
    span: usize,
    len: usize,
    counter: OpCounter,
}

impl<G: AbelianGroup> Clone for SparseSegTree<G> {
    fn clone(&self) -> Self {
        Self {
            root: self.root.clone(),
            span: self.span,
            len: self.len,
            counter: OpCounter::new(),
        }
    }
}

impl<G: AbelianGroup> SparseSegTree<G> {
    /// A store of `len` implicit zeros occupying `O(1)` memory.
    pub fn zeroed(len: usize) -> Self {
        let span = len.next_power_of_two().max(1);
        Self {
            root: None,
            span,
            len,
            counter: OpCounter::new(),
        }
    }

    /// Builds from raw values; zero values allocate nothing.
    pub fn from_values(values: &[G]) -> Self {
        let mut t = Self::zeroed(values.len());
        for (i, &v) in values.iter().enumerate() {
            if !v.is_zero() {
                t.add(i, v);
            }
        }
        t
    }

    /// Number of materialized nodes (storage diagnostics for §5).
    pub fn node_count(&self) -> usize {
        self.root.as_ref().map_or(0, |n| n.node_count())
    }

    fn add_rec(node: &mut SegNode<G>, span: usize, index: usize, delta: G, counter: &OpCounter) {
        node.sum = node.sum.add(delta);
        counter.write(1);
        if span == 1 {
            return;
        }
        let half = span / 2;
        let (slot, rel) = if index < half {
            (&mut node.left, index)
        } else {
            (&mut node.right, index - half)
        };
        let child = slot.get_or_insert_with(|| Box::new(SegNode::new()));
        Self::add_rec(child, half, rel, delta, counter);
    }

    fn prefix_rec(node: &SegNode<G>, span: usize, index: usize, counter: &OpCounter) -> G {
        if span == 1 || index == span - 1 {
            counter.read(1);
            return node.sum;
        }
        let half = span / 2;
        if index < half {
            node.left
                .as_ref()
                .map_or(G::ZERO, |l| Self::prefix_rec(l, half, index, counter))
        } else {
            let left = node.left.as_ref().map_or(G::ZERO, |l| {
                counter.read(1);
                l.sum
            });
            let right = node.right.as_ref().map_or(G::ZERO, |r| {
                Self::prefix_rec(r, half, index - half, counter)
            });
            left.add(right)
        }
    }
}

impl<G: AbelianGroup> CumulativeStore<G> for SparseSegTree<G> {
    fn name(&self) -> &'static str {
        "sparse-seg"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn prefix(&self, index: usize) -> G {
        assert!(
            index < self.len,
            "prefix index {index} beyond length {}",
            self.len
        );
        self.root.as_ref().map_or(G::ZERO, |r| {
            Self::prefix_rec(r, self.span, index, &self.counter)
        })
    }

    fn value(&self, index: usize) -> G {
        if index == 0 {
            self.prefix(0)
        } else {
            self.prefix(index).sub(self.prefix(index - 1))
        }
    }

    fn add(&mut self, index: usize, delta: G) {
        assert!(index < self.len, "index {index} beyond length {}", self.len);
        if delta.is_zero() {
            return;
        }
        let root = self.root.get_or_insert_with(|| Box::new(SegNode::new()));
        Self::add_rec(root, self.span, index, delta, &self.counter);
    }

    fn counter(&self) -> &OpCounter {
        &self.counter
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .root
                .as_ref()
                .map_or(0, |r| std::mem::size_of::<SegNode<G>>() + r.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_is_all_zeros() {
        let t = SparseSegTree::<i64>::zeroed(100);
        assert_eq!(t.prefix(99), 0);
        assert_eq!(t.value(50), 0);
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn matches_scan() {
        let values: Vec<i64> = (0..133).map(|i| (i * 29 % 41) - 20).collect();
        let t = SparseSegTree::from_values(&values);
        let mut acc = 0;
        for (i, &v) in values.iter().enumerate() {
            acc += v;
            assert_eq!(t.prefix(i), acc, "prefix({i})");
            assert_eq!(t.value(i), v, "value({i})");
        }
    }

    #[test]
    fn sparse_population_allocates_proportionally() {
        let mut t = SparseSegTree::<i64>::zeroed(1 << 20);
        t.add(12_345, 7);
        t.add(1_000_000, -2);
        // Two paths of ≤ 21 nodes each.
        assert!(t.node_count() <= 42, "allocated {} nodes", t.node_count());
        assert_eq!(t.prefix(12_344), 0);
        assert_eq!(t.prefix(12_345), 7);
        assert_eq!(t.prefix(999_999), 7);
        assert_eq!(t.prefix(1_048_575), 5);
    }

    #[test]
    fn updates_match_scan() {
        let mut reference = vec![0i64; 77];
        let mut t = SparseSegTree::<i64>::zeroed(77);
        for step in 0..400 {
            let idx = (step * 31) % 77;
            let delta = (step as i64 % 13) - 6;
            reference[idx] += delta;
            t.add(idx, delta);
        }
        for i in 0..77 {
            let expect: i64 = reference[..=i].iter().sum();
            assert_eq!(t.prefix(i), expect);
        }
    }

    #[test]
    fn set_and_total() {
        let mut t = SparseSegTree::<i64>::zeroed(8);
        assert_eq!(t.set(3, 10), 0);
        assert_eq!(t.set(3, 4), 10);
        assert_eq!(t.total(), 4);
        assert_eq!(t.range(2, 4), 4);
    }

    #[test]
    fn logarithmic_ops() {
        let mut t = SparseSegTree::<i64>::zeroed(1 << 16);
        t.add(40_000, 5);
        t.reset_ops();
        let _ = t.prefix(50_000);
        assert!(t.ops().reads <= 17);
        t.reset_ops();
        t.add(40_001, 2);
        assert!(t.ops().writes <= 17);
    }
}
