//! Fenwick (binary indexed) tree — the ablation comparator for the B^c tree.
//!
//! Fenwick trees solve the same one-dimensional problem as the paper's B^c
//! tree — prefix sums with point updates in `O(log k)` — in a flat array
//! with implicit structure. The paper predates widespread use of Fenwick
//! trees in the OLAP literature and proposes the B^c tree instead; the
//! `bc_vs_fenwick` benchmark quantifies the constant-factor difference so
//! EXPERIMENTS.md can discuss the novelty band's observation that
//! Fenwick/segment trees cover static range-sum+update.
//!
//! Unlike the B^c tree, a Fenwick tree cannot insert positions in the
//! middle; growth requires a rebuild. This is precisely the flexibility
//! argument §5 of the paper makes for tree-structured storage.

use crate::store::CumulativeStore;
use ddc_array::{AbelianGroup, OpCounter};

/// A Fenwick tree over group values, 0-based external indices.
///
/// # Examples
///
/// ```
/// use ddc_btree::{CumulativeStore, Fenwick};
///
/// let mut f = Fenwick::from_values(&[3i64, 1, 4, 1, 5]);
/// assert_eq!(f.prefix(2), 8);
/// f.add(1, 10);
/// assert_eq!(f.range(1, 3), 16);
/// f.push(9); // amortized O(log k) append
/// assert_eq!(f.total(), 33);
/// ```
#[derive(Debug)]
pub struct Fenwick<G: AbelianGroup> {
    /// 1-based implicit tree; `tree[0]` is unused padding.
    tree: Vec<G>,
    len: usize,
    counter: OpCounter,
}

impl<G: AbelianGroup> Clone for Fenwick<G> {
    fn clone(&self) -> Self {
        Self {
            tree: self.tree.clone(),
            len: self.len,
            counter: OpCounter::new(),
        }
    }
}

impl<G: AbelianGroup> Fenwick<G> {
    /// A tree of `len` zero values.
    pub fn zeroed(len: usize) -> Self {
        Self {
            tree: vec![G::ZERO; len + 1],
            len,
            counter: OpCounter::new(),
        }
    }

    /// Builds from raw values in `O(k)` using the parent-propagation trick.
    pub fn from_values(values: &[G]) -> Self {
        let len = values.len();
        let mut tree = vec![G::ZERO; len + 1];
        for (i, &v) in values.iter().enumerate() {
            let pos = i + 1;
            tree[pos] = tree[pos].add(v);
            let parent = pos + (pos & pos.wrapping_neg());
            if parent <= len {
                let t = tree[pos];
                tree[parent] = tree[parent].add(t);
            }
        }
        Self {
            tree,
            len,
            counter: OpCounter::new(),
        }
    }

    /// Appends one value at the end in amortized `O(log k)`.
    pub fn push(&mut self, value: G) {
        // New node at 1-based position p covers the range
        // (p - lowbit(p), p]; seed it with the sums of its covered
        // children plus the new value.
        self.len += 1;
        let p = self.len;
        let mut node = value;
        let lsb = p & p.wrapping_neg();
        let mut child = p - 1;
        let stop = p - lsb;
        while child > stop {
            node = node.add(self.tree[child]);
            child -= child & child.wrapping_neg();
        }
        self.tree.push(node);
    }
}

impl<G: AbelianGroup> CumulativeStore<G> for Fenwick<G> {
    fn name(&self) -> &'static str {
        "fenwick"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn prefix(&self, index: usize) -> G {
        assert!(
            index < self.len,
            "prefix index {index} beyond length {}",
            self.len
        );
        let mut acc = G::ZERO;
        let mut i = index + 1;
        while i > 0 {
            acc = acc.add(self.tree[i]);
            self.counter.read(1);
            i -= i & i.wrapping_neg();
        }
        acc
    }

    fn value(&self, index: usize) -> G {
        if index == 0 {
            self.prefix(0)
        } else {
            self.prefix(index).sub(self.prefix(index - 1))
        }
    }

    fn add(&mut self, index: usize, delta: G) {
        assert!(index < self.len, "index {index} beyond length {}", self.len);
        if delta.is_zero() {
            return;
        }
        let mut i = index + 1;
        while i <= self.len {
            self.tree[i] = self.tree[i].add(delta);
            self.counter.write(1);
            i += i & i.wrapping_neg();
        }
    }

    fn counter(&self) -> &OpCounter {
        &self.counter
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tree.capacity() * std::mem::size_of::<G>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matches_scan() {
        let values: Vec<i64> = (0..300).map(|i| (i * 31 % 97) - 48).collect();
        let f = Fenwick::from_values(&values);
        let mut acc = 0;
        for (i, &v) in values.iter().enumerate() {
            acc += v;
            assert_eq!(f.prefix(i), acc, "prefix({i})");
            assert_eq!(f.value(i), v, "value({i})");
        }
    }

    #[test]
    fn updates_match_scan() {
        let mut values = vec![0i64; 50];
        let mut f = Fenwick::<i64>::zeroed(50);
        for step in 0..300 {
            let idx = (step * 7) % 50;
            let delta = (step as i64 % 11) - 5;
            values[idx] += delta;
            f.add(idx, delta);
        }
        for i in 0..50 {
            let expect: i64 = values[..=i].iter().sum();
            assert_eq!(f.prefix(i), expect);
        }
    }

    #[test]
    fn push_extends_consistently() {
        let mut f = Fenwick::<i64>::from_values(&[1, 2, 3]);
        let mut reference = vec![1i64, 2, 3];
        for i in 0..100 {
            let v = (i as i64 * 13) % 29 - 14;
            f.push(v);
            reference.push(v);
        }
        let mut acc = 0;
        for (i, &v) in reference.iter().enumerate() {
            acc += v;
            assert_eq!(f.prefix(i), acc, "prefix({i}) after pushes");
            let _ = v;
        }
    }

    #[test]
    fn push_into_empty() {
        let mut f = Fenwick::<i64>::zeroed(0);
        assert!(f.is_empty());
        f.push(5);
        f.push(-2);
        assert_eq!(f.total(), 3);
        assert_eq!(f.prefix(0), 5);
    }

    #[test]
    fn set_and_range() {
        let mut f = Fenwick::from_values(&[10i64, 20, 30]);
        assert_eq!(f.set(1, 25), 20);
        assert_eq!(f.range(0, 2), 65);
        assert_eq!(f.range(1, 1), 25);
    }

    #[test]
    fn log_cost() {
        let f = Fenwick::<i64>::zeroed(1 << 20);
        f.reset_ops();
        let _ = f.prefix((1 << 20) - 1);
        assert!(f.ops().reads <= 21);
    }
}
