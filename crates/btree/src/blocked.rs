//! Implicit blocked cumulative store — the B^c tree flattened into two
//! arrays (Pibiri–Venturini's truncated-tree layout).
//!
//! The paper's B^c tree (§4.1) groups values into fanout-sized blocks
//! with cumulative counts above them; this store keeps exactly that
//! shape but drops the pointers. Raw values live in dense leaf blocks of
//! [`DEFAULT_BLOCK`] slots; one implicit Fenwick-layout array over the
//! per-block totals replaces the interior nodes. A prefix sum reads
//! `O(log(k / B))` summary slots — the descent loop clears one bit per
//! step (`i &= i - 1`), no compare-and-branch — then sums at most `B`
//! raw slots from one contiguous block (the truncated tail). Updates
//! touch one raw slot plus the summary path.
//!
//! Compared to the pointer-based [`crate::BcTree`] this loses positional
//! insertion (growth requires a rebuild, like [`crate::Fenwick`]) and
//! wins the constant factor: every access is an index walk over two flat
//! arrays.

use crate::store::CumulativeStore;
use ddc_array::{AbelianGroup, OpCounter};

/// Raw slots per dense leaf block (power of two; the truncated tail
/// sums at most this many raw values per query).
pub const DEFAULT_BLOCK: usize = 16;

/// An implicit blocked B^c layout over group values, 0-based external
/// indices.
///
/// # Examples
///
/// ```
/// use ddc_btree::{BlockedBc, CumulativeStore};
///
/// let mut b = BlockedBc::from_values(&[3i64, 1, 4, 1, 5]);
/// assert_eq!(b.prefix(2), 8);
/// b.add(1, 10);
/// assert_eq!(b.range(1, 3), 16);
/// assert_eq!(b.total(), 24);
/// ```
#[derive(Debug)]
pub struct BlockedBc<G: AbelianGroup> {
    /// Raw values, zero-padded to a whole number of blocks.
    raw: Vec<G>,
    /// 1-based implicit Fenwick layout over per-block totals;
    /// `summary[0]` is unused padding.
    summary: Vec<G>,
    len: usize,
    counter: OpCounter,
}

impl<G: AbelianGroup> Clone for BlockedBc<G> {
    fn clone(&self) -> Self {
        Self {
            raw: self.raw.clone(),
            summary: self.summary.clone(),
            len: self.len,
            counter: OpCounter::new(),
        }
    }
}

impl<G: AbelianGroup> BlockedBc<G> {
    /// A store of `len` zero values.
    pub fn zeroed(len: usize) -> Self {
        let blocks = len.div_ceil(DEFAULT_BLOCK);
        Self {
            raw: vec![G::ZERO; blocks * DEFAULT_BLOCK],
            summary: vec![G::ZERO; blocks + 1],
            len,
            counter: OpCounter::new(),
        }
    }

    /// Builds from raw values in `O(k)`: one copy plus the Fenwick
    /// parent-propagation pass over the block totals.
    pub fn from_values(values: &[G]) -> Self {
        let len = values.len();
        let blocks = len.div_ceil(DEFAULT_BLOCK);
        let mut raw = vec![G::ZERO; blocks * DEFAULT_BLOCK];
        raw[..len].copy_from_slice(values);
        let mut summary = vec![G::ZERO; blocks + 1];
        for b in 0..blocks {
            let base = b * DEFAULT_BLOCK;
            let sum = raw[base..base + DEFAULT_BLOCK]
                .iter()
                .fold(G::ZERO, |acc, &v| acc.add(v));
            let pos = b + 1;
            summary[pos] = summary[pos].add(sum);
            let parent = pos + (pos & pos.wrapping_neg());
            if parent <= blocks {
                let t = summary[pos];
                summary[parent] = summary[parent].add(t);
            }
        }
        Self {
            raw,
            summary,
            len,
            counter: OpCounter::new(),
        }
    }
}

impl<G: AbelianGroup> CumulativeStore<G> for BlockedBc<G> {
    fn name(&self) -> &'static str {
        "blocked-bc"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn prefix(&self, index: usize) -> G {
        assert!(
            index < self.len,
            "prefix index {index} beyond length {}",
            self.len
        );
        let block = index / DEFAULT_BLOCK;
        // Whole blocks before the target: implicit Fenwick prefix.
        let mut acc = G::ZERO;
        let mut i = block;
        let mut summary_reads = 0;
        while i > 0 {
            acc = acc.add(self.summary[i]);
            summary_reads += 1;
            i &= i - 1;
        }
        // Truncated tail: contiguous raw slots of the target's block.
        let base = block * DEFAULT_BLOCK;
        for &v in &self.raw[base..=index] {
            acc = acc.add(v);
        }
        self.counter.read(summary_reads + (index - base + 1) as u64);
        acc
    }

    fn value(&self, index: usize) -> G {
        assert!(index < self.len, "index {index} beyond length {}", self.len);
        self.counter.read(1);
        self.raw[index]
    }

    fn add(&mut self, index: usize, delta: G) {
        assert!(index < self.len, "index {index} beyond length {}", self.len);
        if delta.is_zero() {
            return;
        }
        self.raw[index] = self.raw[index].add(delta);
        let mut writes = 1;
        let blocks = self.summary.len() - 1;
        // Queries Fenwick-walk the blocks *before* the target and then
        // scan the target block raw, so no prefix ever reads a summary
        // position ≥ `blocks`; stopping the update path there skips the
        // dead root entry (and all summary work for single-block stores).
        let mut i = index / DEFAULT_BLOCK + 1;
        while i < blocks {
            self.summary[i] = self.summary[i].add(delta);
            writes += 1;
            i += i & i.wrapping_neg();
        }
        self.counter.write(writes);
    }

    fn counter(&self) -> &OpCounter {
        &self.counter
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.raw.capacity() + self.summary.capacity()) * std::mem::size_of::<G>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matches_scan() {
        let values: Vec<i64> = (0..300).map(|i| (i * 31 % 97) - 48).collect();
        let b = BlockedBc::from_values(&values);
        let mut acc = 0;
        for (i, &v) in values.iter().enumerate() {
            acc += v;
            assert_eq!(b.prefix(i), acc, "prefix({i})");
            assert_eq!(b.value(i), v, "value({i})");
        }
    }

    #[test]
    fn updates_match_scan() {
        let mut values = vec![0i64; 50];
        let mut b = BlockedBc::<i64>::zeroed(50);
        for step in 0..300 {
            let idx = (step * 7) % 50;
            let delta = (step as i64 % 11) - 5;
            values[idx] += delta;
            b.add(idx, delta);
        }
        for i in 0..50 {
            let expect: i64 = values[..=i].iter().sum();
            assert_eq!(b.prefix(i), expect);
        }
    }

    #[test]
    fn lengths_straddling_block_boundaries() {
        for len in [
            1,
            DEFAULT_BLOCK - 1,
            DEFAULT_BLOCK,
            DEFAULT_BLOCK + 1,
            3 * DEFAULT_BLOCK + 5,
        ] {
            let values: Vec<i64> = (0..len as i64).map(|i| i * 3 - 7).collect();
            let b = BlockedBc::from_values(&values);
            assert_eq!(b.len(), len);
            let mut acc = 0;
            for (i, &v) in values.iter().enumerate() {
                acc += v;
                assert_eq!(b.prefix(i), acc, "len {len} prefix({i})");
            }
            assert_eq!(b.total(), acc, "len {len} total");
        }
    }

    #[test]
    fn set_and_range() {
        let mut b = BlockedBc::from_values(&[10i64, 20, 30]);
        assert_eq!(b.set(1, 25), 20);
        assert_eq!(b.range(0, 2), 65);
        assert_eq!(b.range(1, 1), 25);
    }

    #[test]
    fn query_cost_is_summary_path_plus_one_block() {
        let b = BlockedBc::<i64>::zeroed(1 << 20);
        b.reset_ops();
        let _ = b.prefix((1 << 20) - 1);
        // ≤ log2(2^20 / B) summary reads + B raw reads.
        let bound = (20 - DEFAULT_BLOCK.trailing_zeros() as u64) + DEFAULT_BLOCK as u64;
        assert!(b.ops().reads <= bound, "read {} values", b.ops().reads);
    }

    #[test]
    fn matches_the_pointer_based_bc_tree() {
        use crate::BcTree;
        let values: Vec<i64> = (0..200).map(|i| (i * 13 % 53) - 26).collect();
        let blocked = BlockedBc::from_values(&values);
        let pointered = BcTree::from_values(4, &values);
        for i in 0..values.len() {
            assert_eq!(blocked.prefix(i), pointered.prefix(i), "prefix({i})");
        }
    }
}
