//! # ddc-btree
//!
//! One-dimensional cumulative stores: the paper's Cumulative B-Tree
//! ([`BcTree`], §4.1) — the base case of the Dynamic Data Cube's recursion
//! — its implicit blocked layout ([`BlockedBc`], the hot-path default),
//! and a Fenwick tree ([`Fenwick`]) ablation. All implement
//! [`CumulativeStore`], the contract the two-dimensional DDC base case is
//! generic over.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bc_tree;
mod blocked;
mod fenwick;
mod segtree;
mod store;

pub use bc_tree::{BcTree, DEFAULT_FANOUT, MIN_FANOUT};
pub use blocked::{BlockedBc, DEFAULT_BLOCK};
pub use fenwick::Fenwick;
pub use segtree::SparseSegTree;
pub use store::CumulativeStore;
