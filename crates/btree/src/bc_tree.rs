//! The Cumulative B-Tree (B^c tree) of paper §4.1.
//!
//! The B^c tree stores one set of overlay row-sum values. Two modifications
//! distinguish it from a standard b-tree (paper §4.1):
//!
//! 1. **Keys are positions.** Each leaf value corresponds to one row-sum
//!    cell, keyed by the cell's index in the one-dimensional sequence of
//!    row sums — so the tree is an order-statistics (positional) b-tree and
//!    stores the sum of each *individual* row, generating cumulative sums
//!    on demand.
//! 2. **Interior nodes carry subtree sums (STS).** Alongside each child
//!    pointer an interior node maintains the sum of that child's subtree.
//!    A prefix query descends one path, adding the STSs of the children
//!    that precede the descent; a point update adjusts exactly one STS per
//!    visited node, bottom-up, with the difference between the old and new
//!    value — both `O(f · log_f k)`.
//!
//! The paper's figure stores `f − 1` STSs per node (left branches only);
//! we store one sum per child, which is the same information plus the
//! node total and keeps insertion code symmetric. Leaves hold up to `f`
//! values rather than exactly one, as any practical b-tree does; the
//! worked example of Figure 14 is reproduced in the tests in terms of the
//! observable sums.

use crate::store::CumulativeStore;
use ddc_array::{AbelianGroup, OpCounter};

/// Minimum supported fanout. Fanout 3 matches the paper's Figure 14.
pub const MIN_FANOUT: usize = 3;

/// Default fanout used by the Dynamic Data Cube when none is specified.
pub const DEFAULT_FANOUT: usize = 16;

#[derive(Clone, Debug)]
enum Node<G> {
    /// Leaf holding the individual row-sum values.
    Leaf(Vec<G>),
    /// Interior node: children plus per-child cardinalities and subtree
    /// sums. `counts[i]` and `sums[i]` describe `children[i]`.
    Internal {
        children: Vec<Node<G>>,
        counts: Vec<usize>,
        sums: Vec<G>,
    },
}

impl<G: AbelianGroup> Node<G> {
    fn count(&self) -> usize {
        match self {
            Node::Leaf(values) => values.len(),
            Node::Internal { counts, .. } => counts.iter().sum(),
        }
    }

    /// Direct entries held by this node (values or children).
    fn entry_count(&self) -> usize {
        match self {
            Node::Leaf(values) => values.len(),
            Node::Internal { children, .. } => children.len(),
        }
    }

    fn sum(&self) -> G {
        match self {
            Node::Leaf(values) => values.iter().fold(G::ZERO, |acc, &v| acc.add(v)),
            Node::Internal { sums, .. } => sums.iter().fold(G::ZERO, |acc, &v| acc.add(v)),
        }
    }

    fn height(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal { children, .. } => 1 + children[0].height(),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Node::Leaf(values) => values.capacity() * std::mem::size_of::<G>(),
            Node::Internal {
                children,
                counts,
                sums,
            } => {
                children.capacity() * std::mem::size_of::<Node<G>>()
                    + counts.capacity() * std::mem::size_of::<usize>()
                    + sums.capacity() * std::mem::size_of::<G>()
                    + children.iter().map(Node::heap_bytes).sum::<usize>()
            }
        }
    }
}

/// The Cumulative B-Tree: a positional b-tree with subtree sums.
///
/// See the module documentation and paper §4.1. Supports `O(f log_f k)`
/// prefix queries and point updates, plus position insertion and removal
/// (splitting/merging nodes) used when a data cube grows (§5).
///
/// # Examples
///
/// The paper's Figure 14 tree — individual row sums 14, 9, 10, 12, 8, 13
/// at fanout 3:
///
/// ```
/// use ddc_btree::{BcTree, CumulativeStore};
///
/// let mut t = BcTree::from_values(3, &[14i64, 9, 10, 12, 8, 13]);
/// assert_eq!(t.prefix(4), 53);      // row sum cell 5: 33 + 12 + 8
/// assert_eq!(t.set(2, 15), 10);     // cell 3 changes from 10 to 15
/// assert_eq!(t.prefix(4), 58);
/// t.insert(6, 4);                   // the cube grew a row
/// assert_eq!(t.total(), 75);
/// ```
#[derive(Debug)]
pub struct BcTree<G: AbelianGroup> {
    root: Node<G>,
    fanout: usize,
    len: usize,
    counter: OpCounter,
}

impl<G: AbelianGroup> Clone for BcTree<G> {
    fn clone(&self) -> Self {
        Self {
            root: self.root.clone(),
            fanout: self.fanout,
            len: self.len,
            counter: OpCounter::new(),
        }
    }
}

impl<G: AbelianGroup> BcTree<G> {
    /// An empty tree with the given fanout (maximum children per interior
    /// node and values per leaf).
    ///
    /// # Panics
    ///
    /// Panics if `fanout < MIN_FANOUT`.
    pub fn new(fanout: usize) -> Self {
        assert!(fanout >= MIN_FANOUT, "fanout must be at least {MIN_FANOUT}");
        Self {
            root: Node::Leaf(Vec::new()),
            fanout,
            len: 0,
            counter: OpCounter::new(),
        }
    }

    /// Bulk-builds a balanced tree over `values` (row sums in positional
    /// order), in `O(k)`.
    pub fn from_values(fanout: usize, values: &[G]) -> Self {
        assert!(fanout >= MIN_FANOUT, "fanout must be at least {MIN_FANOUT}");
        let len = values.len();
        if len == 0 {
            return Self::new(fanout);
        }
        // Leaf level: chunks of `fanout` values.
        let mut level: Vec<Node<G>> = values
            .chunks(fanout)
            .map(|c| Node::Leaf(c.to_vec()))
            .collect();
        // Merge a trailing undersized leaf into its neighbour's split to
        // keep ≥ ceil(fanout/2) occupancy (cosmetic; correctness does not
        // depend on it, but it keeps heights tight).
        while level.len() > 1 {
            level = level
                .chunks(fanout)
                .map(|group| {
                    let children: Vec<Node<G>> = group.to_vec();
                    let counts: Vec<usize> = children.iter().map(Node::count).collect();
                    let sums: Vec<G> = children.iter().map(Node::sum).collect();
                    Node::Internal {
                        children,
                        counts,
                        sums,
                    }
                })
                .collect();
        }
        let root = level.pop().expect("non-empty level");
        Self {
            root,
            fanout,
            len,
            counter: OpCounter::new(),
        }
    }

    /// A tree of `len` zero values.
    pub fn zeroed(fanout: usize, len: usize) -> Self {
        Self::from_values(fanout, &vec![G::ZERO; len])
    }

    /// The configured fanout `f`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree height in nodes (a single leaf has height 1).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Subtree sums stored at the root, exposed for tests mirroring the
    /// paper's Figure 14 walk-through.
    pub fn root_subtree_sums(&self) -> Vec<G> {
        match &self.root {
            Node::Leaf(values) => values.clone(),
            Node::Internal { sums, .. } => sums.clone(),
        }
    }

    /// Appends a value at the end (position `len`).
    pub fn push(&mut self, value: G) {
        let pos = self.len;
        self.insert(pos, value);
    }

    /// Inserts `value` at `pos`, shifting subsequent positions up by one.
    ///
    /// # Panics
    ///
    /// Panics if `pos > len`.
    pub fn insert(&mut self, pos: usize, value: G) {
        assert!(
            pos <= self.len,
            "insert position {pos} beyond length {}",
            self.len
        );
        if let Some(right) =
            Self::insert_rec(&mut self.root, pos, value, self.fanout, &self.counter)
        {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            let counts = vec![old_root.count(), right.count()];
            let sums = vec![old_root.sum(), right.sum()];
            self.counter.write(2);
            self.root = Node::Internal {
                children: vec![old_root, right],
                counts,
                sums,
            };
        }
        self.len += 1;
    }

    /// Recursive insertion; returns a new right sibling if `node` split.
    fn insert_rec(
        node: &mut Node<G>,
        pos: usize,
        value: G,
        fanout: usize,
        counter: &OpCounter,
    ) -> Option<Node<G>> {
        match node {
            Node::Leaf(values) => {
                values.insert(pos, value);
                counter.write(1);
                if values.len() <= fanout {
                    return None;
                }
                let right = values.split_off(values.len() / 2);
                Some(Node::Leaf(right))
            }
            Node::Internal {
                children,
                counts,
                sums,
            } => {
                // Locate the child containing `pos` (appends go to the
                // last child).
                let mut child_idx = 0;
                let mut rel = pos;
                while child_idx + 1 < children.len() && rel > counts[child_idx] {
                    rel -= counts[child_idx];
                    child_idx += 1;
                }
                // `rel == counts[child_idx]` inserts at that child's end.
                if rel > counts[child_idx] {
                    rel -= counts[child_idx];
                    child_idx += 1;
                    debug_assert!(child_idx < children.len());
                }
                let split = Self::insert_rec(&mut children[child_idx], rel, value, fanout, counter);
                counts[child_idx] = children[child_idx].count();
                sums[child_idx] = children[child_idx].sum();
                counter.write(1);
                if let Some(right) = split {
                    counts.insert(child_idx + 1, right.count());
                    sums.insert(child_idx + 1, right.sum());
                    children.insert(child_idx + 1, right);
                    counter.write(1);
                    if children.len() > fanout {
                        let at = children.len() / 2;
                        let rc = children.split_off(at);
                        let rcounts = counts.split_off(at);
                        let rsums = sums.split_off(at);
                        return Some(Node::Internal {
                            children: rc,
                            counts: rcounts,
                            sums: rsums,
                        });
                    }
                }
                None
            }
        }
    }

    /// Removes and returns the value at `pos`, shifting subsequent
    /// positions down by one. Underfull nodes rebalance by borrowing from
    /// or merging with a sibling, and the root collapses when it has a
    /// single child — the standard b-tree deletion adapted to positional
    /// keys and subtree sums.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    pub fn remove(&mut self, pos: usize) -> G {
        assert!(
            pos < self.len,
            "remove position {pos} beyond length {}",
            self.len
        );
        let removed = Self::remove_rec(&mut self.root, pos, self.fanout, &self.counter);
        self.len -= 1;
        // Collapse chains of single-child roots left by merges.
        loop {
            let promote = match &mut self.root {
                Node::Internal { children, .. } if children.len() == 1 => {
                    Some(children.pop().expect("one child"))
                }
                _ => None,
            };
            match promote {
                Some(child) => self.root = child,
                None => break,
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node<G>, pos: usize, fanout: usize, counter: &OpCounter) -> G {
        match node {
            Node::Leaf(values) => {
                counter.write(1);
                values.remove(pos)
            }
            Node::Internal {
                children,
                counts,
                sums,
            } => {
                let mut child_idx = 0;
                let mut rel = pos;
                while rel >= counts[child_idx] {
                    rel -= counts[child_idx];
                    child_idx += 1;
                }
                let removed = Self::remove_rec(&mut children[child_idx], rel, fanout, counter);
                counts[child_idx] = children[child_idx].count();
                sums[child_idx] = children[child_idx].sum();
                counter.write(1);
                // Rebalance an underfull child (minimum occupancy ⌈f/2⌉,
                // matching the split point used on insertion).
                let min = fanout.div_ceil(2);
                if children[child_idx].entry_count() < min {
                    Self::rebalance(children, counts, sums, child_idx, min, counter);
                }
                removed
            }
        }
    }

    /// Restores the occupancy of `children[idx]` by borrowing one entry
    /// from an adjacent sibling when it can spare one, merging otherwise.
    fn rebalance(
        children: &mut Vec<Node<G>>,
        counts: &mut Vec<usize>,
        sums: &mut Vec<G>,
        idx: usize,
        min: usize,
        counter: &OpCounter,
    ) {
        if children.len() == 1 {
            return; // root child chain; handled by root collapse
        }
        let (left, right) = if idx > 0 {
            (idx - 1, idx)
        } else {
            (idx, idx + 1)
        };
        let can_borrow_from_left = idx > 0 && children[left].entry_count() > min;
        let can_borrow_from_right = idx == 0 && children[right].entry_count() > min;

        if can_borrow_from_left {
            // Move the left sibling's last entry to the child's front.
            let (a, b) = children.split_at_mut(idx);
            Self::shift_last_to_front(&mut a[left], &mut b[0]);
        } else if can_borrow_from_right {
            // Move the right sibling's first entry to the child's back.
            let (a, b) = children.split_at_mut(right);
            Self::shift_first_to_back(&mut b[0], &mut a[idx]);
        } else {
            // Merge `right` into `left`.
            let removed = children.remove(right);
            Self::absorb(&mut children[left], removed);
            counts.remove(right);
            sums.remove(right);
        }
        counts[left] = children[left].count();
        sums[left] = children[left].sum();
        if right < children.len() {
            counts[right] = children[right].count();
            sums[right] = children[right].sum();
        }
        counter.write(2);
    }

    fn shift_last_to_front(from: &mut Node<G>, to: &mut Node<G>) {
        match (from, to) {
            (Node::Leaf(a), Node::Leaf(b)) => {
                let v = a.pop().expect("donor non-empty");
                b.insert(0, v);
            }
            (
                Node::Internal {
                    children: ac,
                    counts: an,
                    sums: asum,
                },
                Node::Internal {
                    children: bc,
                    counts: bn,
                    sums: bsum,
                },
            ) => {
                bc.insert(0, ac.pop().expect("donor non-empty"));
                bn.insert(0, an.pop().expect("donor non-empty"));
                bsum.insert(0, asum.pop().expect("donor non-empty"));
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    fn shift_first_to_back(from: &mut Node<G>, to: &mut Node<G>) {
        match (from, to) {
            (Node::Leaf(a), Node::Leaf(b)) => b.push(a.remove(0)),
            (
                Node::Internal {
                    children: ac,
                    counts: an,
                    sums: asum,
                },
                Node::Internal {
                    children: bc,
                    counts: bn,
                    sums: bsum,
                },
            ) => {
                bc.push(ac.remove(0));
                bn.push(an.remove(0));
                bsum.push(asum.remove(0));
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    fn absorb(into: &mut Node<G>, from: Node<G>) {
        match (into, from) {
            (Node::Leaf(a), Node::Leaf(mut b)) => a.append(&mut b),
            (
                Node::Internal {
                    children: ac,
                    counts: an,
                    sums: asum,
                },
                Node::Internal {
                    children: mut bc,
                    counts: mut bn,
                    sums: mut bsum,
                },
            ) => {
                ac.append(&mut bc);
                an.append(&mut bn);
                asum.append(&mut bsum);
            }
            _ => unreachable!("siblings are at the same level"),
        }
    }

    fn prefix_rec(&self, node: &Node<G>, index: usize) -> G {
        match node {
            Node::Leaf(values) => {
                self.counter.read(index as u64 + 1);
                values[..=index].iter().fold(G::ZERO, |acc, &v| acc.add(v))
            }
            Node::Internal {
                children,
                counts,
                sums,
            } => {
                let mut acc = G::ZERO;
                let mut rel = index;
                let mut child_idx = 0;
                while rel >= counts[child_idx] {
                    acc = acc.add(sums[child_idx]);
                    self.counter.read(1);
                    rel -= counts[child_idx];
                    child_idx += 1;
                }
                acc.add(self.prefix_rec(&children[child_idx], rel))
            }
        }
    }

    fn value_rec(&self, node: &Node<G>, index: usize) -> G {
        match node {
            Node::Leaf(values) => {
                self.counter.read(1);
                values[index]
            }
            Node::Internal {
                children, counts, ..
            } => {
                let mut rel = index;
                let mut child_idx = 0;
                while rel >= counts[child_idx] {
                    rel -= counts[child_idx];
                    child_idx += 1;
                }
                self.value_rec(&children[child_idx], rel)
            }
        }
    }

    fn add_rec(node: &mut Node<G>, index: usize, delta: G, counter: &OpCounter) {
        match node {
            Node::Leaf(values) => {
                values[index] = values[index].add(delta);
                counter.write(1);
            }
            Node::Internal {
                children,
                counts,
                sums,
            } => {
                let mut rel = index;
                let mut child_idx = 0;
                while rel >= counts[child_idx] {
                    rel -= counts[child_idx];
                    child_idx += 1;
                }
                // Exactly one STS per visited node changes (paper §4.1).
                sums[child_idx] = sums[child_idx].add(delta);
                counter.write(1);
                Self::add_rec(&mut children[child_idx], rel, delta, counter);
            }
        }
    }
}

impl<G: AbelianGroup> CumulativeStore<G> for BcTree<G> {
    fn name(&self) -> &'static str {
        "bc-tree"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn prefix(&self, index: usize) -> G {
        assert!(
            index < self.len,
            "prefix index {index} beyond length {}",
            self.len
        );
        self.prefix_rec(&self.root, index)
    }

    fn value(&self, index: usize) -> G {
        assert!(index < self.len, "index {index} beyond length {}", self.len);
        self.value_rec(&self.root, index)
    }

    fn add(&mut self, index: usize, delta: G) {
        assert!(index < self.len, "index {index} beyond length {}", self.len);
        if delta.is_zero() {
            return;
        }
        Self::add_rec(&mut self.root, index, delta, &self.counter);
    }

    fn counter(&self) -> &OpCounter {
        &self.counter
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.root.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The row-sum set of the paper's Figure 14: individual row sums
    /// 14, 9, 10, 12, 8, 13 (cumulative row sums 14, 23, 33, 45, 53, 66),
    /// fanout 3.
    fn figure14() -> BcTree<i64> {
        BcTree::from_values(3, &[14, 9, 10, 12, 8, 13])
    }

    #[test]
    fn paper_figure14_prefix_query() {
        let t = figure14();
        // "Suppose we wish to find the value of row sum cell 5 … yielding
        // 33 + 12 + 8 = 53." (1-based key 5 = index 4.)
        assert_eq!(t.prefix(4), 53);
        // The left subtree sum seen from the root is 33 (14 + 9 + 10).
        assert_eq!(t.root_subtree_sums()[0], 33);
        // All cumulative values.
        let expect = [14, 23, 33, 45, 53, 66];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(t.prefix(i), e, "prefix({i})");
        }
    }

    #[test]
    fn paper_figure14_update() {
        // "Suppose an update … causes row sum cell 3 to change from 10 to
        // 15 … we update the STS value in the root with the difference,
        // yielding (33 + 5 = 38)."
        let mut t = figure14();
        let old = t.set(2, 15);
        assert_eq!(old, 10);
        assert_eq!(t.root_subtree_sums()[0], 38);
        assert_eq!(t.prefix(2), 38);
        assert_eq!(t.prefix(4), 58);
        assert_eq!(t.total(), 71);
    }

    #[test]
    fn empty_and_single() {
        let mut t = BcTree::<i64>::new(4);
        assert!(t.is_empty());
        assert_eq!(t.total(), 0);
        t.push(7);
        assert_eq!(t.len(), 1);
        assert_eq!(t.prefix(0), 7);
        assert_eq!(t.value(0), 7);
    }

    #[test]
    fn zeroed_build() {
        let t = BcTree::<i64>::zeroed(5, 100);
        assert_eq!(t.len(), 100);
        assert_eq!(t.total(), 0);
        assert_eq!(t.prefix(57), 0);
    }

    #[test]
    fn prefix_matches_scan_across_fanouts() {
        for fanout in [3, 4, 7, 16] {
            let values: Vec<i64> = (0..200).map(|i| (i * 37 % 101) - 50).collect();
            let t = BcTree::from_values(fanout, &values);
            let mut acc = 0i64;
            for (i, &v) in values.iter().enumerate() {
                acc += v;
                assert_eq!(t.prefix(i), acc, "fanout {fanout} prefix({i})");
                assert_eq!(t.value(i), v, "fanout {fanout} value({i})");
            }
        }
    }

    #[test]
    fn updates_match_scan() {
        let mut values: Vec<i64> = (0..64).map(|i| i as i64).collect();
        let mut t = BcTree::from_values(4, &values);
        for step in 0..200 {
            let idx = (step * 13) % values.len();
            let delta = (step as i64 % 17) - 8;
            values[idx] += delta;
            t.add(idx, delta);
        }
        for (i, _) in values.iter().enumerate() {
            let expect: i64 = values[..=i].iter().sum();
            assert_eq!(t.prefix(i), expect);
        }
    }

    #[test]
    fn insertion_shifts_positions() {
        let mut t = BcTree::from_values(3, &[1i64, 2, 3]);
        t.insert(1, 10); // sequence: 1, 10, 2, 3
        assert_eq!(t.len(), 4);
        assert_eq!(t.value(1), 10);
        assert_eq!(t.value(2), 2);
        assert_eq!(t.prefix(3), 16);
        t.insert(0, -1); // -1, 1, 10, 2, 3
        assert_eq!(t.value(0), -1);
        assert_eq!(t.prefix(4), 15);
        t.insert(5, 100); // append
        assert_eq!(t.value(5), 100);
        assert_eq!(t.total(), 115);
    }

    #[test]
    fn many_insertions_stay_consistent_and_balanced() {
        let mut reference: Vec<i64> = Vec::new();
        let mut t = BcTree::<i64>::new(3);
        for i in 0..500u64 {
            let pos = ((i * 2_654_435_761) % (reference.len() as u64 + 1)) as usize;
            let v = (i as i64 * 7) % 23 - 11;
            reference.insert(pos, v);
            t.insert(pos, v);
        }
        assert_eq!(t.len(), 500);
        let mut acc = 0;
        for (i, &v) in reference.iter().enumerate() {
            acc += v;
            assert_eq!(t.prefix(i), acc, "prefix({i})");
        }
        // Height must stay logarithmic: fanout-3 tree of 500 values splits
        // at 4, so each node holds ≥ 2 entries → height ≤ log2(500) + 2.
        assert!(t.height() <= 11, "height {} too large", t.height());
    }

    #[test]
    fn to_values_roundtrips_between_store_kinds() {
        let values: Vec<i64> = (0..40).map(|i| i * 3 % 17 - 8).collect();
        let bc = BcTree::from_values(4, &values);
        assert_eq!(bc.to_values(), values);
        // Migrate B^c → Fenwick via to_values.
        let fen = crate::Fenwick::from_values(&bc.to_values());
        for i in 0..values.len() {
            assert_eq!(fen.prefix(i), bc.prefix(i));
        }
    }

    #[test]
    fn remove_shifts_positions() {
        let mut t = BcTree::from_values(3, &[10i64, 20, 30, 40, 50]);
        assert_eq!(t.remove(2), 30); // 10 20 40 50
        assert_eq!(t.len(), 4);
        assert_eq!(t.value(2), 40);
        assert_eq!(t.prefix(3), 120);
        assert_eq!(t.remove(0), 10); // 20 40 50
        assert_eq!(t.remove(2), 50); // 20 40
        assert_eq!(t.total(), 60);
    }

    #[test]
    fn remove_everything_collapses_tree() {
        let values: Vec<i64> = (0..100).collect();
        let mut t = BcTree::from_values(3, &values);
        for _ in 0..100 {
            t.remove(0);
        }
        assert!(t.is_empty());
        assert_eq!(t.total(), 0);
        assert_eq!(t.height(), 1);
        t.push(5);
        assert_eq!(t.prefix(0), 5);
    }

    #[test]
    fn interleaved_insert_remove_matches_vec() {
        let mut reference: Vec<i64> = Vec::new();
        let mut t = BcTree::<i64>::new(4);
        for i in 0..800u64 {
            let roll = (i * 2_654_435_761) % 100;
            if roll < 60 || reference.is_empty() {
                let pos = (roll as usize * 37) % (reference.len() + 1);
                let v = (i as i64 % 43) - 21;
                reference.insert(pos, v);
                t.insert(pos, v);
            } else {
                let pos = (roll as usize * 31) % reference.len();
                assert_eq!(t.remove(pos), reference.remove(pos), "step {i}");
            }
        }
        assert_eq!(t.len(), reference.len());
        let mut acc = 0;
        for (i, &v) in reference.iter().enumerate() {
            acc += v;
            assert_eq!(t.prefix(i), acc, "prefix({i})");
        }
        // Occupancy invariants keep the height logarithmic.
        assert!(t.height() <= 8, "height {}", t.height());
    }

    #[test]
    fn update_touches_one_sts_per_level() {
        let t = BcTree::<i64>::zeroed(3, 81);
        let h = t.height();
        let mut t = t;
        t.reset_ops();
        t.add(40, 5);
        let ops = t.ops();
        // One leaf write plus at most one STS write per interior level.
        assert!(
            ops.writes as usize <= h,
            "writes {} exceed height {h}",
            ops.writes
        );
    }

    #[test]
    fn prefix_cost_is_logarithmic() {
        let t = BcTree::<i64>::zeroed(16, 65_536);
        t.reset_ops();
        let _ = t.prefix(65_535);
        let ops = t.ops();
        // ≤ f reads per level, ~4 levels at fanout 16.
        assert!(ops.reads <= 16 * 5, "reads {} not logarithmic", ops.reads);
    }

    #[test]
    fn range_queries_via_store_trait() {
        let values: Vec<i64> = (1..=10).collect();
        let t = BcTree::from_values(4, &values);
        assert_eq!(t.range(0, 9), 55);
        assert_eq!(t.range(3, 5), 4 + 5 + 6);
        assert_eq!(t.range(9, 9), 10);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn fanout_too_small_rejected() {
        BcTree::<i64>::new(2);
    }

    #[test]
    fn heap_bytes_nonzero() {
        let t = BcTree::<i64>::zeroed(8, 1000);
        assert!(t.heap_bytes() >= 1000 * 8);
    }
}
