//! The contract shared by one-dimensional cumulative stores.
//!
//! Section 4.1 of the paper replaces the flat row-sum arrays of the Basic
//! DDC with the Cumulative B-Tree (B^c tree). Any structure that maintains
//! a sequence of values under point updates while answering *cumulative*
//! (prefix) sums can play that role; [`CumulativeStore`] abstracts it so
//! the two-dimensional base case of the Dynamic Data Cube can be
//! instantiated with either the paper's B^c tree or the Fenwick-tree
//! ablation.

use ddc_array::{AbelianGroup, OpCounter, OpSnapshot};

/// A sequence of group values supporting prefix sums and point updates.
///
/// Indices are zero-based positions in the row-sum sequence; the paper's
/// 1-based "keys" map to `index + 1`.
///
/// # Examples
///
/// All three stores are interchangeable behind this trait:
///
/// ```
/// use ddc_btree::{BcTree, CumulativeStore, Fenwick, SparseSegTree};
///
/// let values = [3i64, -1, 4, 1, 5];
/// let stores: Vec<Box<dyn CumulativeStore<i64>>> = vec![
///     Box::new(BcTree::from_values(4, &values)),
///     Box::new(Fenwick::from_values(&values)),
///     Box::new(SparseSegTree::from_values(&values)),
/// ];
/// for s in &stores {
///     assert_eq!(s.prefix(2), 6);
///     assert_eq!(s.range(1, 3), 4);
///     assert_eq!(s.total(), 12);
/// }
/// ```
pub trait CumulativeStore<G: AbelianGroup> {
    /// Human-readable structure name (benchmark labels).
    fn name(&self) -> &'static str;

    /// Number of stored positions.
    fn len(&self) -> usize;

    /// True if the store holds no positions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative sum of positions `0..=index`.
    fn prefix(&self, index: usize) -> G;

    /// The individual value at `index` (not cumulative).
    fn value(&self, index: usize) -> G;

    /// Adds `delta` to the value at `index`.
    fn add(&mut self, index: usize, delta: G);

    /// Replaces the value at `index`, returning the old value.
    fn set(&mut self, index: usize, value: G) -> G {
        let old = self.value(index);
        let delta = value.sub(old);
        if !delta.is_zero() {
            self.add(index, delta);
        }
        old
    }

    /// Sum of every stored value.
    fn total(&self) -> G {
        if self.is_empty() {
            G::ZERO
        } else {
            self.prefix(self.len() - 1)
        }
    }

    /// Sum of positions `lo..=hi`.
    fn range(&self, lo: usize, hi: usize) -> G {
        assert!(
            lo <= hi && hi < self.len(),
            "range {lo}..={hi} out of bounds"
        );
        let high = self.prefix(hi);
        if lo == 0 {
            high
        } else {
            high.sub(self.prefix(lo - 1))
        }
    }

    /// Operation counter for Table-1 style accounting.
    fn counter(&self) -> &OpCounter;

    /// Materializes every stored value in positional order (diagnostics,
    /// rebuilds, migrations between store kinds).
    fn to_values(&self) -> Vec<G> {
        (0..self.len()).map(|i| self.value(i)).collect()
    }

    /// Convenience: snapshot of the operation counter.
    fn ops(&self) -> OpSnapshot {
        self.counter().snapshot()
    }

    /// Convenience: reset the operation counter.
    fn reset_ops(&self) {
        self.counter().reset();
    }

    /// Approximate heap bytes used.
    fn heap_bytes(&self) -> usize;
}
