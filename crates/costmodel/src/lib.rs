//! # ddc-costmodel
//!
//! The analytic cost formulas of the paper, used to regenerate Table 1,
//! Figure 1, and Table 2 exactly, and to compare measured operation counts
//! against the published asymptotics (§3.3, §4.3).
//!
//! All formulas work in `f64` (Table 1 reaches `10^72`, far beyond `u128`)
//! and report log10 magnitudes the way the paper rounds them.

#![warn(missing_docs)]
#![warn(clippy::all)]

/// Update-cost functions of Table 1 (values are cells touched per update).
pub mod table1 {
    /// Full data cube size `n^d` (also the prefix-sum update cost).
    pub fn full_cube_size(n: f64, d: u32) -> f64 {
        n.powi(d as i32)
    }

    /// Prefix sum method \[HAMS97\]: `n^d`.
    pub fn prefix_sum_update(n: f64, d: u32) -> f64 {
        n.powi(d as i32)
    }

    /// Relative prefix sum \[GAES99\]: `n^{d/2}`.
    pub fn relative_prefix_update(n: f64, d: u32) -> f64 {
        n.powf(d as f64 / 2.0)
    }

    /// Dynamic Data Cube: `(log2 n)^d`.
    pub fn ddc_update(n: f64, d: u32) -> f64 {
        n.log2().powi(d as i32)
    }

    /// Rounded to the nearest power of ten, as printed in Table 1
    /// ("values are rounded to the nearest power of 10").
    pub fn nearest_power_of_ten(v: f64) -> i32 {
        v.log10().round() as i32
    }

    /// Seconds to apply one update at the given instruction rate — the
    /// paper's "hypothetical 500 MIPS processor" conversion (§1).
    pub fn seconds_at_mips(ops: f64, mips: f64) -> f64 {
        ops / (mips * 1e6)
    }

    /// One Table 1 row: `n` and the four cost columns.
    #[derive(Copy, Clone, Debug, PartialEq)]
    pub struct Row {
        /// Dimension size `n`.
        pub n: f64,
        /// `n^d` — full cube size.
        pub full_cube: f64,
        /// `n^d` — prefix sum update cost.
        pub prefix_sum: f64,
        /// `n^{d/2}` — relative prefix sum update cost.
        pub relative_prefix: f64,
        /// `(log2 n)^d` — Dynamic Data Cube update cost.
        pub ddc: f64,
    }

    /// The full table for dimension count `d` over `n = 10^1 … 10^max_exp`.
    pub fn rows(d: u32, max_exp: u32) -> Vec<Row> {
        (1..=max_exp)
            .map(|e| {
                let n = 10f64.powi(e as i32);
                Row {
                    n,
                    full_cube: full_cube_size(n, d),
                    prefix_sum: prefix_sum_update(n, d),
                    relative_prefix: relative_prefix_update(n, d),
                    ddc: ddc_update(n, d),
                }
            })
            .collect()
    }
}

/// Storage formulas of Table 2 and §4.4.
pub mod table2 {
    /// Cells stored by one overlay box: `k^d − (k−1)^d` (§3.1).
    pub fn overlay_cells(k: f64, d: u32) -> f64 {
        k.powi(d as i32) - (k - 1.0).powi(d as i32)
    }

    /// Cells of array `A` covered by the box: `k^d`.
    pub fn covered_cells(k: f64, d: u32) -> f64 {
        k.powi(d as i32)
    }

    /// Overlay storage as a percentage of the covered region ("O.B. / A").
    pub fn percentage(k: f64, d: u32) -> f64 {
        100.0 * overlay_cells(k, d) / covered_cells(k, d)
    }

    /// Our implementation's layout: `d` separate groups of `k^{d-1}` plus
    /// the subtotal (see DESIGN.md §5.2), reported alongside the paper's
    /// deduplicated count.
    pub fn implementation_cells(k: f64, d: u32) -> f64 {
        d as f64 * k.powi(d as i32 - 1) + 1.0
    }

    /// Overlay value count of the whole tree relative to `|A| = n^d`, as
    /// a function of the §4.4 elision parameter `h`: the level with box
    /// side `k` stores ≈ `d·n^d/k` values, and eliding levels up to side
    /// `2^{h+1}` leaves `Σ_{k=2^{h+1}}^{n/2} d/k ≤ d·2^{-h}` per cell.
    pub fn tree_overhead_bound(d: u32, h: u32) -> f64 {
        d as f64 / 2f64.powi(h as i32)
    }

    /// Smallest `h` whose §4.4 storage bound meets `epsilon` — "reduce the
    /// storage required by the Dynamic Data Cube to within ε of the size
    /// of array A".
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon > 0`.
    pub fn elision_for_overhead(d: u32, epsilon: f64) -> u32 {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let mut h = 0u32;
        while tree_overhead_bound(d, h) > epsilon && h < 62 {
            h += 1;
        }
        h
    }
}

/// The §3.3 Basic-DDC update-cost series and the §4.3 Theorem 2 bounds.
pub mod complexity {
    /// §3.3: total overlay values touched by one Basic-DDC update —
    /// `d · (n^{d-1} − 1) / (2^{d-1} − 1)` for `d ≥ 2`.
    pub fn basic_update_cost(n: f64, d: u32) -> f64 {
        assert!(d >= 2);
        let p = (d - 1) as i32;
        d as f64 * (n.powi(p) - 1.0) / (2f64.powi(p) - 1.0)
    }

    /// §4.3 base case: two-dimensional DDC cost series
    /// `3 · ½ · log(n/2) · (log(n/2) + 1)` ≈ `O(log² n)`.
    pub fn ddc_2d_cost(n: f64) -> f64 {
        let l = (n / 2.0).log2();
        3.0 * 0.5 * l * (l + 1.0)
    }

    /// Theorem 2: `O(log^d n)` with the `(2^{d+1} − 1)` per-level factor
    /// made explicit — an upper-envelope, not a tight count.
    pub fn ddc_cost_bound(n: f64, d: u32) -> f64 {
        let per_level = (2f64.powi(d as i32 + 1)) - 1.0;
        per_level * n.log2().powi(d as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_paper_anchor_points() {
        // Paper §1: at n = 10², d = 8 the full cube is 10^16 cells…
        let r = &table1::rows(8, 9)[1];
        assert_eq!(r.n, 100.0);
        assert_eq!(table1::nearest_power_of_ten(r.full_cube), 16);
        assert_eq!(table1::nearest_power_of_ten(r.prefix_sum), 16);
        assert_eq!(table1::nearest_power_of_ten(r.relative_prefix), 8);
        // …and the DDC cost is (log2 100)^8 ≈ 4.3 × 10^6.
        assert_eq!(table1::nearest_power_of_ten(r.ddc), 7);
    }

    #[test]
    fn paper_processing_time_claims() {
        // "the prefix sum method may require more than 6 months of
        // processing" at n = 10², d = 8 on 500 MIPS: 10^16 / 5·10^8 = 2·10^7
        // seconds ≈ 231 days > 6 months.
        let secs = table1::seconds_at_mips(table1::prefix_sum_update(100.0, 8), 500.0);
        assert!(secs > 180.0 * 86_400.0, "{secs}");
        // "The Dynamic Data Cube can update that same cell in under X
        // seconds" — a tiny fraction of a second of pure instruction time.
        let ddc = table1::seconds_at_mips(table1::ddc_update(100.0, 8), 500.0);
        assert!(ddc < 1.0, "{ddc}");
        // "When n = 10⁴, the relative prefix sum method requires 231 days"
        // (2 × 10^7 s): n^{d/2} = 10^16 ops at 500 MIPS.
        let rps = table1::seconds_at_mips(table1::relative_prefix_update(1e4, 8), 500.0);
        let days = rps / 86_400.0;
        assert!((200.0..260.0).contains(&days), "{days} days");
        // …whereas the DDC needs under 2 seconds.
        let ddc4 = table1::seconds_at_mips(table1::ddc_update(1e4, 8), 500.0);
        assert!(ddc4 < 2.0, "{ddc4}");
    }

    #[test]
    fn table1_ordering_and_crossover() {
        let rows = table1::rows(8, 9);
        // At n = 10 the DDC's polylog cost still exceeds n^{d/2} — the
        // crossover visible at the left edge of Figure 1.
        assert!(rows[0].ddc > rows[0].relative_prefix);
        // From n = 100 on, DDC < RPS < PS, and the gap only widens.
        for r in &rows[1..] {
            assert!(r.ddc < r.relative_prefix, "n={}", r.n);
            assert!(r.relative_prefix <= r.prefix_sum, "n={}", r.n);
            assert_eq!(r.prefix_sum, r.full_cube);
        }
    }

    #[test]
    fn table2_two_dimensional_percentages() {
        // d = 2: (k² − (k−1)²)/k² = (2k − 1)/k².
        assert_eq!(table2::overlay_cells(2.0, 2), 3.0);
        assert_eq!(table2::percentage(2.0, 2), 75.0);
        assert_eq!(table2::percentage(4.0, 2), 43.75);
        assert!((table2::percentage(8.0, 2) - 23.4375).abs() < 1e-12);
        // Storage fraction decreases as k grows (§4.4 Table 2 trend).
        let mut prev = 101.0;
        for k in [2.0, 4.0, 8.0, 16.0, 32.0, 1024.0] {
            let p = table2::percentage(k, 2);
            assert!(p < prev);
            prev = p;
        }
    }

    #[test]
    fn implementation_layout_is_constant_factor() {
        for k in [2.0, 8.0, 64.0] {
            for d in [2u32, 3, 4] {
                let ours = table2::implementation_cells(k, d);
                let paper = table2::overlay_cells(k, d);
                assert!(ours >= paper);
                assert!(ours <= d as f64 * paper + 1.0, "k={k} d={d}");
            }
        }
    }

    #[test]
    fn elision_selection_meets_budget() {
        for d in [2u32, 3, 8] {
            for eps in [1.0, 0.25, 0.01] {
                let h = table2::elision_for_overhead(d, eps);
                assert!(table2::tree_overhead_bound(d, h) <= eps, "d={d} eps={eps}");
                if h > 0 {
                    assert!(
                        table2::tree_overhead_bound(d, h - 1) > eps,
                        "h not minimal for d={d} eps={eps}"
                    );
                }
            }
        }
        // d = 2, ε = 0.25 ⇒ need 2/2^h ≤ ¼ ⇒ h = 3.
        assert_eq!(table2::elision_for_overhead(2, 0.25), 3);
    }

    #[test]
    fn basic_cost_series_matches_closed_form() {
        // §3.3 d=2: check the closed form against the direct series
        // d[(n/2)^{d-1} + (n/4)^{d-1} + … + 1^{d-1}].
        for n in [8.0, 64.0, 1024.0] {
            let closed = complexity::basic_update_cost(n, 2);
            let mut series = 0.0;
            let mut k = n / 2.0;
            while k >= 1.0 {
                series += 2.0 * k;
                k /= 2.0;
            }
            assert!((closed - series).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn ddc_2d_cost_anchor() {
        // log(n/2) = 3 at n = 16: 3 · ½ · 3 · 4 = 18.
        assert_eq!(complexity::ddc_2d_cost(16.0), 18.0);
        assert!(complexity::ddc_cost_bound(16.0, 2) >= complexity::ddc_2d_cost(16.0));
    }
}
