//! The deterministic scheduler: one global token is passed between real
//! OS threads so that exactly one modeled thread runs at a time. Every
//! facade operation is a *schedule point* where the scheduler consults a
//! recorded path (DFS replay) or extends it with a default choice.
//!
//! Exploration is depth-first over the tree of scheduling (and, for
//! `Relaxed` loads, value) choices, with three bounds:
//!
//! * a **preemption budget** — involuntary context switches cost budget,
//!   voluntary ones (block/finish) are free (Musuvathi & Qadeer's
//!   iterative context bounding);
//! * a **state hash** — a fingerprint of thread positions + every model
//!   object; a schedule point whose fingerprint was already visited
//!   terminates the iteration early (the continuation is determined by
//!   the fingerprint, so it has already been explored);
//! * a **step budget** per iteration as a livelock guard.
//!
//! A failing schedule is minimized by greedily re-running with each
//! preemptive choice flipped back to "stay on the current thread" and
//! keeping the flip whenever the failure still reproduces.

use crate::trace::{Event, FailureKind, FailureReport, Report};
use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock,
};

// ---------------------------------------------------------------------------
// Thread-local context: "am I a modeled thread, and in which execution?"
// ---------------------------------------------------------------------------

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static PANIC_LOC: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Identity of the current modeled thread within an execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) id: usize,
}

/// The current thread's model context, if it is running under the
/// scheduler. Facade primitives fall back to `std` behavior when `None`.
pub(crate) fn cur_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Panic payload used to unwind modeled threads when an iteration ends
/// early (failure elsewhere, state-hash prune). Swallowed by the shim.
struct ModelAbort;

fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<ModelAbort>()
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    };
    match PANIC_LOC.with(|p| p.borrow_mut().take()) {
        Some(loc) => format!("{msg} at {loc}"),
        None => msg,
    }
}

/// Install (once per process) a panic hook that silences panics on
/// modeled threads — the checker catches them and reports a trace; the
/// default hook would spam stderr on every explored failing schedule.
fn install_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if cur_ctx().is_some() {
                let loc = info
                    .location()
                    .map(|l| format!("{}:{}", l.file(), l.line()));
                PANIC_LOC.with(|p| *p.borrow_mut() = loc);
            } else {
                prev(info);
            }
        }));
    });
}

// ---------------------------------------------------------------------------
// Model state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BlockOn {
    Lock(usize),
    RwRead(usize),
    RwWrite(usize),
    Cv(usize),
    Join(usize),
}

impl BlockOn {
    fn describe(self) -> String {
        match self {
            BlockOn::Lock(i) => format!("mutex m{i}"),
            BlockOn::RwRead(i) => format!("rwlock r{i} (read)"),
            BlockOn::RwWrite(i) => format!("rwlock r{i} (write)"),
            BlockOn::Cv(i) => format!("condvar cv{i}"),
            BlockOn::Join(i) => format!("join of t{i}"),
        }
    }
    fn code(self) -> (u64, u64) {
        match self {
            BlockOn::Lock(i) => (1, i as u64),
            BlockOn::RwRead(i) => (2, i as u64),
            BlockOn::RwWrite(i) => (3, i as u64),
            BlockOn::Cv(i) => (4, i as u64),
            BlockOn::Join(i) => (5, i as u64),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

pub(crate) struct ThreadSt {
    pub(crate) status: Status,
    /// Number of schedule points this thread has passed (its "program
    /// position" for the state fingerprint).
    ops: u64,
    /// Rolling hash of everything this thread has observed (lock ids
    /// acquired, values loaded). Position + observations determine the
    /// future behavior of deterministic scenario code.
    obs: u64,
    /// Per-atomic coherence floor: lowest store sequence this thread is
    /// still allowed to read (per-location coherence for Relaxed loads).
    floors: Vec<u64>,
}

impl ThreadSt {
    fn new() -> Self {
        ThreadSt {
            status: Status::Runnable,
            ops: 0,
            obs: 0,
            floors: Vec::new(),
        }
    }
    fn floor(&self, atomic: usize) -> u64 {
        self.floors.get(atomic).copied().unwrap_or(0)
    }
    fn raise_floor(&mut self, atomic: usize, seq: u64) {
        if self.floors.len() <= atomic {
            self.floors.resize(atomic + 1, 0);
        }
        if self.floors[atomic] < seq {
            self.floors[atomic] = seq;
        }
    }
}

#[derive(Default)]
pub(crate) struct LockSt {
    pub(crate) holder: Option<usize>,
}

#[derive(Default)]
pub(crate) struct RwSt {
    pub(crate) writer: Option<usize>,
    pub(crate) readers: Vec<usize>,
}

#[derive(Default)]
pub(crate) struct CvSt {
    /// FIFO wait queue (notify_one wakes the longest waiter).
    pub(crate) waiters: VecDeque<usize>,
}

pub(crate) struct AtomicSt {
    /// Store sequence counter; the newest entry in `buf` has this seq.
    seq: u64,
    /// Recent stores, oldest first; the back entry is the latest value.
    buf: VecDeque<(u64, u64)>,
}

impl AtomicSt {
    fn new(init: u64) -> Self {
        AtomicSt {
            seq: 0,
            buf: VecDeque::from([(0, init)]),
        }
    }
    fn latest(&self) -> (u64, u64) {
        *self.buf.back().expect("atomic buffer never empty")
    }
    fn push(&mut self, val: u64, keep: usize) {
        self.seq += 1;
        self.buf.push_back((self.seq, val));
        while self.buf.len() > keep.max(1) {
            self.buf.pop_front();
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ChoiceKind {
    /// Which runnable thread runs next.
    Sched,
    /// Which buffered store a `Relaxed` load observes (options are store
    /// sequence numbers, newest first).
    Value,
}

#[derive(Clone, Debug)]
pub(crate) struct Choice {
    kind: ChoiceKind,
    options: Vec<usize>,
    pick: usize,
    /// For `Sched`: the thread that held the token and was still
    /// runnable (picking anyone else is a preemption).
    current: Option<usize>,
}

impl Choice {
    fn preemptive_at(&self, pick: usize) -> bool {
        self.kind == ChoiceKind::Sched && matches!(self.current, Some(c) if self.options[pick] != c)
    }
    fn preemptive(&self) -> bool {
        self.preemptive_at(self.pick)
    }
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadSt>,
    pub(crate) active: Option<usize>,
    pub(crate) locks: Vec<LockSt>,
    pub(crate) rws: Vec<RwSt>,
    pub(crate) cvs: Vec<CvSt>,
    pub(crate) atomics: Vec<AtomicSt>,
    path: Vec<Choice>,
    cursor: usize,
    forced: usize,
    trace: Vec<Event>,
    failure: Option<(FailureKind, String)>,
    pub(crate) abort: bool,
    pruned: bool,
    steps: u64,
    visited: HashSet<u64>,
    no_prune: bool,
    max_steps: u64,
    value_buffer: usize,
    real: Vec<std::thread::JoinHandle<()>>,
}

/// One model execution: the shared state plus the condvar used to pass
/// the run token between real threads.
pub(crate) struct Execution {
    pub(crate) state: StdMutex<ExecState>,
    pub(crate) cv: StdCondvar,
}

pub(crate) type StGuard<'a> = StdMutexGuard<'a, ExecState>;

impl Execution {
    pub(crate) fn st(&self) -> StGuard<'_> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

// ---------------------------------------------------------------------------
// Fingerprint (fnv-1a over the full model state)
// ---------------------------------------------------------------------------

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(31)
        .wrapping_add(0x85eb_ca6b)
}

fn fingerprint(st: &ExecState, me: usize) -> u64 {
    let mut f = Fnv::new();
    f.word(me as u64);
    f.word(st.threads.len() as u64);
    for t in &st.threads {
        let (tag, arg) = match t.status {
            Status::Runnable => (0, 0),
            Status::Blocked(b) => b.code(),
            Status::Finished => (6, 0),
        };
        f.word(tag);
        f.word(arg);
        f.word(t.ops);
        f.word(t.obs);
        for &fl in &t.floors {
            f.word(fl);
        }
    }
    for l in &st.locks {
        f.word(l.holder.map_or(u64::MAX, |h| h as u64));
    }
    for r in &st.rws {
        f.word(r.writer.map_or(u64::MAX, |h| h as u64));
        f.word(r.readers.len() as u64);
        for &rd in &r.readers {
            f.word(rd as u64);
        }
    }
    for c in &st.cvs {
        f.word(c.waiters.len() as u64);
        for &w in &c.waiters {
            f.word(w as u64);
        }
    }
    for a in &st.atomics {
        f.word(a.seq);
        for &(s, v) in &a.buf {
            f.word(s);
            f.word(v);
        }
    }
    f.0
}

// ---------------------------------------------------------------------------
// Core protocol: fail / bail / token passing / decisions
// ---------------------------------------------------------------------------

fn fail(exec: &Execution, st: &mut StGuard<'_>, kind: FailureKind, msg: String) {
    if st.failure.is_none() {
        st.failure = Some((kind, msg));
    }
    st.abort = true;
    exec.cv.notify_all();
}

/// Terminate this thread's participation in the iteration. Never called
/// from drop paths while unwinding (those use the quiet releases).
fn bail(exec: &Execution, st: StGuard<'_>) -> ! {
    exec.cv.notify_all();
    drop(st);
    panic::panic_any(ModelAbort)
}

fn wait_for_token<'a>(exec: &'a Execution, me: usize, mut st: StGuard<'a>) -> StGuard<'a> {
    loop {
        if st.abort {
            bail(exec, st);
        }
        if st.active == Some(me) && st.threads[me].status == Status::Runnable {
            return st;
        }
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Record (or replay) one decision. Returns the chosen option *value*.
fn decide(
    exec: &Execution,
    st: &mut StGuard<'_>,
    kind: ChoiceKind,
    options: Vec<usize>,
    current: Option<usize>,
) -> usize {
    debug_assert!(!options.is_empty());
    let idx = if st.cursor < st.path.len() {
        let rec = &st.path[st.cursor];
        if rec.kind != kind || rec.options != options {
            let msg = format!(
                "schedule replay diverged at step {}: recorded {:?}{:?}, observed {:?}{:?}",
                st.cursor, rec.kind, rec.options, kind, options
            );
            fail(exec, st, FailureKind::NonDeterminism, msg);
            return options[0];
        }
        rec.pick
    } else {
        let pick = match kind {
            ChoiceKind::Sched => current
                .and_then(|c| options.iter().position(|&o| o == c))
                .unwrap_or(0),
            ChoiceKind::Value => 0,
        };
        let choice = Choice {
            kind,
            options: options.clone(),
            pick,
            current,
        };
        st.path.push(choice);
        pick
    };
    st.cursor += 1;
    options[idx]
}

fn runnable_threads(st: &ExecState) -> Vec<usize> {
    st.threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == Status::Runnable)
        .map(|(i, _)| i)
        .collect()
}

/// Pass the token on when the current thread can no longer run (it just
/// blocked or finished). Detects deadlock: live threads but none
/// runnable.
fn hand_off(exec: &Execution, st: &mut StGuard<'_>, _me: usize) {
    let runnable = runnable_threads(st);
    if runnable.is_empty() {
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            st.active = None;
            exec.cv.notify_all();
            return;
        }
        let blocked: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.status {
                Status::Blocked(b) => Some(format!("t{i} blocked on {}", b.describe())),
                _ => None,
            })
            .collect();
        fail(exec, st, FailureKind::Deadlock, blocked.join("; "));
        return;
    }
    let next = decide(exec, st, ChoiceKind::Sched, runnable, None);
    st.active = Some(next);
    exec.cv.notify_all();
}

/// The pre-operation schedule point: bump counters, check the step
/// budget, try the state-hash prune, then let the recorded path (or the
/// default run-on policy) pick who runs next.
pub(crate) fn schedule_point(ctx: &Ctx) {
    let exec = &*ctx.exec;
    let me = ctx.id;
    let mut st = exec.st();
    if st.abort {
        bail(exec, st);
    }
    debug_assert_eq!(st.active, Some(me), "schedule point without the token");
    st.steps += 1;
    if st.steps > st.max_steps {
        let msg = format!("exceeded {} schedule points in one iteration", st.max_steps);
        fail(exec, &mut st, FailureKind::StepBudget, msg);
        bail(exec, st);
    }
    st.threads[me].ops += 1;
    if !st.no_prune && st.cursor >= st.forced {
        let h = fingerprint(&st, me);
        if !st.visited.insert(h) {
            st.pruned = true;
            st.abort = true;
            bail(exec, st);
        }
    }
    let runnable = runnable_threads(&st);
    let next = decide(exec, &mut st, ChoiceKind::Sched, runnable, Some(me));
    if st.abort {
        bail(exec, st);
    }
    if next != me {
        st.active = Some(next);
        exec.cv.notify_all();
        let st = wait_for_token(exec, me, st);
        drop(st);
    }
}

fn push_event(st: &mut StGuard<'_>, me: usize, op: String) {
    st.trace.push(Event { thread: me, op });
}

// ---------------------------------------------------------------------------
// Object registration (no schedule point: creation order is already
// determined by the schedule, and registration is invisible to other
// threads until the object is shared).
// ---------------------------------------------------------------------------

pub(crate) fn register_lock(exec: &Execution) -> usize {
    let mut st = exec.st();
    st.locks.push(LockSt::default());
    st.locks.len() - 1
}

pub(crate) fn register_rw(exec: &Execution) -> usize {
    let mut st = exec.st();
    st.rws.push(RwSt::default());
    st.rws.len() - 1
}

pub(crate) fn register_cv(exec: &Execution) -> usize {
    let mut st = exec.st();
    st.cvs.push(CvSt::default());
    st.cvs.len() - 1
}

pub(crate) fn register_atomic(exec: &Execution, init: u64) -> usize {
    let mut st = exec.st();
    st.atomics.push(AtomicSt::new(init));
    st.atomics.len() - 1
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

fn acquire_lock(ctx: &Ctx, id: usize) {
    let exec = &*ctx.exec;
    let me = ctx.id;
    let mut st = exec.st();
    loop {
        if st.abort {
            bail(exec, st);
        }
        if st.locks[id].holder.is_none() {
            st.locks[id].holder = Some(me);
            st.threads[me].obs = mix(st.threads[me].obs, 0x10 + id as u64);
            push_event(&mut st, me, format!("lock m{id}"));
            return;
        }
        st.threads[me].status = Status::Blocked(BlockOn::Lock(id));
        hand_off(exec, &mut st, me);
        if st.abort {
            bail(exec, st);
        }
        st = wait_for_token(exec, me, st);
    }
}

pub(crate) fn mutex_lock(ctx: &Ctx, id: usize) {
    schedule_point(ctx);
    acquire_lock(ctx, id);
}

fn release_lock_locked(st: &mut StGuard<'_>, id: usize) {
    st.locks[id].holder = None;
    for t in st.threads.iter_mut() {
        if t.status == Status::Blocked(BlockOn::Lock(id)) {
            t.status = Status::Runnable;
        }
    }
}

pub(crate) fn mutex_unlock(ctx: &Ctx, id: usize) {
    {
        let exec = &*ctx.exec;
        let mut st = exec.st();
        release_lock_locked(&mut st, id);
        let me = ctx.id;
        push_event(&mut st, me, format!("unlock m{id}"));
        exec.cv.notify_all();
    }
    // Post-release schedule point so a waiter can grab the lock before
    // this thread's next operation — but not while unwinding (drop
    // paths must never start a new panic).
    if !std::thread::panicking() {
        schedule_point(ctx);
    }
}

/// Release from a thread outside the scheduler (defensive: tracked
/// object escaped to an unmodeled thread). No schedule point.
pub(crate) fn mutex_unlock_quiet(exec: &Execution, id: usize) {
    let mut st = exec.st();
    release_lock_locked(&mut st, id);
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub(crate) fn rw_lock(ctx: &Ctx, id: usize, write: bool) {
    schedule_point(ctx);
    let exec = &*ctx.exec;
    let me = ctx.id;
    let mut st = exec.st();
    loop {
        if st.abort {
            bail(exec, st);
        }
        let free = if write {
            st.rws[id].writer.is_none() && st.rws[id].readers.is_empty()
        } else {
            st.rws[id].writer.is_none()
        };
        if free {
            if write {
                st.rws[id].writer = Some(me);
            } else {
                st.rws[id].readers.push(me);
            }
            st.threads[me].obs = mix(st.threads[me].obs, 0x20 + id as u64);
            let mode = if write { "write" } else { "read" };
            push_event(&mut st, me, format!("rw-{mode} r{id}"));
            return;
        }
        let reason = if write {
            BlockOn::RwWrite(id)
        } else {
            BlockOn::RwRead(id)
        };
        st.threads[me].status = Status::Blocked(reason);
        hand_off(exec, &mut st, me);
        if st.abort {
            bail(exec, st);
        }
        st = wait_for_token(exec, me, st);
    }
}

fn release_rw_locked(st: &mut StGuard<'_>, id: usize, me: usize, write: bool) {
    if write {
        st.rws[id].writer = None;
    } else {
        st.rws[id].readers.retain(|&r| r != me);
    }
    let writers_can_go = st.rws[id].writer.is_none() && st.rws[id].readers.is_empty();
    for t in st.threads.iter_mut() {
        match t.status {
            Status::Blocked(BlockOn::RwRead(i)) if i == id => t.status = Status::Runnable,
            Status::Blocked(BlockOn::RwWrite(i)) if i == id && writers_can_go => {
                t.status = Status::Runnable
            }
            _ => {}
        }
    }
}

pub(crate) fn rw_unlock(ctx: &Ctx, id: usize, write: bool) {
    {
        let exec = &*ctx.exec;
        let mut st = exec.st();
        let me = ctx.id;
        release_rw_locked(&mut st, id, me, write);
        let mode = if write { "write" } else { "read" };
        push_event(&mut st, me, format!("rw-un{mode} r{id}"));
        exec.cv.notify_all();
    }
    if !std::thread::panicking() {
        schedule_point(ctx);
    }
}

pub(crate) fn rw_unlock_quiet(exec: &Execution, id: usize, me: usize, write: bool) {
    let mut st = exec.st();
    release_rw_locked(&mut st, id, me, write);
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Atomically release `lock_id`, join cv `cv_id`'s wait queue, and
/// yield. On return the model lock has been reacquired. The caller owns
/// the real guard dance.
pub(crate) fn cv_wait(ctx: &Ctx, cv_id: usize, lock_id: usize) {
    let exec = &*ctx.exec;
    let me = ctx.id;
    {
        let mut st = exec.st();
        if st.abort {
            bail(exec, st);
        }
        release_lock_locked(&mut st, lock_id);
        st.cvs[cv_id].waiters.push_back(me);
        st.threads[me].status = Status::Blocked(BlockOn::Cv(cv_id));
        push_event(&mut st, me, format!("wait cv{cv_id} (releases m{lock_id})"));
        hand_off(exec, &mut st, me);
        if st.abort {
            bail(exec, st);
        }
        let st = wait_for_token(exec, me, st);
        drop(st);
    }
    // Woken: contend for the lock again.
    acquire_lock(ctx, lock_id);
}

pub(crate) fn cv_notify(ctx: &Ctx, cv_id: usize, all: bool) {
    schedule_point(ctx);
    let exec = &*ctx.exec;
    let me = ctx.id;
    let mut st = exec.st();
    let mut woken = Vec::new();
    if all {
        while let Some(w) = st.cvs[cv_id].waiters.pop_front() {
            woken.push(w);
        }
    } else if let Some(w) = st.cvs[cv_id].waiters.pop_front() {
        woken.push(w);
    }
    for &w in &woken {
        st.threads[w].status = Status::Runnable;
    }
    let kind = if all { "notify_all" } else { "notify_one" };
    let detail = if woken.is_empty() {
        " (no waiters — lost)".to_string()
    } else {
        format!(
            " -> wakes {}",
            woken
                .iter()
                .map(|w| format!("t{w}"))
                .collect::<Vec<_>>()
                .join(",")
        )
    };
    push_event(&mut st, me, format!("{kind} cv{cv_id}{detail}"));
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Atomics (value space is u64 bit patterns; wrappers cast)
// ---------------------------------------------------------------------------

pub(crate) fn atomic_load(ctx: &Ctx, id: usize, order: std::sync::atomic::Ordering) -> u64 {
    use std::sync::atomic::Ordering;
    schedule_point(ctx);
    let exec = &*ctx.exec;
    let me = ctx.id;
    let mut st = exec.st();
    let val = if order == Ordering::Relaxed {
        let floor = st.threads[me].floor(id);
        // Visible stores, newest first (default pick = newest, i.e. the
        // sequentially-consistent answer; alternatives model staleness).
        let cands: Vec<(u64, u64)> = st.atomics[id]
            .buf
            .iter()
            .rev()
            .filter(|&&(s, _)| s >= floor)
            .copied()
            .collect();
        debug_assert!(!cands.is_empty(), "coherence floor above latest store");
        let (seq, val) = if cands.len() > 1 {
            let options: Vec<usize> = cands.iter().map(|&(s, _)| s as usize).collect();
            let chosen = decide(exec, &mut st, ChoiceKind::Value, options, None) as u64;
            if st.abort {
                bail(exec, st);
            }
            *cands
                .iter()
                .find(|&&(s, _)| s == chosen)
                .expect("chosen seq is a candidate")
        } else {
            cands[0]
        };
        st.threads[me].raise_floor(id, seq);
        val
    } else {
        let (seq, val) = st.atomics[id].latest();
        st.threads[me].raise_floor(id, seq);
        val
    };
    st.threads[me].obs = mix(st.threads[me].obs, val);
    push_event(&mut st, me, format!("load({order:?}) a{id} -> {val}"));
    val
}

pub(crate) fn atomic_store(ctx: &Ctx, id: usize, val: u64, order: std::sync::atomic::Ordering) {
    schedule_point(ctx);
    let exec = &*ctx.exec;
    let me = ctx.id;
    let mut st = exec.st();
    let keep = st.value_buffer;
    st.atomics[id].push(val, keep);
    let seq = st.atomics[id].seq;
    st.threads[me].raise_floor(id, seq);
    push_event(&mut st, me, format!("store({order:?}) a{id} <- {val}"));
}

/// Read-modify-write: always acts on the latest value (RMWs are
/// coherent regardless of ordering). Returns the previous value.
pub(crate) fn atomic_rmw(ctx: &Ctx, id: usize, desc: &str, f: impl FnOnce(u64) -> u64) -> u64 {
    schedule_point(ctx);
    let exec = &*ctx.exec;
    let me = ctx.id;
    let mut st = exec.st();
    let (_, old) = st.atomics[id].latest();
    let new = f(old);
    let keep = st.value_buffer;
    st.atomics[id].push(new, keep);
    let seq = st.atomics[id].seq;
    st.threads[me].raise_floor(id, seq);
    st.threads[me].obs = mix(st.threads[me].obs, old);
    push_event(&mut st, me, format!("{desc} a{id}: {old} -> {new}"));
    old
}

/// Coherent access from an unmodeled thread (defensive fallback): no
/// schedule point, latest value semantics.
pub(crate) fn atomic_load_quiet(exec: &Execution, id: usize) -> u64 {
    exec.st().atomics[id].latest().1
}

pub(crate) fn atomic_store_quiet(exec: &Execution, id: usize, val: u64) {
    let mut st = exec.st();
    let keep = st.value_buffer;
    st.atomics[id].push(val, keep);
}

pub(crate) fn atomic_rmw_quiet(exec: &Execution, id: usize, f: impl FnOnce(u64) -> u64) -> u64 {
    let mut st = exec.st();
    let (_, old) = st.atomics[id].latest();
    let new = f(old);
    let keep = st.value_buffer;
    st.atomics[id].push(new, keep);
    old
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

fn thread_shim(
    exec: Arc<Execution>,
    id: usize,
    f: impl FnOnce() + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ddc-model-t{id}"))
        .spawn(move || {
            CTX.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    exec: exec.clone(),
                    id,
                })
            });
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                let st = exec.st();
                let st = wait_for_token(&exec, id, st);
                drop(st);
                f()
            }));
            finish_thread(&exec, id, result);
            CTX.with(|c| *c.borrow_mut() = None);
        })
        .expect("spawn model shim thread")
}

fn finish_thread(exec: &Execution, me: usize, result: std::thread::Result<()>) {
    let mut st = exec.st();
    st.threads[me].status = Status::Finished;
    for t in st.threads.iter_mut() {
        if t.status == Status::Blocked(BlockOn::Join(me)) {
            t.status = Status::Runnable;
        }
    }
    if let Err(payload) = result {
        if !is_abort(payload.as_ref()) {
            let msg = panic_message(payload);
            fail(exec, &mut st, FailureKind::Panic, msg);
        }
    }
    if st.abort {
        exec.cv.notify_all();
    } else {
        push_event(&mut st, me, "exit".to_string());
        hand_off(exec, &mut st, me);
    }
}

/// Register + start a child thread from a modeled parent. Returns the
/// child's model thread id.
pub(crate) fn spawn_thread(ctx: &Ctx, f: impl FnOnce() + Send + 'static) -> usize {
    let exec = &ctx.exec;
    let child = {
        let mut st = exec.st();
        st.threads.push(ThreadSt::new());
        let child = st.threads.len() - 1;
        let handle = thread_shim(exec.clone(), child, f);
        st.real.push(handle);
        push_event(&mut st, ctx.id, format!("spawn t{child}"));
        child
    };
    // Schedule point *after* registration so the child can run first.
    schedule_point(ctx);
    child
}

pub(crate) fn thread_join(ctx: &Ctx, target: usize) {
    schedule_point(ctx);
    let exec = &*ctx.exec;
    let me = ctx.id;
    let mut st = exec.st();
    loop {
        if st.abort {
            bail(exec, st);
        }
        if st.threads[target].status == Status::Finished {
            st.threads[me].obs = mix(st.threads[me].obs, 0x40 + target as u64);
            push_event(&mut st, me, format!("join t{target}"));
            return;
        }
        st.threads[me].status = Status::Blocked(BlockOn::Join(target));
        hand_off(exec, &mut st, me);
        if st.abort {
            bail(exec, st);
        }
        st = wait_for_token(exec, me, st);
    }
}

// ---------------------------------------------------------------------------
// Checker: DFS driver + minimization
// ---------------------------------------------------------------------------

/// Exploration bounds for [`Checker::check`].
#[derive(Clone, Debug)]
pub struct CheckerConfig {
    /// Maximum involuntary context switches per schedule (iterative
    /// context bounding). 2–3 finds almost all real bugs.
    pub preemption_bound: usize,
    /// Stop after this many iterations even if the bounded space is not
    /// exhausted.
    pub max_iterations: u64,
    /// Per-iteration schedule-point budget (livelock guard).
    pub max_steps: u64,
    /// How many recent stores a `Relaxed` load may observe.
    pub value_buffer: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            preemption_bound: 2,
            max_iterations: 20_000,
            max_steps: 100_000,
            value_buffer: 3,
        }
    }
}

/// The model checker. Runs a scenario closure under every schedule the
/// bounds allow and reports the first failure with a minimized trace.
pub struct Checker {
    cfg: CheckerConfig,
}

struct IterOut {
    path: Vec<Choice>,
    visited: HashSet<u64>,
    pruned: bool,
    failure: Option<(FailureKind, String)>,
    trace: Vec<Event>,
}

impl Checker {
    /// Checker with the given bounds.
    pub fn new(cfg: CheckerConfig) -> Self {
        Checker { cfg }
    }

    /// Checker with default bounds.
    pub fn with_defaults() -> Self {
        Checker::new(CheckerConfig::default())
    }

    /// Explore the scenario's interleavings. The closure runs once per
    /// iteration on a fresh model thread (id 0) and must be
    /// deterministic given the schedule.
    pub fn check<F>(&self, scenario: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        let scenario: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
        let mut visited = HashSet::new();
        let mut path: Vec<Choice> = Vec::new();
        let mut forced = 0usize;
        let mut report = Report::default();
        loop {
            let out = self.run_once(scenario.clone(), path, forced, visited, false);
            visited = out.visited;
            report.iterations += 1;
            if out.pruned {
                report.pruned += 1;
            }
            if let Some((kind, msg)) = out.failure {
                let fr = if kind == FailureKind::NonDeterminism {
                    FailureReport {
                        kind,
                        message: msg,
                        trace: out.trace,
                        preemptions: out.path.iter().filter(|c| c.preemptive()).count(),
                        found_after: report.iterations,
                    }
                } else {
                    self.minimize(&scenario, out.path, kind, msg, report.iterations)
                };
                report.failure = Some(fr);
                break;
            }
            path = out.path;
            match self.backtrack(&mut path) {
                Some(new_forced) => forced = new_forced,
                None => break,
            }
            if report.iterations >= self.cfg.max_iterations {
                report.capped = true;
                break;
            }
        }
        report.distinct_states = visited.len();
        report
    }

    fn run_once(
        &self,
        scenario: Arc<dyn Fn() + Send + Sync>,
        path: Vec<Choice>,
        forced: usize,
        visited: HashSet<u64>,
        no_prune: bool,
    ) -> IterOut {
        let exec = Arc::new(Execution {
            state: StdMutex::new(ExecState {
                threads: vec![ThreadSt::new()],
                active: None,
                locks: Vec::new(),
                rws: Vec::new(),
                cvs: Vec::new(),
                atomics: Vec::new(),
                path,
                cursor: 0,
                forced,
                trace: Vec::new(),
                failure: None,
                abort: false,
                pruned: false,
                steps: 0,
                visited,
                no_prune,
                max_steps: self.cfg.max_steps,
                value_buffer: self.cfg.value_buffer,
                real: Vec::new(),
            }),
            cv: StdCondvar::new(),
        });
        let root = thread_shim(exec.clone(), 0, move || scenario());
        {
            let mut st = exec.st();
            st.active = Some(0);
        }
        exec.cv.notify_all();
        {
            let mut st = exec.st();
            while !st.threads.iter().all(|t| t.status == Status::Finished) {
                st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        root.join().ok();
        let handles = std::mem::take(&mut exec.st().real);
        for h in handles {
            h.join().ok();
        }
        let mut st = exec.st();
        IterOut {
            path: std::mem::take(&mut st.path),
            visited: std::mem::take(&mut st.visited),
            pruned: st.pruned,
            failure: st.failure.take(),
            trace: std::mem::take(&mut st.trace),
        }
    }

    /// Advance the DFS frontier: flip the deepest choice that still has
    /// an unexplored alternative within the preemption budget. Returns
    /// the new forced-prefix length, or `None` when exhausted.
    fn backtrack(&self, path: &mut Vec<Choice>) -> Option<usize> {
        for i in (0..path.len()).rev() {
            let before: usize = path[..i].iter().filter(|c| c.preemptive()).count();
            let n_opts = path[i].options.len();
            for pick in path[i].pick + 1..n_opts {
                let extra = usize::from(path[i].preemptive_at(pick));
                if before + extra > self.cfg.preemption_bound {
                    continue;
                }
                path[i].pick = pick;
                path.truncate(i + 1);
                return Some(i + 1);
            }
        }
        None
    }

    /// Greedy schedule minimization: for each preemptive choice (last
    /// first), retry with that choice flipped back to "stay on the
    /// current thread"; keep the flip if the failure still reproduces.
    fn minimize(
        &self,
        scenario: &Arc<dyn Fn() + Send + Sync>,
        path: Vec<Choice>,
        kind: FailureKind,
        msg: String,
        found_after: u64,
    ) -> FailureReport {
        let mut best = path;
        let mut trials = 0usize;
        'outer: loop {
            for i in (0..best.len()).rev() {
                if trials >= 200 {
                    break 'outer;
                }
                if !best[i].preemptive() {
                    continue;
                }
                let cur = best[i].current.expect("preemptive implies current");
                let Some(cur_idx) = best[i].options.iter().position(|&o| o == cur) else {
                    continue;
                };
                let mut cand: Vec<Choice> = best[..=i].to_vec();
                cand[i].pick = cur_idx;
                trials += 1;
                let out = self.run_once(scenario.clone(), cand, i + 1, HashSet::new(), true);
                if let Some((k, _)) = &out.failure {
                    if *k != FailureKind::NonDeterminism {
                        best = out.path;
                        continue 'outer;
                    }
                }
            }
            break;
        }
        // Deterministic final replay to capture the minimized trace.
        let forced = best.len();
        let out = self.run_once(scenario.clone(), best.clone(), forced, HashSet::new(), true);
        let (kind, message) = out.failure.unwrap_or((kind, msg));
        FailureReport {
            kind,
            message,
            trace: out.trace,
            preemptions: best.iter().filter(|c| c.preemptive()).count(),
            found_after,
        }
    }
}
