//! # ddc-model
//!
//! A zero-dependency deterministic concurrency model checker (a
//! mini-[loom]) for the ddc workspace.
//!
//! Scenarios are ordinary closures written against [`sync`] — drop-in
//! mirrors of `std::sync::{Mutex, Condvar, RwLock}`, the atomics, and
//! `thread::{spawn, join}`. [`Checker::check`] runs the closure under
//! every thread interleaving a bounded DFS can reach:
//!
//! * **Schedule points** at every sync operation; one token is passed
//!   between real OS threads so exactly one modeled thread runs at a
//!   time, and the sequence of choices is recorded for replay.
//! * **Bounded preemption**: involuntary switches consume a budget
//!   (default 2); voluntary ones (block, finish) are free.
//! * **State hashing**: a fingerprint of thread positions/observations
//!   plus all lock/condvar/atomic state prunes schedules whose
//!   continuation was already explored.
//! * **Weak memory**: `Relaxed` loads may branch over a bounded buffer
//!   of recent stores (per-location coherent); RMWs and
//!   `Acquire`/`SeqCst` loads always see the newest store.
//! * **Failure replay**: panics, deadlocks, and livelocks are reported
//!   as a *minimized* schedule (preemptions greedily removed while the
//!   failure still reproduces) printed as a per-thread event trace, in
//!   the `ddc-check` shrinker style.
//!
//! Objects created outside the scheduler — or touched from unmodeled
//! threads — degrade to plain `std` behavior, so code built against the
//! facade keeps working in normal runs of a feature-enabled build.
//!
//! ```
//! use ddc_model::{sync, Checker};
//! use std::sync::Arc;
//! use std::sync::atomic::Ordering;
//!
//! let report = Checker::with_defaults().check(|| {
//!     let counter = Arc::new(sync::atomic::AtomicU64::new(0));
//!     let c2 = counter.clone();
//!     let t = sync::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.passed(), "{report}");
//! ```
//!
//! [loom]: https://docs.rs/loom

#![warn(missing_docs)]
#![warn(clippy::all)]

mod scheduler;
pub mod sync;
mod trace;

pub use scheduler::{Checker, CheckerConfig};
pub use trace::{Event, FailureKind, FailureReport, Report};

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{thread, Condvar, Mutex};
    use super::{Checker, CheckerConfig, FailureKind};
    use std::sync::Arc;

    fn small() -> Checker {
        Checker::new(CheckerConfig {
            max_iterations: 50_000,
            ..CheckerConfig::default()
        })
    }

    /// Two threads doing load-then-store increments lose an update
    /// under the right interleaving; the checker must find it.
    #[test]
    fn finds_racy_counter_lost_update() {
        let report = small().check(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let c2 = counter.clone();
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        });
        let failure = report.failure.expect("checker must find the lost update");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(failure.message.contains("lost update"), "{failure}");
        // The minimal schedule needs exactly one preemption (split the
        // load/store of one thread around the other's increment).
        assert_eq!(failure.preemptions, 1, "{failure}");
        assert!(!failure.trace.is_empty());
    }

    /// The same race is reachable purely through the weak-memory model:
    /// even if the threads run sequentially, a `Relaxed` load may
    /// observe the stale initial value from the store buffer.
    #[test]
    fn finds_stale_relaxed_read() {
        let report = small().check(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let f2 = flag.clone();
            let t = thread::spawn(move || {
                f2.store(1, Ordering::Relaxed);
            });
            t.join().unwrap();
            // Bug: the join ordered the threads, but `Relaxed` gives no
            // memory-visibility guarantee in the model.
            let seen = flag.load(Ordering::Relaxed);
            assert_eq!(seen, 1, "stale relaxed read");
        });
        let failure = report.failure.expect("stale read must be reachable");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(failure.message.contains("stale relaxed read"), "{failure}");
    }

    /// Check-then-wait without holding the lock across the check: the
    /// notify can land between the check and the wait, and the waiter
    /// sleeps forever. The checker reports it as a deadlock.
    #[test]
    fn finds_lost_wakeup_in_unbuffered_handoff() {
        let report = small().check(|| {
            let slot: Arc<(Mutex<Option<u64>>, Condvar)> =
                Arc::new((Mutex::new(None), Condvar::new()));
            let s2 = slot.clone();
            let producer = thread::spawn(move || {
                let (m, cv) = &*s2;
                *m.lock().unwrap() = Some(42);
                cv.notify_one();
            });
            let (m, cv) = &*slot;
            // BUG: the emptiness check releases the lock before wait().
            let empty = m.lock().unwrap().is_none();
            if empty {
                let guard = m.lock().unwrap();
                let guard = cv.wait(guard).unwrap();
                assert_eq!(*guard, Some(42));
            }
            producer.join().unwrap();
        });
        let failure = report.failure.expect("lost wakeup must be found");
        assert_eq!(failure.kind, FailureKind::Deadlock, "{failure}");
        assert!(failure.message.contains("condvar"), "{failure}");
    }

    /// The correct handoff (condition re-checked under the lock, wait
    /// in a loop) passes exhaustively.
    #[test]
    fn correct_handoff_passes() {
        let report = small().check(|| {
            let slot: Arc<(Mutex<Option<u64>>, Condvar)> =
                Arc::new((Mutex::new(None), Condvar::new()));
            let s2 = slot.clone();
            let producer = thread::spawn(move || {
                let (m, cv) = &*s2;
                *m.lock().unwrap() = Some(42);
                cv.notify_one();
            });
            let (m, cv) = &*slot;
            let mut guard = m.lock().unwrap();
            while guard.is_none() {
                guard = cv.wait(guard).unwrap();
            }
            assert_eq!(*guard, Some(42));
            drop(guard);
            producer.join().unwrap();
        });
        assert!(report.passed(), "{report}");
        assert!(!report.capped, "handoff space should be exhausted");
    }

    /// Mutex-protected increments are exhaustively linearizable.
    #[test]
    fn mutex_counter_passes() {
        let report = small().check(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = counter.clone();
                    thread::spawn(move || {
                        let mut g = c.lock().unwrap();
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock().unwrap(), 2);
        });
        assert!(report.passed(), "{report}");
    }

    /// Classic ABBA lock-order inversion is reported as a deadlock with
    /// both locks named.
    #[test]
    fn finds_abba_deadlock() {
        let report = small().check(|| {
            let a = Arc::new(Mutex::new(0u64));
            let b = Arc::new(Mutex::new(0u64));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_ga, _gb));
            t.join().unwrap();
        });
        let failure = report.failure.expect("ABBA must deadlock somewhere");
        assert_eq!(failure.kind, FailureKind::Deadlock);
        assert!(failure.message.contains("mutex"), "{failure}");
    }

    /// Deterministic: two runs of the same buggy scenario produce the
    /// identical minimized schedule.
    #[test]
    fn exploration_is_deterministic() {
        let scenario = || {
            let counter = Arc::new(AtomicU64::new(0));
            let c2 = counter.clone();
            let t = thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        };
        let r1 = small().check(scenario);
        let r2 = small().check(scenario);
        assert_eq!(r1.iterations, r2.iterations);
        let (f1, f2) = (r1.failure.unwrap(), r2.failure.unwrap());
        assert_eq!(f1.trace, f2.trace);
        assert_eq!(f1.found_after, f2.found_after);
    }

    /// Off-scheduler, the facade behaves exactly like std (this test
    /// itself is not run under the checker).
    #[test]
    fn facade_works_off_scheduler() {
        let m = Mutex::new(5u64);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 6);
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
        assert_eq!(a.load(Ordering::Acquire), 3);
        let h = thread::spawn(|| 7u64);
        assert_eq!(h.join().unwrap(), 7);
    }

    /// RwLock: writer exclusion is enforced; concurrent reads allowed.
    #[test]
    fn rwlock_write_exclusion_passes() {
        use super::sync::RwLock;
        let report = small().check(|| {
            let cell = Arc::new(RwLock::new((0u64, 0u64)));
            let c2 = cell.clone();
            let w = thread::spawn(move || {
                let mut g = c2.write().unwrap();
                g.0 += 1;
                // A torn write would be observable if a reader could
                // interleave between these two field updates.
                g.1 += 1;
            });
            let g = cell.read().unwrap();
            assert_eq!(g.0, g.1, "torn read");
            drop(g);
            w.join().unwrap();
        });
        assert!(report.passed(), "{report}");
    }
}
