//! Execution traces: the per-iteration event log and the printable
//! failure report produced after schedule minimization.
//!
//! The format mirrors the `ddc-check` shrinker style: a failing run is
//! reported as the *minimal* schedule (fewest preemptive context
//! switches that still reproduce the failure) printed one event per
//! line, so it can be read top-to-bottom as "what each thread did, in
//! order".

use std::fmt;

/// One scheduler-visible operation performed by a modeled thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Model thread id (0 is the root thread running the scenario).
    pub thread: usize,
    /// Human-readable description of the operation (`lock m2`,
    /// `load(Relaxed) a0 -> 1`, ...).
    pub op: String,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t{}] {}", self.thread, self.op)
    }
}

/// Why a model iteration failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A modeled thread panicked (assertion failure in the scenario).
    Panic,
    /// All live threads were blocked on model objects.
    Deadlock,
    /// The per-iteration step budget was exhausted (livelock guard).
    StepBudget,
    /// The scenario behaved differently on replay of a recorded
    /// schedule — scenarios must be deterministic given the schedule.
    NonDeterminism,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic => write!(f, "panic"),
            FailureKind::Deadlock => write!(f, "deadlock"),
            FailureKind::StepBudget => write!(f, "step budget exceeded"),
            FailureKind::NonDeterminism => write!(f, "non-deterministic scenario"),
        }
    }
}

/// A failing schedule, minimized and ready to print.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// What went wrong.
    pub kind: FailureKind,
    /// Panic payload / blocked-thread summary.
    pub message: String,
    /// The full event log of the minimized failing run.
    pub trace: Vec<Event>,
    /// Preemptive context switches left after minimization.
    pub preemptions: usize,
    /// Iterations the checker ran before hitting this failure.
    pub found_after: u64,
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model failure: {} ({}) after {} interleavings; minimal schedule \
             ({} preemption{}):",
            self.kind,
            self.message,
            self.found_after,
            self.preemptions,
            if self.preemptions == 1 { "" } else { "s" }
        )?;
        let mut prev = usize::MAX;
        for ev in &self.trace {
            // Blank line at every context switch so the schedule's
            // shape is visible at a glance.
            if ev.thread != prev && prev != usize::MAX {
                writeln!(f, "  ----")?;
            }
            prev = ev.thread;
            writeln!(f, "  {ev}")?;
        }
        Ok(())
    }
}

/// Exploration statistics for one `Checker::check` call.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Completed iterations (each is one distinct interleaving, or a
    /// prefix proven redundant by the state hash).
    pub iterations: u64,
    /// Iterations cut short because every reachable continuation had
    /// already been visited (state-hash prune).
    pub pruned: u64,
    /// Distinct global states seen at schedule points.
    pub distinct_states: usize,
    /// Whether exploration stopped at the iteration cap rather than
    /// exhausting the (bounded) schedule space.
    pub capped: bool,
    /// The first failure found, if any, with a minimized trace.
    pub failure: Option<FailureReport>,
}

impl Report {
    /// True when exploration finished without finding any failure.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} interleavings ({} pruned, {} distinct states{})",
            self.iterations,
            self.pruned,
            self.distinct_states,
            if self.capped {
                ", capped"
            } else {
                ", exhausted"
            }
        )?;
        if let Some(fail) = &self.failure {
            write!(f, "\n{fail}")?;
        }
        Ok(())
    }
}
