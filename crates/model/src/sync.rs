//! Model-aware drop-in replacements for the `std::sync` primitives the
//! workspace uses, plus `thread::{spawn, JoinHandle}`.
//!
//! Every type is *dual-mode*: an object created on a modeled thread is
//! registered with the scheduler and all its operations become schedule
//! points; an object created outside the scheduler (or touched from an
//! unmodeled thread) behaves exactly like its `std` counterpart. This
//! keeps feature-enabled builds fully functional for ordinary tests and
//! lets the CLI run normally even when compiled with the model crate.
//!
//! API surface intentionally mirrors `std` (including `LockResult` /
//! `PoisonError`) so `core::sync` can re-export either implementation
//! unchanged.

use crate::scheduler::{self, cur_ctx, Ctx, Execution};
use std::sync::{
    Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    PoisonError, RwLock as StdRwLock, RwLockReadGuard as StdRwLockReadGuard,
    RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Registration of one model object: which execution owns it and its
/// per-category id.
struct Reg {
    exec: Arc<Execution>,
    id: usize,
}

impl Reg {
    /// The current context *if* it belongs to the same execution as
    /// this object (a leaked object from a previous iteration must not
    /// feed a stale scheduler).
    fn ctx(&self) -> Option<Ctx> {
        cur_ctx().filter(|c| Arc::ptr_eq(&c.exec, &self.exec))
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-aware [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    reg: Option<Reg>,
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// Whether the model currently records this thread as the holder.
    tracked: bool,
}

impl<T> Mutex<T> {
    /// Create a mutex; registers with the scheduler when called on a
    /// modeled thread.
    pub fn new(value: T) -> Self {
        let reg = cur_ctx().map(|ctx| Reg {
            id: scheduler::register_lock(&ctx.exec),
            exec: ctx.exec,
        });
        Mutex {
            reg,
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (a schedule point under the model).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(reg) = &self.reg {
            if let Some(ctx) = reg.ctx() {
                scheduler::mutex_lock(&ctx, reg.id);
                let inner = self
                    .inner
                    .try_lock()
                    .unwrap_or_else(|_| panic!("model mutex m{} contended for real", reg.id));
                return Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    tracked: true,
                });
            }
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                tracked: false,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                tracked: false,
            })),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before telling the scheduler, so that
        // whichever thread the scheduler runs next can take it.
        self.inner = None;
        if !self.tracked {
            return;
        }
        let reg = self
            .lock
            .reg
            .as_ref()
            .expect("tracked guard has registration");
        match reg.ctx() {
            Some(ctx) => scheduler::mutex_unlock(&ctx, reg.id),
            None => scheduler::mutex_unlock_quiet(&reg.exec, reg.id),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Model-aware [`std::sync::Condvar`]. `notify` with no waiters is a
/// lost wakeup, exactly as with the real primitive.
pub struct Condvar {
    reg: Option<Reg>,
    inner: StdCondvar,
}

impl Condvar {
    /// Create a condvar; registers with the scheduler when called on a
    /// modeled thread.
    pub fn new() -> Self {
        let reg = cur_ctx().map(|ctx| Reg {
            id: scheduler::register_cv(&ctx.exec),
            exec: ctx.exec,
        });
        Condvar {
            reg,
            inner: StdCondvar::new(),
        }
    }

    /// Release the guard's mutex, wait to be notified, reacquire.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.tracked {
            if let Some(reg) = &self.reg {
                if let Some(ctx) = reg.ctx() {
                    let lock = guard.lock;
                    let lock_reg = lock.reg.as_ref().expect("tracked guard has registration");
                    let lock_id = lock_reg.id;
                    // Defuse: drop the real guard without a model
                    // release — cv_wait does release + reacquire.
                    guard.tracked = false;
                    drop(guard);
                    scheduler::cv_wait(&ctx, reg.id, lock_id);
                    let inner = lock
                        .inner
                        .try_lock()
                        .unwrap_or_else(|_| panic!("model mutex m{lock_id} contended for real"));
                    return Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                        tracked: true,
                    });
                }
            }
        }
        // std path.
        let lock = guard.lock;
        let inner = guard.inner.take().expect("guard taken");
        guard.tracked = false; // neutralize Drop bookkeeping
        drop(guard);
        match self.inner.wait(inner) {
            Ok(g) => Ok(MutexGuard {
                lock,
                inner: Some(g),
                tracked: false,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock,
                inner: Some(p.into_inner()),
                tracked: false,
            })),
        }
    }

    /// Wake one waiter (FIFO under the model).
    pub fn notify_one(&self) {
        if let Some(reg) = &self.reg {
            if let Some(ctx) = reg.ctx() {
                scheduler::cv_notify(&ctx, reg.id, false);
                return;
            }
        }
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        if let Some(reg) = &self.reg {
            if let Some(ctx) = reg.ctx() {
                scheduler::cv_notify(&ctx, reg.id, true);
                return;
            }
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Model-aware [`std::sync::RwLock`].
pub struct RwLock<T: ?Sized> {
    reg: Option<Reg>,
    inner: StdRwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockReadGuard<'a, T>>,
    tracked: bool,
    thread: usize,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
    tracked: bool,
    thread: usize,
}

impl<T> RwLock<T> {
    /// Create an rwlock; registers with the scheduler when called on a
    /// modeled thread.
    pub fn new(value: T) -> Self {
        let reg = cur_ctx().map(|ctx| Reg {
            id: scheduler::register_rw(&ctx.exec),
            exec: ctx.exec,
        });
        RwLock {
            reg,
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock (a schedule point under the model).
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some(reg) = &self.reg {
            if let Some(ctx) = reg.ctx() {
                scheduler::rw_lock(&ctx, reg.id, false);
                let inner = self
                    .inner
                    .try_read()
                    .unwrap_or_else(|_| panic!("model rwlock r{} contended for real", reg.id));
                return Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(inner),
                    tracked: true,
                    thread: ctx.id,
                });
            }
        }
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                lock: self,
                inner: Some(g),
                tracked: false,
                thread: 0,
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                lock: self,
                inner: Some(p.into_inner()),
                tracked: false,
                thread: 0,
            })),
        }
    }

    /// Acquire the exclusive write lock (a schedule point under the
    /// model).
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some(reg) = &self.reg {
            if let Some(ctx) = reg.ctx() {
                scheduler::rw_lock(&ctx, reg.id, true);
                let inner = self
                    .inner
                    .try_write()
                    .unwrap_or_else(|_| panic!("model rwlock r{} contended for real", reg.id));
                return Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(inner),
                    tracked: true,
                    thread: ctx.id,
                });
            }
        }
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(g),
                tracked: false,
                thread: 0,
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                lock: self,
                inner: Some(p.into_inner()),
                tracked: false,
                thread: 0,
            })),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

macro_rules! rw_guard_impls {
    ($guard:ident, $write:expr) => {
        impl<T: ?Sized> std::ops::Deref for $guard<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.inner.as_ref().expect("guard taken")
            }
        }

        impl<T: ?Sized> Drop for $guard<'_, T> {
            fn drop(&mut self) {
                self.inner = None;
                if !self.tracked {
                    return;
                }
                let reg = self
                    .lock
                    .reg
                    .as_ref()
                    .expect("tracked guard has registration");
                match reg.ctx() {
                    Some(ctx) => scheduler::rw_unlock(&ctx, reg.id, $write),
                    None => scheduler::rw_unlock_quiet(&reg.exec, reg.id, self.thread, $write),
                }
            }
        }
    };
}

rw_guard_impls!(RwLockReadGuard, false);
rw_guard_impls!(RwLockWriteGuard, true);

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Model-aware atomics. Values are stored as `u64` bit patterns in the
/// scheduler; only `Relaxed` *loads* get weak-memory treatment
/// (store-buffer value sets) — RMWs and `Acquire`/`SeqCst` loads are
/// always coherent with the newest store.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::{cur_ctx, scheduler, Reg};

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty, $from_bits:expr, $to_bits:expr) => {
            /// Model-aware atomic integer; see [module docs](self).
            pub struct $name {
                reg: Option<Reg>,
                inner: $std,
            }

            impl $name {
                /// Create an atomic; registers with the scheduler when
                /// called on a modeled thread.
                pub fn new(value: $prim) -> Self {
                    let reg = cur_ctx().map(|ctx| Reg {
                        id: scheduler::register_atomic(&ctx.exec, ($to_bits)(value)),
                        exec: ctx.exec,
                    });
                    Self {
                        reg,
                        inner: <$std>::new(value),
                    }
                }

                /// Atomic load; `Relaxed` may observe stale buffered
                /// stores under the model.
                pub fn load(&self, order: Ordering) -> $prim {
                    if let Some(reg) = &self.reg {
                        return match reg.ctx() {
                            Some(ctx) => ($from_bits)(scheduler::atomic_load(&ctx, reg.id, order)),
                            None => ($from_bits)(scheduler::atomic_load_quiet(&reg.exec, reg.id)),
                        };
                    }
                    self.inner.load(order)
                }

                /// Atomic store.
                pub fn store(&self, value: $prim, order: Ordering) {
                    if let Some(reg) = &self.reg {
                        match reg.ctx() {
                            Some(ctx) => {
                                scheduler::atomic_store(&ctx, reg.id, ($to_bits)(value), order)
                            }
                            None => {
                                scheduler::atomic_store_quiet(&reg.exec, reg.id, ($to_bits)(value))
                            }
                        }
                        return;
                    }
                    self.inner.store(value, order)
                }

                /// Atomic add; returns the previous value.
                pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                    self.rmw(
                        order,
                        "fetch_add",
                        move |v| v.wrapping_add(value),
                        move |i| i.fetch_add(value, order),
                    )
                }

                /// Atomic subtract; returns the previous value.
                pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                    self.rmw(
                        order,
                        "fetch_sub",
                        move |v| v.wrapping_sub(value),
                        move |i| i.fetch_sub(value, order),
                    )
                }

                /// Atomic max; returns the previous value.
                pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                    self.rmw(
                        order,
                        "fetch_max",
                        move |v| v.max(value),
                        move |i| i.fetch_max(value, order),
                    )
                }

                /// Atomic swap; returns the previous value.
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    self.rmw(order, "swap", move |_| value, move |i| i.swap(value, order))
                }

                fn rmw(
                    &self,
                    _order: Ordering,
                    desc: &str,
                    model_op: impl FnOnce($prim) -> $prim,
                    std_op: impl FnOnce(&$std) -> $prim,
                ) -> $prim {
                    if let Some(reg) = &self.reg {
                        let op = move |bits: u64| ($to_bits)(model_op(($from_bits)(bits)));
                        return match reg.ctx() {
                            Some(ctx) => {
                                ($from_bits)(scheduler::atomic_rmw(&ctx, reg.id, desc, op))
                            }
                            None => {
                                ($from_bits)(scheduler::atomic_rmw_quiet(&reg.exec, reg.id, op))
                            }
                        };
                    }
                    std_op(&self.inner)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    model_atomic!(
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64,
        (|bits: u64| bits),
        (|v: u64| v)
    );
    model_atomic!(
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        (|bits: u64| bits as usize),
        (|v: usize| v as u64)
    );
    model_atomic!(
        AtomicI64,
        std::sync::atomic::AtomicI64,
        i64,
        (|bits: u64| bits as i64),
        (|v: i64| v as u64)
    );
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Model-aware thread spawn/join.
pub mod thread {
    use super::{cur_ctx, scheduler, Execution};
    use std::sync::{Arc, Mutex as StdMutex};

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            exec: Arc<Execution>,
            id: usize,
            slot: Arc<StdMutex<Option<T>>>,
        },
    }

    /// Handle to a spawned thread; mirrors [`std::thread::JoinHandle`].
    pub struct JoinHandle<T>(Inner<T>);

    /// Spawn a thread. On a modeled thread the child joins the
    /// scheduler (its id appears in traces as `tN`); otherwise this is
    /// `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some(ctx) = cur_ctx() {
            let slot = Arc::new(StdMutex::new(None));
            let slot2 = slot.clone();
            let id = scheduler::spawn_thread(&ctx, move || {
                let out = f();
                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
            JoinHandle(Inner::Model {
                exec: ctx.exec,
                id,
                slot,
            })
        } else {
            JoinHandle(Inner::Std(std::thread::spawn(f)))
        }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model { exec, id, slot } => {
                    let ctx = cur_ctx()
                        .filter(|c| Arc::ptr_eq(&c.exec, &exec))
                        .expect("model JoinHandle joined off-scheduler");
                    scheduler::thread_join(&ctx, id);
                    match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                        Some(v) => Ok(v),
                        None => Err(Box::new("model thread produced no result")),
                    }
                }
            }
        }
    }

    /// Voluntarily yield: a pure schedule point under the model.
    pub fn yield_now() {
        if let Some(ctx) = cur_ctx() {
            scheduler::schedule_point(&ctx);
        } else {
            std::thread::yield_now();
        }
    }
}
