//! The Prefix Sum method of Ho, Agrawal, Megiddo and Srikant \[HAMS97\]
//! (paper §2, Figure 3).
//!
//! An array `P` of the same shape as `A` stores
//! `P[x] = SUM(A[0,…,0] : A[x])`; any prefix query is a single read and any
//! range query at most `2^d` reads (Figure 4). The price is the cascading
//! update of Figure 5: adding `δ` to `A[x]` must add `δ` to *every* `P`
//! cell that dominates `x`, which is the entire array when `x = A[0,…,0]`
//! — `O(n^d)` and the motivating pathology for the Dynamic Data Cube.

use ddc_array::{AbelianGroup, NdArray, OpCounter, RangeSumEngine, Region, Shape};

/// Range-sum engine storing the cumulative array `P` of \[HAMS97\].
///
/// # Examples
///
/// ```
/// use ddc_array::{NdArray, RangeSumEngine, Region};
/// use ddc_baselines::PrefixSumEngine;
///
/// let a = NdArray::from_rows(&[vec![1i64, 2], vec![3, 4]]);
/// let mut e = PrefixSumEngine::from_array(&a);
/// assert_eq!(e.prefix_sum(&[1, 1]), 10);          // one array read
/// e.apply_delta(&[0, 0], 5);                      // O(n^d) cascade
/// assert_eq!(e.range_sum(&Region::cell(&[0, 0])), 6);
/// ```
#[derive(Debug)]
pub struct PrefixSumEngine<G: AbelianGroup> {
    p: NdArray<G>,
    counter: OpCounter,
}

impl<G: AbelianGroup> Clone for PrefixSumEngine<G> {
    fn clone(&self) -> Self {
        Self {
            p: self.p.clone(),
            counter: OpCounter::new(),
        }
    }
}

/// Computes the full prefix-sum array of `a` in `O(d · n^d)` by one
/// running-sum sweep per axis — the standard construction of `P`.
pub fn build_prefix_array<G: AbelianGroup>(a: &NdArray<G>) -> NdArray<G> {
    let shape = a.shape().clone();
    let mut p = a.clone();
    let d = shape.ndim();
    let mut point = vec![0usize; d];
    for axis in 0..d {
        // Add the predecessor along `axis` to every cell, in row-major
        // order (predecessors are always visited first).
        let mut iter = shape.iter_points();
        while iter.next_into(&mut point) {
            if point[axis] == 0 {
                continue;
            }
            point[axis] -= 1;
            let prev = p.get_linear(shape.linear(&point));
            point[axis] += 1;
            let idx = shape.linear(&point);
            p.set_linear(idx, p.get_linear(idx).add(prev));
        }
    }
    p
}

impl<G: AbelianGroup> PrefixSumEngine<G> {
    /// An all-zero cube of the given shape.
    pub fn zeroed(shape: Shape) -> Self {
        Self {
            p: NdArray::zeroed(shape),
            counter: OpCounter::new(),
        }
    }

    /// Precomputes `P` from the source array `A`.
    pub fn from_array(a: &NdArray<G>) -> Self {
        Self {
            p: build_prefix_array(a),
            counter: OpCounter::new(),
        }
    }

    /// Read-only view of the cumulative array `P` (Figure 3).
    pub fn prefix_array(&self) -> &NdArray<G> {
        &self.p
    }
}

impl<G: AbelianGroup> RangeSumEngine<G> for PrefixSumEngine<G> {
    fn name(&self) -> &'static str {
        "prefix-sum"
    }

    fn shape(&self) -> &Shape {
        self.p.shape()
    }

    fn prefix_sum(&self, point: &[usize]) -> G {
        self.counter.read(1);
        self.p.get(point)
    }

    fn apply_delta(&mut self, point: &[usize], delta: G) {
        self.shape().check_point(point);
        if delta.is_zero() {
            return;
        }
        // The Figure 5 cascade: every dominating cell absorbs the delta.
        let hi: Vec<usize> = self.shape().dims().iter().map(|&n| n - 1).collect();
        let dominated = Region::new(point, &hi);
        let mut iter = dominated.iter_points();
        let mut buf = vec![0usize; self.shape().ndim()];
        let mut written = 0u64;
        while iter.next_into(&mut buf) {
            self.p.add_assign(&buf, delta);
            written += 1;
        }
        self.counter.write(written);
    }

    /// The batch path the method was designed for: accumulate the deltas
    /// into a scratch array, prefix-sum it once, and add it to `P` —
    /// `O((d+1)·n^d)` for the whole batch instead of `O(B·n^d)`.
    fn apply_batch(&mut self, updates: &[(Vec<usize>, G)]) {
        // Small batches: the per-update cascade touches fewer cells.
        if updates.len() <= 2 {
            for (p, delta) in updates {
                self.apply_delta(p, *delta);
            }
            return;
        }
        let shape = self.p.shape().clone();
        let mut deltas = NdArray::<G>::zeroed(shape.clone());
        for (p, delta) in updates {
            shape.check_point(p);
            deltas.add_assign(p, *delta);
        }
        let dp = build_prefix_array(&deltas);
        for i in 0..shape.cells() {
            let v = self.p.get_linear(i).add(dp.get_linear(i));
            self.p.set_linear(i, v);
        }
        self.counter.write(shape.cells() as u64);
    }

    fn counter(&self) -> &OpCounter {
        &self.counter
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.p.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NdArray<i64> {
        NdArray::from_fn(Shape::new(&[6, 7]), |p| (p[0] * 7 + p[1]) as i64 % 5 - 2)
    }

    #[test]
    fn build_matches_brute_force() {
        let a = sample();
        let p = build_prefix_array(&a);
        for point in a.shape().iter_points() {
            assert_eq!(p.get(&point), a.prefix_sum(&point), "P{point:?}");
        }
    }

    #[test]
    fn three_dimensional_build() {
        let a = NdArray::from_fn(Shape::cube(3, 4), |p| (p[0] + 2 * p[1] + 3 * p[2]) as i64);
        let p = build_prefix_array(&a);
        for point in a.shape().iter_points() {
            assert_eq!(p.get(&point), a.prefix_sum(&point));
        }
    }

    #[test]
    fn constant_time_query() {
        let e = PrefixSumEngine::from_array(&sample());
        e.reset_ops();
        let _ = e.prefix_sum(&[5, 6]);
        assert_eq!(e.ops().reads, 1);
        e.reset_ops();
        let _ = e.range_sum(&Region::new(&[1, 1], &[4, 5]));
        assert_eq!(e.ops().reads, 4); // 2^d corners
    }

    #[test]
    fn update_cascade_touches_dominated_cells() {
        // Figure 5: updating A[1,1] rewrites the shaded dominated region.
        let mut e = PrefixSumEngine::from_array(&sample());
        e.reset_ops();
        e.apply_delta(&[1, 1], 3);
        // Dominated region of [1,1] in 6×7: 5 × 6 = 30 cells.
        assert_eq!(e.ops().writes, 30);
        // Worst case: updating A[0,0] rewrites the whole array.
        e.reset_ops();
        e.apply_delta(&[0, 0], 1);
        assert_eq!(e.ops().writes, 42);
    }

    #[test]
    fn queries_stay_correct_after_updates() {
        let a = sample();
        let mut e = PrefixSumEngine::from_array(&a);
        let mut reference = a.clone();
        e.apply_delta(&[0, 0], 10);
        reference.add_assign(&[0, 0], 10);
        e.apply_delta(&[5, 6], -4);
        reference.add_assign(&[5, 6], -4);
        e.apply_delta(&[2, 3], 7);
        reference.add_assign(&[2, 3], 7);
        for point in reference.shape().iter_points() {
            assert_eq!(e.prefix_sum(&point), reference.prefix_sum(&point));
        }
        let r = Region::new(&[1, 2], &[4, 4]);
        assert_eq!(e.range_sum(&r), reference.region_sum(&r));
    }

    #[test]
    fn cell_recovered_from_p_alone() {
        let a = sample();
        let e = PrefixSumEngine::from_array(&a);
        for point in a.shape().iter_points() {
            assert_eq!(e.cell(&point), a.get(&point));
        }
    }

    #[test]
    fn batch_equals_sequential() {
        let a = sample();
        let mut batched = PrefixSumEngine::from_array(&a);
        let mut sequential = batched.clone();
        let updates: Vec<(Vec<usize>, i64)> = (0..20)
            .map(|i| (vec![i % 6, (i * 3) % 7], (i as i64) - 10))
            .collect();
        batched.apply_batch(&updates);
        for (p, delta) in &updates {
            sequential.apply_delta(p, *delta);
        }
        for point in a.shape().iter_points() {
            assert_eq!(batched.prefix_sum(&point), sequential.prefix_sum(&point));
        }
    }

    #[test]
    fn batch_cost_is_one_rebuild() {
        let mut e = PrefixSumEngine::<i64>::zeroed(Shape::cube(2, 32));
        let updates: Vec<(Vec<usize>, i64)> = (0..100).map(|i| (vec![0, i % 32], 1i64)).collect();
        e.reset_ops();
        e.apply_batch(&updates);
        let batched = e.ops().writes;
        // Sequential worst-ish case: each update near the origin cascades
        // through ~the whole array: ≥ 100 × 1024/2 ≫ one rebuild of 1024.
        assert_eq!(batched, 1024);
    }

    #[test]
    fn set_on_zeroed_cube() {
        let mut e = PrefixSumEngine::<i64>::zeroed(Shape::cube(2, 4));
        assert_eq!(e.set(&[1, 1], 5), 0);
        assert_eq!(e.set(&[1, 1], 2), 5);
        assert_eq!(e.prefix_sum(&[3, 3]), 2);
    }
}
