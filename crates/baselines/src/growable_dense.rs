//! The §5 counterfactual: a prefix-sum cube that grows by rebuilding.
//!
//! "Since empty regions are not allowed with these methods, the creation
//! of cell * forces the further creation of all cells in the shaded
//! region" (§5, Figure 16). [`GrowablePrefixSum`] is that behaviour made
//! concrete: it keeps a dense prefix-sum array over the bounding box of
//! everything seen so far, and whenever a cell lands outside, it
//! materializes the enlarged box and recomputes every cell — the cost the
//! Dynamic Data Cube's re-rooting growth avoids. Used as the measured
//! baseline in the `growth` experiment.

use ddc_array::{AbelianGroup, NdArray, OpCounter, Region, Shape};

use crate::prefix_sum::build_prefix_array;

/// A dense, bounding-box prefix-sum cube over signed coordinates.
#[derive(Debug)]
pub struct GrowablePrefixSum<G: AbelianGroup> {
    /// Logical coordinate of cell (0,…,0) of the dense box.
    origin: Vec<i64>,
    /// Raw cells (kept so rebuilds are possible).
    a: NdArray<G>,
    /// The prefix-sum array over `a`.
    p: NdArray<G>,
    counter: OpCounter,
}

impl<G: AbelianGroup> GrowablePrefixSum<G> {
    /// An empty 1-cell cube anchored at `origin`.
    pub fn new(origin: &[i64]) -> Self {
        let shape = Shape::new(&vec![1; origin.len()]);
        Self {
            origin: origin.to_vec(),
            a: NdArray::zeroed(shape.clone()),
            p: NdArray::zeroed(shape),
            counter: OpCounter::new(),
        }
    }

    /// Dimensionality.
    pub fn ndim(&self) -> usize {
        self.origin.len()
    }

    /// Current dense extent per dimension.
    pub fn extent(&self) -> &[usize] {
        self.a.shape().dims()
    }

    /// Logical low corner of the dense box.
    pub fn origin(&self) -> &[i64] {
        &self.origin
    }

    /// Cells currently materialized (the §5 storage cost).
    pub fn materialized_cells(&self) -> usize {
        // Raw + prefix array.
        2 * self.a.shape().cells()
    }

    /// Heap bytes of both arrays.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.a.heap_bytes() + self.p.heap_bytes()
    }

    fn to_internal(&self, logical: &[i64]) -> Option<Vec<usize>> {
        let mut out = Vec::with_capacity(self.ndim());
        for ((&c, &o), &e) in logical
            .iter()
            .zip(self.origin.iter())
            .zip(self.extent().iter())
        {
            let rel = c - o;
            if rel < 0 || rel as usize >= e {
                return None;
            }
            out.push(rel as usize);
        }
        Some(out)
    }

    /// Adds `delta` at signed `logical`, enlarging (and rebuilding) the
    /// dense box if the cell falls outside it.
    pub fn add(&mut self, logical: &[i64], delta: G) {
        assert_eq!(logical.len(), self.ndim());
        if delta.is_zero() {
            return;
        }
        if self.to_internal(logical).is_none() {
            self.grow_to_cover(logical);
        }
        let p = self.to_internal(logical).expect("covered after growth");
        self.a.add_assign(&p, delta);
        // Cascade into the prefix array (Figure 5).
        let hi: Vec<usize> = self.extent().iter().map(|&n| n - 1).collect();
        let dominated = Region::new(&p, &hi);
        let mut written = 0u64;
        let mut buf = vec![0usize; self.ndim()];
        let mut iter = dominated.iter_points();
        while iter.next_into(&mut buf) {
            self.p.add_assign(&buf, delta);
            written += 1;
        }
        self.counter.write(written + 1);
    }

    /// Enlarges the box to cover `logical`: every cell of the new box is
    /// created and the prefix array fully recomputed — the Figure 16
    /// forced materialization.
    fn grow_to_cover(&mut self, logical: &[i64]) {
        let d = self.ndim();
        let mut new_origin = Vec::with_capacity(d);
        let mut new_dims = Vec::with_capacity(d);
        for ((&c, &o), &e) in logical
            .iter()
            .zip(self.origin.iter())
            .zip(self.extent().iter())
        {
            let lo = o.min(c);
            let hi_excl = (o + e as i64).max(c + 1);
            new_origin.push(lo);
            new_dims.push((hi_excl - lo) as usize);
        }
        let new_shape = Shape::new(&new_dims);
        let mut new_a = NdArray::<G>::zeroed(new_shape);
        // Copy existing raw cells at their shifted positions.
        let shift: Vec<usize> = (0..d)
            .map(|axis| (self.origin[axis] - new_origin[axis]) as usize)
            .collect();
        let mut buf = vec![0usize; d];
        let mut dst = vec![0usize; d];
        let mut iter = self.a.shape().iter_points();
        while iter.next_into(&mut buf) {
            let v = self.a.get(&buf);
            if !v.is_zero() {
                for (o, (&c, &s)) in dst.iter_mut().zip(buf.iter().zip(shift.iter())) {
                    *o = c + s;
                }
                new_a.set(&dst, v);
            }
        }
        // Full rebuild of the prefix array: every cell of the enlarged
        // box is written at least once.
        self.counter.write(new_a.shape().cells() as u64);
        self.p = build_prefix_array(&new_a);
        self.a = new_a;
        self.origin = new_origin;
    }

    /// Range sum over the closed logical box `[lo, hi]` (zero outside).
    pub fn range_sum(&self, lo: &[i64], hi: &[i64]) -> G {
        let d = self.ndim();
        let mut clo = Vec::with_capacity(d);
        let mut chi = Vec::with_capacity(d);
        for axis in 0..d {
            let o = self.origin[axis];
            let e = self.extent()[axis] as i64;
            let l = lo[axis].max(o);
            let h = hi[axis].min(o + e - 1);
            if l > h {
                return G::ZERO;
            }
            clo.push((l - o) as usize);
            chi.push((h - o) as usize);
        }
        let region = Region::new(&clo, &chi);
        let mut acc = G::ZERO;
        for term in region.prefix_decomposition() {
            self.counter.read(1);
            let v = self.p.get(&term.corner);
            acc = if term.sign > 0 {
                acc.add(v)
            } else {
                acc.sub(v)
            };
        }
        acc
    }

    /// Sum of everything.
    pub fn total(&self) -> G {
        let corner: Vec<usize> = self.extent().iter().map(|&n| n - 1).collect();
        self.p.get(&corner)
    }

    /// The operation counter (growth rebuilds bill every created cell).
    pub fn counter(&self) -> &OpCounter {
        &self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_and_answers_like_a_reference() {
        let mut g = GrowablePrefixSum::<i64>::new(&[0, 0]);
        g.add(&[0, 0], 5);
        g.add(&[-3, 2], 7);
        g.add(&[10, -10], 1);
        assert_eq!(g.total(), 13);
        assert_eq!(g.range_sum(&[-5, 0], &[0, 5]), 12);
        assert_eq!(g.range_sum(&[10, -10], &[10, -10]), 1);
        assert_eq!(g.origin(), &[-3, -10]);
        assert_eq!(g.extent(), &[14, 13]);
    }

    #[test]
    fn growth_bills_the_whole_bounding_box() {
        let mut g = GrowablePrefixSum::<i64>::new(&[0]);
        g.add(&[0], 1);
        g.counter().reset();
        g.add(&[999], 1); // forces a 1000-cell box
        let w = g.counter().snapshot().writes;
        assert!(w >= 1000, "growth wrote only {w} cells");
        assert_eq!(g.materialized_cells(), 2000);
    }

    #[test]
    fn repeated_updates_after_growth_stay_correct() {
        let mut g = GrowablePrefixSum::<i64>::new(&[5, 5]);
        g.add(&[5, 5], 1);
        g.add(&[0, 9], 2);
        g.add(&[5, 5], 3);
        assert_eq!(g.range_sum(&[5, 5], &[5, 5]), 4);
        assert_eq!(g.total(), 6);
    }
}
