//! The Relative Prefix Sum method \[GAES99\] (paper §2).
//!
//! RPS keeps the `O(1)` queries of the prefix-sum array while bounding the
//! Figure-5 cascade to `O(n^{d/2})` by partitioning `A` into blocks of
//! side `k = ⌈√n⌉` and splitting the global prefix into
//!
//! * a **relative prefix** `RP[x] = SUM(A[anchor(x)] : A[x])`, local to
//!   `x`'s block, plus
//! * **overlay values** that carry the contribution of everything before
//!   the block.
//!
//! The original RPS paper is not part of the supplied text, so this module
//! reproduces the method from its published contract (see DESIGN.md §5.3):
//! for every nonempty subset `S` of the dimensions we store
//!
//! ```text
//! V_S[b, y] = SUM( Π_{i∈S} [0 .. a_i−1]  ×  Π_{i∉S} [a_i .. y_i] )
//! ```
//!
//! indexed by block number `b_i` for dimensions in `S` and by cell
//! coordinate `y_i` (within any block) otherwise, with `a_i` the block
//! anchor. A prefix query reads `RP[x]` plus one `V_S` per nonempty `S` —
//! `2^d` reads. An update touches `k^d` `RP` cells in its own block and,
//! per subset, `Π_{i∈S}(n_i/k_i) · Π_{i∉S}(k_i)` overlay entries — all
//! `O(n^{d/2})` at `k = √n`, matching the published complexity.

use ddc_array::{AbelianGroup, NdArray, OpCounter, RangeSumEngine, Region, Shape};

use crate::prefix_sum::build_prefix_array;

/// One overlay family `V_S`, for a fixed nonempty subset `S` (bitmask) of
/// the dimensions.
#[derive(Debug, Clone)]
struct OverlayFamily<G> {
    /// Bit `i` set ⇔ dimension `i` contributes its "everything before the
    /// block" slab to the stored regions.
    mask: u32,
    /// Value array: dimension `i` is indexed by block number if `i ∈ S`,
    /// by cell coordinate otherwise.
    values: NdArray<G>,
}

/// Range-sum engine implementing the Relative Prefix Sum method.
#[derive(Debug)]
pub struct RelativePrefixEngine<G: AbelianGroup> {
    shape: Shape,
    /// Block side per dimension (`k` in the paper; `⌈√n_i⌉` by default).
    block: Vec<usize>,
    /// Number of blocks per dimension.
    nblocks: Vec<usize>,
    /// Block-local relative prefix sums (same shape as `A`).
    rp: NdArray<G>,
    /// One family per nonempty dimension subset, `2^d − 1` total.
    overlays: Vec<OverlayFamily<G>>,
    counter: OpCounter,
}

impl<G: AbelianGroup> Clone for RelativePrefixEngine<G> {
    fn clone(&self) -> Self {
        Self {
            shape: self.shape.clone(),
            block: self.block.clone(),
            nblocks: self.nblocks.clone(),
            rp: self.rp.clone(),
            overlays: self.overlays.clone(),
            counter: OpCounter::new(),
        }
    }
}

fn default_block_sides(shape: &Shape) -> Vec<usize> {
    shape
        .dims()
        .iter()
        .map(|&n| (n as f64).sqrt().ceil() as usize)
        .map(|k| k.max(1))
        .collect()
}

impl<G: AbelianGroup> RelativePrefixEngine<G> {
    /// Builds an RPS structure over `a` with the canonical `k = ⌈√n⌉`
    /// blocks.
    pub fn from_array(a: &NdArray<G>) -> Self {
        let block = default_block_sides(a.shape());
        Self::with_block_sides(a, &block)
    }

    /// An all-zero cube of the given shape.
    pub fn zeroed(shape: Shape) -> Self {
        Self::from_array(&NdArray::zeroed(shape))
    }

    /// Builds with explicit per-dimension block sides (exposed for the
    /// block-size ablation benchmark).
    pub fn with_block_sides(a: &NdArray<G>, block: &[usize]) -> Self {
        let shape = a.shape().clone();
        let d = shape.ndim();
        assert_eq!(block.len(), d);
        assert!(block.iter().all(|&k| k >= 1));
        let nblocks: Vec<usize> = shape
            .dims()
            .iter()
            .zip(block.iter())
            .map(|(&n, &k)| n.div_ceil(k))
            .collect();

        // Relative prefixes: one sweep per axis that does not cross block
        // boundaries, so each block independently accumulates its local
        // prefix sums.
        let mut rp = a.clone();
        let mut point = vec![0usize; d];
        for axis in 0..d {
            let k = block[axis];
            let mut iter = shape.iter_points();
            while iter.next_into(&mut point) {
                if point[axis] % k == 0 {
                    continue; // block anchor row: nothing local before it
                }
                point[axis] -= 1;
                let prev = rp.get_linear(shape.linear(&point));
                point[axis] += 1;
                let idx = shape.linear(&point);
                rp.set_linear(idx, rp.get_linear(idx).add(prev));
            }
        }

        // Overlay families, computed from a scratch global prefix array.
        let p = build_prefix_array(a);
        let mut overlays = Vec::with_capacity((1usize << d) - 1);
        for mask in 1u32..(1u32 << d) {
            let fam_dims: Vec<usize> = (0..d)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        nblocks[i]
                    } else {
                        shape.dim(i)
                    }
                })
                .collect();
            let fam_shape = Shape::new(&fam_dims);
            let values = NdArray::from_fn(fam_shape, |idx| {
                overlay_region(&shape, block, mask, idx)
                    .map(|r| region_sum_from_p(&p, &r))
                    .unwrap_or(G::ZERO)
            });
            overlays.push(OverlayFamily { mask, values });
        }

        Self {
            shape,
            block: block.to_vec(),
            nblocks,
            rp,
            overlays,
            counter: OpCounter::new(),
        }
    }

    /// Block side per dimension.
    pub fn block_sides(&self) -> &[usize] {
        &self.block
    }

    #[inline]
    fn block_of(&self, point: &[usize]) -> Vec<usize> {
        point
            .iter()
            .zip(self.block.iter())
            .map(|(&x, &k)| x / k)
            .collect()
    }
}

/// The stored region of overlay entry `idx` in family `mask`, or `None`
/// when the region is empty (block 0 in some `S` dimension).
fn overlay_region(shape: &Shape, block: &[usize], mask: u32, idx: &[usize]) -> Option<Region> {
    let d = shape.ndim();
    let mut lo = Vec::with_capacity(d);
    let mut hi = Vec::with_capacity(d);
    for i in 0..d {
        if mask & (1 << i) != 0 {
            // idx[i] is a block number: slab [0 .. anchor-1].
            let anchor = idx[i] * block[i];
            if anchor == 0 {
                return None;
            }
            lo.push(0);
            hi.push(anchor - 1);
        } else {
            // idx[i] is a coordinate: [block anchor .. y].
            let anchor = (idx[i] / block[i]) * block[i];
            lo.push(anchor);
            hi.push(idx[i]);
        }
    }
    Some(Region::new(&lo, &hi))
}

/// Region sum by inclusion–exclusion over a prefix array (build-time only).
fn region_sum_from_p<G: AbelianGroup>(p: &NdArray<G>, region: &Region) -> G {
    let mut acc = G::ZERO;
    for term in region.prefix_decomposition() {
        let v = p.get(&term.corner);
        acc = if term.sign > 0 {
            acc.add(v)
        } else {
            acc.sub(v)
        };
    }
    acc
}

impl<G: AbelianGroup> RangeSumEngine<G> for RelativePrefixEngine<G> {
    fn name(&self) -> &'static str {
        "relative-prefix"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn prefix_sum(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        let d = self.shape.ndim();
        let blocks = self.block_of(point);
        let mut acc = self.rp.get(point);
        self.counter.read(1);
        let mut idx = vec![0usize; d];
        for fam in &self.overlays {
            for i in 0..d {
                idx[i] = if fam.mask & (1 << i) != 0 {
                    blocks[i]
                } else {
                    point[i]
                };
            }
            acc = acc.add(fam.values.get(&idx));
            self.counter.read(1);
        }
        acc
    }

    fn apply_delta(&mut self, point: &[usize], delta: G) {
        self.shape.check_point(point);
        if delta.is_zero() {
            return;
        }
        let d = self.shape.ndim();
        let blocks = self.block_of(point);

        // 1. Local relative prefixes within the block that dominate `point`.
        let hi: Vec<usize> = (0..d)
            .map(|i| ((blocks[i] + 1) * self.block[i] - 1).min(self.shape.dim(i) - 1))
            .collect();
        let local = Region::new(point, &hi);
        let mut written = 0u64;
        let mut buf = vec![0usize; d];
        let mut iter = local.iter_points();
        while iter.next_into(&mut buf) {
            self.rp.add_assign(&buf, delta);
            written += 1;
        }

        // 2. Overlay entries whose region contains `point`.
        for fam in &mut self.overlays {
            // Dimension ranges of affected entries.
            let mut lo = Vec::with_capacity(d);
            let mut hi = Vec::with_capacity(d);
            let mut empty = false;
            for i in 0..d {
                if fam.mask & (1 << i) != 0 {
                    // Blocks strictly after `point`'s block.
                    if blocks[i] + 1 >= self.nblocks[i] {
                        empty = true;
                        break;
                    }
                    lo.push(blocks[i] + 1);
                    hi.push(self.nblocks[i] - 1);
                } else {
                    // Coordinates ≥ point within the same block.
                    let end = ((blocks[i] + 1) * self.block[i] - 1).min(self.shape.dim(i) - 1);
                    lo.push(point[i]);
                    hi.push(end);
                }
            }
            if empty {
                continue;
            }
            let affected = Region::new(&lo, &hi);
            let mut iter = affected.iter_points();
            while iter.next_into(&mut buf) {
                fam.values.add_assign(&buf, delta);
                written += 1;
            }
        }
        self.counter.write(written);
    }

    fn counter(&self) -> &OpCounter {
        &self.counter
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.rp.heap_bytes()
            + self
                .overlays
                .iter()
                .map(|f| f.values.heap_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_against_naive(a: &NdArray<i64>) {
        let e = RelativePrefixEngine::from_array(a);
        for point in a.shape().iter_points() {
            assert_eq!(
                e.prefix_sum(&point),
                a.prefix_sum(&point),
                "prefix {point:?}"
            );
        }
    }

    #[test]
    fn matches_naive_1d() {
        let a = NdArray::from_vec(Shape::new(&[13]), (0..13).map(|i| i * i - 20).collect());
        check_against_naive(&a);
    }

    #[test]
    fn matches_naive_2d() {
        let a = NdArray::from_fn(Shape::new(&[9, 12]), |p| {
            (p[0] * 5 + p[1] * 3) as i64 % 11 - 5
        });
        check_against_naive(&a);
    }

    #[test]
    fn matches_naive_3d() {
        let a = NdArray::from_fn(Shape::cube(3, 5), |p| {
            (p[0] + p[1] * 2 + p[2] * 4) as i64 % 7
        });
        check_against_naive(&a);
    }

    #[test]
    fn updates_preserve_correctness() {
        let mut reference = NdArray::from_fn(Shape::new(&[8, 8]), |p| (p[0] * 8 + p[1]) as i64 % 9);
        let mut e = RelativePrefixEngine::from_array(&reference);
        let updates = [
            ([0usize, 0usize], 5i64),
            ([7, 7], -3),
            ([3, 4], 10),
            ([4, 0], 1),
        ];
        for (p, delta) in updates {
            reference.add_assign(&p, delta);
            e.apply_delta(&p, delta);
            for point in reference.shape().iter_points() {
                assert_eq!(e.prefix_sum(&point), reference.prefix_sum(&point));
            }
        }
    }

    #[test]
    fn query_reads_are_constant() {
        let e = RelativePrefixEngine::<i64>::zeroed(Shape::new(&[64, 64]));
        e.reset_ops();
        let _ = e.prefix_sum(&[63, 63]);
        // RP + 2^d − 1 overlay families.
        assert_eq!(e.ops().reads, 4);
        e.reset_ops();
        let _ = e.range_sum(&Region::new(&[5, 5], &[60, 60]));
        assert_eq!(e.ops().reads, 4 * 4);
    }

    #[test]
    fn update_cost_is_order_sqrt_of_cube_size() {
        // d = 2, n = 64 ⇒ paper bound O(n^{d/2}) = O(n) = 64 cells per
        // component; allow the constant 2^d factor.
        let mut e = RelativePrefixEngine::<i64>::zeroed(Shape::new(&[64, 64]));
        e.reset_ops();
        e.apply_delta(&[0, 0], 1); // worst case
        let touched = e.ops().writes;
        assert!(touched <= 4 * 64 + 64, "touched {touched} cells, want O(n)");
        // …and is far below the prefix-sum cascade of 4096.
        assert!(touched < 1000);
    }

    #[test]
    fn non_square_and_non_power_shapes() {
        let a = NdArray::from_fn(Shape::new(&[7, 11]), |p| (p[0] * 11 + p[1]) as i64);
        let mut e = RelativePrefixEngine::from_array(&a);
        let mut reference = a.clone();
        e.apply_delta(&[6, 10], 100);
        reference.add_assign(&[6, 10], 100);
        for point in reference.shape().iter_points() {
            assert_eq!(e.prefix_sum(&point), reference.prefix_sum(&point));
        }
    }

    #[test]
    fn explicit_block_sides() {
        let a = NdArray::from_fn(Shape::new(&[16, 16]), |p| (p[0] ^ p[1]) as i64);
        for k in [1usize, 2, 5, 8, 16] {
            let e = RelativePrefixEngine::with_block_sides(&a, &[k, k]);
            for point in [[0usize, 0], [15, 15], [7, 9], [8, 8]] {
                assert_eq!(
                    e.prefix_sum(&point),
                    a.prefix_sum(&point),
                    "k={k} {point:?}"
                );
            }
        }
    }

    #[test]
    fn cell_roundtrip() {
        let a = NdArray::from_fn(Shape::new(&[10, 10]), |p| (3 * p[0] + p[1]) as i64 % 13);
        let mut e = RelativePrefixEngine::from_array(&a);
        assert_eq!(e.cell(&[4, 7]), a.get(&[4, 7]));
        let old = e.set(&[4, 7], -99);
        assert_eq!(old, a.get(&[4, 7]));
        assert_eq!(e.cell(&[4, 7]), -99);
    }
}
