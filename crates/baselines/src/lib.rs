//! # ddc-baselines
//!
//! The comparison methods of the Dynamic Data Cube paper (§2): the naive
//! array scan, the Prefix Sum method of Ho et al. \[HAMS97\], and the
//! Relative Prefix Sum method of Geffner et al. \[GAES99\]. All three
//! implement [`ddc_array::RangeSumEngine`], so the benchmark harness can
//! drive every method of Table 1 through one interface.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod growable_dense;
mod multi_fenwick;
mod naive;
mod prefix_sum;
mod relative_prefix;

pub use growable_dense::GrowablePrefixSum;
pub use multi_fenwick::MultiFenwick;
pub use naive::NaiveEngine;
pub use prefix_sum::{build_prefix_array, PrefixSumEngine};
pub use relative_prefix::RelativePrefixEngine;
