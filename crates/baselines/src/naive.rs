//! The naive method (paper §2): the array `A` itself.
//!
//! "Array A can be used by itself to solve range sum queries … Arbitrary
//! range queries on array A can cost `O(n^d)` … Updates to array A take
//! `O(1)`." This engine is both the paper's first baseline and the ground
//! truth every other engine is property-tested against.

use ddc_array::{AbelianGroup, NdArray, OpCounter, RangeSumEngine, Region, Shape};

/// Range-sum engine that stores `A` directly and scans on every query.
#[derive(Debug)]
pub struct NaiveEngine<G: AbelianGroup> {
    a: NdArray<G>,
    counter: OpCounter,
}

impl<G: AbelianGroup> Clone for NaiveEngine<G> {
    fn clone(&self) -> Self {
        Self {
            a: self.a.clone(),
            counter: OpCounter::new(),
        }
    }
}

impl<G: AbelianGroup> NaiveEngine<G> {
    /// An all-zero cube of the given shape.
    pub fn zeroed(shape: Shape) -> Self {
        Self {
            a: NdArray::zeroed(shape),
            counter: OpCounter::new(),
        }
    }

    /// Wraps an existing array.
    pub fn from_array(a: &NdArray<G>) -> Self {
        Self {
            a: a.clone(),
            counter: OpCounter::new(),
        }
    }

    /// Read-only view of the underlying array.
    pub fn array(&self) -> &NdArray<G> {
        &self.a
    }
}

impl<G: AbelianGroup> RangeSumEngine<G> for NaiveEngine<G> {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn shape(&self) -> &Shape {
        self.a.shape()
    }

    fn prefix_sum(&self, point: &[usize]) -> G {
        self.range_sum(&Region::prefix(point))
    }

    // Scanning the region directly beats combining 2^d scanned prefixes.
    fn range_sum(&self, region: &Region) -> G {
        region.check_within(self.shape());
        self.counter.read(region.cells() as u64);
        self.a.region_sum(region)
    }

    fn apply_delta(&mut self, point: &[usize], delta: G) {
        self.counter.write(1);
        self.a.add_assign(point, delta);
    }

    fn cell(&self, point: &[usize]) -> G {
        self.counter.read(1);
        self.a.get(point)
    }

    fn counter(&self) -> &OpCounter {
        &self.counter
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.a.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_like_array() -> NdArray<i64> {
        NdArray::from_fn(Shape::new(&[8, 8]), |p| ((p[0] * 8 + p[1]) % 7) as i64)
    }

    #[test]
    fn range_and_prefix_agree_with_array() {
        let a = paper_like_array();
        let e = NaiveEngine::from_array(&a);
        let r = Region::new(&[2, 3], &[5, 6]);
        assert_eq!(e.range_sum(&r), a.region_sum(&r));
        assert_eq!(e.prefix_sum(&[4, 4]), a.prefix_sum(&[4, 4]));
    }

    #[test]
    fn constant_time_update() {
        let mut e = NaiveEngine::<i64>::zeroed(Shape::cube(3, 4));
        e.reset_ops();
        e.apply_delta(&[1, 2, 3], 9);
        assert_eq!(e.ops().writes, 1);
        assert_eq!(e.cell(&[1, 2, 3]), 9);
    }

    #[test]
    fn full_scan_cost_is_region_size() {
        let e = NaiveEngine::<i64>::zeroed(Shape::cube(2, 10));
        e.reset_ops();
        let _ = e.range_sum(&Region::full(e.shape()));
        assert_eq!(e.ops().reads, 100);
    }

    #[test]
    fn set_returns_old_value() {
        let mut e = NaiveEngine::<i64>::zeroed(Shape::new(&[4]));
        assert_eq!(e.set(&[2], 7), 0);
        assert_eq!(e.set(&[2], 3), 7);
        assert_eq!(e.prefix_sum(&[3]), 3);
    }
}
