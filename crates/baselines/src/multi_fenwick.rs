//! The `d`-dimensional Fenwick (binary indexed) tree — the modern
//! comparator the Dynamic Data Cube is measured against.
//!
//! A Fenwick tree generalizes to `d` dimensions by nesting its index
//! arithmetic per axis, giving `O(log^d n)` prefix queries *and* point
//! updates over one flat array — the same asymptotics as the paper's
//! structure with far smaller constants on dense, fixed-size cubes. What
//! it cannot do is exactly what §5 motivates the DDC's tree shape for:
//! grow in any direction, skip storage for empty regions, or insert new
//! positions. The `fenwick_nd` benchmark quantifies this trade
//! (constants vs flexibility), directly addressing the observation that
//! Fenwick/segment trees cover the static range-sum+update problem.

use ddc_array::{AbelianGroup, NdArray, OpCounter, RangeSumEngine, Shape};

/// Dense `d`-dimensional binary indexed tree.
#[derive(Debug)]
pub struct MultiFenwick<G: AbelianGroup> {
    /// Flat tree cells; index arithmetic is 1-based per axis, so each
    /// dimension stores `n + 1` slots (slot 0 unused).
    tree: NdArray<G>,
    /// Logical shape (without the +1 padding).
    shape: Shape,
    counter: OpCounter,
}

impl<G: AbelianGroup> Clone for MultiFenwick<G> {
    fn clone(&self) -> Self {
        Self {
            tree: self.tree.clone(),
            shape: self.shape.clone(),
            counter: OpCounter::new(),
        }
    }
}

impl<G: AbelianGroup> MultiFenwick<G> {
    /// An all-zero cube of `shape`.
    pub fn zeroed(shape: Shape) -> Self {
        let padded: Vec<usize> = shape.dims().iter().map(|&n| n + 1).collect();
        Self {
            tree: NdArray::zeroed(Shape::new(&padded)),
            shape,
            counter: OpCounter::new(),
        }
    }

    /// Builds from an array by point insertion (`O(N log^d n)`).
    pub fn from_array(a: &NdArray<G>) -> Self {
        let mut f = Self::zeroed(a.shape().clone());
        let mut iter = a.shape().iter_points();
        let mut buf = vec![0usize; a.shape().ndim()];
        while iter.next_into(&mut buf) {
            let v = a.get(&buf);
            if !v.is_zero() {
                f.apply_delta(&buf, v);
            }
        }
        f
    }

    /// Recursive axis-nested prefix accumulation.
    fn prefix_rec(&self, axis: usize, idx: &mut Vec<usize>, point: &[usize]) -> G {
        if axis == point.len() {
            self.counter.read(1);
            return self.tree.get(idx);
        }
        let mut acc = G::ZERO;
        let mut i = point[axis] + 1;
        while i > 0 {
            idx[axis] = i;
            acc = acc.add(self.prefix_rec(axis + 1, idx, point));
            i -= i & i.wrapping_neg();
        }
        acc
    }

    fn update_rec(&mut self, axis: usize, idx: &mut Vec<usize>, point: &[usize], delta: G) {
        if axis == point.len() {
            let lin = self.tree.shape().linear(idx);
            let v = self.tree.get_linear(lin).add(delta);
            self.tree.set_linear(lin, v);
            self.counter.write(1);
            return;
        }
        let n = self.shape.dim(axis);
        let mut i = point[axis] + 1;
        while i <= n {
            idx[axis] = i;
            self.update_rec(axis + 1, idx, point, delta);
            i += i & i.wrapping_neg();
        }
    }
}

impl<G: AbelianGroup> RangeSumEngine<G> for MultiFenwick<G> {
    fn name(&self) -> &'static str {
        "fenwick-nd"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn prefix_sum(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        let mut idx = vec![0usize; point.len()];
        self.prefix_rec(0, &mut idx, point)
    }

    fn apply_delta(&mut self, point: &[usize], delta: G) {
        self.shape.check_point(point);
        if delta.is_zero() {
            return;
        }
        let mut idx = vec![0usize; point.len()];
        self.update_rec(0, &mut idx, point, delta);
    }

    fn counter(&self) -> &OpCounter {
        &self.counter
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tree.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_array::Region;

    #[test]
    fn matches_reference_2d() {
        let a = NdArray::from_fn(Shape::new(&[13, 9]), |p| (p[0] * 9 + p[1]) as i64 % 11 - 5);
        let f = MultiFenwick::from_array(&a);
        for p in a.shape().iter_points() {
            assert_eq!(f.prefix_sum(&p), a.prefix_sum(&p), "{p:?}");
        }
    }

    #[test]
    fn matches_reference_3d_after_updates() {
        let mut reference = NdArray::<i64>::zeroed(Shape::cube(3, 6));
        let mut f = MultiFenwick::<i64>::zeroed(Shape::cube(3, 6));
        for step in 0..200usize {
            let p = vec![step % 6, (step * 5) % 6, (step * 11) % 6];
            let delta = step as i64 % 13 - 6;
            reference.add_assign(&p, delta);
            f.apply_delta(&p, delta);
        }
        for p in reference.shape().iter_points() {
            assert_eq!(f.prefix_sum(&p), reference.prefix_sum(&p));
        }
        let q = Region::new(&[1, 2, 0], &[4, 5, 3]);
        assert_eq!(f.range_sum(&q), reference.region_sum(&q));
    }

    #[test]
    fn costs_are_polylogarithmic() {
        let mut f = MultiFenwick::<i64>::zeroed(Shape::cube(2, 1024));
        f.reset_ops();
        f.apply_delta(&[0, 0], 1);
        // (log2 1024 + 1)² = 121 worst-case writes for the origin.
        assert!(f.ops().writes <= 121, "{}", f.ops().writes);
        f.reset_ops();
        let _ = f.prefix_sum(&[1023, 1023]);
        assert!(f.ops().reads <= 121, "{}", f.ops().reads);
    }

    #[test]
    fn memory_is_one_dense_array() {
        let f = MultiFenwick::<i64>::zeroed(Shape::cube(2, 256));
        // (256+1)² cells of i64 plus the struct — no pointer forest.
        assert!(f.heap_bytes() <= 257 * 257 * 8 + 128);
    }

    #[test]
    fn one_dimensional_degenerates_to_fenwick() {
        let a = NdArray::from_vec(Shape::new(&[37]), (0..37).map(|i| i * i % 19).collect());
        let f = MultiFenwick::from_array(&a);
        for i in 0..37 {
            assert_eq!(f.prefix_sum(&[i]), a.prefix_sum(&[i]));
        }
    }
}
