//! Shapes of `d`-dimensional arrays and row-major index arithmetic.
//!
//! The paper models the data cube as a `d`-dimensional array `A` of size
//! `n_1 × n_2 × … × n_d` with zero-based indices (§2). [`Shape`] owns that
//! size vector and provides the linearization used by every dense structure
//! in the workspace (array `A` itself, the prefix-sum array `P`, block-local
//! relative-prefix arrays, and overlay faces).

use std::fmt;

/// Why a dimension list cannot form a [`Shape`].
///
/// Returned by [`Shape::try_new`], the checked constructor used wherever
/// the dimension list comes from untrusted input (snapshot headers, trace
/// files, shell commands).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// The dimension list was empty.
    NoDimensions,
    /// A dimension had size zero (the offending axis).
    EmptyDimension(usize),
    /// The total cell count `n_1 · … · n_d` overflows `usize`.
    CellOverflow,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoDimensions => write!(f, "a data cube needs at least one dimension"),
            Self::EmptyDimension(axis) => {
                write!(
                    f,
                    "dimension {axis} is empty (every dimension must be non-empty)"
                )
            }
            Self::CellOverflow => write!(f, "total cell count overflows usize"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// The extent of a `d`-dimensional array: one size per dimension.
///
/// Row-major order: the *last* dimension is contiguous in memory.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Box<[usize]>,
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", &self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for d in self.dims.iter() {
            if !first {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        Ok(())
    }
}

impl Shape {
    /// Creates a shape from per-dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, any dimension is zero, or the total cell
    /// count overflows `usize` — all programming errors for the structures
    /// built here.
    pub fn new(dims: &[usize]) -> Self {
        match Self::try_new(dims) {
            Ok(shape) => shape,
            Err(e) => panic!("invalid shape {dims:?}: {e}"),
        }
    }

    /// Checked variant of [`Shape::new`]: rejects empty dimension lists,
    /// zero-sized dimensions, and cell counts that overflow `usize`
    /// instead of panicking. Use this wherever the dimension list comes
    /// from outside the program (snapshot files, traces, user commands).
    pub fn try_new(dims: &[usize]) -> Result<Self, ShapeError> {
        if dims.is_empty() {
            return Err(ShapeError::NoDimensions);
        }
        if let Some(axis) = dims.iter().position(|&n| n == 0) {
            return Err(ShapeError::EmptyDimension(axis));
        }
        let mut cells: usize = 1;
        for &n in dims {
            cells = cells.checked_mul(n).ok_or(ShapeError::CellOverflow)?;
        }
        Ok(Self { dims: dims.into() })
    }

    /// A `d`-dimensional hyper-cube shape with side `n` — the paper's cost
    /// model (`n = n_1 = … = n_d`, §2).
    pub fn cube(d: usize, n: usize) -> Self {
        Self::new(&vec![n; d])
    }

    /// Number of dimensions (`d` in the paper).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of dimension `axis`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of cells, `n_1 · n_2 · … · n_d`.
    #[inline]
    pub fn cells(&self) -> usize {
        self.dims.iter().product()
    }

    /// True if `point` lies inside the array bounds.
    #[inline]
    pub fn contains(&self, point: &[usize]) -> bool {
        point.len() == self.ndim() && point.iter().zip(self.dims.iter()).all(|(&p, &n)| p < n)
    }

    /// Asserts that `point` is a valid cell index.
    #[inline]
    pub fn check_point(&self, point: &[usize]) {
        assert_eq!(
            point.len(),
            self.ndim(),
            "point dimensionality {} does not match shape {self}",
            point.len()
        );
        for (axis, (&p, &n)) in point.iter().zip(self.dims.iter()).enumerate() {
            assert!(
                p < n,
                "index {p} out of bounds for dimension {axis} of size {n}"
            );
        }
    }

    /// Row-major linear offset of `point`.
    #[inline]
    pub fn linear(&self, point: &[usize]) -> usize {
        debug_assert!(self.contains(point), "{point:?} outside {self}");
        let mut idx = 0usize;
        for (&p, &n) in point.iter().zip(self.dims.iter()) {
            idx = idx * n + p;
        }
        idx
    }

    /// Inverse of [`Shape::linear`]: writes the coordinates of `linear` into
    /// `out`.
    pub fn delinearize_into(&self, mut linear: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.ndim());
        for axis in (0..self.ndim()).rev() {
            let n = self.dims[axis];
            out[axis] = linear % n;
            linear /= n;
        }
        debug_assert_eq!(linear, 0, "linear index out of range");
    }

    /// Inverse of [`Shape::linear`], allocating the coordinate vector.
    pub fn delinearize(&self, linear: usize) -> Vec<usize> {
        let mut out = vec![0; self.ndim()];
        self.delinearize_into(linear, &mut out);
        out
    }

    /// The shape with dimension `axis` removed — the cross-section shape of
    /// an overlay face (paper §3.1: each of the `d` row-sum groups is
    /// `(d-1)`-dimensional). For a 1-D shape this would be empty, so callers
    /// must only use it when `ndim() >= 2`.
    pub fn drop_axis(&self, axis: usize) -> Shape {
        assert!(self.ndim() >= 2, "cannot drop an axis from a 1-D shape");
        assert!(axis < self.ndim());
        let dims: Vec<usize> = self
            .dims
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != axis)
            .map(|(_, &n)| n)
            .collect();
        Shape::new(&dims)
    }

    /// Iterates over every cell index in row-major order.
    pub fn iter_points(&self) -> PointIter {
        PointIter::new(self.dims.to_vec())
    }
}

/// Row-major iterator over all coordinate vectors of a shape (or region
/// extent). Yields a reference-free owned `Vec<usize>` per step; hot loops
/// should prefer [`PointIter::next_into`] to reuse a buffer.
#[derive(Clone, Debug)]
pub struct PointIter {
    dims: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl PointIter {
    fn new(dims: Vec<usize>) -> Self {
        let done = dims.contains(&0);
        let current = vec![0; dims.len()];
        Self {
            dims,
            current,
            done,
        }
    }

    /// Advances in place; returns `false` when exhausted. The buffer holds
    /// the *next* point after a `true` return.
    pub fn next_into(&mut self, out: &mut [usize]) -> bool {
        if self.done {
            return false;
        }
        out.copy_from_slice(&self.current);
        self.advance();
        true
    }

    fn advance(&mut self) {
        for axis in (0..self.dims.len()).rev() {
            self.current[axis] += 1;
            if self.current[axis] < self.dims[axis] {
                return;
            }
            self.current[axis] = 0;
        }
        self.done = true;
    }
}

impl Iterator for PointIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        self.advance();
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        // Remaining = total - linear(current); cheap and exact.
        let total: usize = self.dims.iter().product();
        let mut idx = 0usize;
        for (&p, &n) in self.current.iter().zip(self.dims.iter()) {
            idx = idx * n + p;
        }
        let rem = total - idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for PointIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_shape() {
        let s = Shape::cube(3, 4);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.dims(), &[4, 4, 4]);
        assert_eq!(s.cells(), 64);
        assert_eq!(s.to_string(), "4×4×4");
    }

    #[test]
    fn linear_roundtrip() {
        let s = Shape::new(&[3, 5, 2]);
        for (i, p) in s.iter_points().enumerate() {
            assert_eq!(s.linear(&p), i);
            assert_eq!(s.delinearize(i), p);
        }
    }

    #[test]
    fn row_major_order_last_dim_contiguous() {
        let s = Shape::new(&[2, 3]);
        let pts: Vec<Vec<usize>> = s.iter_points().collect();
        assert_eq!(
            pts,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn contains_and_check() {
        let s = Shape::new(&[4, 4]);
        assert!(s.contains(&[3, 3]));
        assert!(!s.contains(&[4, 0]));
        assert!(!s.contains(&[0]));
        s.check_point(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn check_point_panics_out_of_bounds() {
        Shape::new(&[2, 2]).check_point(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dim_rejected() {
        Shape::new(&[3, 0]);
    }

    #[test]
    fn try_new_rejects_bad_dimension_lists() {
        assert_eq!(Shape::try_new(&[]), Err(ShapeError::NoDimensions));
        assert_eq!(
            Shape::try_new(&[4, 0, 2]),
            Err(ShapeError::EmptyDimension(1))
        );
        // Product overflows usize: 2^40 · 2^40 > 2^64.
        let huge = 1usize << 40;
        assert_eq!(Shape::try_new(&[huge, huge]), Err(ShapeError::CellOverflow));
        // usize::MAX alone is a valid (if impractical) cell count.
        assert!(Shape::try_new(&[usize::MAX]).is_ok());
        assert_eq!(Shape::try_new(&[3, 5]).unwrap().cells(), 15);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn new_panics_on_cell_overflow() {
        Shape::new(&[usize::MAX, 2]);
    }

    #[test]
    fn drop_axis_gives_face_shape() {
        let s = Shape::new(&[4, 5, 6]);
        assert_eq!(s.drop_axis(0).dims(), &[5, 6]);
        assert_eq!(s.drop_axis(1).dims(), &[4, 6]);
        assert_eq!(s.drop_axis(2).dims(), &[4, 5]);
    }

    #[test]
    fn point_iter_exact_size() {
        let s = Shape::new(&[3, 3]);
        let mut it = s.iter_points();
        assert_eq!(it.len(), 9);
        it.next();
        assert_eq!(it.len(), 8);
    }

    #[test]
    fn next_into_reuses_buffer() {
        let s = Shape::new(&[2, 2]);
        let mut it = s.iter_points();
        let mut buf = [0usize; 2];
        let mut seen = Vec::new();
        while it.next_into(&mut buf) {
            seen.push(buf.to_vec());
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[3], vec![1, 1]);
    }

    #[test]
    fn one_dimensional_shape() {
        let s = Shape::new(&[7]);
        assert_eq!(s.cells(), 7);
        assert_eq!(s.linear(&[4]), 4);
    }
}
