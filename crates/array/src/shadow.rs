//! Differential testing: run two engines in lockstep and assert they
//! agree on every observable result.
//!
//! [`ShadowEngine`] wraps a primary engine and a shadow (typically the
//! naive ground truth) and cross-checks every query and every `set`
//! return value. Used by the workspace's failure-injection tests and
//! available to downstream users validating custom configurations.

use crate::counter::OpCounter;
use crate::engine::RangeSumEngine;
use crate::group::AbelianGroup;
use crate::region::Region;
use crate::shape::Shape;

/// A pair of engines executed in lockstep; any observable divergence
/// panics with both values.
#[derive(Debug)]
pub struct ShadowEngine<G, P, S> {
    primary: P,
    shadow: S,
    _group: std::marker::PhantomData<fn() -> G>,
}

impl<G, P, S> ShadowEngine<G, P, S>
where
    G: AbelianGroup,
    P: RangeSumEngine<G>,
    S: RangeSumEngine<G>,
{
    /// Pairs a primary engine with its shadow. Both must cover the same
    /// logical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn new(primary: P, shadow: S) -> Self {
        assert_eq!(
            primary.shape(),
            shadow.shape(),
            "primary and shadow shapes must match"
        );
        Self {
            primary,
            shadow,
            _group: std::marker::PhantomData,
        }
    }

    /// The primary engine.
    pub fn primary(&self) -> &P {
        &self.primary
    }

    /// The shadow engine.
    pub fn shadow(&self) -> &S {
        &self.shadow
    }

    /// Consumes the pair, returning the primary.
    pub fn into_primary(self) -> P {
        self.primary
    }
}

impl<G, P, S> RangeSumEngine<G> for ShadowEngine<G, P, S>
where
    G: AbelianGroup,
    P: RangeSumEngine<G>,
    S: RangeSumEngine<G>,
{
    fn name(&self) -> &'static str {
        "shadow"
    }

    fn shape(&self) -> &Shape {
        self.primary.shape()
    }

    fn prefix_sum(&self, point: &[usize]) -> G {
        let a = self.primary.prefix_sum(point);
        let b = self.shadow.prefix_sum(point);
        assert_eq!(
            a,
            b,
            "prefix_sum({point:?}) diverged: {} says {a:?}, {} says {b:?}",
            self.primary.name(),
            self.shadow.name()
        );
        a
    }

    fn range_sum(&self, region: &Region) -> G {
        let a = self.primary.range_sum(region);
        let b = self.shadow.range_sum(region);
        assert_eq!(
            a,
            b,
            "range_sum({region:?}) diverged: {} says {a:?}, {} says {b:?}",
            self.primary.name(),
            self.shadow.name()
        );
        a
    }

    fn apply_delta(&mut self, point: &[usize], delta: G) {
        self.primary.apply_delta(point, delta);
        self.shadow.apply_delta(point, delta);
    }

    fn cell(&self, point: &[usize]) -> G {
        let a = self.primary.cell(point);
        let b = self.shadow.cell(point);
        assert_eq!(a, b, "cell({point:?}) diverged");
        a
    }

    fn set(&mut self, point: &[usize], value: G) -> G {
        let a = self.primary.set(point, value);
        let b = self.shadow.set(point, value);
        assert_eq!(a, b, "set({point:?}) returned diverging old values");
        a
    }

    fn counter(&self) -> &OpCounter {
        self.primary.counter()
    }

    fn heap_bytes(&self) -> usize {
        self.primary.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::NdArray;

    /// Minimal correct engine for the tests.
    struct Brute {
        a: NdArray<i64>,
        counter: OpCounter,
        // Fault injection: report this extra amount on prefix sums.
        skew: i64,
    }

    impl Brute {
        fn new(shape: Shape) -> Self {
            Self {
                a: NdArray::zeroed(shape),
                counter: OpCounter::new(),
                skew: 0,
            }
        }
    }

    impl RangeSumEngine<i64> for Brute {
        fn name(&self) -> &'static str {
            "brute"
        }

        fn shape(&self) -> &Shape {
            self.a.shape()
        }

        fn prefix_sum(&self, point: &[usize]) -> i64 {
            self.a.prefix_sum(point) + self.skew
        }

        fn apply_delta(&mut self, point: &[usize], delta: i64) {
            self.a.add_assign(point, delta);
        }

        fn counter(&self) -> &OpCounter {
            &self.counter
        }

        fn heap_bytes(&self) -> usize {
            self.a.heap_bytes()
        }
    }

    #[test]
    fn agreeing_engines_pass_through() {
        let shape = Shape::new(&[4, 4]);
        let mut s = ShadowEngine::new(Brute::new(shape.clone()), Brute::new(shape));
        s.apply_delta(&[1, 1], 5);
        s.apply_delta(&[3, 2], -2);
        assert_eq!(s.prefix_sum(&[3, 3]), 3);
        assert_eq!(s.range_sum(&Region::new(&[1, 1], &[2, 2])), 5);
        assert_eq!(s.set(&[1, 1], 9), 5);
        assert_eq!(s.cell(&[1, 1]), 9);
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn divergence_is_detected() {
        let shape = Shape::new(&[4, 4]);
        let mut faulty = Brute::new(shape.clone());
        faulty.skew = 1; // injected fault
        let s = ShadowEngine::new(faulty, Brute::new(shape));
        let _ = s.prefix_sum(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn shape_mismatch_rejected() {
        ShadowEngine::new(Brute::new(Shape::new(&[4])), Brute::new(Shape::new(&[5])));
    }
}
