//! Machine-independent operation accounting.
//!
//! Table 1 of the paper compares methods by "number of operations" — cells
//! that must be touched per update — rather than wall-clock time. Every
//! engine threads an [`OpCounter`] through its hot paths so the benchmark
//! harness can regenerate that table deterministically; criterion benches
//! provide the wall-clock complement.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for value reads/writes performed by an engine.
///
/// Relaxed atomics so `&self` query paths can record reads and engines
/// remain `Sync` — concurrent readers may share a structure (see the
/// `parallel_queries` integration test). Counts are exact under a single
/// writer, which is the measurement regime of the paper.
#[derive(Debug, Default)]
pub struct OpCounter {
    reads: AtomicU64,
    writes: AtomicU64,
}

/// An immutable snapshot of an [`OpCounter`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct OpSnapshot {
    /// Stored values read (array cells, row sums, subtree sums, …).
    pub reads: u64,
    /// Stored values written.
    pub writes: u64,
}

impl OpSnapshot {
    /// Total values touched — the paper's "number of operations" proxy.
    pub fn touched(&self) -> u64 {
        self.reads + self.writes
    }
}

impl std::ops::Sub for OpSnapshot {
    type Output = OpSnapshot;

    fn sub(self, rhs: OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
        }
    }
}

impl OpCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` value reads.
    #[inline]
    pub fn read(&self, n: u64) {
        self.reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` value writes.
    #[inline]
    pub fn write(&self, n: u64) {
        self.writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> OpSnapshot {
        OpSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }

    /// Adds another counter's totals into this one (used when an engine
    /// aggregates sub-structure counters).
    pub fn absorb(&self, snap: OpSnapshot) {
        self.read(snap.reads);
        self.write(snap.writes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let c = OpCounter::new();
        c.read(3);
        c.write(2);
        c.read(1);
        assert_eq!(
            c.snapshot(),
            OpSnapshot {
                reads: 4,
                writes: 2
            }
        );
        assert_eq!(c.snapshot().touched(), 6);
        c.reset();
        assert_eq!(c.snapshot(), OpSnapshot::default());
    }

    #[test]
    fn snapshot_difference() {
        let c = OpCounter::new();
        c.read(10);
        let before = c.snapshot();
        c.read(5);
        c.write(7);
        let delta = c.snapshot() - before;
        assert_eq!(
            delta,
            OpSnapshot {
                reads: 5,
                writes: 7
            }
        );
    }

    #[test]
    fn absorb_merges() {
        let a = OpCounter::new();
        a.read(1);
        let b = OpCounter::new();
        b.write(4);
        a.absorb(b.snapshot());
        assert_eq!(
            a.snapshot(),
            OpSnapshot {
                reads: 1,
                writes: 4
            }
        );
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = OpCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.read(1);
                    }
                });
            }
        });
        assert_eq!(c.snapshot().reads, 4000);
    }
}
