//! Signed logical coordinates for cubes that grow in any direction.
//!
//! Section 5 of the paper argues that the direction of data-cube growth
//! "should be determined by the data, and not a priori": astronomers
//! discover stars in every direction, so the cube must accept cells at
//! indices below the current origin as well as above the current maximum.
//!
//! Internal structures index from `0` (overlay anchors are defined relative
//! to `A[0,…,0]`), so growth toward negative coordinates is realized by
//! shifting a per-dimension *origin*: [`CoordMap`] translates user-facing
//! signed coordinates into internal unsigned indices and records how far
//! the origin has moved.

use crate::shape::Shape;

/// Maps logical signed coordinates to internal zero-based indices.
///
/// `internal[i] = logical[i] - origin[i]`, where `origin` only ever moves
/// downward (growth toward negative coordinates doubles the internal extent
/// and shifts the origin by the old extent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoordMap {
    origin: Vec<i64>,
    extent: Vec<usize>,
}

impl CoordMap {
    /// A map whose internal box is `[origin, origin + extent)` in logical
    /// space.
    pub fn new(origin: Vec<i64>, extent: Vec<usize>) -> Self {
        assert_eq!(origin.len(), extent.len());
        assert!(!origin.is_empty());
        assert!(extent.iter().all(|&e| e > 0));
        Self { origin, extent }
    }

    /// A map anchored at the logical origin with the given extent.
    pub fn at_zero(extent: Vec<usize>) -> Self {
        let origin = vec![0; extent.len()];
        Self::new(origin, extent)
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.origin.len()
    }

    /// The logical coordinate of internal index `0` in each dimension.
    pub fn origin(&self) -> &[i64] {
        &self.origin
    }

    /// Current internal extent per dimension.
    pub fn extent(&self) -> &[usize] {
        &self.extent
    }

    /// The internal shape covering the mapped box.
    pub fn shape(&self) -> Shape {
        Shape::new(&self.extent)
    }

    /// Translates a logical point into internal indices, or `None` if it
    /// falls outside the current box (the caller must grow first).
    pub fn to_internal(&self, logical: &[i64]) -> Option<Vec<usize>> {
        assert_eq!(logical.len(), self.ndim(), "coordinate rank mismatch");
        let mut out = Vec::with_capacity(self.ndim());
        for ((&c, &o), &e) in logical
            .iter()
            .zip(self.origin.iter())
            .zip(self.extent.iter())
        {
            let rel = c.checked_sub(o)?;
            if rel < 0 || rel as usize >= e {
                return None;
            }
            out.push(rel as usize);
        }
        Some(out)
    }

    /// Translates internal indices back to logical coordinates.
    pub fn to_logical(&self, internal: &[usize]) -> Vec<i64> {
        assert_eq!(internal.len(), self.ndim());
        internal
            .iter()
            .zip(self.origin.iter())
            .map(|(&i, &o)| o + i as i64)
            .collect()
    }

    /// The growth needed (per dimension) for the box to cover `logical`:
    /// `Low` growth shifts the origin, `High` growth extends the maximum,
    /// `None` means the dimension already covers the coordinate.
    pub fn growth_needed(&self, logical: &[i64]) -> Vec<Option<GrowthDirection>> {
        assert_eq!(logical.len(), self.ndim());
        (0..self.ndim())
            .map(|axis| {
                let c = logical[axis];
                if c < self.origin[axis] {
                    Some(GrowthDirection::Low)
                } else if c >= self.origin[axis] + self.extent[axis] as i64 {
                    Some(GrowthDirection::High)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Doubles the extent of `axis`. Growing `Low` shifts the origin down
    /// by the old extent so existing internal indices move up by that
    /// amount; growing `High` leaves existing indices unchanged.
    ///
    /// Returns the number of internal index units existing cells shift by
    /// in that dimension (0 for `High`, old extent for `Low`).
    pub fn grow(&mut self, axis: usize, dir: GrowthDirection) -> usize {
        let old = self.extent[axis];
        self.extent[axis] = old.checked_mul(2).expect("extent overflow");
        match dir {
            GrowthDirection::High => 0,
            GrowthDirection::Low => {
                self.origin[axis] -= old as i64;
                old
            }
        }
    }
}

/// Which side of a dimension a cube grows toward.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum GrowthDirection {
    /// Growth toward smaller logical coordinates (shifts the origin).
    Low,
    /// Growth toward larger logical coordinates (append-style).
    High,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_at_zero() {
        let m = CoordMap::at_zero(vec![8, 8]);
        assert_eq!(m.to_internal(&[3, 7]), Some(vec![3, 7]));
        assert_eq!(m.to_logical(&[3, 7]), vec![3, 7]);
        assert_eq!(m.to_internal(&[8, 0]), None);
        assert_eq!(m.to_internal(&[-1, 0]), None);
    }

    #[test]
    fn growth_high_keeps_indices() {
        let mut m = CoordMap::at_zero(vec![4]);
        let shift = m.grow(0, GrowthDirection::High);
        assert_eq!(shift, 0);
        assert_eq!(m.extent(), &[8]);
        assert_eq!(m.to_internal(&[7]), Some(vec![7]));
        assert_eq!(m.origin(), &[0]);
    }

    #[test]
    fn growth_low_shifts_origin() {
        let mut m = CoordMap::at_zero(vec![4]);
        let shift = m.grow(0, GrowthDirection::Low);
        assert_eq!(shift, 4);
        assert_eq!(m.origin(), &[-4]);
        assert_eq!(m.extent(), &[8]);
        // Logical 0 is now internal 4.
        assert_eq!(m.to_internal(&[0]), Some(vec![4]));
        assert_eq!(m.to_internal(&[-4]), Some(vec![0]));
        assert_eq!(m.to_logical(&[0]), vec![-4]);
    }

    #[test]
    fn growth_needed_reports_direction() {
        let m = CoordMap::new(vec![-2, 0], vec![4, 4]);
        assert_eq!(
            m.growth_needed(&[-3, 0]),
            vec![Some(GrowthDirection::Low), None]
        );
        assert_eq!(
            m.growth_needed(&[1, 4]),
            vec![None, Some(GrowthDirection::High)]
        );
        assert_eq!(m.growth_needed(&[1, 3]), vec![None, None]);
    }

    #[test]
    fn repeated_low_growth() {
        let mut m = CoordMap::at_zero(vec![2]);
        m.grow(0, GrowthDirection::Low); // origin -2, extent 4
        m.grow(0, GrowthDirection::Low); // origin -6, extent 8
        assert_eq!(m.origin(), &[-6]);
        assert_eq!(m.extent(), &[8]);
        assert_eq!(m.to_internal(&[-6]), Some(vec![0]));
        assert_eq!(m.to_internal(&[1]), Some(vec![7]));
        assert_eq!(m.to_internal(&[2]), None);
    }

    #[test]
    fn shape_matches_extent() {
        let m = CoordMap::at_zero(vec![4, 2]);
        assert_eq!(m.shape().dims(), &[4, 2]);
    }
}
