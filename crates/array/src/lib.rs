//! # ddc-array
//!
//! Foundational substrate for the Dynamic Data Cube workspace: dense
//! `d`-dimensional arrays, regions and the Figure-4 prefix decomposition,
//! the Abelian-group measure abstraction, signed coordinates for dynamic
//! growth, the [`RangeSumEngine`] trait implemented by every method in the
//! paper, and the operation counters behind the Table-1 experiments.
//!
//! This crate has no dependencies; everything above it (`ddc-btree`,
//! `ddc-baselines`, `ddc-core`, `ddc-olap`) builds on these types.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod array;
mod coords;
mod counter;
mod engine;
mod group;
mod region;
mod shadow;
mod shape;
mod slice;

pub use array::NdArray;
pub use coords::{CoordMap, GrowthDirection};
pub use counter::{OpCounter, OpSnapshot};
pub use engine::RangeSumEngine;
pub use group::{AbelianGroup, Checked, Pair};
pub use region::{PrefixTerm, Region, RegionPointIter};
pub use shadow::ShadowEngine;
pub use shape::{PointIter, Shape, ShapeError};
pub use slice::SliceView;
