//! The common interface of every range-sum method in the workspace.
//!
//! The paper compares five methods — naive, prefix sum, relative prefix
//! sum, Basic DDC and the Dynamic Data Cube — all of which answer the same
//! two requests: a *prefix sum* (region beginning at `A[0,…,0]`) and a
//! *cell update*. [`RangeSumEngine`] captures exactly that contract; range
//! queries over arbitrary hyper-rectangles are derived generically through
//! the inclusion–exclusion identity of Figure 4.

use crate::counter::{OpCounter, OpSnapshot};
use crate::group::AbelianGroup;
use crate::region::Region;
use crate::shape::Shape;

/// A structure that answers prefix-sum queries and accepts point updates
/// over a logical `d`-dimensional array `A`.
///
/// # Examples
///
/// Every method in the paper implements this trait, so engines are
/// interchangeable (here via `ddc-olap`'s builder; see that crate):
///
/// ```
/// use ddc_array::{RangeSumEngine, Region, Shape};
///
/// fn report(engine: &dyn RangeSumEngine<i64>) -> i64 {
///     engine.range_sum(&Region::new(&[1, 1], &[2, 2]))
/// }
/// ```
pub trait RangeSumEngine<G: AbelianGroup> {
    /// Human-readable method name (used by the benchmark tables).
    fn name(&self) -> &'static str;

    /// The logical shape of the underlying array `A`.
    fn shape(&self) -> &Shape;

    /// `SUM(A[0,…,0] : A[p_1,…,p_d])` — the fundamental query.
    fn prefix_sum(&self, point: &[usize]) -> G;

    /// Adds `delta` to cell `point` of `A`.
    fn apply_delta(&mut self, point: &[usize], delta: G);

    /// Applies a batch of deltas. The default applies them one by one;
    /// engines whose single-update cost is super-logarithmic should
    /// override with a batched path (the prefix-sum engine folds the whole
    /// batch into one `O(d·n^d)` rebuild — the paper's §1 "batch
    /// updating paradigm" made concrete).
    fn apply_batch(&mut self, updates: &[(Vec<usize>, G)]) {
        for (p, delta) in updates {
            self.apply_delta(p, *delta);
        }
    }

    /// Sum of all cells within `region`, derived from at most `2^d` prefix
    /// sums (Figure 4). Engines with a cheaper native path may override.
    fn range_sum(&self, region: &Region) -> G {
        region.check_within(self.shape());
        let mut acc = G::ZERO;
        for term in region.prefix_decomposition() {
            let p = self.prefix_sum(&term.corner);
            acc = if term.sign > 0 {
                acc.add(p)
            } else {
                acc.sub(p)
            };
        }
        acc
    }

    /// Current value of one cell of `A`, recovered as the degenerate range
    /// sum over `[point, point]`. Engines that store `A` directly override
    /// this with a single read.
    fn cell(&self, point: &[usize]) -> G {
        self.range_sum(&Region::cell(point))
    }

    /// Sets cell `point` to `value` (the paper's `UpdateCell`), returning
    /// the previous value. Implemented as read-then-delta, mirroring the
    /// difference-propagation update of Figure 12.
    fn set(&mut self, point: &[usize], value: G) -> G {
        let old = self.cell(point);
        let delta = value.sub(old);
        if !delta.is_zero() {
            self.apply_delta(point, delta);
        }
        old
    }

    /// The engine's operation counter (Table 1 accounting).
    fn counter(&self) -> &OpCounter;

    /// Convenience: snapshot of the operation counter.
    fn ops(&self) -> OpSnapshot {
        self.counter().snapshot()
    }

    /// Convenience: reset the operation counter.
    fn reset_ops(&self) {
        self.counter().reset();
    }

    /// Approximate heap bytes consumed by the structure (Table 2 and the
    /// §5 clustered-storage experiments).
    fn heap_bytes(&self) -> usize;

    /// Human-readable internal metrics, if the engine keeps any beyond
    /// the [`OpCounter`] (e.g. per-shard queue statistics). `None` — the
    /// default — means the engine has nothing extra to report.
    fn metrics_text(&self) -> Option<String> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::NdArray;

    /// A deliberately minimal engine used to exercise the trait's default
    /// methods: it stores `A` and answers prefix sums by brute force.
    struct Brute {
        a: NdArray<i64>,
        counter: OpCounter,
    }

    impl RangeSumEngine<i64> for Brute {
        fn name(&self) -> &'static str {
            "brute"
        }

        fn shape(&self) -> &Shape {
            self.a.shape()
        }

        fn prefix_sum(&self, point: &[usize]) -> i64 {
            self.a.prefix_sum(point)
        }

        fn apply_delta(&mut self, point: &[usize], delta: i64) {
            self.a.add_assign(point, delta);
        }

        fn counter(&self) -> &OpCounter {
            &self.counter
        }

        fn heap_bytes(&self) -> usize {
            self.a.heap_bytes()
        }
    }

    fn brute() -> Brute {
        Brute {
            a: NdArray::from_rows(&[vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]),
            counter: OpCounter::new(),
        }
    }

    #[test]
    fn default_range_sum_uses_inclusion_exclusion() {
        let e = brute();
        assert_eq!(e.range_sum(&Region::new(&[1, 1], &[2, 2])), 28);
        assert_eq!(e.range_sum(&Region::new(&[0, 0], &[2, 2])), 45);
        assert_eq!(e.range_sum(&Region::new(&[2, 0], &[2, 2])), 24);
    }

    #[test]
    fn default_cell_reads_through_range_sum() {
        let e = brute();
        assert_eq!(e.cell(&[1, 1]), 5);
        assert_eq!(e.cell(&[0, 2]), 3);
    }

    #[test]
    fn default_set_returns_old_and_applies_delta() {
        let mut e = brute();
        let old = e.set(&[1, 1], 50);
        assert_eq!(old, 5);
        assert_eq!(e.cell(&[1, 1]), 50);
        let full = Region::full(e.shape());
        assert_eq!(e.range_sum(&full), 45 - 5 + 50);
    }

    #[test]
    fn set_with_identical_value_is_noop() {
        let mut e = brute();
        assert_eq!(e.set(&[2, 2], 9), 9);
        assert_eq!(e.cell(&[2, 2]), 9);
    }
}
