//! A dense, row-major `d`-dimensional array — the paper's array `A`.

use crate::group::AbelianGroup;
use crate::region::Region;
use crate::shape::Shape;

/// Dense `d`-dimensional array over an Abelian group.
///
/// This is the ground-truth representation (the paper's array `A`, Figure 2)
/// as well as the backing store for the prefix-sum array `P` (Figure 3),
/// relative-prefix blocks, and overlay faces.
#[derive(Clone, Debug, PartialEq)]
pub struct NdArray<G> {
    shape: Shape,
    data: Box<[G]>,
}

impl<G: AbelianGroup> NdArray<G> {
    /// An array of the given shape filled with the group identity.
    pub fn zeroed(shape: Shape) -> Self {
        let data = vec![G::ZERO; shape.cells()].into_boxed_slice();
        Self { shape, data }
    }

    /// Builds an array by evaluating `f` at every cell in row-major order.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> G) -> Self {
        let mut data = Vec::with_capacity(shape.cells());
        let mut iter = shape.iter_points();
        let mut buf = vec![0usize; shape.ndim()];
        while iter.next_into(&mut buf) {
            data.push(f(&buf));
        }
        Self {
            shape,
            data: data.into_boxed_slice(),
        }
    }

    /// Wraps a row-major cell vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.cells()`.
    pub fn from_vec(shape: Shape, data: Vec<G>) -> Self {
        assert_eq!(
            data.len(),
            shape.cells(),
            "data length {} does not match shape {shape} ({} cells)",
            data.len(),
            shape.cells()
        );
        Self {
            shape,
            data: data.into_boxed_slice(),
        }
    }

    /// Convenience constructor for the 2-D examples that pervade the paper:
    /// `rows` are the rows of the matrix (`A[i][j]`, `i` vertical, `j`
    /// horizontal, matching the paper's `A[i, j]` notation).
    pub fn from_rows(rows: &[Vec<G>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        let shape = Shape::new(&[rows.len(), cols]);
        let data: Vec<G> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Self::from_vec(shape, data)
    }

    /// The array's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Reads one cell.
    #[inline]
    pub fn get(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        self.data[self.shape.linear(point)]
    }

    /// Writes one cell, returning the previous value.
    #[inline]
    pub fn set(&mut self, point: &[usize], value: G) -> G {
        self.shape.check_point(point);
        let idx = self.shape.linear(point);
        std::mem::replace(&mut self.data[idx], value)
    }

    /// Adds `delta` to one cell.
    #[inline]
    pub fn add_assign(&mut self, point: &[usize], delta: G) {
        self.shape.check_point(point);
        let idx = self.shape.linear(point);
        self.data[idx] = self.data[idx].add(delta);
    }

    /// Reads by linear (row-major) offset.
    #[inline]
    pub fn get_linear(&self, idx: usize) -> G {
        self.data[idx]
    }

    /// Writes by linear (row-major) offset.
    #[inline]
    pub fn set_linear(&mut self, idx: usize, value: G) {
        self.data[idx] = value;
    }

    /// The raw row-major cell slice.
    #[inline]
    pub fn as_slice(&self) -> &[G] {
        &self.data
    }

    /// Sums every cell in `region` by brute-force scan. This is the naive
    /// method of §2 and the ground truth for every test in the workspace.
    pub fn region_sum(&self, region: &Region) -> G {
        region.check_within(&self.shape);
        let mut acc = G::ZERO;
        let mut iter = region.iter_points();
        let mut buf = vec![0usize; self.shape.ndim()];
        while iter.next_into(&mut buf) {
            acc = acc.add(self.data[self.shape.linear(&buf)]);
        }
        acc
    }

    /// Sum of the prefix region `A[0,…,0] : A[p_1,…,p_d]` by brute force.
    pub fn prefix_sum(&self, point: &[usize]) -> G {
        self.region_sum(&Region::prefix(point))
    }

    /// Total of all cells.
    pub fn total(&self) -> G {
        self.data.iter().fold(G::ZERO, |acc, &v| acc.add(v))
    }

    /// Number of cells holding a non-identity value. Used by the sparse /
    /// clustered storage experiments (§5).
    pub fn populated_cells(&self) -> usize {
        self.data.iter().filter(|v| !v.is_zero()).count()
    }

    /// Heap bytes used by the cell storage.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<G>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NdArray<i64> {
        // The 2-D layout mirrors the paper's A[i, j] convention.
        NdArray::from_rows(&[vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]])
    }

    #[test]
    fn get_set_roundtrip() {
        let mut a = sample();
        assert_eq!(a.get(&[1, 2]), 6);
        let old = a.set(&[1, 2], 60);
        assert_eq!(old, 6);
        assert_eq!(a.get(&[1, 2]), 60);
        a.add_assign(&[1, 2], -10);
        assert_eq!(a.get(&[1, 2]), 50);
    }

    #[test]
    fn from_fn_matches_layout() {
        let a = NdArray::from_fn(Shape::new(&[2, 2]), |p| (p[0] * 10 + p[1]) as i64);
        assert_eq!(a.as_slice(), &[0, 1, 10, 11]);
    }

    #[test]
    fn region_sum_brute_force() {
        let a = sample();
        assert_eq!(a.region_sum(&Region::new(&[0, 0], &[2, 2])), 45);
        assert_eq!(a.region_sum(&Region::new(&[1, 1], &[2, 2])), 5 + 6 + 8 + 9);
        assert_eq!(a.region_sum(&Region::new(&[0, 2], &[0, 2])), 3);
    }

    #[test]
    fn prefix_sum_brute_force() {
        let a = sample();
        assert_eq!(a.prefix_sum(&[0, 0]), 1);
        assert_eq!(a.prefix_sum(&[1, 1]), 1 + 2 + 4 + 5);
        assert_eq!(a.prefix_sum(&[2, 2]), 45);
    }

    #[test]
    fn totals_and_population() {
        let mut a = NdArray::<i64>::zeroed(Shape::new(&[4, 4]));
        assert_eq!(a.total(), 0);
        assert_eq!(a.populated_cells(), 0);
        a.set(&[0, 0], 5);
        a.set(&[3, 3], -5);
        assert_eq!(a.total(), 0);
        assert_eq!(a.populated_cells(), 2);
        assert_eq!(a.heap_bytes(), 16 * 8);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch() {
        NdArray::from_vec(Shape::new(&[2, 2]), vec![1i64, 2, 3]);
    }

    #[test]
    fn float_array() {
        let a = NdArray::from_rows(&[vec![0.5f64, 1.5], vec![2.0, 4.0]]);
        assert_eq!(a.total(), 8.0);
        assert_eq!(a.prefix_sum(&[0, 1]), 2.0);
    }
}
