//! Hyper-rectangular regions and the prefix-sum decomposition of Figure 4.
//!
//! Every range-sum method in the paper reduces an arbitrary range query to
//! a signed combination of at most `2^d` *prefix* region sums — regions that
//! begin at `A[0,…,0]` (§2, Figure 4):
//!
//! ```text
//! Sum(Area_E) = Sum(Area_A) − Sum(Area_B) − Sum(Area_C) + Sum(Area_D)
//! ```
//!
//! [`Region::prefix_decomposition`] produces that combination for any
//! dimensionality; engines then only have to implement prefix sums.

use crate::shape::{PointIter, Shape};

/// A closed (inclusive) hyper-rectangle `[lo_1..=hi_1] × … × [lo_d..=hi_d]`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Region {
    lo: Box<[usize]>,
    hi: Box<[usize]>,
}

/// One term of a prefix decomposition: a signed prefix region ending at
/// `corner` (or an empty region when any bound underflows, contributing
/// nothing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefixTerm {
    /// `+1` or `-1`.
    pub sign: i8,
    /// The inclusive endpoint of the prefix region `A[0,…,0] : corner`.
    pub corner: Vec<usize>,
}

impl Region {
    /// Creates the region `[lo..=hi]` (per-dimension inclusive bounds).
    ///
    /// # Panics
    ///
    /// Panics if the bounds have mismatched dimensionality or `lo_i > hi_i`
    /// for any `i` — empty regions are represented by not asking.
    pub fn new(lo: &[usize], hi: &[usize]) -> Self {
        assert_eq!(lo.len(), hi.len(), "region bounds must have equal rank");
        assert!(!lo.is_empty(), "region must have at least one dimension");
        for (axis, (&l, &h)) in lo.iter().zip(hi.iter()).enumerate() {
            assert!(l <= h, "inverted bounds {l}..={h} in dimension {axis}");
        }
        Self {
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// The prefix region `A[0,…,0] : A[p_1,…,p_d]`.
    pub fn prefix(point: &[usize]) -> Self {
        Self::new(&vec![0; point.len()], point)
    }

    /// The degenerate single-cell region at `point`.
    pub fn cell(point: &[usize]) -> Self {
        Self::new(point, point)
    }

    /// The full extent of `shape`.
    pub fn full(shape: &Shape) -> Self {
        let hi: Vec<usize> = shape.dims().iter().map(|&n| n - 1).collect();
        Self::new(&vec![0; shape.ndim()], &hi)
    }

    /// Lower (inclusive) corner.
    #[inline]
    pub fn lo(&self) -> &[usize] {
        &self.lo
    }

    /// Upper (inclusive) corner.
    #[inline]
    pub fn hi(&self) -> &[usize] {
        &self.hi
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.lo.len()
    }

    /// Extent (`hi - lo + 1`) along `axis`.
    #[inline]
    pub fn extent(&self, axis: usize) -> usize {
        self.hi[axis] - self.lo[axis] + 1
    }

    /// Number of cells in the region.
    pub fn cells(&self) -> usize {
        (0..self.ndim()).map(|a| self.extent(a)).product()
    }

    /// True if `point` lies inside the region.
    pub fn contains(&self, point: &[usize]) -> bool {
        point.len() == self.ndim()
            && point
                .iter()
                .zip(self.lo.iter().zip(self.hi.iter()))
                .all(|(&p, (&l, &h))| l <= p && p <= h)
    }

    /// True if `other` is entirely inside `self`.
    pub fn contains_region(&self, other: &Region) -> bool {
        other.ndim() == self.ndim() && self.contains(other.lo()) && self.contains(other.hi())
    }

    /// The intersection of two regions, if non-empty.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        assert_eq!(self.ndim(), other.ndim());
        let mut lo = Vec::with_capacity(self.ndim());
        let mut hi = Vec::with_capacity(self.ndim());
        for axis in 0..self.ndim() {
            let l = self.lo[axis].max(other.lo[axis]);
            let h = self.hi[axis].min(other.hi[axis]);
            if l > h {
                return None;
            }
            lo.push(l);
            hi.push(h);
        }
        Some(Region::new(&lo, &hi))
    }

    /// Asserts the region fits within `shape`.
    pub fn check_within(&self, shape: &Shape) {
        assert_eq!(
            self.ndim(),
            shape.ndim(),
            "region rank {} does not match shape {shape}",
            self.ndim()
        );
        for axis in 0..self.ndim() {
            assert!(
                self.hi[axis] < shape.dim(axis),
                "region upper bound {} exceeds dimension {axis} of size {}",
                self.hi[axis],
                shape.dim(axis)
            );
        }
    }

    /// Iterates over all points in the region in row-major order.
    pub fn iter_points(&self) -> RegionPointIter {
        let extents: Vec<usize> = (0..self.ndim()).map(|a| self.extent(a)).collect();
        RegionPointIter {
            offsets: PointIter::new_for_extents(extents),
            lo: self.lo.clone(),
        }
    }

    /// The inclusion–exclusion decomposition of this region into signed
    /// prefix sums (paper Figure 4, generalized to `d` dimensions).
    ///
    /// Each corner chooses, per dimension, either `hi_i` (in-term) or
    /// `lo_i − 1` (subtracted slab). Corners requiring `lo_i − 1` with
    /// `lo_i = 0` denote empty regions and are omitted, so the result has
    /// between 1 and `2^d` terms. The sign is `(−1)^{#dimensions using lo−1}`.
    ///
    /// # Examples
    ///
    /// Figure 4's identity, `Sum(E) = Sum(A) − Sum(B) − Sum(C) + Sum(D)`:
    ///
    /// ```
    /// use ddc_array::Region;
    ///
    /// let e = Region::new(&[2, 3], &[4, 5]);
    /// let terms = e.prefix_decomposition();
    /// assert_eq!(terms.len(), 4);
    /// assert_eq!(terms.iter().map(|t| t.sign as i32).sum::<i32>(), 0);
    /// assert!(terms.iter().any(|t| t.sign == 1 && t.corner == vec![4, 5]));
    /// assert!(terms.iter().any(|t| t.sign == -1 && t.corner == vec![1, 5]));
    /// ```
    pub fn prefix_decomposition(&self) -> Vec<PrefixTerm> {
        let d = self.ndim();
        let mut terms = Vec::with_capacity(1 << d);
        'mask: for mask in 0u32..(1u32 << d) {
            let mut corner = Vec::with_capacity(d);
            let mut sign = 1i8;
            for axis in 0..d {
                if mask & (1 << axis) != 0 {
                    if self.lo[axis] == 0 {
                        continue 'mask; // empty slab; contributes nothing
                    }
                    corner.push(self.lo[axis] - 1);
                    sign = -sign;
                } else {
                    corner.push(self.hi[axis]);
                }
            }
            terms.push(PrefixTerm { sign, corner });
        }
        terms
    }
}

/// Iterator over the points of a [`Region`].
#[derive(Clone, Debug)]
pub struct RegionPointIter {
    offsets: PointIter,
    lo: Box<[usize]>,
}

impl PointIter {
    pub(crate) fn new_for_extents(extents: Vec<usize>) -> Self {
        // Reuse the shape iterator machinery over the extent vector.
        Shape::new(&extents).iter_points()
    }
}

impl RegionPointIter {
    /// Advances in place; `out` receives absolute coordinates.
    pub fn next_into(&mut self, out: &mut [usize]) -> bool {
        if !self.offsets.next_into(out) {
            return false;
        }
        for (o, &l) in out.iter_mut().zip(self.lo.iter()) {
            *o += l;
        }
        true
    }
}

impl Iterator for RegionPointIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let mut p = self.offsets.next()?;
        for (o, &l) in p.iter_mut().zip(self.lo.iter()) {
            *o += l;
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_geometry() {
        let r = Region::new(&[1, 2], &[3, 4]);
        assert_eq!(r.cells(), 9);
        assert_eq!(r.extent(0), 3);
        assert!(r.contains(&[2, 3]));
        assert!(!r.contains(&[0, 3]));
        assert!(r.contains_region(&Region::new(&[2, 2], &[3, 3])));
        assert!(!r.contains_region(&Region::new(&[0, 2], &[3, 3])));
    }

    #[test]
    fn intersection() {
        let a = Region::new(&[0, 0], &[4, 4]);
        let b = Region::new(&[3, 2], &[8, 3]);
        assert_eq!(a.intersect(&b), Some(Region::new(&[3, 2], &[4, 3])));
        let c = Region::new(&[5, 5], &[6, 6]);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn figure4_two_dimensional_decomposition() {
        // Area_E = [2..=4] × [3..=5]:
        // Sum(E) = P(4,5) − P(1,5) − P(4,2) + P(1,2)   (paper Figure 4)
        let r = Region::new(&[2, 3], &[4, 5]);
        let mut terms = r.prefix_decomposition();
        terms.sort_by_key(|t| t.corner.clone());
        assert_eq!(
            terms,
            vec![
                PrefixTerm {
                    sign: 1,
                    corner: vec![1, 2]
                },
                PrefixTerm {
                    sign: -1,
                    corner: vec![1, 5]
                },
                PrefixTerm {
                    sign: -1,
                    corner: vec![4, 2]
                },
                PrefixTerm {
                    sign: 1,
                    corner: vec![4, 5]
                },
            ]
        );
    }

    #[test]
    fn decomposition_at_origin_is_single_term() {
        let r = Region::new(&[0, 0, 0], &[5, 6, 7]);
        let terms = r.prefix_decomposition();
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].sign, 1);
        assert_eq!(terms[0].corner, vec![5, 6, 7]);
    }

    #[test]
    fn decomposition_mixed_origin() {
        // lo = [0, 2]: only the second dimension produces subtracted slabs.
        let r = Region::new(&[0, 2], &[3, 4]);
        let mut terms = r.prefix_decomposition();
        terms.sort_by_key(|t| t.corner.clone());
        assert_eq!(
            terms,
            vec![
                PrefixTerm {
                    sign: -1,
                    corner: vec![3, 1]
                },
                PrefixTerm {
                    sign: 1,
                    corner: vec![3, 4]
                },
            ]
        );
    }

    #[test]
    fn decomposition_term_count_bound() {
        let r = Region::new(&[1, 1, 1, 1], &[2, 2, 2, 2]);
        assert_eq!(r.prefix_decomposition().len(), 16); // 2^4
    }

    #[test]
    fn iter_points_covers_region() {
        let r = Region::new(&[1, 1], &[2, 3]);
        let pts: Vec<Vec<usize>> = r.iter_points().collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![1, 1]);
        assert_eq!(pts[5], vec![2, 3]);
    }

    #[test]
    fn full_and_cell_constructors() {
        let s = Shape::new(&[3, 4]);
        let f = Region::full(&s);
        assert_eq!(f, Region::new(&[0, 0], &[2, 3]));
        assert_eq!(Region::cell(&[1, 2]).cells(), 1);
        f.check_within(&s);
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn inverted_bounds_rejected() {
        Region::new(&[2], &[1]);
    }

    #[test]
    #[should_panic(expected = "exceeds dimension")]
    fn check_within_rejects_oversized() {
        Region::new(&[0, 0], &[3, 3]).check_within(&Shape::new(&[3, 3]));
    }
}
