//! The algebraic foundation of every range-sum structure in this workspace.
//!
//! The Dynamic Data Cube paper (§2) notes that its techniques apply to SUM,
//! COUNT, AVERAGE, ROLLING SUM and, in general, to "any binary operator `⊕`
//! for which there exists an inverse binary operator `⊖` such that
//! `a ⊕ b ⊖ b = a`". That contract is an Abelian group, captured here by
//! [`AbelianGroup`].
//!
//! All engines in the workspace are generic over the group so the same tree
//! code serves integer SUM cubes, floating-point cubes, and the paired
//! (sum, count) values used to answer AVERAGE queries.

use std::fmt::Debug;

/// A commutative group: the value domain of a measure attribute.
///
/// Laws (checked by property tests in the `ddc-tests` crate):
///
/// * associativity: `a.add(b.add(c)) == a.add(b).add(c)`
/// * commutativity: `a.add(b) == b.add(a)`
/// * identity: `a.add(G::ZERO) == a`
/// * inverse: `a.add(b).sub(b) == a`
///
/// Implementations must be cheap to `Copy`; every tree node stores values
/// inline.
pub trait AbelianGroup: Copy + Clone + Debug + PartialEq + Send + Sync + 'static {
    /// The identity element (`0` for SUM, `(0, 0)` for (sum, count) pairs).
    const ZERO: Self;

    /// The group operation (`+` for SUM).
    #[must_use]
    fn add(self, rhs: Self) -> Self;

    /// The inverse operation (`-` for SUM); `a.add(b).sub(b) == a`.
    #[must_use]
    fn sub(self, rhs: Self) -> Self;

    /// The inverse element; default is `ZERO.sub(self)`.
    #[must_use]
    fn neg(self) -> Self {
        Self::ZERO.sub(self)
    }

    /// True if this is the identity element. Lazily materialized trees use
    /// this to avoid allocating nodes for empty regions (paper §5).
    fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }
}

macro_rules! impl_group_for_int {
    ($($t:ty),*) => {$(
        impl AbelianGroup for $t {
            const ZERO: Self = 0;

            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }

            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.wrapping_sub(rhs)
            }

            #[inline]
            fn neg(self) -> Self {
                self.wrapping_neg()
            }
        }
    )*};
}

impl_group_for_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128);

impl AbelianGroup for f64 {
    const ZERO: Self = 0.0;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline]
    fn neg(self) -> Self {
        -self
    }
}

impl AbelianGroup for f32 {
    const ZERO: Self = 0.0;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }

    #[inline]
    fn neg(self) -> Self {
        -self
    }
}

/// The product group of two groups.
///
/// `Pair<i64, i64>` is how the OLAP layer answers AVERAGE queries: the first
/// component accumulates SUM, the second COUNT, and `sum / count` is computed
/// at the edge. A single cube maintenance pass keeps both aggregates exact
/// under updates — exactly the construction the paper alludes to in §2.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Pair<A, B> {
    /// First component (e.g. the running SUM).
    pub a: A,
    /// Second component (e.g. the running COUNT).
    pub b: B,
}

impl<A, B> Pair<A, B> {
    /// Bundles two group values into a product-group value.
    pub const fn new(a: A, b: B) -> Self {
        Self { a, b }
    }
}

impl<A: AbelianGroup, B: AbelianGroup> AbelianGroup for Pair<A, B> {
    const ZERO: Self = Pair {
        a: A::ZERO,
        b: B::ZERO,
    };

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Pair {
            a: self.a.add(rhs.a),
            b: self.b.add(rhs.b),
        }
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Pair {
            a: self.a.sub(rhs.a),
            b: self.b.sub(rhs.b),
        }
    }
}

/// An overflow-*panicking* integer measure for debugging pipelines.
///
/// The stock integer instances wrap (modular arithmetic is a perfectly
/// good Abelian group, and production range-sum structures should not
/// branch per addition). When ingesting untrusted data, wrap the measure
/// in `Checked` to turn silent wraparound into a loud panic at the exact
/// offending operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Checked(pub i64);

impl AbelianGroup for Checked {
    const ZERO: Self = Checked(0);

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Checked(
            self.0
                .checked_add(rhs.0)
                .expect("measure overflow in Checked::add"),
        )
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Checked(
            self.0
                .checked_sub(rhs.0)
                .expect("measure overflow in Checked::sub"),
        )
    }

    #[inline]
    fn neg(self) -> Self {
        Checked(
            self.0
                .checked_neg()
                .expect("measure overflow in Checked::neg"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_group_laws() {
        let a = 17i64;
        let b = -4i64;
        let c = 1000i64;
        assert_eq!(a.add(b).add(c), a.add(b.add(c)));
        assert_eq!(a.add(b), b.add(a));
        assert_eq!(a.add(i64::ZERO), a);
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(a.add(a.neg()), 0);
    }

    #[test]
    fn integer_group_wraps_instead_of_panicking() {
        let max = i64::MAX;
        assert_eq!(max.add(1), i64::MIN);
        assert_eq!(i64::MIN.sub(1), i64::MAX);
        assert_eq!(i64::MIN.neg(), i64::MIN);
    }

    #[test]
    fn float_group_laws() {
        let a = 2.5f64;
        let b = -0.75f64;
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(a.add(f64::ZERO), a);
        assert_eq!(a.neg(), -2.5);
    }

    #[test]
    fn pair_group_componentwise() {
        let x = Pair::new(3i64, 1i64);
        let y = Pair::new(-2i64, 1i64);
        assert_eq!(x.add(y), Pair::new(1, 2));
        assert_eq!(x.add(y).sub(y), x);
        assert_eq!(Pair::<i64, i64>::ZERO, Pair::new(0, 0));
        assert!(Pair::<i64, i64>::ZERO.is_zero());
        assert!(!x.is_zero());
    }

    #[test]
    fn unsigned_groups_wrap() {
        assert_eq!(0u32.sub(1), u32::MAX);
        assert_eq!(u64::MAX.add(1), 0);
    }

    #[test]
    fn checked_group_behaves_normally_in_range() {
        let a = Checked(40);
        let b = Checked(2);
        assert_eq!(a.add(b), Checked(42));
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(Checked::ZERO.neg(), Checked(0));
        assert!(!a.is_zero());
        assert!(Checked::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "measure overflow")]
    fn checked_group_panics_on_overflow() {
        let _ = Checked(i64::MAX).add(Checked(1));
    }
}
