//! Slicing: a `(d−1)`-dimensional view of a cube with one coordinate
//! pinned — the OLAP *slice* operation, with *dice* falling out of
//! ordinary range queries on the view.
//!
//! A [`SliceView`] borrows any [`RangeSumEngine`] and answers queries in
//! the remaining dimensions by inserting the pinned coordinate, so it
//! costs nothing to create and stays live as the underlying cube updates.

use crate::counter::OpCounter;
use crate::engine::RangeSumEngine;
use crate::group::AbelianGroup;
use crate::shape::Shape;

/// A read-only lower-rank view of an engine with one axis fixed.
pub struct SliceView<'a, G: AbelianGroup> {
    inner: &'a dyn RangeSumEngine<G>,
    axis: usize,
    index: usize,
    shape: Shape,
}

impl<G: AbelianGroup> std::fmt::Debug for SliceView<'_, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SliceView")
            .field("engine", &self.inner.name())
            .field("axis", &self.axis)
            .field("index", &self.index)
            .field("shape", &self.shape)
            .finish()
    }
}

impl<'a, G: AbelianGroup> SliceView<'a, G> {
    /// Pins `axis` of `inner` to `index`.
    ///
    /// # Panics
    ///
    /// Panics if the engine is one-dimensional (a slice would have rank
    /// zero), `axis` is out of range, or `index` exceeds the axis.
    pub fn new(inner: &'a dyn RangeSumEngine<G>, axis: usize, index: usize) -> Self {
        let full = inner.shape();
        assert!(full.ndim() >= 2, "cannot slice a 1-D cube");
        assert!(axis < full.ndim(), "axis {axis} out of range");
        assert!(
            index < full.dim(axis),
            "index {index} beyond axis {axis} of size {}",
            full.dim(axis)
        );
        let shape = full.drop_axis(axis);
        Self {
            inner,
            axis,
            index,
            shape,
        }
    }

    /// The pinned axis.
    pub fn axis(&self) -> usize {
        self.axis
    }

    /// The pinned coordinate.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Expands a view point into full-rank coordinates.
    fn expand(&self, point: &[usize]) -> Vec<usize> {
        let mut full = Vec::with_capacity(point.len() + 1);
        full.extend_from_slice(&point[..self.axis]);
        full.push(self.index);
        full.extend_from_slice(&point[self.axis..]);
        full
    }
}

impl<G: AbelianGroup> RangeSumEngine<G> for SliceView<'_, G> {
    fn name(&self) -> &'static str {
        "slice"
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Prefix over the remaining dimensions, *within* the pinned slab:
    /// the slab `[index, index]` on the pinned axis, prefixes elsewhere.
    fn prefix_sum(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        let hi = self.expand(point);
        let mut lo = vec![0; hi.len()];
        lo[self.axis] = self.index;
        self.inner.range_sum(&crate::region::Region::new(&lo, &hi))
    }

    fn apply_delta(&mut self, _point: &[usize], _delta: G) {
        unreachable!("SliceView is read-only; update the underlying cube");
    }

    fn cell(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        self.inner.cell(&self.expand(point))
    }

    fn counter(&self) -> &OpCounter {
        self.inner.counter()
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::NdArray;
    use crate::region::Region;

    struct Brute {
        a: NdArray<i64>,
        counter: OpCounter,
    }

    impl RangeSumEngine<i64> for Brute {
        fn name(&self) -> &'static str {
            "brute"
        }
        fn shape(&self) -> &Shape {
            self.a.shape()
        }
        fn prefix_sum(&self, p: &[usize]) -> i64 {
            self.a.prefix_sum(p)
        }
        fn range_sum(&self, r: &Region) -> i64 {
            self.a.region_sum(r)
        }
        fn apply_delta(&mut self, p: &[usize], delta: i64) {
            self.a.add_assign(p, delta);
        }
        fn counter(&self) -> &OpCounter {
            &self.counter
        }
        fn heap_bytes(&self) -> usize {
            0
        }
    }

    fn cube3() -> Brute {
        Brute {
            a: NdArray::from_fn(Shape::cube(3, 4), |p| (p[0] * 16 + p[1] * 4 + p[2]) as i64),
            counter: OpCounter::new(),
        }
    }

    #[test]
    fn slice_matches_manual_plane_sums() {
        let c = cube3();
        // Pin axis 1 to 2: the view is the (x, z) plane at y = 2.
        let v = SliceView::new(&c, 1, 2);
        assert_eq!(v.shape().dims(), &[4, 4]);
        for x in 0..4 {
            for z in 0..4 {
                let mut manual = 0i64;
                for xi in 0..=x {
                    for zi in 0..=z {
                        manual += c.a.get(&[xi, 2, zi]);
                    }
                }
                assert_eq!(v.prefix_sum(&[x, z]), manual, "({x},{z})");
            }
        }
    }

    #[test]
    fn dice_is_a_range_query_on_the_view() {
        let c = cube3();
        let v = SliceView::new(&c, 0, 1);
        let q = Region::new(&[1, 1], &[2, 3]);
        let mut manual = 0i64;
        for y in 1..=2 {
            for z in 1..=3 {
                manual += c.a.get(&[1, y, z]);
            }
        }
        assert_eq!(v.range_sum(&q), manual);
        assert_eq!(v.cell(&[3, 3]), c.a.get(&[1, 3, 3]));
    }

    #[test]
    fn slice_of_slice_reduces_to_a_line() {
        let c = cube3();
        let plane = SliceView::new(&c, 0, 2);
        let line = SliceView::new(&plane, 0, 1); // x = 2, y = 1
        assert_eq!(line.shape().dims(), &[4]);
        let expect: i64 = (0..=3).map(|z| c.a.get(&[2, 1, z])).sum();
        assert_eq!(line.prefix_sum(&[3]), expect);
    }

    #[test]
    #[should_panic(expected = "cannot slice a 1-D cube")]
    fn slicing_a_line_is_rejected() {
        let c = cube3();
        let plane = SliceView::new(&c, 0, 0);
        let line = SliceView::new(&plane, 0, 0);
        let _ = SliceView::new(&line, 0, 0);
    }

    #[test]
    fn view_tracks_underlying_updates() {
        let mut c = cube3();
        let before = {
            let v = SliceView::new(&c, 2, 0);
            v.prefix_sum(&[3, 3])
        };
        c.apply_delta(&[1, 1, 0], 100);
        let v = SliceView::new(&c, 2, 0);
        assert_eq!(v.prefix_sum(&[3, 3]), before + 100);
        // A slice not containing the updated cell is unchanged.
        let other = SliceView::new(&c, 2, 1);
        let mut manual = 0i64;
        for x in 0..4 {
            for y in 0..4 {
                manual += c.a.get(&[x, y, 1]);
            }
        }
        assert_eq!(other.prefix_sum(&[3, 3]), manual);
    }
}
