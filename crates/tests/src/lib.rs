//! # ddc-tests
//!
//! Cross-crate test suites (under `/tests`) plus a tiny deterministic
//! property-test harness that replaces `proptest` so the workspace
//! builds and tests with zero network access.
//!
//! ## The harness
//!
//! [`run_cases`] runs a closure over `cases` independently seeded
//! [`DdcRng`]s. Each case seed derives deterministically from a master
//! seed, so failures reproduce exactly; on a panic the harness reports
//! the case index and its seed, and re-running with
//! `DDC_PROP_SEED=<seed> DDC_PROP_CASES=1` replays just that case.
//! There is no shrinking — generators are written to produce small
//! inputs in the first place.
//!
//! ```
//! ddc_tests::run_cases("addition_commutes", 32, |rng| {
//!     let a = rng.gen_range(-1000i64..=1000);
//!     let b = rng.gen_range(-1000i64..=1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::panic::{catch_unwind, AssertUnwindSafe};

pub use ddc_workload::DdcRng;

/// Default number of cases when a suite does not override it.
pub const DEFAULT_CASES: usize = 32;

/// Master seed used when `DDC_PROP_SEED` is unset. Arbitrary but fixed:
/// test runs are reproducible across machines by default.
const DEFAULT_SEED: u64 = 0xDDC0_FFEE;

fn master_seed() -> u64 {
    match std::env::var("DDC_PROP_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("DDC_PROP_SEED must be a u64, got {s:?}")),
        Err(_) => DEFAULT_SEED,
    }
}

fn case_count(default: usize) -> usize {
    match std::env::var("DDC_PROP_CASES") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("DDC_PROP_CASES must be a usize, got {s:?}")),
        Err(_) => default,
    }
}

/// splitmix64 step — derives per-case seeds from the master seed so
/// cases are decorrelated but individually replayable.
fn derive(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `f` over `cases` freshly seeded RNGs; panics (failing the test)
/// on the first failing case, reporting the case index and seed needed
/// to replay it.
///
/// `DDC_PROP_CASES` overrides `cases`; `DDC_PROP_SEED` overrides the
/// master seed (useful to replay one failing case in isolation).
pub fn run_cases(name: &str, cases: usize, f: impl Fn(&mut DdcRng)) {
    let master = master_seed();
    let n = case_count(cases);
    for i in 0..n {
        let seed = derive(master, i as u64);
        let mut rng = DdcRng::seed_from_u64(seed);
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        if let Err(panic) = result {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property '{name}' failed at case {i}/{n} (seed {seed}): {msg}\n\
                 replay with: DDC_PROP_SEED={master} DDC_PROP_CASES={c} cargo test {name}",
                c = i + 1,
            );
        }
    }
}

/// Declares a `#[test]` that runs a property over seeded RNG cases.
///
/// ```
/// ddc_tests::for_cases! {
///     /// i64 addition commutes.
///     fn addition_commutes(rng, cases = 64) {
///         let a = rng.gen_range(-1000i64..=1000);
///         let b = rng.gen_range(-1000i64..=1000);
///         assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! for_cases {
    ($( $(#[$meta:meta])* fn $name:ident($rng:ident $(, cases = $cases:expr)?) $body:block )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                #[allow(unused_mut, unused_variables)]
                let run = |$rng: &mut $crate::DdcRng| $body;
                #[allow(unused_variables)]
                let cases = $crate::DEFAULT_CASES;
                $(let cases = $cases;)?
                $crate::run_cases(stringify!($name), cases, run);
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<i64> = Vec::new();
        run_cases("collect", 8, |rng| {
            // Interior mutability not needed: closure is Fn, so collect
            // through a RefCell-free channel — recompute instead.
            let _ = rng.gen_range(0i64..100);
        });
        // Seeds derive purely from (master, index): same inputs, same seeds.
        let a: Vec<u64> = (0..8).map(|i| derive(DEFAULT_SEED, i)).collect();
        let b: Vec<u64> = (0..8).map(|i| derive(DEFAULT_SEED, i)).collect();
        assert_eq!(a, b);
        first.push(0);
        assert_eq!(first.len(), 1);
    }

    #[test]
    fn failure_reports_case_and_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_cases("always_fails", 4, |_rng| panic!("boom"));
        }))
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("case 0/4"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("DDC_PROP_SEED="), "{msg}");
    }

    for_cases! {
        /// The macro wires name, cases, and rng through correctly.
        fn macro_smoke(rng, cases = 16) {
            let v = rng.gen_range(1usize..=8);
            assert!((1..=8).contains(&v));
        }

        /// Default case count applies when none is given.
        fn macro_default_cases(rng) {
            assert!(rng.gen_range(0.0f64..1.0) < 1.0);
        }
    }
}
