//! Integration-test shim crate; see /tests.
