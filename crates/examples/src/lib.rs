//! Examples shim crate; see /examples.
