//! Query plans: how a range query decomposes and what it should cost.
//!
//! [`DataCube::explain`] resolves the per-dimension specs to the dense
//! region, lists the Figure-4 prefix terms the engine will combine, and
//! attaches the paper's analytic cost predictions (Table 1 formulas) so
//! users can see *why* an engine choice matters before running anything.

use ddc_array::{AbelianGroup, Region};
use ddc_costmodel::table1;

use crate::cube::DataCube;
use crate::dimension::{EncodeError, RangeSpec};

/// The resolved plan for one range-sum query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryPlan {
    /// The dense index region the specs resolve to.
    pub region: Region,
    /// Number of signed prefix terms the inclusion–exclusion produces
    /// (1 ≤ terms ≤ 2^d; origin-anchored dimensions drop terms).
    pub prefix_terms: usize,
    /// Cells a naive scan of the region would read.
    pub naive_cells: usize,
    /// Predicted cost (values touched) per engine for the *query*, from
    /// the paper's formulas on the cube's geometry.
    pub predicted_query: Vec<(&'static str, f64)>,
    /// Predicted cost per engine for one *update* to this cube —
    /// constant per cube, printed for contrast (Table 1).
    pub predicted_update: Vec<(&'static str, f64)>,
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "region          : {:?}..{:?}",
            self.region.lo(),
            self.region.hi()
        )?;
        writeln!(f, "prefix terms    : {}", self.prefix_terms)?;
        writeln!(f, "naive scan cells: {}", self.naive_cells)?;
        writeln!(f, "predicted query cost (values read):")?;
        for (name, cost) in &self.predicted_query {
            writeln!(f, "  {name:<16} {cost:>14.0}")?;
        }
        writeln!(f, "predicted worst-case update cost (Table 1):")?;
        for (name, cost) in &self.predicted_update {
            writeln!(f, "  {name:<16} {cost:>14.0}")?;
        }
        Ok(())
    }
}

impl<G: AbelianGroup> DataCube<G> {
    /// Builds the plan for a range query without executing it.
    pub fn explain(&self, ranges: &[RangeSpec<'_>]) -> Result<QueryPlan, EncodeError> {
        if ranges.len() != self.dimensions().len() {
            return Err(EncodeError::ArityMismatch {
                expected: self.dimensions().len(),
                got: ranges.len(),
            });
        }
        let mut lo = Vec::with_capacity(ranges.len());
        let mut hi = Vec::with_capacity(ranges.len());
        for (spec, dim) in ranges.iter().zip(self.dimensions()) {
            let (l, h) = spec.resolve(dim)?;
            lo.push(l);
            hi.push(h);
        }
        let region = Region::new(&lo, &hi);
        let terms = region.prefix_decomposition().len();

        let d = self.dimensions().len() as u32;
        let n = self
            .dimensions()
            .iter()
            .map(|dim| dim.size())
            .max()
            .expect("at least one dimension") as f64;
        let logd = n.log2().max(1.0).powi(d as i32);
        let t = terms as f64;
        let predicted_query = vec![
            ("naive", region.cells() as f64),
            ("prefix-sum", t),
            ("relative-prefix", t * 2f64.powi(d as i32)),
            (
                "basic-ddc",
                t * n.log2().max(1.0) * (2f64.powi(d as i32) - 1.0),
            ),
            ("dynamic-ddc", t * logd),
        ];
        let predicted_update = vec![
            ("naive", 1.0),
            ("prefix-sum", table1::prefix_sum_update(n, d)),
            ("relative-prefix", table1::relative_prefix_update(n, d)),
            (
                "basic-ddc",
                ddc_costmodel::complexity::basic_update_cost(n.max(2.0), d.max(2)),
            ),
            ("dynamic-ddc", table1::ddc_update(n, d)),
        ];
        Ok(QueryPlan {
            region,
            prefix_terms: terms,
            naive_cells: 0, // set below to keep field ordering obvious
            predicted_query,
            predicted_update,
        }
        .with_naive_cells())
    }
}

impl QueryPlan {
    fn with_naive_cells(mut self) -> Self {
        self.naive_cells = self.region.cells();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeBuilder, SumCountCube};
    use crate::dimension::Dimension;
    use crate::engines::EngineKind;

    fn cube() -> SumCountCube {
        CubeBuilder::new()
            .dimension(Dimension::int_range("age", 0, 99))
            .dimension(Dimension::int_range("day", 1, 365))
            .engine(EngineKind::DynamicDdc)
            .build()
    }

    #[test]
    fn plan_reflects_the_region() {
        let c = cube();
        let plan = c
            .explain(&[
                RangeSpec::Between(27.into(), 45.into()),
                RangeSpec::Between(341.into(), 365.into()),
            ])
            .unwrap();
        assert_eq!(plan.region.lo(), &[27, 340]);
        assert_eq!(plan.region.hi(), &[45, 364]);
        assert_eq!(plan.prefix_terms, 4);
        assert_eq!(plan.naive_cells, 19 * 25);
    }

    #[test]
    fn origin_anchored_queries_drop_terms() {
        let c = cube();
        let plan = c
            .explain(&[RangeSpec::Between(0.into(), 45.into()), RangeSpec::All])
            .unwrap();
        assert_eq!(plan.prefix_terms, 1);
    }

    #[test]
    fn predictions_rank_engines_sensibly() {
        let c = cube();
        let plan = c.explain(&[RangeSpec::All, RangeSpec::All]).unwrap();
        let get = |rows: &[(&str, f64)], k: &str| {
            rows.iter().find(|(n, _)| *n == k).map(|(_, v)| *v).unwrap()
        };
        // Query: prefix-sum cheapest, naive most expensive.
        assert!(get(&plan.predicted_query, "prefix-sum") < get(&plan.predicted_query, "naive"));
        // Update: the ordering of Table 1.
        let upd = &plan.predicted_update;
        assert!(get(upd, "dynamic-ddc") < get(upd, "relative-prefix"));
        assert!(get(upd, "relative-prefix") < get(upd, "prefix-sum"));
        // Display renders every engine line.
        let text = plan.to_string();
        assert!(text.contains("dynamic-ddc"), "{text}");
        assert!(text.contains("prefix terms"), "{text}");
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let c = cube();
        assert!(c.explain(&[RangeSpec::All]).is_err());
    }
}
