//! # ddc-olap
//!
//! The OLAP-facing layer of the Dynamic Data Cube workspace: named
//! dimensions with value encoders, measure aggregation (SUM / COUNT /
//! AVERAGE via invertible operators, §2), record ingestion, and range
//! queries — over any of the paper's range-sum methods selected through
//! [`EngineKind`].

#![warn(missing_docs)]
#![warn(clippy::all)]

mod cube;
mod dimension;
mod dynamic_cube;
mod engines;
mod explain;
mod hierarchy;
mod ingest;
mod rollup;
mod sql;

pub use cube::{CubeBuilder, DataCube, SumCountCube};
pub use dimension::{DimValue, Dimension, EncodeError, Encoder, RangeSpec};
pub use dynamic_cube::{DynamicDataCube, DynamicDimension, DynamicRange};
pub use engines::EngineKind;
pub use explain::QueryPlan;
pub use hierarchy::{Hierarchy, Level};
pub use ingest::{load_records, split_record, IngestError, IngestOptions};
pub use rollup::GroupRow;
pub use sql::{parse_query, SqlAggregate, SqlQuery, SqlResult};
