//! Delimited-record ingestion: load a cube from CSV-like data.
//!
//! The paper's cubes are "constructed from a subset of attributes in the
//! database" (§1). [`load_records`] replays such an extract — one record
//! per line, one column per dimension plus a trailing measure column —
//! into any cube, reporting precise line/column errors. A minimal
//! quoted-field parser is included so no external CSV dependency is
//! needed.

use ddc_array::AbelianGroup;

use crate::cube::DataCube;
use crate::dimension::{DimValue, Encoder};

/// Where and why ingestion stopped.
#[derive(Clone, Debug, PartialEq)]
pub struct IngestError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IngestError {}

/// Options for [`load_records`].
#[derive(Clone, Debug)]
pub struct IngestOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Skip the first line (header) when true.
    pub has_header: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            has_header: true,
        }
    }
}

/// Splits one record, honouring double-quoted fields with `""` escapes.
pub fn split_record(line: &str, delimiter: char) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            if !field.is_empty() {
                return Err("quote in the middle of an unquoted field".to_string());
            }
            in_quotes = true;
        } else if c == delimiter {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".to_string());
    }
    fields.push(field);
    Ok(fields)
}

/// Parses one measure column as `i64` (plain integers only; fractional
/// measures should use a `DataCube<f64>` and [`load_records_with`]).
fn parse_i64(s: &str) -> Result<i64, String> {
    s.trim()
        .parse::<i64>()
        .map_err(|_| format!("bad measure '{s}'"))
}

impl<G: AbelianGroup> DataCube<G> {
    /// Loads delimited records with a caller-supplied measure parser; see
    /// [`load_records`] for the common integer case. Each record must
    /// have one column per dimension plus the measure column. Returns the
    /// number of records ingested.
    pub fn load_records_with(
        &mut self,
        data: &str,
        options: &IngestOptions,
        parse_measure: impl Fn(&str) -> Result<G, String>,
    ) -> Result<usize, IngestError> {
        let want = self.dimensions().len() + 1;
        let mut ingested = 0usize;
        for (idx, raw) in data.lines().enumerate() {
            let line = idx + 1;
            if (options.has_header && idx == 0) || raw.trim().is_empty() {
                continue;
            }
            let fields = split_record(raw, options.delimiter)
                .map_err(|message| IngestError { line, message })?;
            if fields.len() != want {
                return Err(IngestError {
                    line,
                    message: format!("expected {want} fields, got {}", fields.len()),
                });
            }
            let measure = parse_measure(&fields[want - 1])
                .map_err(|message| IngestError { line, message })?;
            // Interpret each coordinate by the dimension's type.
            let mut coords: Vec<DimValue<'_>> = Vec::with_capacity(want - 1);
            for (field, dim) in fields[..want - 1].iter().zip(self.dimensions()) {
                let v = match dim.encoder() {
                    Encoder::Categorical { .. } => DimValue::Str(field.trim()),
                    _ => DimValue::Int(field.trim().parse::<i64>().map_err(|_| IngestError {
                        line,
                        message: format!(
                            "bad numeric value '{field}' for dimension '{}'",
                            dim.name()
                        ),
                    })?),
                };
                coords.push(v);
            }
            // Borrow dance: coords borrows fields, so finish the add
            // before the next iteration drops them.
            self.add(&coords, measure).map_err(|e| IngestError {
                line,
                message: e.to_string(),
            })?;
            ingested += 1;
        }
        Ok(ingested)
    }
}

/// Loads integer-measure records into a (sum, count) cube: each record
/// is one observation. See [`IngestOptions`] for format knobs.
pub fn load_records(
    cube: &mut crate::cube::SumCountCube,
    data: &str,
    options: &IngestOptions,
) -> Result<usize, IngestError> {
    cube.load_records_with(data, options, |s| {
        parse_i64(s).map(|v| ddc_array::Pair::new(v, 1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeBuilder;
    use crate::dimension::{Dimension, RangeSpec};
    use crate::engines::EngineKind;

    fn cube() -> crate::cube::SumCountCube {
        CubeBuilder::new()
            .dimension(Dimension::categorical("region", &["north", "south"]))
            .dimension(Dimension::int_range("day", 1, 31))
            .engine(EngineKind::DynamicDdc)
            .build()
    }

    #[test]
    fn loads_a_csv_extract() {
        let mut c = cube();
        let data = "region,day,sales\n\
                    north,1,100\n\
                    south,1,50\n\
                    north,2,75\n\
                    \n\
                    south,31,25\n";
        let n = load_records(&mut c, data, &IngestOptions::default()).unwrap();
        assert_eq!(n, 4);
        assert_eq!(c.sum(&[RangeSpec::All, RangeSpec::All]).unwrap(), 250);
        assert_eq!(
            c.count(&[RangeSpec::Eq("north".into()), RangeSpec::All])
                .unwrap(),
            2
        );
    }

    #[test]
    fn quoted_fields_and_custom_delimiter() {
        assert_eq!(
            split_record("\"a,b\",c", ',').unwrap(),
            vec!["a,b".to_string(), "c".to_string()]
        );
        assert_eq!(
            split_record("a|\"say \"\"hi\"\"\"|5", '|').unwrap(),
            vec!["a".to_string(), "say \"hi\"".to_string(), "5".to_string()]
        );
        let mut c = cube();
        let data = "north|3|10\nsouth|4|20\n";
        let opts = IngestOptions {
            delimiter: '|',
            has_header: false,
        };
        assert_eq!(load_records(&mut c, data, &opts).unwrap(), 2);
        assert_eq!(c.sum(&[RangeSpec::All, RangeSpec::All]).unwrap(), 30);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut c = cube();
        let e = load_records(
            &mut c,
            "region,day,sales\nnorth,1\n",
            &IngestOptions::default(),
        )
        .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected 3 fields"));

        let e = load_records(
            &mut c,
            "region,day,sales\nnorth,forty,10\n",
            &IngestOptions::default(),
        )
        .unwrap_err();
        assert!(e.message.contains("bad numeric value"));

        let e = load_records(
            &mut c,
            "region,day,sales\neast,1,10\n",
            &IngestOptions::default(),
        )
        .unwrap_err();
        assert!(e.message.contains("unknown label"), "{}", e.message);

        let e = load_records(
            &mut c,
            "region,day,sales\nnorth,1,ten\n",
            &IngestOptions::default(),
        )
        .unwrap_err();
        assert!(e.message.contains("bad measure"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let e = split_record("\"oops", ',').unwrap_err();
        assert!(e.contains("unterminated"));
        let e = split_record("ab\"c", ',').unwrap_err();
        assert!(e.contains("middle"));
    }

    #[test]
    fn float_measures_via_custom_parser() {
        let mut c: DataCube<f64> = CubeBuilder::new()
            .dimension(Dimension::int_range("x", 0, 9))
            .engine(EngineKind::DynamicDdc)
            .build();
        let n = c
            .load_records_with("x,temp\n3,1.5\n4,2.25\n", &IngestOptions::default(), |s| {
                s.trim().parse::<f64>().map_err(|e| e.to_string())
            })
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(c.range_sum(&[RangeSpec::All]).unwrap(), 3.75);
    }
}
