//! Dimension hierarchies: roll-up and drill-down.
//!
//! OLAP dimensions are usually hierarchical — days roll up to months and
//! quarters, cities to regions. Because every aggregate here is a range
//! sum, a hierarchy needs no extra storage: a *level* is just a partition
//! of the base indices into consecutive buckets, and rolling up is one
//! range query per bucket (`O(buckets · log^d n)` on the Dynamic Data
//! Cube). Drill-down restricts the next finer level to one bucket's
//! interval.

use ddc_array::AbelianGroup;

use crate::cube::DataCube;
use crate::dimension::{EncodeError, RangeSpec};
use crate::rollup::GroupRow;

/// One level of a hierarchy: named buckets over consecutive base-index
/// intervals.
#[derive(Clone, Debug, PartialEq)]
pub struct Level {
    name: String,
    /// `starts[b]` is the first base index of bucket `b`; buckets end
    /// where the next begins, the last at `size`.
    starts: Vec<usize>,
    labels: Vec<String>,
    size: usize,
}

impl Level {
    /// A level from explicit bucket start indices (must begin at 0 and
    /// increase strictly) over a base dimension of `size` indices.
    ///
    /// # Panics
    ///
    /// Panics on malformed boundaries or label-count mismatch.
    pub fn from_starts(name: &str, size: usize, starts: &[usize], labels: &[&str]) -> Self {
        assert!(
            !starts.is_empty(),
            "level '{name}' needs at least one bucket"
        );
        assert_eq!(
            starts[0], 0,
            "first bucket of '{name}' must start at index 0"
        );
        assert!(
            starts.windows(2).all(|w| w[0] < w[1]),
            "bucket starts of '{name}' must increase strictly"
        );
        assert!(
            *starts.last().expect("non-empty") < size,
            "last bucket of '{name}' starts beyond the dimension"
        );
        assert_eq!(
            starts.len(),
            labels.len(),
            "one label per bucket in '{name}'"
        );
        Self {
            name: name.to_string(),
            starts: starts.to_vec(),
            labels: labels.iter().map(|l| l.to_string()).collect(),
            size,
        }
    }

    /// Equal-width buckets (the last may be short).
    pub fn fixed_width(name: &str, size: usize, width: usize) -> Self {
        assert!(width >= 1);
        let starts: Vec<usize> = (0..size).step_by(width).collect();
        let labels: Vec<String> = (0..starts.len())
            .map(|b| format!("{name}{}", b + 1))
            .collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        Self::from_starts(name, size, &starts, &refs)
    }

    /// Calendar months over a day-of-year dimension (non-leap year,
    /// `size` must be 365).
    pub fn calendar_months(size: usize) -> Self {
        assert_eq!(size, 365, "calendar_months expects a 365-day dimension");
        const DAYS: [usize; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];
        const NAMES: [&str; 12] = [
            "jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec",
        ];
        let mut starts = Vec::with_capacity(12);
        let mut acc = 0;
        for d in DAYS {
            starts.push(acc);
            acc += d;
        }
        Self::from_starts("month", size, &starts, &NAMES)
    }

    /// The level's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.starts.len()
    }

    /// The base-index interval `[lo, hi]` of bucket `b`.
    pub fn interval(&self, b: usize) -> (usize, usize) {
        assert!(
            b < self.buckets(),
            "bucket {b} beyond level '{}'",
            self.name
        );
        let lo = self.starts[b];
        let hi = if b + 1 < self.starts.len() {
            self.starts[b + 1] - 1
        } else {
            self.size - 1
        };
        (lo, hi)
    }

    /// The label of bucket `b`.
    pub fn label(&self, b: usize) -> &str {
        &self.labels[b]
    }

    /// The bucket containing base index `i`.
    pub fn bucket_of(&self, i: usize) -> usize {
        assert!(i < self.size);
        match self.starts.binary_search(&i) {
            Ok(b) => b,
            Err(ins) => ins - 1,
        }
    }
}

/// An ordered stack of levels, coarsest first, all over the same base
/// dimension.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<Level>,
}

impl Hierarchy {
    /// Builds a hierarchy, validating that every coarser bucket is a
    /// union of finer buckets (each coarser start is also a finer start).
    ///
    /// # Panics
    ///
    /// Panics if levels cover different sizes or do not nest.
    pub fn new(levels: Vec<Level>) -> Self {
        assert!(!levels.is_empty(), "a hierarchy needs at least one level");
        for w in levels.windows(2) {
            let (coarse, fine) = (&w[0], &w[1]);
            assert_eq!(
                coarse.size, fine.size,
                "levels '{}' and '{}' cover different dimensions",
                coarse.name, fine.name
            );
            assert!(
                coarse.buckets() <= fine.buckets(),
                "'{}' must be coarser than '{}'",
                coarse.name,
                fine.name
            );
            for &s in &coarse.starts {
                assert!(
                    fine.starts.binary_search(&s).is_ok(),
                    "bucket boundary {s} of '{}' does not align with '{}'",
                    coarse.name,
                    fine.name
                );
            }
        }
        Self { levels }
    }

    /// The levels, coarsest first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }
}

impl<G: AbelianGroup> DataCube<G> {
    /// Rolls dimension `axis` up to `level`: one aggregate per bucket
    /// (other dimensions constrained by `filter`; the filter entry at
    /// `axis` is ignored — roll-ups cover the whole dimension).
    pub fn rollup_level(
        &self,
        axis: usize,
        level: &Level,
        filter: &[RangeSpec<'_>],
    ) -> Result<Vec<GroupRow<G>>, EncodeError> {
        self.rollup_buckets(axis, level, 0..level.buckets(), filter)
    }

    /// Drill-down: the rows of `fine` restricted to bucket `bucket` of
    /// `coarse` — "open" one quarter into its months.
    pub fn drill_down(
        &self,
        axis: usize,
        coarse: &Level,
        bucket: usize,
        fine: &Level,
        filter: &[RangeSpec<'_>],
    ) -> Result<Vec<GroupRow<G>>, EncodeError> {
        let (lo, hi) = coarse.interval(bucket);
        let first = fine.bucket_of(lo);
        let last = fine.bucket_of(hi);
        self.rollup_buckets(axis, fine, first..last + 1, filter)
    }

    fn rollup_buckets(
        &self,
        axis: usize,
        level: &Level,
        buckets: std::ops::Range<usize>,
        filter: &[RangeSpec<'_>],
    ) -> Result<Vec<GroupRow<G>>, EncodeError> {
        assert!(axis < self.dimensions().len(), "axis {axis} out of range");
        assert_eq!(
            level.size,
            self.dimensions()[axis].size(),
            "level '{}' does not cover dimension '{}'",
            level.name,
            self.dimensions()[axis].name()
        );
        let mut rows = Vec::with_capacity(buckets.len());
        for b in buckets {
            let (lo, hi) = level.interval(b);
            let mut q: Vec<RangeSpec<'_>> = filter.to_vec();
            q[axis] = RangeSpec::IndexRange(lo, hi);
            rows.push(GroupRow {
                index: b,
                label: level.label(b).to_string(),
                value: self.range_sum(&q)?,
            });
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeBuilder, SumCountCube};
    use crate::dimension::Dimension;
    use crate::engines::EngineKind;

    fn year_cube() -> SumCountCube {
        let mut c: SumCountCube = CubeBuilder::new()
            .dimension(Dimension::int_range("day", 1, 365))
            .engine(EngineKind::DynamicDdc)
            .build();
        // One sale of 10 every day.
        for day in 1..=365i64 {
            c.add_observation(&[day.into()], 10).unwrap();
        }
        c
    }

    #[test]
    fn month_rollup_matches_calendar() {
        let c = year_cube();
        let months = Level::calendar_months(365);
        let rows = c.rollup_level(0, &months, &[RangeSpec::All]).unwrap();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0].label, "jan");
        assert_eq!(rows[0].value.a, 310); // 31 days × 10
        assert_eq!(rows[1].value.a, 280); // february
        let total: i64 = rows.iter().map(|r| r.value.a).sum();
        assert_eq!(total, 3650);
    }

    #[test]
    fn quarter_to_month_drilldown() {
        let c = year_cube();
        let months = Level::calendar_months(365);
        let quarters = Level::from_starts(
            "quarter",
            365,
            &[0, 90, 181, 273],
            &["q1", "q2", "q3", "q4"],
        );
        let h = Hierarchy::new(vec![quarters.clone(), months.clone()]);
        assert_eq!(h.levels().len(), 2);

        let q = c.rollup_level(0, &quarters, &[RangeSpec::All]).unwrap();
        assert_eq!(q[0].value.a, 900); // 90 days
        let q2_months = c
            .drill_down(0, &quarters, 1, &months, &[RangeSpec::All])
            .unwrap();
        assert_eq!(
            q2_months
                .iter()
                .map(|r| r.label.as_str())
                .collect::<Vec<_>>(),
            vec!["apr", "may", "jun"]
        );
        let q2_total: i64 = q2_months.iter().map(|r| r.value.a).sum();
        assert_eq!(q2_total, q[1].value.a);
    }

    #[test]
    fn fixed_width_levels() {
        let weeks = Level::fixed_width("w", 365, 7);
        assert_eq!(weeks.buckets(), 53);
        assert_eq!(weeks.interval(0), (0, 6));
        assert_eq!(weeks.interval(52), (364, 364)); // short last bucket
        assert_eq!(weeks.bucket_of(364), 52);
        assert_eq!(weeks.bucket_of(0), 0);
        assert_eq!(weeks.bucket_of(13), 1);
    }

    #[test]
    #[should_panic(expected = "does not align")]
    fn misaligned_hierarchy_rejected() {
        let months = Level::calendar_months(365);
        let bad = Level::from_starts("bad", 365, &[0, 100], &["a", "b"]);
        Hierarchy::new(vec![bad, months]);
    }

    #[test]
    #[should_panic(expected = "increase strictly")]
    fn bad_level_rejected() {
        Level::from_starts("x", 10, &[0, 5, 5], &["a", "b", "c"]);
    }

    #[test]
    fn rollup_respects_other_filters() {
        let mut c: SumCountCube = CubeBuilder::new()
            .dimension(Dimension::categorical("region", &["n", "s"]))
            .dimension(Dimension::int_range("day", 1, 365))
            .engine(EngineKind::DynamicDdc)
            .build();
        c.add_observation(&["n".into(), 15.into()], 100).unwrap();
        c.add_observation(&["s".into(), 15.into()], 7).unwrap();
        let months = Level::calendar_months(365);
        let rows = c
            .rollup_level(1, &months, &[RangeSpec::Eq("n".into()), RangeSpec::All])
            .unwrap();
        assert_eq!(rows[0].value.a, 100);
        assert_eq!(rows[1].value.a, 0);
    }
}
