//! Dimensions (functional attributes) of an OLAP data cube.
//!
//! The paper's running example builds a cube with measure attribute
//! `SALES` and dimensions `CUSTOMER_AGE` and `DATE_AND_TIME` (§1). A
//! [`Dimension`] names one functional attribute and owns an [`Encoder`]
//! that maps attribute values onto the dense zero-based indices the
//! range-sum engines operate on.

use std::collections::HashMap;

/// A value of a functional attribute, as supplied in records and queries.
#[derive(Clone, Debug, PartialEq)]
pub enum DimValue<'a> {
    /// A numeric attribute value (age, day number, unix time, …).
    Int(i64),
    /// A categorical attribute value (region name, product, …).
    Str(&'a str),
}

impl From<i64> for DimValue<'_> {
    fn from(v: i64) -> Self {
        DimValue::Int(v)
    }
}

impl<'a> From<&'a str> for DimValue<'a> {
    fn from(v: &'a str) -> Self {
        DimValue::Str(v)
    }
}

/// Errors raised when encoding record or query values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// A numeric value fell outside the dimension's declared domain.
    OutOfDomain {
        /// The dimension's name.
        dimension: String,
        /// Display form of the offending value.
        value: String,
    },
    /// A categorical label was not declared for the dimension.
    UnknownLabel {
        /// The dimension's name.
        dimension: String,
        /// The offending label.
        label: String,
    },
    /// A string value was supplied for a numeric dimension or vice versa.
    TypeMismatch {
        /// The dimension's name.
        dimension: String,
    },
    /// The number of coordinates does not match the cube's dimensionality.
    ArityMismatch {
        /// Expected coordinate count.
        expected: usize,
        /// Supplied coordinate count.
        got: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::OutOfDomain { dimension, value } => {
                write!(
                    f,
                    "value {value} outside the domain of dimension '{dimension}'"
                )
            }
            EncodeError::UnknownLabel { dimension, label } => {
                write!(f, "unknown label '{label}' for dimension '{dimension}'")
            }
            EncodeError::TypeMismatch { dimension } => {
                write!(f, "value type does not match dimension '{dimension}'")
            }
            EncodeError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} coordinates, got {got}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// How a dimension's attribute values map onto dense indices.
#[derive(Clone, Debug)]
pub enum Encoder {
    /// An inclusive integer range `min..=max`; index = `value − min`.
    IntRange {
        /// Smallest admissible value.
        min: i64,
        /// Largest admissible value.
        max: i64,
    },
    /// Integers bucketed into fixed-width intervals starting at `min`:
    /// index = `(value − min) / width`. Useful for time dimensions
    /// (e.g. seconds bucketed into days).
    Bucketed {
        /// Smallest admissible value.
        min: i64,
        /// Bucket width (> 0).
        width: i64,
        /// Number of buckets.
        buckets: usize,
    },
    /// Named categories in declaration order.
    Categorical {
        /// Labels, index = position.
        labels: Vec<String>,
        /// Reverse lookup.
        index: HashMap<String, usize>,
    },
}

impl Encoder {
    /// Number of distinct indices (`n_i` in the paper).
    pub fn size(&self) -> usize {
        match self {
            Encoder::IntRange { min, max } => (max - min + 1) as usize,
            Encoder::Bucketed { buckets, .. } => *buckets,
            Encoder::Categorical { labels, .. } => labels.len(),
        }
    }
}

/// One functional attribute of the cube.
#[derive(Clone, Debug)]
pub struct Dimension {
    name: String,
    encoder: Encoder,
}

impl Dimension {
    /// An integer dimension over the inclusive range `min..=max`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn int_range(name: &str, min: i64, max: i64) -> Self {
        assert!(min <= max, "empty domain {min}..={max} for '{name}'");
        Self {
            name: name.to_string(),
            encoder: Encoder::IntRange { min, max },
        }
    }

    /// An integer dimension bucketed into `buckets` intervals of `width`,
    /// starting at `min`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `buckets == 0`.
    pub fn bucketed(name: &str, min: i64, width: i64, buckets: usize) -> Self {
        assert!(width > 0, "bucket width must be positive for '{name}'");
        assert!(buckets > 0, "need at least one bucket for '{name}'");
        Self {
            name: name.to_string(),
            encoder: Encoder::Bucketed {
                min,
                width,
                buckets,
            },
        }
    }

    /// A categorical dimension with the given labels (index order).
    ///
    /// # Panics
    ///
    /// Panics on duplicate labels or an empty label set.
    pub fn categorical(name: &str, labels: &[&str]) -> Self {
        assert!(!labels.is_empty(), "need at least one label for '{name}'");
        let mut index = HashMap::with_capacity(labels.len());
        for (i, l) in labels.iter().enumerate() {
            let prev = index.insert(l.to_string(), i);
            assert!(
                prev.is_none(),
                "duplicate label '{l}' in dimension '{name}'"
            );
        }
        Self {
            name: name.to_string(),
            encoder: Encoder::Categorical {
                labels: labels.iter().map(|l| l.to_string()).collect(),
                index,
            },
        }
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dimension's encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Number of distinct indices.
    pub fn size(&self) -> usize {
        self.encoder.size()
    }

    /// Renders the human-readable label of one dense index (the inverse
    /// of [`Dimension::encode`] up to bucketing).
    pub fn label(&self, index: usize) -> String {
        assert!(
            index < self.size(),
            "index {index} beyond dimension '{}'",
            self.name
        );
        match &self.encoder {
            Encoder::IntRange { min, .. } => (min + index as i64).to_string(),
            Encoder::Bucketed { min, width, .. } => {
                let lo = min + index as i64 * width;
                format!("[{lo}..{})", lo + width)
            }
            Encoder::Categorical { labels, .. } => labels[index].clone(),
        }
    }

    /// Encodes a single attribute value to its index.
    pub fn encode(&self, value: &DimValue<'_>) -> Result<usize, EncodeError> {
        match (&self.encoder, value) {
            (Encoder::IntRange { min, max }, DimValue::Int(v)) => {
                if v < min || v > max {
                    Err(self.out_of_domain(v))
                } else {
                    Ok((v - min) as usize)
                }
            }
            (
                Encoder::Bucketed {
                    min,
                    width,
                    buckets,
                },
                DimValue::Int(v),
            ) => {
                if v < min {
                    return Err(self.out_of_domain(v));
                }
                let idx = ((v - min) / width) as usize;
                if idx >= *buckets {
                    Err(self.out_of_domain(v))
                } else {
                    Ok(idx)
                }
            }
            (Encoder::Categorical { index, .. }, DimValue::Str(s)) => index
                .get(*s)
                .copied()
                .ok_or_else(|| EncodeError::UnknownLabel {
                    dimension: self.name.clone(),
                    label: (*s).to_string(),
                }),
            _ => Err(EncodeError::TypeMismatch {
                dimension: self.name.clone(),
            }),
        }
    }

    /// Encodes an inclusive value range to an inclusive index range.
    pub fn encode_range(
        &self,
        lo: &DimValue<'_>,
        hi: &DimValue<'_>,
    ) -> Result<(usize, usize), EncodeError> {
        let l = self.encode(lo)?;
        let h = self.encode(hi)?;
        if l > h {
            return Err(EncodeError::OutOfDomain {
                dimension: self.name.clone(),
                value: format!("inverted range ({lo:?} .. {hi:?})"),
            });
        }
        Ok((l, h))
    }

    fn out_of_domain(&self, v: &i64) -> EncodeError {
        EncodeError::OutOfDomain {
            dimension: self.name.clone(),
            value: v.to_string(),
        }
    }
}

/// One dimension's constraint in a range query.
#[derive(Clone, Debug, PartialEq)]
pub enum RangeSpec<'a> {
    /// No constraint: the full extent of the dimension.
    All,
    /// Exactly one value.
    Eq(DimValue<'a>),
    /// An inclusive value range.
    Between(DimValue<'a>, DimValue<'a>),
    /// Exactly one *dense index* (used by rollup machinery that already
    /// enumerates encoded buckets).
    Index(usize),
    /// An inclusive dense-index range.
    IndexRange(usize, usize),
}

impl RangeSpec<'_> {
    /// Resolves the spec to an inclusive index interval for `dim`.
    pub fn resolve(&self, dim: &Dimension) -> Result<(usize, usize), EncodeError> {
        let check = |i: usize| {
            if i < dim.size() {
                Ok(i)
            } else {
                Err(EncodeError::OutOfDomain {
                    dimension: dim.name().to_string(),
                    value: format!("index {i}"),
                })
            }
        };
        match self {
            RangeSpec::All => Ok((0, dim.size() - 1)),
            RangeSpec::Eq(v) => {
                let i = dim.encode(v)?;
                Ok((i, i))
            }
            RangeSpec::Between(lo, hi) => dim.encode_range(lo, hi),
            RangeSpec::Index(i) => {
                let i = check(*i)?;
                Ok((i, i))
            }
            RangeSpec::IndexRange(lo, hi) => {
                let lo = check(*lo)?;
                let hi = check(*hi)?;
                if lo > hi {
                    return Err(EncodeError::OutOfDomain {
                        dimension: dim.name().to_string(),
                        value: format!("inverted index range {lo}..{hi}"),
                    });
                }
                Ok((lo, hi))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_range_encoding() {
        let age = Dimension::int_range("customer_age", 18, 99);
        assert_eq!(age.size(), 82);
        assert_eq!(age.encode(&DimValue::Int(18)).unwrap(), 0);
        assert_eq!(age.encode(&DimValue::Int(45)).unwrap(), 27);
        assert!(matches!(
            age.encode(&DimValue::Int(17)),
            Err(EncodeError::OutOfDomain { .. })
        ));
        assert!(matches!(
            age.encode(&DimValue::Str("x")),
            Err(EncodeError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn bucketed_encoding() {
        // Seconds bucketed into days over one year.
        let day = Dimension::bucketed("date", 0, 86_400, 365);
        assert_eq!(day.size(), 365);
        assert_eq!(day.encode(&DimValue::Int(0)).unwrap(), 0);
        assert_eq!(day.encode(&DimValue::Int(86_399)).unwrap(), 0);
        assert_eq!(day.encode(&DimValue::Int(86_400)).unwrap(), 1);
        assert!(day.encode(&DimValue::Int(365 * 86_400)).is_err());
        assert!(day.encode(&DimValue::Int(-1)).is_err());
    }

    #[test]
    fn categorical_encoding() {
        let region = Dimension::categorical("region", &["north", "south", "east", "west"]);
        assert_eq!(region.size(), 4);
        assert_eq!(region.encode(&DimValue::Str("east")).unwrap(), 2);
        assert!(matches!(
            region.encode(&DimValue::Str("up")),
            Err(EncodeError::UnknownLabel { .. })
        ));
    }

    #[test]
    fn range_specs_resolve() {
        let age = Dimension::int_range("age", 0, 99);
        assert_eq!(RangeSpec::All.resolve(&age).unwrap(), (0, 99));
        assert_eq!(RangeSpec::Eq(45.into()).resolve(&age).unwrap(), (45, 45));
        assert_eq!(
            RangeSpec::Between(27.into(), 45.into())
                .resolve(&age)
                .unwrap(),
            (27, 45)
        );
        assert!(RangeSpec::Between(45.into(), 27.into())
            .resolve(&age)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_labels_rejected() {
        Dimension::categorical("r", &["a", "a"]);
    }

    #[test]
    fn error_display() {
        let e = EncodeError::ArityMismatch {
            expected: 2,
            got: 3,
        };
        assert_eq!(e.to_string(), "expected 2 coordinates, got 3");
    }
}
