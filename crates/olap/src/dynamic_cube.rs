//! [`DynamicDataCube`]: an OLAP cube whose dimensions are unbounded.
//!
//! Section 5: "it is more practical to create the data cube initially only
//! for locations of existing star systems; as additional systems are
//! discovered, new cells can be added … The direction of data cube growth
//! should be determined by the data, and not a priori."
//!
//! Unlike [`crate::DataCube`], whose schema fixes each dimension's domain
//! up front, this cube accepts any value: numeric dimensions map onto the
//! signed logical axis (optionally bucketed) and categorical dimensions
//! *learn* labels on first sight. The backing store is
//! [`ddc_core::GrowableCube`], so growth in any direction costs work
//! proportional to the populated cells only.

use std::collections::HashMap;

use ddc_array::AbelianGroup;
use ddc_core::{DdcConfig, GrowableCube};

use crate::dimension::{DimValue, EncodeError};

/// A dimension of a [`DynamicDataCube`] — no domain bounds.
#[derive(Debug)]
pub enum DynamicDimension {
    /// Raw signed integers used as coordinates directly.
    Int {
        /// Attribute name.
        name: String,
    },
    /// Signed integers bucketed into fixed-width intervals (bucket 0
    /// starts at value 0; negative values fall into negative buckets).
    Bucketed {
        /// Attribute name.
        name: String,
        /// Bucket width (> 0).
        width: i64,
    },
    /// Categories assigned dense coordinates in first-seen order.
    Categorical {
        /// Attribute name.
        name: String,
        /// Learned labels (coordinate = position).
        labels: Vec<String>,
        /// Reverse lookup.
        index: HashMap<String, i64>,
    },
}

impl DynamicDimension {
    /// An unbounded integer dimension.
    pub fn int(name: &str) -> Self {
        DynamicDimension::Int {
            name: name.to_string(),
        }
    }

    /// An unbounded bucketed dimension.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn bucketed(name: &str, width: i64) -> Self {
        assert!(width > 0, "bucket width must be positive for '{name}'");
        DynamicDimension::Bucketed {
            name: name.to_string(),
            width,
        }
    }

    /// A categorical dimension that learns labels as records arrive.
    pub fn categorical(name: &str) -> Self {
        DynamicDimension::Categorical {
            name: name.to_string(),
            labels: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        match self {
            DynamicDimension::Int { name }
            | DynamicDimension::Bucketed { name, .. }
            | DynamicDimension::Categorical { name, .. } => name,
        }
    }

    /// Encodes for ingestion: categorical labels are learned on demand.
    fn encode_learning(&mut self, value: &DimValue<'_>) -> Result<i64, EncodeError> {
        match (&mut *self, value) {
            (DynamicDimension::Int { .. }, DimValue::Int(v)) => Ok(*v),
            (DynamicDimension::Bucketed { width, .. }, DimValue::Int(v)) => {
                Ok(v.div_euclid(*width))
            }
            (DynamicDimension::Categorical { labels, index, .. }, DimValue::Str(s)) => {
                if let Some(&i) = index.get(*s) {
                    return Ok(i);
                }
                let i = labels.len() as i64;
                labels.push((*s).to_string());
                index.insert((*s).to_string(), i);
                Ok(i)
            }
            _ => Err(EncodeError::TypeMismatch {
                dimension: self.name().to_string(),
            }),
        }
    }

    /// Encodes for queries: unknown categorical labels are an error
    /// (there is nothing recorded under them).
    fn encode_readonly(&self, value: &DimValue<'_>) -> Result<i64, EncodeError> {
        match (self, value) {
            (DynamicDimension::Int { .. }, DimValue::Int(v)) => Ok(*v),
            (DynamicDimension::Bucketed { width, .. }, DimValue::Int(v)) => {
                Ok(v.div_euclid(*width))
            }
            (DynamicDimension::Categorical { index, name, .. }, DimValue::Str(s)) => index
                .get(*s)
                .copied()
                .ok_or_else(|| EncodeError::UnknownLabel {
                    dimension: name.clone(),
                    label: (*s).to_string(),
                }),
            _ => Err(EncodeError::TypeMismatch {
                dimension: self.name().to_string(),
            }),
        }
    }
}

/// A query bound for one dynamic dimension.
#[derive(Clone, Debug)]
pub enum DynamicRange<'a> {
    /// No constraint.
    All,
    /// Exactly one value.
    Eq(DimValue<'a>),
    /// Inclusive value range.
    Between(DimValue<'a>, DimValue<'a>),
}

/// An OLAP cube over unbounded, data-driven dimensions (§5).
#[derive(Debug)]
pub struct DynamicDataCube<G: AbelianGroup> {
    dims: Vec<DynamicDimension>,
    cube: GrowableCube<G>,
}

impl<G: AbelianGroup> DynamicDataCube<G> {
    /// A cube with the given dimensions and structure configuration.
    pub fn new(dims: Vec<DynamicDimension>, config: DdcConfig) -> Self {
        assert!(!dims.is_empty(), "a data cube needs at least one dimension");
        let d = dims.len();
        Self {
            dims,
            cube: GrowableCube::new(d, config),
        }
    }

    /// Dimensions in coordinate order.
    pub fn dimensions(&self) -> &[DynamicDimension] {
        &self.dims
    }

    /// Adds `delta` to the aggregate at the record's coordinates, growing
    /// the cube and learning new category labels as needed.
    pub fn add(&mut self, coords: &[DimValue<'_>], delta: G) -> Result<(), EncodeError> {
        if coords.len() != self.dims.len() {
            return Err(EncodeError::ArityMismatch {
                expected: self.dims.len(),
                got: coords.len(),
            });
        }
        let mut p = Vec::with_capacity(self.dims.len());
        for (dim, v) in self.dims.iter_mut().zip(coords.iter()) {
            p.push(dim.encode_learning(v)?);
        }
        self.cube.add(&p, delta);
        Ok(())
    }

    /// Range sum over the selected box. Unbounded specs clamp to the
    /// cube's currently covered extent (everything outside is zero).
    pub fn range_sum(&self, ranges: &[DynamicRange<'_>]) -> Result<G, EncodeError> {
        if ranges.len() != self.dims.len() {
            return Err(EncodeError::ArityMismatch {
                expected: self.dims.len(),
                got: ranges.len(),
            });
        }
        let mut lo = Vec::with_capacity(self.dims.len());
        let mut hi = Vec::with_capacity(self.dims.len());
        for (axis, (dim, spec)) in self.dims.iter().zip(ranges.iter()).enumerate() {
            let origin = self.cube.origin()[axis];
            let end = origin + self.cube.extent()[axis] as i64 - 1;
            match spec {
                DynamicRange::All => {
                    lo.push(origin);
                    hi.push(end);
                }
                DynamicRange::Eq(v) => {
                    let i = dim.encode_readonly(v)?;
                    lo.push(i);
                    hi.push(i);
                }
                DynamicRange::Between(a, b) => {
                    let (mut l, mut h) = (dim.encode_readonly(a)?, dim.encode_readonly(b)?);
                    if l > h {
                        std::mem::swap(&mut l, &mut h);
                    }
                    lo.push(l);
                    hi.push(h);
                }
            }
        }
        // Fully outside the covered extent ⇒ zero.
        for axis in 0..self.dims.len() {
            let origin = self.cube.origin()[axis];
            let end = origin + self.cube.extent()[axis] as i64 - 1;
            if hi[axis] < origin || lo[axis] > end {
                return Ok(G::ZERO);
            }
        }
        Ok(self.cube.range_sum(&lo, &hi))
    }

    /// Sum of the whole cube.
    pub fn total(&self) -> G {
        self.cube.total()
    }

    /// The backing growable cube (diagnostics).
    pub fn storage(&self) -> &GrowableCube<G> {
        &self.cube
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_catalog_style_usage() {
        let mut cube: DynamicDataCube<i64> = DynamicDataCube::new(
            vec![DynamicDimension::int("x"), DynamicDimension::int("y")],
            DdcConfig::sparse(),
        );
        cube.add(&[5.into(), 5.into()], 1).unwrap();
        cube.add(&[(-10_000).into(), 99.into()], 1).unwrap();
        cube.add(&[123_456.into(), (-77).into()], 1).unwrap();
        assert_eq!(cube.total(), 3);
        assert_eq!(
            cube.range_sum(&[
                DynamicRange::Between((-20_000).into(), 0.into()),
                DynamicRange::All
            ])
            .unwrap(),
            1
        );
        assert_eq!(
            cube.range_sum(&[
                DynamicRange::Eq(123_456.into()),
                DynamicRange::Eq((-77).into())
            ])
            .unwrap(),
            1
        );
    }

    #[test]
    fn categorical_labels_are_learned() {
        let mut cube: DynamicDataCube<i64> = DynamicDataCube::new(
            vec![
                DynamicDimension::categorical("station"),
                DynamicDimension::bucketed("t", 60),
            ],
            DdcConfig::dynamic(),
        );
        cube.add(&["alpha".into(), 30.into()], 10).unwrap();
        cube.add(&["beta".into(), 90.into()], 20).unwrap();
        cube.add(&["alpha".into(), 61.into()], 5).unwrap();
        // Querying a known label works; unknown labels are an error.
        assert_eq!(
            cube.range_sum(&[DynamicRange::Eq("alpha".into()), DynamicRange::All])
                .unwrap(),
            15
        );
        assert!(cube
            .range_sum(&[DynamicRange::Eq("gamma".into()), DynamicRange::All])
            .is_err());
        // Bucket arithmetic: values 60..119 share bucket 1.
        assert_eq!(
            cube.range_sum(&[
                DynamicRange::All,
                DynamicRange::Between(60.into(), 119.into())
            ])
            .unwrap(),
            25
        );
    }

    #[test]
    fn negative_values_bucket_with_euclidean_division() {
        let mut cube: DynamicDataCube<i64> = DynamicDataCube::new(
            vec![DynamicDimension::bucketed("t", 10)],
            DdcConfig::dynamic(),
        );
        cube.add(&[(-1).into()], 7).unwrap(); // bucket -1 (covers -10..-1)
        cube.add(&[(-10).into()], 3).unwrap(); // also bucket -1
        cube.add(&[(-11).into()], 1).unwrap(); // bucket -2
        assert_eq!(
            cube.range_sum(&[DynamicRange::Between((-10).into(), (-1).into())])
                .unwrap(),
            10
        );
        assert_eq!(cube.total(), 11);
    }

    #[test]
    fn queries_outside_coverage_are_zero() {
        let mut cube: DynamicDataCube<i64> =
            DynamicDataCube::new(vec![DynamicDimension::int("x")], DdcConfig::dynamic());
        cube.add(&[0.into()], 5).unwrap();
        assert_eq!(
            cube.range_sum(&[DynamicRange::Between(1_000_000.into(), 2_000_000.into())])
                .unwrap(),
            0
        );
    }
}
