//! Engine selection: every method of the paper behind one constructor.

use ddc_array::{AbelianGroup, RangeSumEngine, Shape};
use ddc_baselines::{MultiFenwick, NaiveEngine, PrefixSumEngine, RelativePrefixEngine};
use ddc_core::{DdcConfig, DdcEngine, ShardConfig, ShardedCube};

/// Which range-sum method backs a cube — the five rows of the paper's
/// comparison (§2, Table 1).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum EngineKind {
    /// Scan array `A` directly: `O(n^d)` query, `O(1)` update.
    Naive,
    /// Prefix Sum \[HAMS97\]: `O(1)` query, `O(n^d)` update.
    PrefixSum,
    /// Relative Prefix Sum \[GAES99\]: `O(1)` query, `O(n^{d/2})` update.
    RelativePrefix,
    /// Basic Dynamic Data Cube (§3): `O(log n)` query, `O(n^{d-1})` update.
    BasicDdc,
    /// The Dynamic Data Cube (§4): `O(log^d n)` query and update.
    DynamicDdc,
    /// A Dynamic Data Cube with an explicit configuration (base store,
    /// level elision).
    CustomDdc(DdcConfig),
    /// A dense d-dimensional Fenwick tree: same `O(log^d n)` asymptotics
    /// as the DDC on static cubes, flat-array constants, but no growth,
    /// no sparsity, no insertion (the novelty-band comparator; not part
    /// of the paper's Table 1 and therefore not in [`EngineKind::ALL`]).
    FenwickNd,
    /// A Dynamic Data Cube sharded along dimension 0 with per-shard
    /// write batching — the concurrent deployment of §1 (not a paper
    /// method, so not in [`EngineKind::ALL`]).
    Sharded {
        /// Shard count (clamped to the dimension-0 extent at build time).
        shards: usize,
    },
}

impl EngineKind {
    /// All standard kinds in the paper's Table 1 order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Naive,
        EngineKind::PrefixSum,
        EngineKind::RelativePrefix,
        EngineKind::BasicDdc,
        EngineKind::DynamicDdc,
    ];

    /// Builds an all-zero engine of this kind over `shape`.
    pub fn build<G: AbelianGroup>(&self, shape: Shape) -> Box<dyn RangeSumEngine<G>> {
        match self {
            EngineKind::Naive => Box::new(NaiveEngine::zeroed(shape)),
            EngineKind::PrefixSum => Box::new(PrefixSumEngine::zeroed(shape)),
            EngineKind::RelativePrefix => Box::new(RelativePrefixEngine::zeroed(shape)),
            EngineKind::BasicDdc => Box::new(DdcEngine::with_config(shape, DdcConfig::basic())),
            EngineKind::DynamicDdc => Box::new(DdcEngine::with_config(shape, DdcConfig::dynamic())),
            EngineKind::CustomDdc(config) => Box::new(DdcEngine::with_config(shape, *config)),
            EngineKind::FenwickNd => Box::new(MultiFenwick::zeroed(shape)),
            EngineKind::Sharded { shards } => Box::new(ShardedCube::new(
                shape,
                DdcConfig::dynamic(),
                ShardConfig::with_shards(*shards),
            )),
        }
    }

    /// Stable label used in benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Naive => "naive",
            EngineKind::PrefixSum => "prefix-sum",
            EngineKind::RelativePrefix => "relative-prefix",
            EngineKind::BasicDdc => "basic-ddc",
            EngineKind::DynamicDdc => "dynamic-ddc",
            EngineKind::CustomDdc(_) => "custom-ddc",
            EngineKind::FenwickNd => "fenwick-nd",
            EngineKind::Sharded { .. } => "sharded-ddc",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_array::Region;

    #[test]
    fn every_kind_builds_and_agrees() {
        let shape = Shape::new(&[8, 8]);
        let updates = [
            ([1usize, 2usize], 5i64),
            ([0, 0], 3),
            ([7, 7], -2),
            ([4, 3], 9),
        ];
        let mut engines: Vec<Box<dyn RangeSumEngine<i64>>> = EngineKind::ALL
            .iter()
            .map(|k| k.build(shape.clone()))
            .collect();
        engines
            .push(EngineKind::CustomDdc(DdcConfig::sparse().with_elision(1)).build(shape.clone()));
        for e in engines.iter_mut() {
            for (p, v) in updates {
                e.apply_delta(&p, v);
            }
        }
        let q = Region::new(&[0, 0], &[5, 5]);
        let expect = engines[0].range_sum(&q);
        for e in &engines {
            assert_eq!(e.range_sum(&q), expect, "{}", e.name());
            assert_eq!(e.prefix_sum(&[7, 7]), 15, "{}", e.name());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = EngineKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
