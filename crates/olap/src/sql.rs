//! A small SQL-style query language over data cubes.
//!
//! Range-sum queries have a natural SQL reading — the paper's §1 example
//! *is* a SQL aggregate — so the OLAP layer accepts a restricted SELECT
//! form and compiles it onto range sums:
//!
//! ```text
//! SELECT AVG
//!   WHERE customer_age BETWEEN 27 AND 45
//!     AND day BETWEEN 341 AND 365
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query  := SELECT agg [where] [group]
//! agg    := SUM | COUNT | AVG
//! where  := WHERE pred (AND pred)*
//! pred   := dim '=' value | dim BETWEEN value AND value
//!         | dim IN ( value [, value]* )
//! group  := GROUP BY dim
//! value  := integer | 'single-quoted label'
//! ```
//!
//! Unconstrained dimensions default to their full extent. Only
//! conjunctive rectangular predicates are expressible — exactly the
//! queries the paper's structures answer in `O(log^d n)`.

use ddc_array::{AbelianGroup, Pair};

use crate::cube::DataCube;
use crate::dimension::{DimValue, RangeSpec};
use crate::rollup::GroupRow;

/// The aggregate of a parsed query.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SqlAggregate {
    /// SUM of the measure.
    Sum,
    /// COUNT of observations.
    Count,
    /// AVERAGE of the measure.
    Avg,
}

/// A parsed predicate value.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Int(i64),
    Str(String),
}

impl Value {
    fn as_dim_value(&self) -> DimValue<'_> {
        match self {
            Value::Int(v) => DimValue::Int(*v),
            Value::Str(s) => DimValue::Str(s),
        }
    }
}

/// One dimension constraint.
#[derive(Clone, Debug, PartialEq)]
enum Pred {
    Eq(Value),
    Between(Value, Value),
    In(Vec<Value>),
}

/// A parsed query, ready to run against any cube whose schema has the
/// referenced dimensions.
#[derive(Clone, Debug, PartialEq)]
pub struct SqlQuery {
    agg: SqlAggregate,
    predicates: Vec<(String, Pred)>,
    group_by: Option<String>,
}

/// Result of running a [`SqlQuery`].
#[derive(Clone, Debug, PartialEq)]
pub enum SqlResult {
    /// SUM or COUNT over one rectangle.
    Scalar(i64),
    /// AVG over one rectangle (`None` when no observations match).
    Average(Option<f64>),
    /// One row per bucket of the GROUP BY dimension:
    /// `(label, sum, count)`.
    Rows(Vec<(String, i64, i64)>),
}

/// Tokenizes: identifiers/numbers, quoted strings, `=` punctuation.
fn tokenize(text: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '\'' {
            chars.next();
            let mut s = String::from("'");
            loop {
                match chars.next() {
                    Some('\'') => break,
                    Some(ch) => s.push(ch),
                    None => return Err("unterminated string literal".to_string()),
                }
            }
            tokens.push(s);
        } else if c == '=' || c == '(' || c == ')' || c == ',' {
            chars.next();
            tokens.push(c.to_string());
        } else if c.is_alphanumeric() || c == '_' || c == '-' {
            let mut s = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_alphanumeric() || ch == '_' || ch == '-' {
                    s.push(ch);
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(s);
        } else {
            return Err(format!("unexpected character '{c}'"));
        }
    }
    Ok(tokens)
}

fn keyword(tok: Option<&String>, want: &str) -> bool {
    tok.is_some_and(|t| t.eq_ignore_ascii_case(want))
}

fn parse_value(tok: &str) -> Value {
    if let Some(stripped) = tok.strip_prefix('\'') {
        Value::Str(stripped.to_string())
    } else if let Ok(v) = tok.parse::<i64>() {
        Value::Int(v)
    } else {
        // Bare identifiers in value position read as labels, which keeps
        // common queries free of quoting.
        Value::Str(tok.to_string())
    }
}

/// Parses the restricted SELECT form.
pub fn parse_query(text: &str) -> Result<SqlQuery, String> {
    let tokens = tokenize(text)?;
    let mut i = 0usize;
    let next = |i: &mut usize, tokens: &[String]| -> Option<String> {
        let t = tokens.get(*i).cloned();
        if t.is_some() {
            *i += 1;
        }
        t
    };

    if !keyword(tokens.get(i), "select") {
        return Err("query must start with SELECT".to_string());
    }
    i += 1;
    let agg = match next(&mut i, &tokens) {
        Some(t) if t.eq_ignore_ascii_case("sum") => SqlAggregate::Sum,
        Some(t) if t.eq_ignore_ascii_case("count") => SqlAggregate::Count,
        Some(t) if t.eq_ignore_ascii_case("avg") => SqlAggregate::Avg,
        other => return Err(format!("expected SUM/COUNT/AVG, got {other:?}")),
    };

    let mut predicates = Vec::new();
    if keyword(tokens.get(i), "where") {
        i += 1;
        loop {
            let dim = next(&mut i, &tokens).ok_or("expected dimension after WHERE/AND")?;
            if dim.starts_with('\'') {
                return Err("dimension names are bare identifiers".to_string());
            }
            match tokens.get(i) {
                Some(t) if t == "=" => {
                    i += 1;
                    let v = next(&mut i, &tokens).ok_or("expected value after '='")?;
                    predicates.push((dim, Pred::Eq(parse_value(&v))));
                }
                Some(t) if t.eq_ignore_ascii_case("between") => {
                    i += 1;
                    let a = next(&mut i, &tokens).ok_or("expected value after BETWEEN")?;
                    if !keyword(tokens.get(i), "and") {
                        return Err("expected AND between the bounds".to_string());
                    }
                    i += 1;
                    let b = next(&mut i, &tokens).ok_or("expected second bound")?;
                    predicates.push((dim, Pred::Between(parse_value(&a), parse_value(&b))));
                }
                Some(t) if t.eq_ignore_ascii_case("in") => {
                    i += 1;
                    if tokens.get(i).map(String::as_str) != Some("(") {
                        return Err("expected '(' after IN".to_string());
                    }
                    i += 1;
                    let mut values = Vec::new();
                    loop {
                        let v = next(&mut i, &tokens).ok_or("expected value in IN list")?;
                        if v == ")" || v == "," {
                            return Err("expected value in IN list".to_string());
                        }
                        values.push(parse_value(&v));
                        match tokens.get(i).map(String::as_str) {
                            Some(",") => i += 1,
                            Some(")") => {
                                i += 1;
                                break;
                            }
                            other => return Err(format!("expected ',' or ')', got {other:?}")),
                        }
                    }
                    predicates.push((dim, Pred::In(values)));
                }
                other => return Err(format!("expected '=' or BETWEEN, got {other:?}")),
            }
            if keyword(tokens.get(i), "and") {
                i += 1;
                continue;
            }
            break;
        }
    }

    let mut group_by = None;
    if keyword(tokens.get(i), "group") {
        i += 1;
        if !keyword(tokens.get(i), "by") {
            return Err("expected BY after GROUP".to_string());
        }
        i += 1;
        group_by = Some(next(&mut i, &tokens).ok_or("expected dimension after GROUP BY")?);
    }

    if i != tokens.len() {
        return Err(format!("trailing tokens: {:?}", &tokens[i..]));
    }
    Ok(SqlQuery {
        agg,
        predicates,
        group_by,
    })
}

impl DataCube<Pair<i64, i64>> {
    /// Parses and runs one query; see the module docs for the grammar.
    ///
    /// `IN` lists produce a union of disjoint rectangles (duplicate list
    /// entries are deduplicated by encoded index, so nothing double
    /// counts); the engine answers one range sum per combination.
    pub fn query(&self, sql: &str) -> Result<SqlResult, String> {
        let q = parse_query(sql)?;
        // Per-dimension alternative specs (IN produces several).
        let d = self.dimensions().len();
        let mut alternatives: Vec<Vec<RangeSpec<'_>>> = vec![vec![RangeSpec::All]; d];
        for (dim, pred) in &q.predicates {
            let axis = self
                .dimensions()
                .iter()
                .position(|dm| dm.name() == dim)
                .ok_or_else(|| format!("no dimension named '{dim}'"))?;
            alternatives[axis] = match pred {
                Pred::Eq(v) => vec![RangeSpec::Eq(v.as_dim_value())],
                Pred::Between(a, b) => {
                    vec![RangeSpec::Between(a.as_dim_value(), b.as_dim_value())]
                }
                Pred::In(values) => {
                    let dimension = &self.dimensions()[axis];
                    let mut seen = std::collections::HashSet::new();
                    let mut specs = Vec::new();
                    for v in values {
                        let idx = dimension
                            .encode(&v.as_dim_value())
                            .map_err(|e| e.to_string())?;
                        if seen.insert(idx) {
                            specs.push(RangeSpec::Index(idx));
                        }
                    }
                    specs
                }
            };
        }

        // Enumerate the Cartesian product of alternatives.
        let mut combos: Vec<Vec<RangeSpec<'_>>> = vec![Vec::with_capacity(d)];
        for alts in &alternatives {
            let mut grown = Vec::with_capacity(combos.len() * alts.len());
            for c in &combos {
                for a in alts {
                    let mut c2 = c.clone();
                    c2.push(a.clone());
                    grown.push(c2);
                }
            }
            combos = grown;
        }

        if let Some(gdim) = &q.group_by {
            let axis = self
                .dimensions()
                .iter()
                .position(|dm| dm.name() == gdim)
                .ok_or_else(|| format!("no dimension named '{gdim}'"))?;
            let mut merged: Vec<(String, Pair<i64, i64>)> = Vec::new();
            for specs in &combos {
                let rows: Vec<GroupRow<Pair<i64, i64>>> =
                    self.group_by(axis, specs).map_err(|e| e.to_string())?;
                if merged.is_empty() {
                    merged = rows.into_iter().map(|r| (r.label, r.value)).collect();
                } else {
                    for (slot, row) in merged.iter_mut().zip(rows) {
                        debug_assert_eq!(slot.0, row.label);
                        slot.1 = slot.1.add(row.value);
                    }
                }
            }
            return Ok(SqlResult::Rows(
                merged.into_iter().map(|(l, v)| (l, v.a, v.b)).collect(),
            ));
        }

        let mut agg = Pair::<i64, i64>::ZERO;
        for specs in &combos {
            agg = agg.add(self.range_sum(specs).map_err(|e| e.to_string())?);
        }
        Ok(match q.agg {
            SqlAggregate::Sum => SqlResult::Scalar(agg.a),
            SqlAggregate::Count => SqlResult::Scalar(agg.b),
            SqlAggregate::Avg => {
                SqlResult::Average((agg.b != 0).then(|| agg.a as f64 / agg.b as f64))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeBuilder, SumCountCube};
    use crate::dimension::Dimension;
    use crate::engines::EngineKind;

    fn cube() -> SumCountCube {
        let mut c: SumCountCube = CubeBuilder::new()
            .dimension(Dimension::int_range("customer_age", 0, 99))
            .dimension(Dimension::int_range("day", 1, 365))
            .dimension(Dimension::categorical("region", &["north", "south"]))
            .engine(EngineKind::DynamicDdc)
            .build();
        c.add_observation(&[30.into(), 341.into(), "north".into()], 100)
            .unwrap();
        c.add_observation(&[45.into(), 350.into(), "south".into()], 250)
            .unwrap();
        c.add_observation(&[27.into(), 365.into(), "north".into()], 130)
            .unwrap();
        c.add_observation(&[60.into(), 100.into(), "south".into()], 999)
            .unwrap();
        c
    }

    #[test]
    fn paper_intro_query_in_sql() {
        let c = cube();
        let r = c
            .query(
                "SELECT AVG WHERE customer_age BETWEEN 27 AND 45 \
                 AND day BETWEEN 341 AND 365",
            )
            .unwrap();
        assert_eq!(r, SqlResult::Average(Some(160.0)));
    }

    #[test]
    fn sum_count_and_equality_predicates() {
        let c = cube();
        assert_eq!(c.query("SELECT SUM").unwrap(), SqlResult::Scalar(1479));
        assert_eq!(c.query("select count").unwrap(), SqlResult::Scalar(4));
        assert_eq!(
            c.query("SELECT SUM WHERE region = north").unwrap(),
            SqlResult::Scalar(230)
        );
        assert_eq!(
            c.query("SELECT SUM WHERE region = 'south' AND day BETWEEN 1 AND 200")
                .unwrap(),
            SqlResult::Scalar(999)
        );
        assert_eq!(
            c.query("SELECT COUNT WHERE customer_age = 45").unwrap(),
            SqlResult::Scalar(1)
        );
    }

    #[test]
    fn group_by_rows() {
        let c = cube();
        let r = c.query("SELECT SUM GROUP BY region").unwrap();
        assert_eq!(
            r,
            SqlResult::Rows(vec![
                ("north".to_string(), 230, 2),
                ("south".to_string(), 1249, 2),
            ])
        );
        let r = c
            .query("SELECT SUM WHERE day BETWEEN 300 AND 365 GROUP BY region")
            .unwrap();
        assert_eq!(
            r,
            SqlResult::Rows(vec![
                ("north".to_string(), 230, 2),
                ("south".to_string(), 250, 1),
            ])
        );
    }

    #[test]
    fn average_of_empty_selection_is_none() {
        let c = cube();
        assert_eq!(
            c.query("SELECT AVG WHERE day = 2").unwrap(),
            SqlResult::Average(None)
        );
    }

    #[test]
    fn parse_errors() {
        let c = cube();
        assert!(c.query("FETCH SUM").unwrap_err().contains("SELECT"));
        assert!(c
            .query("SELECT MEDIAN")
            .unwrap_err()
            .contains("SUM/COUNT/AVG"));
        assert!(c
            .query("SELECT SUM WHERE")
            .unwrap_err()
            .contains("dimension"));
        assert!(c
            .query("SELECT SUM WHERE day BETWEEN 1")
            .unwrap_err()
            .contains("AND"));
        assert!(c.query("SELECT SUM GROUP day").unwrap_err().contains("BY"));
        assert!(c
            .query("SELECT SUM WHERE planet = mars")
            .unwrap_err()
            .contains("planet"));
        assert!(c
            .query("SELECT SUM extra")
            .unwrap_err()
            .contains("trailing"));
        assert!(c
            .query("SELECT SUM WHERE day = 'oops")
            .unwrap_err()
            .contains("unterminated"));
    }

    #[test]
    fn in_lists_union_disjoint_rectangles() {
        let c = cube();
        assert_eq!(
            c.query("SELECT SUM WHERE customer_age IN (30, 45)")
                .unwrap(),
            SqlResult::Scalar(350)
        );
        // Duplicates do not double count.
        assert_eq!(
            c.query("SELECT COUNT WHERE customer_age IN (30, 30, 45)")
                .unwrap(),
            SqlResult::Scalar(2)
        );
        // IN composes with other predicates and GROUP BY.
        assert_eq!(
            c.query("SELECT SUM WHERE customer_age IN (27, 45) AND region = 'north'")
                .unwrap(),
            SqlResult::Scalar(130)
        );
        assert_eq!(
            c.query("SELECT SUM WHERE customer_age IN (27, 45) GROUP BY region")
                .unwrap(),
            SqlResult::Rows(vec![
                ("north".to_string(), 130, 1),
                ("south".to_string(), 250, 1),
            ])
        );
        // Empty IN list selects nothing.
        assert_eq!(
            c.query("SELECT SUM WHERE region IN (north) AND day = 100")
                .unwrap(),
            SqlResult::Scalar(0)
        );
        // Syntax errors.
        assert!(c.query("SELECT SUM WHERE day IN 3").is_err());
        assert!(c.query("SELECT SUM WHERE day IN (3").is_err());
        assert!(c.query("SELECT SUM WHERE day IN (3,)").is_err());
    }

    #[test]
    fn out_of_domain_values_error_cleanly() {
        let c = cube();
        assert!(c.query("SELECT SUM WHERE day = 999").is_err());
        assert!(c.query("SELECT SUM WHERE region = mars").is_err());
        assert!(c.query("SELECT SUM WHERE day BETWEEN 50 AND 10").is_err());
    }
}
