//! [`DataCube`]: the user-facing OLAP layer.
//!
//! Wires named [`Dimension`]s and value encoders onto a range-sum engine,
//! reproducing the paper's usage model: "construct a data cube from the
//! database with SALES as a measure attribute and CUSTOMER_AGE and
//! DATE_AND_TIME as dimensions … find the average daily sales to
//! customers between the ages of 27 and 45 during the time period
//! December 7 to December 31" (§1).

use ddc_array::{AbelianGroup, Pair, RangeSumEngine, Region, Shape};

use crate::dimension::{DimValue, Dimension, EncodeError, RangeSpec};
use crate::engines::EngineKind;

/// A multidimensional data cube with one measure attribute.
///
/// # Examples
///
/// ```
/// use ddc_olap::{CubeBuilder, Dimension, EngineKind, RangeSpec, SumCountCube};
///
/// let mut cube: SumCountCube = CubeBuilder::new()
///     .dimension(Dimension::int_range("customer_age", 18, 99))
///     .dimension(Dimension::int_range("day", 1, 365))
///     .engine(EngineKind::DynamicDdc)
///     .build();
///
/// cube.add_observation(&[37.into(), 220.into()], 120)?;
/// cube.add_observation(&[45.into(), 350.into()], 300)?;
///
/// let window = [
///     RangeSpec::Between(27.into(), 45.into()),
///     RangeSpec::Between(341.into(), 365.into()),
/// ];
/// assert_eq!(cube.sum(&window)?, 300);
/// assert_eq!(cube.average(&window)?, Some(300.0));
/// # Ok::<(), ddc_olap::EncodeError>(())
/// ```
pub struct DataCube<G: AbelianGroup> {
    dims: Vec<Dimension>,
    engine: Box<dyn RangeSumEngine<G>>,
}

impl<G: AbelianGroup> std::fmt::Debug for DataCube<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataCube")
            .field(
                "dims",
                &self.dims.iter().map(Dimension::name).collect::<Vec<_>>(),
            )
            .field("engine", &self.engine.name())
            .finish()
    }
}

/// Builder for [`DataCube`].
#[derive(Debug, Default)]
pub struct CubeBuilder {
    dims: Vec<Dimension>,
    engine: Option<EngineKind>,
}

impl CubeBuilder {
    /// Starts an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a dimension.
    pub fn dimension(mut self, dim: Dimension) -> Self {
        self.dims.push(dim);
        self
    }

    /// Selects the backing method (default: the Dynamic Data Cube).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = Some(kind);
        self
    }

    /// Builds the (all-zero) cube.
    ///
    /// # Panics
    ///
    /// Panics if no dimensions were declared.
    pub fn build<G: AbelianGroup>(self) -> DataCube<G> {
        assert!(
            !self.dims.is_empty(),
            "a data cube needs at least one dimension"
        );
        let shape = Shape::new(&self.dims.iter().map(Dimension::size).collect::<Vec<_>>());
        let kind = self.engine.unwrap_or(EngineKind::DynamicDdc);
        DataCube {
            dims: self.dims,
            engine: kind.build(shape),
        }
    }
}

impl<G: AbelianGroup> DataCube<G> {
    /// Starts building a cube.
    pub fn builder() -> CubeBuilder {
        CubeBuilder::new()
    }

    /// The cube's dimensions, in coordinate order.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dims
    }

    /// The backing engine's name.
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Approximate heap bytes held by the backing structure.
    pub fn heap_bytes(&self) -> usize {
        self.engine.heap_bytes()
    }

    /// The backing engine's extra metrics report, if it keeps one (the
    /// sharded engine reports per-shard queue and lock statistics).
    pub fn metrics_text(&self) -> Option<String> {
        self.engine.metrics_text()
    }

    fn encode_point(&self, coords: &[DimValue<'_>]) -> Result<Vec<usize>, EncodeError> {
        if coords.len() != self.dims.len() {
            return Err(EncodeError::ArityMismatch {
                expected: self.dims.len(),
                got: coords.len(),
            });
        }
        coords
            .iter()
            .zip(self.dims.iter())
            .map(|(v, d)| d.encode(v))
            .collect()
    }

    fn encode_region(&self, ranges: &[RangeSpec<'_>]) -> Result<Region, EncodeError> {
        if ranges.len() != self.dims.len() {
            return Err(EncodeError::ArityMismatch {
                expected: self.dims.len(),
                got: ranges.len(),
            });
        }
        let mut lo = Vec::with_capacity(self.dims.len());
        let mut hi = Vec::with_capacity(self.dims.len());
        for (spec, dim) in ranges.iter().zip(self.dims.iter()) {
            let (l, h) = spec.resolve(dim)?;
            lo.push(l);
            hi.push(h);
        }
        Ok(Region::new(&lo, &hi))
    }

    /// Adds `delta` to the aggregate at the given coordinates (a record
    /// ingestion, e.g. "a sale of $120 to a 37-year-old on day 220").
    pub fn add(&mut self, coords: &[DimValue<'_>], delta: G) -> Result<(), EncodeError> {
        let p = self.encode_point(coords)?;
        self.engine.apply_delta(&p, delta);
        Ok(())
    }

    /// Replaces the aggregate at the given coordinates, returning the
    /// previous value.
    pub fn set(&mut self, coords: &[DimValue<'_>], value: G) -> Result<G, EncodeError> {
        let p = self.encode_point(coords)?;
        Ok(self.engine.set(&p, value))
    }

    /// Reads one cell's aggregate.
    pub fn cell(&self, coords: &[DimValue<'_>]) -> Result<G, EncodeError> {
        let p = self.encode_point(coords)?;
        Ok(self.engine.cell(&p))
    }

    /// The paper's range-sum query: the aggregate over the selected
    /// hyper-rectangle, one [`RangeSpec`] per dimension.
    pub fn range_sum(&self, ranges: &[RangeSpec<'_>]) -> Result<G, EncodeError> {
        let region = self.encode_region(ranges)?;
        Ok(self.engine.range_sum(&region))
    }

    /// Sum over the whole cube.
    pub fn total(&self) -> G {
        self.engine.range_sum(&Region::full(self.engine.shape()))
    }
}

/// A cube that maintains (sum, count) pairs so SUM, COUNT, and AVERAGE
/// queries are all exact under updates — the paper's §2 observation that
/// any operator with an inverse is supported.
pub type SumCountCube = DataCube<Pair<i64, i64>>;

impl SumCountCube {
    /// Records one observation of `value` at the given coordinates.
    pub fn add_observation(
        &mut self,
        coords: &[DimValue<'_>],
        value: i64,
    ) -> Result<(), EncodeError> {
        self.add(coords, Pair::new(value, 1))
    }

    /// Retracts one previously recorded observation (inverse operator).
    pub fn retract_observation(
        &mut self,
        coords: &[DimValue<'_>],
        value: i64,
    ) -> Result<(), EncodeError> {
        self.add(coords, Pair::new(-value, -1))
    }

    /// SUM over the selected range.
    pub fn sum(&self, ranges: &[RangeSpec<'_>]) -> Result<i64, EncodeError> {
        Ok(self.range_sum(ranges)?.a)
    }

    /// COUNT over the selected range.
    pub fn count(&self, ranges: &[RangeSpec<'_>]) -> Result<i64, EncodeError> {
        Ok(self.range_sum(ranges)?.b)
    }

    /// AVERAGE over the selected range (`None` when the range is empty).
    pub fn average(&self, ranges: &[RangeSpec<'_>]) -> Result<Option<f64>, EncodeError> {
        let p = self.range_sum(ranges)?;
        Ok((p.b != 0).then(|| p.a as f64 / p.b as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cube of the paper's introduction: SALES by CUSTOMER_AGE and
    /// day-of-year, with the §1 query "average daily sales to customers
    /// between the ages of 27 and 45 during the period December 7 to
    /// December 31" (days 341..=365 of a non-leap year).
    fn sales_cube() -> SumCountCube {
        CubeBuilder::new()
            .dimension(Dimension::int_range("customer_age", 0, 99))
            .dimension(Dimension::int_range("day", 1, 365))
            .engine(EngineKind::DynamicDdc)
            .build()
    }

    #[test]
    fn paper_intro_average_query() {
        let mut cube = sales_cube();
        // Sales inside the target window.
        cube.add_observation(&[30.into(), 341.into()], 100).unwrap();
        cube.add_observation(&[45.into(), 350.into()], 250).unwrap();
        cube.add_observation(&[27.into(), 365.into()], 130).unwrap();
        // Sales outside it.
        cube.add_observation(&[26.into(), 350.into()], 999).unwrap();
        cube.add_observation(&[30.into(), 340.into()], 999).unwrap();
        let window = [
            RangeSpec::Between(27.into(), 45.into()),
            RangeSpec::Between(341.into(), 365.into()),
        ];
        assert_eq!(cube.sum(&window).unwrap(), 480);
        assert_eq!(cube.count(&window).unwrap(), 3);
        assert_eq!(cube.average(&window).unwrap(), Some(160.0));
        // Total sales to 37-year-olds on day 220 (paper's cell example).
        cube.add_observation(&[37.into(), 220.into()], 75).unwrap();
        assert_eq!(
            cube.cell(&[37.into(), 220.into()]).unwrap(),
            Pair::new(75, 1)
        );
    }

    #[test]
    fn retraction_inverts_ingestion() {
        let mut cube = sales_cube();
        cube.add_observation(&[50.into(), 100.into()], 10).unwrap();
        cube.retract_observation(&[50.into(), 100.into()], 10)
            .unwrap();
        assert_eq!(cube.total(), Pair::new(0, 0));
        assert_eq!(
            cube.average(&[RangeSpec::All, RangeSpec::All]).unwrap(),
            None
        );
    }

    #[test]
    fn categorical_dimension_queries() {
        let mut cube: DataCube<i64> = CubeBuilder::new()
            .dimension(Dimension::categorical(
                "region",
                &["north", "south", "east", "west"],
            ))
            .dimension(Dimension::int_range("month", 1, 12))
            .build();
        cube.add(&["north".into(), 1.into()], 10).unwrap();
        cube.add(&["south".into(), 6.into()], 20).unwrap();
        cube.add(&["west".into(), 12.into()], 40).unwrap();
        assert_eq!(
            cube.range_sum(&[RangeSpec::Eq("south".into()), RangeSpec::All])
                .unwrap(),
            20
        );
        assert_eq!(
            cube.range_sum(&[RangeSpec::All, RangeSpec::Between(1.into(), 6.into())])
                .unwrap(),
            30
        );
        assert_eq!(cube.total(), 70);
    }

    #[test]
    fn every_engine_kind_answers_identically() {
        let mut totals = Vec::new();
        for kind in EngineKind::ALL {
            let mut cube: DataCube<i64> = CubeBuilder::new()
                .dimension(Dimension::int_range("x", 0, 15))
                .dimension(Dimension::int_range("y", 0, 15))
                .engine(kind)
                .build();
            for i in 0..16i64 {
                cube.add(&[i.into(), ((i * 7) % 16).into()], i * i).unwrap();
            }
            let v = cube
                .range_sum(&[
                    RangeSpec::Between(2.into(), 12.into()),
                    RangeSpec::Between(0.into(), 9.into()),
                ])
                .unwrap();
            totals.push((kind.label(), v));
        }
        let first = totals[0].1;
        for (label, v) in totals {
            assert_eq!(v, first, "{label}");
        }
    }

    #[test]
    fn error_paths() {
        let mut cube: DataCube<i64> = CubeBuilder::new()
            .dimension(Dimension::int_range("x", 0, 9))
            .build();
        assert!(matches!(
            cube.add(&[], 1),
            Err(EncodeError::ArityMismatch {
                expected: 1,
                got: 0
            })
        ));
        assert!(cube.add(&[100.into()], 1).is_err());
        assert!(cube.range_sum(&[RangeSpec::Eq("nope".into())]).is_err());
        assert!(cube
            .range_sum(&[RangeSpec::Between(5.into(), 2.into())])
            .is_err());
    }

    #[test]
    fn set_returns_previous_aggregate() {
        let mut cube: DataCube<i64> = CubeBuilder::new()
            .dimension(Dimension::int_range("x", 0, 7))
            .engine(EngineKind::PrefixSum)
            .build();
        assert_eq!(cube.set(&[3.into()], 11).unwrap(), 0);
        assert_eq!(cube.set(&[3.into()], 4).unwrap(), 11);
        assert_eq!(cube.total(), 4);
    }

    #[test]
    fn debug_format_mentions_engine() {
        let cube: DataCube<i64> = CubeBuilder::new()
            .dimension(Dimension::int_range("x", 0, 7))
            .build();
        let s = format!("{cube:?}");
        assert!(s.contains("dynamic-ddc"), "{s}");
    }
}
