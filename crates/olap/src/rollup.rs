//! Rollup-style analytics on top of range sums: GROUP BY one dimension,
//! and the ROLLING SUM / ROLLING AVERAGE operators the paper lists among
//! the aggregates its techniques support (§2).
//!
//! Every result value here is a composition of range-sum queries, so all
//! of them inherit the backing engine's complexity — `O(m · log^d n)` for
//! an `m`-bucket rollup on the Dynamic Data Cube.

use ddc_array::{AbelianGroup, Pair};

use crate::cube::DataCube;
use crate::dimension::{EncodeError, RangeSpec};

/// One bucket of a grouped result.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupRow<G> {
    /// Dense index of the bucket along the grouped dimension.
    pub index: usize,
    /// Human-readable bucket label (value, bucket range, or category).
    pub label: String,
    /// The aggregate over the bucket (within the query's other bounds).
    pub value: G,
}

impl<G: AbelianGroup> DataCube<G> {
    /// GROUP BY dimension `axis`: one aggregate per index of that
    /// dimension, restricted by `filter` (whose entry at `axis` bounds
    /// which buckets are enumerated).
    ///
    /// # Examples
    ///
    /// ```
    /// use ddc_olap::{CubeBuilder, Dimension, RangeSpec, SumCountCube};
    ///
    /// let mut cube: SumCountCube = CubeBuilder::new()
    ///     .dimension(Dimension::categorical("region", &["north", "south"]))
    ///     .dimension(Dimension::int_range("day", 1, 31))
    ///     .build();
    /// cube.add_observation(&["north".into(), 3.into()], 100)?;
    /// cube.add_observation(&["south".into(), 9.into()], 40)?;
    ///
    /// let rows = cube.group_by(0, &[RangeSpec::All, RangeSpec::All])?;
    /// assert_eq!(rows[0].label, "north");
    /// assert_eq!(rows[0].value.a, 100);
    /// # Ok::<(), ddc_olap::EncodeError>(())
    /// ```
    pub fn group_by(
        &self,
        axis: usize,
        filter: &[RangeSpec<'_>],
    ) -> Result<Vec<GroupRow<G>>, EncodeError> {
        assert!(axis < self.dimensions().len(), "axis {axis} out of range");
        let dim = &self.dimensions()[axis];
        let (lo, hi) = filter[axis].resolve(dim)?;
        let mut rows = Vec::with_capacity(hi - lo + 1);
        for index in lo..=hi {
            let mut q: Vec<RangeSpec<'_>> = filter.to_vec();
            q[axis] = RangeSpec::Index(index);
            rows.push(GroupRow {
                index,
                label: dim.label(index),
                value: self.range_sum(&q)?,
            });
        }
        Ok(rows)
    }

    /// ROLLING SUM along dimension `axis`: for every window of `window`
    /// consecutive indices (within `filter`'s bounds on that axis), the
    /// aggregate over the window. Rows are keyed by the window's *last*
    /// index, matching the usual trailing-window convention.
    pub fn rolling_sum(
        &self,
        axis: usize,
        window: usize,
        filter: &[RangeSpec<'_>],
    ) -> Result<Vec<GroupRow<G>>, EncodeError> {
        assert!(window >= 1, "window must cover at least one index");
        assert!(axis < self.dimensions().len(), "axis {axis} out of range");
        let dim = &self.dimensions()[axis];
        let (lo, hi) = filter[axis].resolve(dim)?;
        let mut rows = Vec::new();
        for end in lo..=hi {
            if end + 1 < lo + window {
                continue; // window does not fit yet
            }
            let start = end + 1 - window;
            let mut q: Vec<RangeSpec<'_>> = filter.to_vec();
            q[axis] = RangeSpec::IndexRange(start, end);
            rows.push(GroupRow {
                index: end,
                label: dim.label(end),
                value: self.range_sum(&q)?,
            });
        }
        Ok(rows)
    }
}

impl DataCube<Pair<i64, i64>> {
    /// ROLLING AVERAGE along dimension `axis` — the §2 operator — from
    /// the maintained (sum, count) pairs. Windows with no observations
    /// yield `None`.
    pub fn rolling_average(
        &self,
        axis: usize,
        window: usize,
        filter: &[RangeSpec<'_>],
    ) -> Result<Vec<(usize, String, Option<f64>)>, EncodeError> {
        Ok(self
            .rolling_sum(axis, window, filter)?
            .into_iter()
            .map(|row| {
                let avg = (row.value.b != 0).then(|| row.value.a as f64 / row.value.b as f64);
                (row.index, row.label, avg)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeBuilder, SumCountCube};
    use crate::dimension::Dimension;
    use crate::engines::EngineKind;

    fn cube() -> SumCountCube {
        let mut c: SumCountCube = CubeBuilder::new()
            .dimension(Dimension::categorical("region", &["north", "south"]))
            .dimension(Dimension::int_range("day", 1, 10))
            .engine(EngineKind::DynamicDdc)
            .build();
        // north: day d gets one sale of 10·d; south: day d gets one of 5.
        for day in 1..=10i64 {
            c.add_observation(&["north".into(), day.into()], 10 * day)
                .unwrap();
            c.add_observation(&["south".into(), day.into()], 5).unwrap();
        }
        c
    }

    #[test]
    fn group_by_categorical() {
        let c = cube();
        let rows = c.group_by(0, &[RangeSpec::All, RangeSpec::All]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "north");
        assert_eq!(rows[0].value.a, (1..=10).map(|d| 10 * d).sum::<i64>());
        assert_eq!(rows[1].label, "south");
        assert_eq!(rows[1].value, Pair::new(50, 10));
    }

    #[test]
    fn group_by_respects_filter_on_other_axes() {
        let c = cube();
        let rows = c
            .group_by(
                1,
                &[
                    RangeSpec::Eq("north".into()),
                    RangeSpec::Between(3.into(), 5.into()),
                ],
            )
            .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "3");
        assert_eq!(rows[0].value.a, 30);
        assert_eq!(rows[2].value.a, 50);
    }

    #[test]
    fn rolling_sum_trailing_windows() {
        let c = cube();
        let rows = c
            .rolling_sum(1, 3, &[RangeSpec::Eq("north".into()), RangeSpec::All])
            .unwrap();
        // Windows end at days 3..=10: first is 10+20+30 = 60.
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].label, "3");
        assert_eq!(rows[0].value.a, 60);
        assert_eq!(rows[7].label, "10");
        assert_eq!(rows[7].value.a, 80 + 90 + 100);
    }

    #[test]
    fn rolling_average_matches_manual() {
        let c = cube();
        let rows = c
            .rolling_average(1, 2, &[RangeSpec::All, RangeSpec::All])
            .unwrap();
        // Window days {1,2}: north 10+20, south 5+5 → 40/4 = 10.
        assert_eq!(rows[0].2, Some(10.0));
        assert_eq!(rows.len(), 9);
    }

    #[test]
    fn window_one_equals_group_by() {
        let c = cube();
        let filter = [RangeSpec::Eq("south".into()), RangeSpec::All];
        let grouped = c.group_by(1, &filter).unwrap();
        let rolled = c.rolling_sum(1, 1, &filter).unwrap();
        assert_eq!(grouped, rolled);
    }
}
