//! Seeded ordering-pairs violations: `Release` stores whose field has
//! no acquire-side load anywhere in the crate, next to a properly
//! paired field that must stay clean. Analyzer input only — never
//! compiled.

use crate::sync::{AtomicU64, Ordering};

pub struct Flags {
    ready: AtomicU64,
    seen: AtomicU64,
    done: AtomicU64,
}

impl Flags {
    pub fn publish(&self) {
        self.ready.store(1, Ordering::Release); //~ ordering-pairs
    }

    pub fn mark(&self) {
        self.seen.store(1, Ordering::Release); //~ ordering-pairs
    }

    /// `done` is paired: the Release store below is matched by the
    /// Acquire load in `is_done`, so it produces no finding.
    pub fn finish(&self) {
        self.done.store(1, Ordering::Release);
    }

    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire) == 1
    }
}
