//! Seeded seam-bypass violations: durable bytes and sockets must go
//! through `core::vfs` / `crates/serve`, never raw `std::fs` or
//! `std::net`. This file is NOT compiled — it is analyzer input for
//! `ddc-lint --fixtures`.

/// Writes a sidecar file behind the Vfs seam's back.
pub fn write_sidecar(bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write("sidecar.bin", bytes) //~ seam-bypass
}

/// Opens a raw socket outside the serving layer.
pub fn probe_port() -> std::io::Result<u16> {
    let l = std::net::TcpListener::bind("127.0.0.1:0")?; //~ seam-bypass
    Ok(l.local_addr()?.port())
}

#[cfg(test)]
mod tests {
    // Test code is exempt: harnesses may touch the real filesystem.
    #[test]
    fn scratch_file_is_fine() {
        std::fs::write("/tmp/scratch", b"ok").unwrap();
    }
}
