//! Seeded result-discard violations: `Result`s carrying `IoError`
//! dropped on the floor, next to handled uses that must stay clean.
//! Analyzer input only — never compiled.

/// Stand-in for the WAL's I/O error type.
pub struct IoError;

/// Every `flush_page` in this corpus returns a risky `Result`.
pub fn flush_page(_page: u64) -> Result<(), IoError> {
    Ok(())
}

pub fn checkpoint() {
    let _ = flush_page(1); //~ result-discard
    flush_page(2); //~ result-discard
}

/// Handled call sites are clean.
pub fn careful_checkpoint() -> Result<(), IoError> {
    flush_page(1)?;
    match flush_page(2) {
        Ok(()) => Ok(()),
        Err(e) => Err(e),
    }
}
