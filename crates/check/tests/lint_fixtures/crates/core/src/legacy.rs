//! Seeded violations for the three v1 rules: a panicking unwrap, a
//! bare `std::sync` reference outside the facade, and an atomic call
//! with no named `Ordering`. Analyzer input only — never compiled.

/// Core code must not panic via unwrap.
pub fn take(v: Option<u32>) -> u32 {
    v.unwrap() //~ no-unwrap
}

/// Only `core/src/sync.rs` may name `std::sync`.
pub fn bump(c: &std::sync::atomic::AtomicU64) -> u64 { //~ no-bare-std-sync
    c.fetch_add(1) //~ named-ordering
}
