//! Seeded lock-order cycles: two independent two-lock inversions, one
//! over `Mutex` guards and one over `RwLock` guards, plus a consistent
//! (clean) pair. Analyzer input only — never compiled.

use crate::sync::{Mutex, RwLock};

/// Two mutexes acquired in both orders — the classic AB/BA deadlock.
pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock(); //~ lock-order
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a + *b
    }
}

/// The same inversion through reader/writer guards.
pub struct Registry {
    gauges: RwLock<u32>,
    names: RwLock<u32>,
}

impl Registry {
    pub fn snapshot(&self) -> u32 {
        let g = self.gauges.read();
        let n = self.names.read(); //~ lock-order
        *g + *n
    }

    pub fn rename(&self) {
        let mut n = self.names.write();
        let g = self.gauges.read();
        *n += *g;
    }
}

/// Consistent order everywhere: no finding.
pub struct Clean {
    first: Mutex<u32>,
    second: Mutex<u32>,
}

impl Clean {
    pub fn both(&self) -> u32 {
        let f = self.first.lock();
        let s = self.second.lock();
        *f + *s
    }

    pub fn also_both(&self) -> u32 {
        let f = self.first.lock();
        let s = self.second.lock();
        *f * *s
    }
}
