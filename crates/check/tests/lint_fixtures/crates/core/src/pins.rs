//! Seeded pin-discipline violations: a leaked pin and a pin held
//! across an early exit, next to the closure-scoped accessor shape
//! that must stay clean. Analyzer input only — never compiled.

use crate::pager::BufferPool;

pub struct Arena {
    pool: BufferPool,
}

impl Arena {
    /// Pins a page and forgets to release it.
    pub fn leak_pin(&mut self, page: u64) -> std::io::Result<u8> {
        self.pool.pin(page)?; //~ pin-discipline
        let mut buf = [0u8; 1];
        self.pool.read_page(page, &mut buf);
        Ok(buf[0])
    }

    /// Holds a pin across a `?` early exit: the error path leaks.
    pub fn early_exit(&mut self, page: u64) -> std::io::Result<u8> {
        self.pool.pin(page)?;
        let mut buf = [0u8; 1];
        self.fallible(page)?; //~ pin-discipline
        self.pool.read_page(page, &mut buf);
        self.pool.unpin(page)?;
        Ok(buf[0])
    }

    /// The sanctioned shape: pin and unpin inside one closure-scoped
    /// accessor, balanced on every path the closure can take.
    pub fn balanced(&mut self, page: u64) -> std::io::Result<u8> {
        let byte = (|| {
            self.pool.pin(page)?;
            let mut buf = [0u8; 1];
            self.pool.read_page(page, &mut buf);
            self.pool.unpin(page)?;
            std::io::Result::Ok(buf[0])
        })()?;
        Ok(byte)
    }

    fn fallible(&self, _page: u64) -> std::io::Result<()> {
        Ok(())
    }
}
