//! Round-trip property tests for the lint frontend: for every Rust
//! source the analyzer will ever see (the whole workspace, the fixture
//! corpus, and a set of adversarial snippets), `lex → render → lex`
//! must reproduce the token stream and `parse → flatten` must be the
//! identity. A frontend that drops or merges tokens silently weakens
//! every rule built on it, so this is the foundation the semantic
//! rules stand on.

use std::path::PathBuf;

use ddc_check::lint::lexer::{lex, render, Token};
use ddc_check::lint::parse::{flatten, parse};

fn repo_root() -> PathBuf {
    // crates/check -> crates -> repo root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("repo root")
        .to_path_buf()
}

/// (kind, text) pairs — line numbers legitimately change across a
/// render, everything else must survive.
fn shape(toks: &[Token]) -> Vec<(String, String)> {
    toks.iter()
        .map(|t| (format!("{:?}", t.kind), t.text.clone()))
        .collect()
}

fn assert_round_trips(src: &str, what: &str) {
    let toks = lex(src);
    let rendered = render(&toks);
    let again = lex(&rendered);
    assert_eq!(
        shape(&toks),
        shape(&again),
        "lex→render→lex changed the token stream of {what}"
    );
    let trees = parse(&toks).unwrap_or_else(|e| panic!("parse of {what} failed: {e}"));
    let flat = flatten(&trees);
    assert_eq!(toks, flat, "parse→flatten was not the identity for {what}");
}

#[test]
fn every_workspace_source_round_trips() {
    let root = repo_root();
    let files = ddc_check::lint::workspace_sources(&root).expect("walk workspace");
    assert!(
        files.len() > 20,
        "workspace walk found only {} sources — wrong root?",
        files.len()
    );
    for f in files {
        let src = std::fs::read_to_string(&f).expect("read source");
        assert_round_trips(&src, &f.display().to_string());
    }
}

#[test]
fn adversarial_snippets_round_trip() {
    let snippets: &[(&str, &str)] = &[
        (
            "raw strings with embedded quotes and hashes",
            r####"const S: &str = r#"say "hi" \ not an escape"#; const T: &str = r##"nested "#" inside"##;"####,
        ),
        (
            "nested generics closed by >>",
            "fn f() -> Result<Vec<Box<dyn Iterator<Item = Option<u8>>>>, String> { todo!() }",
        ),
        (
            "lifetimes vs char literals",
            r"fn g<'a, 'b: 'a>(x: &'a str) -> char { let c = 'x'; let esc = '\''; let back = '\\'; c }",
        ),
        (
            "doc comments containing code",
            "/// ```rust\n/// let x = \"not real\"; // 'tricky\n/// ```\nfn documented() {}",
        ),
        (
            "block comments with stars and nesting",
            "/* outer /* inner */ still comment */ fn h() { /* trailing */ }",
        ),
        (
            "numeric literals with suffixes, radix, exponents",
            "const N: f64 = 0.5e-3; const H: u32 = 0xE_Fu32; const O: u8 = 0o77; const B: u8 = 0b1010; const F: f32 = 1_000.5f32;",
        ),
        (
            "byte strings and byte chars",
            r#"const B: &[u8] = b"bytes \"quoted\""; const C: u8 = b'q'; const E: u8 = b'\'';"#,
        ),
        (
            "shift operators vs generic closes",
            "fn s(x: u64) -> u64 { let v: Vec<Vec<u64>> = vec![]; (x >> 2) << 1 }",
        ),
        (
            "labels vs lifetimes",
            "fn l() { 'outer: loop { loop { break 'outer; } } }",
        ),
        (
            "attr-heavy items with cfg_attr",
            "#[cfg_attr(feature = \"x\", derive(Debug))]\n#[allow(dead_code)]\nstruct A { #[doc = \"field\"] f: u8 }",
        ),
    ];
    for (what, src) in snippets {
        assert_round_trips(src, what);
    }
}
