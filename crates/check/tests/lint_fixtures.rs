//! CI teeth for the seeded-violation corpus: the v2 analyzer must
//! re-find every `//~ rule` marker under `tests/lint_fixtures/` and
//! report nothing else, with the coverage floor the corpus promises
//! (at least two seeds per semantic rule, at least ten overall).

use std::path::PathBuf;

use ddc_check::lint;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

#[test]
fn analyzer_refinds_every_seeded_violation() {
    let report = lint::run_fixtures(&fixture_root()).expect("fixture corpus analyzable");
    assert!(
        report.is_clean(),
        "missed: {:?}\nunexpected: {:?}",
        report.missing,
        report.unexpected
    );
    assert_eq!(report.refound, report.expected);
}

#[test]
fn corpus_meets_its_coverage_floor() {
    let report = lint::run_fixtures(&fixture_root()).expect("fixture corpus analyzable");
    assert!(
        report.expected >= 10,
        "corpus shrank below ten seeded violations ({})",
        report.expected
    );
    for rule in [
        "seam-bypass",
        "lock-order",
        "pin-discipline",
        "result-discard",
        "ordering-pairs",
    ] {
        let (_, total) = report.per_rule.get(rule).copied().unwrap_or((0, 0));
        assert!(
            total >= 2,
            "rule {rule} has {total} seeded violations, needs at least 2"
        );
    }
}
