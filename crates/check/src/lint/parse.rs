//! Token trees over the [`super::lexer`] stream: delimiter-matched
//! grouping plus the bracket-matching table the rules navigate with.
//!
//! The rules themselves mostly walk the *flat* token vector using
//! [`BracketMap`] to jump over balanced groups — that keeps scope
//! analysis (guard lifetimes, pin balances) linear and simple — while
//! the tree form exists to prove the stream is well-formed and to give
//! the property tests a structural round-trip target.

use super::lexer::{Delim, TokKind, Token};

/// One node of a token tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A delimited group and its contents.
    Group {
        /// Bracket family.
        delim: Delim,
        /// Line of the opening delimiter.
        open_line: u32,
        /// Line of the closing delimiter (flatten reproduces it).
        close_line: u32,
        /// Nested trees between the delimiters.
        children: Vec<Tree>,
    },
}

/// Parse a flat token stream into token trees. Fails with a positioned
/// message on mismatched or unclosed delimiters — workspace sources are
/// always well-formed, so an error here means the lexer mis-tokenized
/// something (a bug the fixtures would catch).
pub fn parse(tokens: &[Token]) -> Result<Vec<Tree>, String> {
    let mut stack: Vec<(Delim, u32, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for t in tokens {
        match t.kind {
            TokKind::Open(d) => stack.push((d, t.line, std::mem::take(&mut top))),
            TokKind::Close(d) => match stack.pop() {
                Some((open_d, open_line, parent)) if open_d == d => {
                    let children = std::mem::replace(&mut top, parent);
                    top.push(Tree::Group {
                        delim: d,
                        open_line,
                        close_line: t.line,
                        children,
                    });
                }
                Some((open_d, open_line, _)) => {
                    return Err(format!(
                        "line {}: `{}` closes a {open_d:?} opened on line {open_line}",
                        t.line, t.text
                    ))
                }
                None => return Err(format!("line {}: unmatched `{}`", t.line, t.text)),
            },
            _ => top.push(Tree::Leaf(t.clone())),
        }
    }
    if let Some((d, line, _)) = stack.pop() {
        return Err(format!("line {line}: unclosed {d:?}"));
    }
    Ok(top)
}

/// Flatten trees back to the token stream they were parsed from
/// (delimiters re-synthesized). `flatten(parse(t)) == t` for any
/// well-formed stream — the structural half of the round-trip property.
pub fn flatten(trees: &[Tree]) -> Vec<Token> {
    fn walk(trees: &[Tree], out: &mut Vec<Token>) {
        for t in trees {
            match t {
                Tree::Leaf(tok) => out.push(tok.clone()),
                Tree::Group {
                    delim,
                    open_line,
                    close_line,
                    children,
                } => {
                    let (open, close) = match delim {
                        Delim::Paren => ("(", ")"),
                        Delim::Bracket => ("[", "]"),
                        Delim::Brace => ("{", "}"),
                    };
                    out.push(Token {
                        kind: TokKind::Open(*delim),
                        text: open.to_string(),
                        line: *open_line,
                    });
                    walk(children, out);
                    out.push(Token {
                        kind: TokKind::Close(*delim),
                        text: close.to_string(),
                        line: *close_line,
                    });
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(trees, &mut out);
    out
}

/// For each token index, the index of its matching bracket (both
/// directions), or `usize::MAX` for non-delimiter tokens.
pub struct BracketMap(pub Vec<usize>);

impl BracketMap {
    /// Build the matching table; unbalanced tokens map to `usize::MAX`.
    pub fn build(tokens: &[Token]) -> Self {
        let mut map = vec![usize::MAX; tokens.len()];
        let mut stack = Vec::new();
        for (i, t) in tokens.iter().enumerate() {
            match t.kind {
                TokKind::Open(_) => stack.push(i),
                TokKind::Close(_) => {
                    if let Some(open) = stack.pop() {
                        map[open] = i;
                        map[i] = open;
                    }
                }
                _ => {}
            }
        }
        Self(map)
    }

    /// The matching index for `i` (`usize::MAX` when none).
    pub fn matching(&self, i: usize) -> usize {
        self.0.get(i).copied().unwrap_or(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    #[test]
    fn parse_then_flatten_is_identity() {
        let src = "fn f(a: Vec<Vec<u8>>) { if x { g([1, 2]); } }";
        let toks = lex(src);
        let trees = parse(&toks).expect("well-formed");
        let back = flatten(&trees);
        assert_eq!(toks, back);
    }

    #[test]
    fn mismatched_delimiters_error() {
        assert!(parse(&lex("fn f( }")).is_err());
        assert!(parse(&lex("fn f() {")).is_err());
        assert!(parse(&lex(") start")).is_err());
    }

    #[test]
    fn bracket_map_pairs_up() {
        let toks = lex("a(b[c]d){e}");
        let map = BracketMap::build(&toks);
        // a ( b [ c ] d ) { e }
        assert_eq!(map.matching(1), 7);
        assert_eq!(map.matching(7), 1);
        assert_eq!(map.matching(3), 5);
        assert_eq!(map.matching(8), 10);
        assert_eq!(map.matching(0), usize::MAX);
    }
}
