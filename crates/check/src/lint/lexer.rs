//! Hand-rolled Rust lexer for the lint suite — no `syn`, no
//! proc-macro machinery, no dependencies.
//!
//! Produces a flat token stream (identifiers, lifetimes, literals,
//! single-char punctuation, delimiters) with 1-based line numbers.
//! Comments — including doc comments, whose bodies often contain code —
//! are skipped entirely, and every literal form Rust accepts in this
//! workspace is recognized: raw strings `r#"…"#`, byte strings, byte
//! chars, char literals vs lifetimes, nested block comments, numbers
//! with suffixes and exponents.
//!
//! Compound operators are *not* fused: `>>` is two `>` tokens, `::` two
//! `:` tokens. This sidesteps the classic `Vec<Vec<u8>>` ambiguity
//! (the parser counts angle depth itself where it matters) and makes
//! [`render`] trivially round-trippable: space-joining the token texts
//! and re-lexing yields the identical stream, which the property tests
//! assert over every source file in the workspace.

/// Bracket family of a delimiter token.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Delim {
    /// `(` / `)`
    Paren,
    /// `[` / `]`
    Bracket,
    /// `{` / `}`
    Brace,
}

/// Lexical class of one token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Ordering`, `unwrap`, …).
    Ident,
    /// Lifetime, leading quote included (`'a`, `'static`).
    Lifetime,
    /// Any literal: string, raw string, byte string, char, byte char,
    /// or number. Text is the exact source spelling.
    Literal,
    /// One punctuation character (`.`, `:`, `>`, `?`, …).
    Punct,
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

/// One lexed token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokKind,
    /// Exact source text.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True when this is an identifier with exactly `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lex `src` into a flat token stream. Never fails: unrecognized bytes
/// become single-char punctuation, unterminated literals run to EOF.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.i),
                b'\'' => self.char_or_lifetime(),
                b'b' | b'r' if self.try_string_prefix() => {}
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident(),
                _ => self.punct_or_delim(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn emit(&mut self, kind: TokKind, start: usize, end: usize, line: u32) {
        self.out.push(Token {
            kind,
            text: self.src[start..end].to_string(),
            line,
        });
    }

    fn bump_lines(&mut self, start: usize, end: usize) {
        self.line += self.bytes[start..end]
            .iter()
            .filter(|&&b| b == b'\n')
            .count() as u32;
    }

    fn line_comment(&mut self) {
        while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
            self.i += 1;
        }
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let mut depth = 0usize;
        while self.i < self.bytes.len() {
            if self.bytes[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.bytes[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.i += 1;
            }
        }
        self.bump_lines(start, self.i);
    }

    /// Handles `b"…"`, `b'…'`, `r"…"`, `r#"…"#`, `br##"…"##`. Returns
    /// false (consuming nothing) when the `b`/`r` starts a plain
    /// identifier instead.
    fn try_string_prefix(&mut self) -> bool {
        let start = self.i;
        let mut j = self.i;
        if self.bytes[j] == b'b' {
            j += 1;
            if self.bytes.get(j) == Some(&b'\'') {
                // Byte char literal b'x' / b'\n'.
                let line = self.line;
                let mut k = j + 1;
                if self.bytes.get(k) == Some(&b'\\') {
                    k += 2;
                } else {
                    k += 1;
                }
                while k < self.bytes.len() && self.bytes[k] != b'\'' {
                    k += 1;
                }
                k = (k + 1).min(self.bytes.len());
                self.emit(TokKind::Literal, start, k, line);
                self.bump_lines(start, k);
                self.i = k;
                return true;
            }
        }
        let raw = self.bytes.get(j) == Some(&b'r');
        if raw {
            j += 1;
        }
        let mut hashes = 0usize;
        if raw {
            while self.bytes.get(j + hashes) == Some(&b'#') {
                hashes += 1;
            }
        }
        if self.bytes.get(j + hashes) != Some(&b'"') {
            return false;
        }
        if raw {
            // Raw (or byte-raw) string: scan for `"` + hashes closer.
            let line = self.line;
            let mut k = j + hashes + 1;
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat(b'#').take(hashes))
                .collect();
            while k < self.bytes.len() && !self.bytes[k..].starts_with(&closer) {
                k += 1;
            }
            k = (k + closer.len()).min(self.bytes.len());
            self.emit(TokKind::Literal, start, k, line);
            self.bump_lines(start, k);
            self.i = k;
        } else {
            // b"…": delegate to the escaped-string scanner.
            self.string(start);
        }
        true
    }

    /// Escaped string starting at `start` (whose quote is at `self.i`
    /// or `start + 1` for byte strings).
    fn string(&mut self, start: usize) {
        let line = self.line;
        let mut j = if self.bytes[start] == b'"' {
            start + 1
        } else {
            start + 2
        };
        while j < self.bytes.len() {
            match self.bytes[j] {
                b'\\' => j += 2,
                b'"' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        let j = j.min(self.bytes.len());
        self.emit(TokKind::Literal, start, j, line);
        self.bump_lines(start, j);
        self.i = j;
    }

    /// `'x'` / `'\n'` are char literals; `'a` (no closing quote after
    /// one scalar) is a lifetime.
    fn char_or_lifetime(&mut self) {
        let start = self.i;
        let line = self.line;
        if self.peek(1) == Some(b'\\') {
            // Skip the escaped byte first so `'\''` and `'\\'` close
            // on the right quote.
            let mut j = start + 3;
            while j < self.bytes.len() && self.bytes[j] != b'\'' {
                j += 1;
            }
            let j = (j + 1).min(self.bytes.len());
            self.emit(TokKind::Literal, start, j, line);
            self.i = j;
            return;
        }
        let rest = &self.src[start + 1..];
        if let Some(c) = rest.chars().next() {
            let after = start + 1 + c.len_utf8();
            if c != '\'' && self.bytes.get(after) == Some(&b'\'') {
                self.emit(TokKind::Literal, start, after + 1, line);
                self.bump_lines(start, after + 1);
                self.i = after + 1;
                return;
            }
        }
        // Lifetime: quote plus an identifier.
        let mut j = start + 1;
        while j < self.bytes.len() && is_ident_cont(self.bytes[j]) {
            j += 1;
        }
        if j == start + 1 {
            // Bare quote (malformed source): punt as punctuation.
            self.emit(TokKind::Punct, start, start + 1, line);
            self.i = start + 1;
            return;
        }
        self.emit(TokKind::Lifetime, start, j, line);
        self.i = j;
    }

    /// Numbers: decimal/hex/octal/binary with `_` separators, type
    /// suffixes, fractions (only when a digit follows the dot, so range
    /// expressions like `0..10` keep their dots as punctuation), and
    /// exponents.
    fn number(&mut self) {
        let start = self.i;
        let line = self.line;
        let mut j = start;
        while j < self.bytes.len() && (is_ident_cont(self.bytes[j])) {
            j += 1;
        }
        // Fraction: a dot followed by a digit (not `..`, not `.method()`).
        if self.bytes.get(j) == Some(&b'.')
            && self.bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit())
        {
            j += 1;
            while j < self.bytes.len() && is_ident_cont(self.bytes[j]) {
                j += 1;
            }
        }
        // Exponent sign: `1e-3` / `2.5E+7` leave `j` on the sign.
        let radix_prefix = self.bytes[start] == b'0'
            && matches!(self.bytes.get(start + 1), Some(b'x' | b'X' | b'b' | b'o'));
        if j < self.bytes.len()
            && (self.bytes[j] == b'+' || self.bytes[j] == b'-')
            && (self.bytes[j - 1] == b'e' || self.bytes[j - 1] == b'E')
            // hex literals never carry exponents (0xE - 1 is subtraction)
            && !radix_prefix
        {
            j += 1;
            while j < self.bytes.len() && is_ident_cont(self.bytes[j]) {
                j += 1;
            }
        }
        self.emit(TokKind::Literal, start, j, line);
        self.i = j;
    }

    fn ident(&mut self) {
        let start = self.i;
        let line = self.line;
        let mut j = start;
        while j < self.bytes.len() && is_ident_cont(self.bytes[j]) {
            j += 1;
        }
        self.emit(TokKind::Ident, start, j, line);
        self.i = j;
    }

    fn punct_or_delim(&mut self) {
        let start = self.i;
        let line = self.line;
        let kind = match self.bytes[start] {
            b'(' => TokKind::Open(Delim::Paren),
            b')' => TokKind::Close(Delim::Paren),
            b'[' => TokKind::Open(Delim::Bracket),
            b']' => TokKind::Close(Delim::Bracket),
            b'{' => TokKind::Open(Delim::Brace),
            b'}' => TokKind::Close(Delim::Brace),
            _ => TokKind::Punct,
        };
        // Multi-byte UTF-8 punctuation (e.g. in malformed sources) is
        // consumed whole so we never split a scalar.
        let len = self.src[start..].chars().next().map_or(1, char::len_utf8);
        self.emit(kind, start, start + len, line);
        self.i = start + len;
    }
}

/// Render a token stream as space-joined source. Re-lexing the result
/// yields the same stream (kinds and texts; line numbers collapse),
/// which is the property the round-trip tests assert.
pub fn render(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_doc_comments_are_skipped() {
        let toks = kinds(
            "a /* x /* nested */ y */ b // trailing .unwrap()\n/// doc with code: x.lock()\nc",
        );
        let idents: Vec<_> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn raw_and_byte_strings_are_single_literals() {
        let toks = kinds(r####"let s = r#"has "quotes" and std::fs"#; let b = br##"x"##;"####);
        let lits: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Literal)
            .collect();
        assert_eq!(lits.len(), 2, "{toks:?}");
        assert!(!toks.iter().any(|(_, t)| t == "fs"), "{toks:?}");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let lits: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Literal)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lits, vec!["'x'", "'\\''"]);
    }

    #[test]
    fn shift_right_is_two_tokens_and_numbers_keep_range_dots() {
        let toks = kinds("let v: Vec<Vec<u8>> = x >> 2; for i in 0..10 {}");
        let closes = toks.iter().filter(|(_, t)| t == ">").count();
        assert_eq!(closes, 4, "{toks:?}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Literal && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "10"));
    }

    #[test]
    fn float_and_suffix_literals() {
        let toks = kinds("let a = 1.5e-3f64; let b = 0x1F_u32; let c = x.0;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "1.5e-3f64"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t == "0x1F_u32"));
        // Tuple access stays ident-dot-literal.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Literal && t == "0"));
    }

    #[test]
    fn render_round_trips() {
        let src = r##"fn f<'a, T: Fn() -> R>(x: &'a [u8]) -> Vec<Vec<u8>> {
            let s = r#"raw "str" here"#; let c = 'y'; let n = 0..=10;
            x.load(Ordering::Acquire) >> 2
        }"##;
        let t1 = lex(src);
        let t2 = lex(&render(&t1));
        let strip = |v: &[Token]| -> Vec<(TokKind, String)> {
            v.iter().map(|t| (t.kind.clone(), t.text.clone())).collect()
        };
        assert_eq!(strip(&t1), strip(&t2));
    }
}
