//! **pin-discipline** — every `BufferPool::pin` must be matched by an
//! `unpin` on all exits of the enclosing scope, or flow into the
//! closure-scoped accessor pattern (`for_each_segment` pins inside an
//! IIFE closure, then unpins unconditionally after it — the one shape
//! where a `?` between pin and unpin is safe).
//!
//! Per non-test function, a linear scan classifies each `.pin(` /
//! `.unpin(` call as closure-scoped or not, then checks three
//! invariants: no `?`/`return` at function level while a non-closure
//! pin is outstanding; no outstanding pins at end of body; every
//! closure-scoped pin has an `unpin` later in the same function.
//! Branch-sensitive balance (unpin on one arm only) is beyond this
//! pass — DESIGN S46 records the bound.

use super::super::lexer::{Delim, TokKind};
use super::super::model::FileModel;
use super::{method_call, mk};
use crate::lint::Finding;

/// Check pin/unpin balance for every non-test function in one file.
pub fn check(m: &FileModel) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &m.fns {
        if f.is_test {
            continue;
        }
        check_fn(m, f.body, &mut out);
    }
    out
}

enum Event {
    Pin { line: u32, in_closure: bool },
    Unpin,
    Exit { line: u32, what: &'static str },
}

fn check_fn(m: &FileModel, body: (usize, usize), out: &mut Vec<Finding>) {
    let (start, end) = body;
    if start >= end {
        return;
    }
    let in_closure = closure_mask(m, start, end);

    let mut events = Vec::new();
    for i in start..end {
        let t = &m.toks[i];
        if let Some((name, _)) = method_call(m, i) {
            match name {
                "pin" => events.push(Event::Pin {
                    line: t.line,
                    in_closure: in_closure[i - start],
                }),
                "unpin" => events.push(Event::Unpin),
                _ => {}
            }
        }
        if !in_closure[i - start] {
            if t.is_punct('?') {
                let exit = Event::Exit {
                    line: t.line,
                    what: "`?`",
                };
                // `pool.pin(p)?` — if the pin fails nothing is pinned,
                // and if it succeeds control continues, so the call's
                // own `?` exits *before* its pin takes effect. Earlier
                // outstanding pins still leak across it.
                if own_pin_question(m, i) && matches!(events.last(), Some(Event::Pin { .. })) {
                    events.insert(events.len() - 1, exit);
                } else {
                    events.push(exit);
                }
            } else if t.is_ident("return") {
                events.push(Event::Exit {
                    line: t.line,
                    what: "`return`",
                });
            }
        }
    }
    if !events.iter().any(|e| matches!(e, Event::Pin { .. })) {
        return;
    }

    let mut balance = 0usize;
    let mut first_open: Option<u32> = None;
    let mut exit_reported = false;
    let mut pending_closure: Vec<u32> = Vec::new();
    for e in &events {
        match e {
            Event::Pin { line, in_closure } => {
                if *in_closure {
                    pending_closure.push(*line);
                } else {
                    balance += 1;
                    first_open.get_or_insert(*line);
                }
            }
            Event::Unpin => {
                balance = balance.saturating_sub(1);
                if balance == 0 {
                    first_open = None;
                }
                pending_closure.clear();
            }
            Event::Exit { line, what } => {
                if balance > 0 && !exit_reported {
                    exit_reported = true;
                    out.push(mk(
                        m,
                        "pin-discipline",
                        *line,
                        format!(
                            "pin held across early exit ({what}) — unpin on all paths \
                             or restructure into a closure-scoped accessor"
                        ),
                    ));
                }
            }
        }
    }
    if balance > 0 {
        if let Some(line) = first_open {
            out.push(mk(
                m,
                "pin-discipline",
                line,
                format!("{balance} pin(s) without a matching unpin before scope exit"),
            ));
        }
    }
    for line in pending_closure {
        out.push(mk(
            m,
            "pin-discipline",
            line,
            "closure-scoped pin with no unpin later in the enclosing function".to_string(),
        ));
    }
}

/// True when the `?` at token `i` immediately follows a `.pin(…)`
/// call's closing paren — the exit happens before that pin is held.
fn own_pin_question(m: &FileModel, i: usize) -> bool {
    if i == 0 || m.toks[i - 1].kind != TokKind::Close(Delim::Paren) {
        return false;
    }
    let open = m.brackets.matching(i - 1);
    open != usize::MAX
        && open >= 2
        && m.toks[open - 1].is_ident("pin")
        && m.toks[open - 2].is_punct('.')
}

/// Per-token flags over `[start, end)`: true inside a closure body.
/// A `|` starts a closure when the preceding token cannot end an
/// expression (so it can't be bitwise-or); the body is the brace group
/// (or single expression) after the parameter list and optional
/// `-> Type`.
fn closure_mask(m: &FileModel, start: usize, end: usize) -> Vec<bool> {
    let toks = &m.toks;
    let mut mask = vec![false; end - start];
    let mut i = start;
    while i < end {
        if toks[i].is_punct('|') && starts_closure(m, start, i) {
            if let Some((bs, be)) = closure_body(m, i, end) {
                for f in &mut mask[bs - start..be - start] {
                    *f = true;
                }
                i = be;
                continue;
            }
        }
        i += 1;
    }
    mask
}

fn starts_closure(m: &FileModel, start: usize, i: usize) -> bool {
    if i == start {
        return true;
    }
    let p = &m.toks[i - 1];
    match p.kind {
        TokKind::Open(_) => true,
        TokKind::Ident => matches!(p.text.as_str(), "move" | "return" | "else" | "in"),
        TokKind::Punct => matches!(p.text.as_str(), "," | "=" | ";" | "(" | "&" | ":"),
        _ => false,
    }
}

/// Given the opening `|` of a closure, return the token range of its
/// body.
fn closure_body(m: &FileModel, bar: usize, end: usize) -> Option<(usize, usize)> {
    let toks = &m.toks;
    // Find the closing `|` of the parameter list.
    let mut j = bar + 1;
    let close_bar = loop {
        if j >= end {
            return None;
        }
        match toks[j].kind {
            TokKind::Open(_) => {
                let c = m.brackets.matching(j);
                if c == usize::MAX || c >= end {
                    return None;
                }
                j = c + 1;
            }
            TokKind::Punct if toks[j].is_punct('|') => break j,
            TokKind::Punct if toks[j].is_punct(';') => return None,
            TokKind::Close(_) => return None,
            _ => j += 1,
        }
    };
    // Optional `-> Type` before a braced body.
    let mut k = close_bar + 1;
    if k + 1 < end && toks[k].is_punct('-') && toks[k + 1].is_punct('>') {
        k += 2;
        loop {
            if k >= end {
                return None;
            }
            match toks[k].kind {
                TokKind::Open(Delim::Brace) => break,
                TokKind::Open(_) => {
                    let c = m.brackets.matching(k);
                    if c == usize::MAX || c >= end {
                        return None;
                    }
                    k = c + 1;
                }
                TokKind::Punct if toks[k].is_punct(';') || toks[k].is_punct(',') => return None,
                TokKind::Close(_) => return None,
                _ => k += 1,
            }
        }
    }
    if k < end && toks[k].kind == TokKind::Open(Delim::Brace) {
        let c = m.brackets.matching(k);
        if c == usize::MAX || c >= end {
            return None;
        }
        return Some((k + 1, c));
    }
    // Expression body: runs to the next `,` / `;` / closing delimiter
    // at this nesting level.
    let mut e = k;
    while e < end {
        match toks[e].kind {
            TokKind::Open(_) => {
                let c = m.brackets.matching(e);
                if c == usize::MAX || c >= end {
                    break;
                }
                e = c + 1;
            }
            TokKind::Close(_) => break,
            TokKind::Punct if toks[e].is_punct(',') || toks[e].is_punct(';') => break,
            _ => e += 1,
        }
    }
    Some((k, e))
}
