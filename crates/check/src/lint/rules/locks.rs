//! **lock-order** — lockdep-style static cycle detection over the
//! `core::sync` `Mutex`/`RwLock` guards in `crates/core` +
//! `crates/serve`.
//!
//! Lock identities are *field names* of lock-typed struct fields and
//! statics (see [`FileModel::lock_fields`]). Per function, a scope walk
//! tracks which guards are held: `let`-bound guards live to the end of
//! their block (or an explicit `drop(g)`), un-bound acquisitions live
//! to the end of their statement. Acquiring `B` while holding `A`
//! records the edge `A → B`; a cycle in the global edge graph is a
//! potential deadlock, reported with the full witness path.
//!
//! Call-graph propagation is one level deep: a call to a function whose
//! body directly acquires locks contributes those acquisitions at the
//! call site, and if the callee's return type names a `…Guard` the
//! acquisition is held with the caller's binding (the
//! `lock_queue`/`read_engine` helper pattern). Method-name resolution
//! prefers same-file functions and falls back to a globally unique
//! name; the bare acquisition names `lock`/`read`/`write` resolve
//! same-file only — cross-file they are too ambiguous to chase.
//!
//! Known false-negative bounds (DESIGN S46): helpers that receive the
//! lock as a *parameter* (`fn lock<T>(m: &Mutex<T>)`) are invisible;
//! same-named fields on different structs share one lock identity
//! (self-edges are therefore skipped); closure bodies are analyzed in
//! their enclosing scope's context.

use std::collections::{BTreeMap, BTreeSet};

use super::super::lexer::{Delim, TokKind};
use super::super::model::FileModel;
use super::method_call;
use crate::lint::Finding;

/// Keywords that look like `ident (` but aren't calls.
const NON_CALL_KEYWORDS: &[&str] = &["if", "while", "match", "for", "loop", "return", "in"];

#[derive(Debug)]
struct FnSummary {
    file: usize,
    name: String,
    body: (usize, usize),
    /// Direct lock acquisitions in the body, in token order.
    acquires: Vec<String>,
    /// Return type names a `…Guard` — callers keep holding what this
    /// function acquired.
    returns_guard: bool,
}

#[derive(Debug, Clone)]
struct Edge {
    path: String,
    line: u32,
    via: Option<String>,
}

#[derive(Clone)]
struct Held {
    lock: String,
    var: Option<String>,
    temp: bool,
}

/// Build the whole-workspace lock-acquisition graph and report every
/// strongly-connected component as a `lock-order` cycle with a witness.
pub fn check(models: &[FileModel]) -> Vec<Finding> {
    let in_scope: Vec<bool> = models
        .iter()
        .map(|m| m.path.starts_with("crates/core/src") || m.path.starts_with("crates/serve/src"))
        .collect();

    let mut lock_names: BTreeSet<String> = BTreeSet::new();
    for (fi, m) in models.iter().enumerate() {
        if in_scope[fi] {
            lock_names.extend(m.lock_fields.iter().map(|l| l.field.clone()));
        }
    }
    if lock_names.is_empty() {
        return Vec::new();
    }

    // Pass 1: per-function direct-acquisition summaries (non-test only).
    let mut fns: Vec<FnSummary> = Vec::new();
    for (fi, m) in models.iter().enumerate() {
        if !in_scope[fi] {
            continue;
        }
        for f in &m.fns {
            if f.is_test {
                continue;
            }
            let mut acquires = Vec::new();
            for i in f.body.0..f.body.1 {
                if let Some(lock) = direct_acq(m, i, &lock_names) {
                    acquires.push(lock.to_string());
                }
            }
            let returns_guard = m.toks[f.ret.0..f.ret.1.min(m.toks.len())]
                .iter()
                .any(|t| t.kind == TokKind::Ident && t.text.contains("Guard"));
            fns.push(FnSummary {
                file: fi,
                name: f.name.clone(),
                body: f.body,
                acquires,
                returns_guard,
            });
        }
    }

    // Pass 2: scope walk per function, recording edges.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for k in 0..fns.len() {
        let s = &fns[k];
        let m = &models[s.file];
        let mut w = Walker {
            m,
            fi: s.file,
            fns: &fns,
            lock_names: &lock_names,
            edges: &mut edges,
        };
        let mut held = Vec::new();
        w.walk(s.body.0, s.body.1, &mut held);
    }

    // Pass 3: cycles in the edge graph → one finding per SCC.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().insert(to);
        adj.entry(to).or_default();
    }
    let mut out = Vec::new();
    for scc in tarjan(&adj) {
        if scc.len() < 2 {
            continue;
        }
        let start = scc[0]; // lexicographically smallest: scc is sorted
        let cycle = witness(&adj, &scc, start);
        let mut detail = format!("lock-order cycle: {}", cycle.join(" -> "));
        for w in cycle.windows(2) {
            let e = &edges[&(w[0].to_string(), w[1].to_string())];
            let via = e
                .via
                .as_ref()
                .map(|v| format!(" (via {v})"))
                .unwrap_or_default();
            detail.push_str(&format!(
                "\n    {} -> {} at {}:{}{}",
                w[0], w[1], e.path, e.line, via
            ));
        }
        let first = &edges[&(cycle[0].to_string(), cycle[1].to_string())];
        let excerpt = models
            .iter()
            .find(|m| m.path == first.path)
            .map(|m| m.excerpt(first.line))
            .unwrap_or_default();
        out.push(Finding {
            rule: "lock-order",
            path: first.path.clone(),
            line: first.line as usize,
            excerpt,
            detail,
        });
    }
    out
}

/// `.lock()` / `.read()` / `.write()` with empty args whose receiver
/// ident is a known lock field/static: a direct acquisition.
fn direct_acq<'m>(m: &'m FileModel, i: usize, lock_names: &BTreeSet<String>) -> Option<&'m str> {
    let (name, open) = method_call(m, i)?;
    if !matches!(name, "lock" | "read" | "write") || m.brackets.matching(open) != open + 1 {
        return None;
    }
    if i == 0 {
        return None;
    }
    let recv = &m.toks[i - 1];
    (recv.kind == TokKind::Ident && lock_names.contains(&recv.text)).then_some(recv.text.as_str())
}

struct Walker<'a> {
    m: &'a FileModel,
    fi: usize,
    fns: &'a [FnSummary],
    lock_names: &'a BTreeSet<String>,
    edges: &'a mut BTreeMap<(String, String), Edge>,
}

impl Walker<'_> {
    fn walk(&mut self, start: usize, end: usize, held: &mut Vec<Held>) {
        let toks = &self.m.toks;
        let mut i = start;
        let mut paren_depth = 0usize;
        let mut stmt_is_let = false;
        let mut stmt_var: Option<String> = None;
        let mut awaiting_let_name = false;
        while i < end {
            let t = &toks[i];
            match t.kind {
                TokKind::Open(Delim::Brace) => {
                    let close = self.m.brackets.matching(i);
                    if close == usize::MAX || close > end {
                        return;
                    }
                    // Block scope: bindings made inside die at `}`.
                    let mut inner = held.clone();
                    self.walk(i + 1, close, &mut inner);
                    i = close + 1;
                    continue;
                }
                TokKind::Open(_) => {
                    paren_depth += 1;
                    i += 1;
                    continue;
                }
                TokKind::Close(_) => {
                    paren_depth = paren_depth.saturating_sub(1);
                    i += 1;
                    continue;
                }
                _ => {}
            }
            if t.is_ident("let") && paren_depth == 0 {
                stmt_is_let = true;
                stmt_var = None;
                awaiting_let_name = true;
                i += 1;
                continue;
            }
            if awaiting_let_name && t.kind == TokKind::Ident && !t.is_ident("mut") {
                stmt_var = Some(t.text.clone());
                awaiting_let_name = false;
            }
            // Nested fn item: its body is summarized separately; do not
            // leak this scope's held set into it.
            if t.is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                i = self.skip_item(i + 2, end);
                continue;
            }
            // drop(g): explicit early release of a bound guard.
            if t.is_ident("drop") {
                if let Some(open) = toks
                    .get(i + 1)
                    .and_then(|t| (t.kind == TokKind::Open(Delim::Paren)).then_some(i + 1))
                {
                    let close = self.m.brackets.matching(open);
                    if close == open + 2 && toks[open + 1].kind == TokKind::Ident {
                        let v = &toks[open + 1].text;
                        held.retain(|h| h.var.as_deref() != Some(v.as_str()));
                        i = close + 1;
                        continue;
                    }
                }
            }
            // Method calls: direct acquisitions, then propagation.
            if let Some((name, open)) = method_call(self.m, i) {
                if let Some(lock) = direct_acq(self.m, i, self.lock_names) {
                    let lock = lock.to_string();
                    self.acquire(&lock, t.line, None, held, stmt_is_let, &stmt_var);
                } else if let Some(s) = self.resolve(name, true) {
                    self.propagate(s, t.line, held, stmt_is_let, &stmt_var);
                }
                i = open;
                continue;
            }
            // Bare / path-qualified calls: `lock_queue(shard)`.
            if t.kind == TokKind::Ident
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Open(Delim::Paren))
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                && !(i > start && toks[i - 1].is_punct('.'))
            {
                let name = t.text.clone();
                if let Some(s) = self.resolve(&name, false) {
                    self.propagate(s, t.line, held, stmt_is_let, &stmt_var);
                }
            }
            if t.is_punct(';') && paren_depth == 0 {
                held.retain(|h| !h.temp);
                stmt_is_let = false;
                stmt_var = None;
                awaiting_let_name = false;
            }
            i += 1;
        }
    }

    /// Skip a nested item from just past `fn name` to past its body.
    fn skip_item(&self, mut j: usize, end: usize) -> usize {
        while j < end {
            match self.m.toks[j].kind {
                TokKind::Open(Delim::Brace) => {
                    let close = self.m.brackets.matching(j);
                    return if close == usize::MAX {
                        j + 1
                    } else {
                        close + 1
                    };
                }
                TokKind::Open(_) => {
                    let close = self.m.brackets.matching(j);
                    if close == usize::MAX {
                        return j + 1;
                    }
                    j = close + 1;
                }
                _ => {
                    if self.m.toks[j].is_punct(';') {
                        return j + 1;
                    }
                    j += 1;
                }
            }
        }
        end
    }

    fn acquire(
        &mut self,
        lock: &str,
        line: u32,
        via: Option<&str>,
        held: &mut Vec<Held>,
        stmt_is_let: bool,
        stmt_var: &Option<String>,
    ) {
        for h in held.iter() {
            if h.lock != lock {
                self.edges
                    .entry((h.lock.clone(), lock.to_string()))
                    .or_insert_with(|| Edge {
                        path: self.m.path.clone(),
                        line,
                        via: via.map(str::to_string),
                    });
            }
        }
        held.push(Held {
            lock: lock.to_string(),
            var: if stmt_is_let { stmt_var.clone() } else { None },
            temp: !stmt_is_let,
        });
    }

    fn propagate(
        &mut self,
        s: usize,
        line: u32,
        held: &mut Vec<Held>,
        stmt_is_let: bool,
        stmt_var: &Option<String>,
    ) {
        let (acquires, returns_guard, name) = {
            let s = &self.fns[s];
            (s.acquires.clone(), s.returns_guard, s.name.clone())
        };
        for lock in &acquires {
            for h in held.iter() {
                if &h.lock != lock {
                    self.edges
                        .entry((h.lock.clone(), lock.clone()))
                        .or_insert_with(|| Edge {
                            path: self.m.path.clone(),
                            line,
                            via: Some(name.clone()),
                        });
                }
            }
        }
        if returns_guard {
            for lock in &acquires {
                held.push(Held {
                    lock: lock.clone(),
                    var: if stmt_is_let { stmt_var.clone() } else { None },
                    temp: !stmt_is_let,
                });
            }
        }
    }

    /// Resolve a callee name: same-file unique match first; globally
    /// unique as fallback — except for the bare acquisition names
    /// (`same_file_only`), which never resolve cross-file.
    fn resolve(&self, name: &str, method: bool) -> Option<usize> {
        let same_file_only = method && matches!(name, "lock" | "read" | "write" | "add" | "set");
        let in_file: Vec<usize> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, s)| s.file == self.fi && s.name == name)
            .map(|(k, _)| k)
            .collect();
        if in_file.len() == 1 {
            return Some(in_file[0]);
        }
        if !in_file.is_empty() || same_file_only {
            return None;
        }
        let global: Vec<usize> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, s)| s.name == name)
            .map(|(k, _)| k)
            .collect();
        if global.len() == 1 {
            Some(global[0])
        } else {
            None
        }
    }
}

/// Tarjan SCC over the lock graph; returns each component sorted, the
/// component list ordered by smallest member.
fn tarjan<'g>(adj: &BTreeMap<&'g str, BTreeSet<&'g str>>) -> Vec<Vec<&'g str>> {
    struct State<'g> {
        index: BTreeMap<&'g str, usize>,
        low: BTreeMap<&'g str, usize>,
        on_stack: BTreeSet<&'g str>,
        stack: Vec<&'g str>,
        next: usize,
        out: Vec<Vec<&'g str>>,
    }
    fn strong<'g>(v: &'g str, adj: &BTreeMap<&'g str, BTreeSet<&'g str>>, st: &mut State<'g>) {
        st.index.insert(v, st.next);
        st.low.insert(v, st.next);
        st.next += 1;
        st.stack.push(v);
        st.on_stack.insert(v);
        if let Some(succs) = adj.get(v) {
            for &w in succs {
                if !st.index.contains_key(w) {
                    strong(w, adj, st);
                    let lw = st.low[w];
                    let lv = st.low.get_mut(v).expect("visited");
                    *lv = (*lv).min(lw);
                } else if st.on_stack.contains(w) {
                    let iw = st.index[w];
                    let lv = st.low.get_mut(v).expect("visited");
                    *lv = (*lv).min(iw);
                }
            }
        }
        if st.low[v] == st.index[v] {
            let mut comp = Vec::new();
            while let Some(w) = st.stack.pop() {
                st.on_stack.remove(w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            st.out.push(comp);
        }
    }
    let mut st = State {
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for &v in adj.keys() {
        if !st.index.contains_key(v) {
            strong(v, adj, &mut st);
        }
    }
    st.out.sort_by(|a, b| a[0].cmp(b[0]));
    st.out
}

/// Shortest cycle through `start` within one SCC, as
/// `[start, …, start]` (BFS over in-component edges).
fn witness<'g>(
    adj: &BTreeMap<&'g str, BTreeSet<&'g str>>,
    scc: &[&'g str],
    start: &'g str,
) -> Vec<&'g str> {
    let in_scc: BTreeSet<&str> = scc.iter().copied().collect();
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<&str> = std::collections::VecDeque::new();
    for &n in adj.get(start).into_iter().flatten() {
        if in_scc.contains(n) && !prev.contains_key(n) {
            prev.insert(n, start);
            queue.push_back(n);
        }
    }
    while let Some(v) = queue.pop_front() {
        if v == start {
            break;
        }
        for &n in adj.get(v).into_iter().flatten() {
            if in_scc.contains(n) && !prev.contains_key(n) {
                prev.insert(n, v);
                queue.push_back(n);
            }
        }
    }
    // Reconstruct start → … → start.
    let mut path = vec![start];
    let mut cur = start;
    loop {
        let p = prev.get(cur).copied().expect("cycle exists within SCC");
        path.push(p);
        if p == start {
            break;
        }
        cur = p;
    }
    path.reverse();
    path
}
