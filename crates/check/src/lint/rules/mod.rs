//! The rule set. Per-file rules (`legacy`, `seam`, `pins`) take one
//! [`FileModel`]; whole-workspace rules (`results`, `ordering`,
//! `locks`) take all of them and correlate across files.

use super::model::FileModel;
use super::Finding;
use crate::lint::lexer::{Delim, TokKind};

pub mod legacy;
pub mod locks;
pub mod ordering;
pub mod pins;
pub mod results;
pub mod seam;

/// Every rule id the analyzer can emit, for `--rule` validation.
pub const ALL_RULES: &[&str] = &[
    "no-unwrap",
    "no-bare-std-sync",
    "named-ordering",
    "seam-bypass",
    "lock-order",
    "pin-discipline",
    "result-discard",
    "ordering-pairs",
];

/// Run every rule over the models; findings sorted by (path, line,
/// rule) for deterministic output.
pub fn analyze(models: &[FileModel]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in models {
        out.extend(legacy::check(m));
        out.extend(seam::check(m));
        out.extend(pins::check(m));
    }
    out.extend(results::check(models));
    out.extend(ordering::check(models));
    out.extend(locks::check(models));
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out
}

/// Build one finding anchored at `line` of `m`.
pub(crate) fn mk(m: &FileModel, rule: &'static str, line: u32, detail: String) -> Finding {
    Finding {
        rule,
        path: m.path.clone(),
        line: line as usize,
        excerpt: m.excerpt(line),
        detail,
    }
}

/// `.name(` method-call shape at dot index `i`: returns the method name
/// and the index of its opening paren.
pub(crate) fn method_call(m: &FileModel, i: usize) -> Option<(&str, usize)> {
    if !m.toks[i].is_punct('.') {
        return None;
    }
    let name = m.toks.get(i + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    let open = i + 2;
    (m.toks.get(open)?.kind == TokKind::Open(Delim::Paren)).then_some((name.text.as_str(), open))
}

/// True when the call's argument tokens `[open+1, close)` name an
/// explicit `Ordering::X` (or anything path-qualified as `X` from the
/// given set) — i.e. contain one of `idents`.
pub(crate) fn args_contain(m: &FileModel, open: usize, idents: &[&str]) -> bool {
    let close = m.brackets.matching(open);
    if close == usize::MAX {
        return false;
    }
    m.toks[open + 1..close]
        .iter()
        .any(|t| t.kind == TokKind::Ident && idents.contains(&t.text.as_str()))
}
