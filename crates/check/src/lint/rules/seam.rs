//! **seam-bypass** — every durable byte must stay fault-injectable:
//! `std::fs` / `std::net` may only be named by the `Vfs` seam itself,
//! the socket-owning serving layer, and explicitly whitelisted
//! operator/harness modules. Anything else is a path where `FaultVfs`
//! can never inject faults.

use super::super::model::FileModel;
use super::mk;
use crate::lint::Finding;

/// Modules allowed to touch `std::fs` / `std::net` directly, with the
/// rationale the finding message points at.
const ALLOWED: &[(&str, &str)] = &[
    ("crates/core/src/vfs.rs", "the seam itself"),
    ("crates/serve/src", "owns the TCP sockets; no durable bytes"),
    ("crates/cli/src", "operator tooling outside the engine"),
    (
        "crates/bench/src",
        "bench harnesses write reports, not data",
    ),
    (
        "crates/check/src",
        "test harness reads sources / writes artifacts",
    ),
];

/// Flag `std::fs` / `std::net` references outside the whitelisted
/// modules — everything else must go through the `Vfs` seam.
pub fn check(m: &FileModel) -> Vec<Finding> {
    if ALLOWED.iter().any(|(p, _)| m.path.starts_with(p)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..m.toks.len() {
        if m.in_test[i] {
            continue;
        }
        let t = &m.toks[i];
        if t.is_ident("std")
            && m.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && m.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && m.toks
                .get(i + 3)
                .is_some_and(|t| t.is_ident("fs") || t.is_ident("net"))
        {
            let what = &m.toks[i + 3].text;
            out.push(mk(
                m,
                "seam-bypass",
                t.line,
                format!(
                    "`std::{what}` outside the Vfs seam — route through `core::vfs` \
                     so FaultVfs can inject faults here"
                ),
            ));
        }
    }
    out
}
