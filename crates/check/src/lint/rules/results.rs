//! **result-discard** — a `Result` carrying [`IoError`] or
//! [`TryUpdateError`] that is dropped via `let _ = …;` or a bare
//! expression statement is an error: those types encode durability
//! loss and backpressure, and ignoring them silently un-acks writes.
//!
//! Resolution is by function *name*, cross-file: a name is "risky"
//! only when **every** workspace function with that name declares a
//! return type mentioning `IoError` / `TryUpdateError` — names with a
//! clean overload anywhere (e.g. `add` on `AbelianGroup` vs
//! `DurableCube`) are dropped entirely rather than risk false
//! positives. That makes the rule under-approximate by construction
//! (DESIGN S46).
//!
//! [`IoError`]: ../../../../core/wal/enum.IoError.html
//! [`TryUpdateError`]: ../../../../core/shard/enum.TryUpdateError.html

use std::collections::{BTreeMap, BTreeSet};

use super::super::lexer::{Delim, TokKind};
use super::super::model::FileModel;
use super::mk;
use crate::lint::Finding;

const RISKY_TYPES: &[&str] = &["IoError", "TryUpdateError"];

/// Flag discarded `Result`s from functions that always return a risky
/// error type (`IoError` / `TryUpdateError`).
pub fn check(models: &[FileModel]) -> Vec<Finding> {
    // Pass 1: which fn names *always* return a risky Result.
    let mut risky: BTreeMap<&str, bool> = BTreeMap::new();
    for m in models {
        for f in &m.fns {
            let mentions = m.toks[f.ret.0..f.ret.1.min(m.toks.len())]
                .iter()
                .any(|t| t.kind == TokKind::Ident && RISKY_TYPES.contains(&t.text.as_str()));
            risky
                .entry(f.name.as_str())
                .and_modify(|all| *all &= mentions)
                .or_insert(mentions);
        }
    }
    let risky: BTreeSet<&str> = risky
        .into_iter()
        .filter_map(|(name, all)| all.then_some(name))
        .collect();
    if risky.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();
    for m in models {
        check_file(m, &risky, &mut out);
    }
    out
}

fn check_file(m: &FileModel, risky: &BTreeSet<&str>, out: &mut Vec<Finding>) {
    // A discard is a call whose `)` is directly followed by `;` and
    // whose statement context is expression position or `let _ =`.
    for c in 0..m.toks.len() {
        if m.toks[c].kind != TokKind::Close(Delim::Paren)
            || !m.toks.get(c + 1).is_some_and(|t| t.is_punct(';'))
            || m.in_test[c]
        {
            continue;
        }
        let open = m.brackets.matching(c);
        if open == usize::MAX || open == 0 {
            continue;
        }
        let name_tok = &m.toks[open - 1];
        if name_tok.kind != TokKind::Ident || !risky.contains(name_tok.text.as_str()) {
            continue;
        }
        // Walk back over the receiver/path chain to the expression head.
        let Some(before) = chain_start(m, open - 1) else {
            continue;
        };
        let discarded = match before {
            None => true, // call starts the surrounding block
            Some(p) => {
                let t = &m.toks[p];
                // Expression-statement position…
                t.is_punct(';')
                    || t.kind == TokKind::Open(Delim::Brace)
                    || t.kind == TokKind::Close(Delim::Brace)
                    // …or `let _ = call(…);`
                    || (t.is_punct('=')
                        && p >= 2
                        && m.toks[p - 1].is_ident("_")
                        && m.toks[p - 2].is_ident("let"))
            }
        };
        if discarded {
            out.push(mk(
                m,
                "result-discard",
                name_tok.line,
                format!(
                    "discarded Result from `{}` (carries {}) — handle, propagate with \
                     `?`, or match on the error",
                    name_tok.text,
                    RISKY_TYPES.join("/")
                ),
            ));
        }
    }
}

/// From the callee name token, walk left across `recv.method`, path
/// segments, and bracketed receivers to the head of the expression;
/// returns the index of the token *before* the head (`None` = head is
/// the first token).
fn chain_start(m: &FileModel, name_idx: usize) -> Option<Option<usize>> {
    let mut head = name_idx;
    loop {
        if head == 0 {
            return Some(None);
        }
        let prev = &m.toks[head - 1];
        if prev.is_punct('.') {
            if head < 2 {
                return None;
            }
            let recv = head - 2;
            match m.toks[recv].kind {
                TokKind::Ident | TokKind::Literal => head = recv,
                TokKind::Close(_) => {
                    let open = m.brackets.matching(recv);
                    if open == usize::MAX {
                        return None;
                    }
                    // `foo(…).bar(…)` — keep walking from `foo`.
                    if open == 0 {
                        return Some(None);
                    }
                    if m.toks[open - 1].kind == TokKind::Ident {
                        head = open - 1;
                    } else {
                        // `(expr).call()` — treat the group as the head.
                        return Some(Some(open - 1));
                    }
                }
                _ => return None,
            }
        } else if prev.is_punct(':')
            && head >= 3
            && m.toks[head - 2].is_punct(':')
            && m.toks[head - 3].kind == TokKind::Ident
        {
            head -= 3;
        } else {
            return Some(Some(head - 1));
        }
    }
}
