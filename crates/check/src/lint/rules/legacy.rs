//! The three v1 rules (`no-unwrap`, `no-bare-std-sync`,
//! `named-ordering`), re-expressed over the token stream. Scoping and
//! excerpt shape match v1 exactly so existing `lint-allow.txt` needles
//! keep matching.

use super::super::model::FileModel;
use super::{method_call, mk};
use crate::lint::Finding;

/// Atomic method names whose calls must spell out an `Ordering::…`.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "swap",
];

/// Run the three v1 rules over one file.
pub fn check(m: &FileModel) -> Vec<Finding> {
    // The serving layer parses untrusted network bytes: it carries the
    // same no-panic and facade-only-sync obligations as core. The
    // blocked base store is on every hot path of the arena tree.
    let in_core = m.path.starts_with("crates/core/src")
        || m.path.starts_with("crates/serve/src")
        || m.path == "crates/btree/src/blocked.rs";
    let is_facade = m.path == "crates/core/src/sync.rs";
    // Model-checker scenarios are assertion code: panicking is their
    // failure-reporting channel, same as #[cfg(test)] regions.
    let is_scenarios = m.path == "crates/core/src/models.rs";
    // Facade internals in crates/model forward an Ordering parameter
    // by design.
    let in_model = m.path.starts_with("crates/model/");

    let mut out = Vec::new();
    for i in 0..m.toks.len() {
        if m.in_test[i] {
            continue;
        }
        let t = &m.toks[i];
        // no-unwrap: core library code must not panic via unwrap/expect.
        if in_core && !is_scenarios {
            if let Some((name, open)) = method_call(m, i) {
                let empty = m.brackets.matching(open) == open + 1;
                if (name == "unwrap" && empty) || name == "expect" {
                    out.push(mk(m, "no-unwrap", t.line, String::new()));
                }
            }
        }
        // no-bare-std-sync: inside core/serve only sync.rs (the facade
        // itself) may name std::sync.
        if in_core
            && !is_facade
            && t.is_ident("std")
            && m.toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && m.toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && m.toks.get(i + 3).is_some_and(|t| t.is_ident("sync"))
        {
            out.push(mk(m, "no-bare-std-sync", t.line, String::new()));
        }
        // named-ordering: atomic calls must name an Ordering::… in
        // their argument list.
        if !in_model {
            if let Some((name, open)) = method_call(m, i) {
                if ATOMIC_METHODS.contains(&name) && !has_ordering_path(m, open) {
                    out.push(mk(m, "named-ordering", t.line, String::new()));
                }
            }
        }
    }
    out
}

/// Arguments contain `Ordering` followed by `::` (the v1 check was the
/// substring `Ordering::`).
fn has_ordering_path(m: &FileModel, open: usize) -> bool {
    let close = m.brackets.matching(open);
    if close == usize::MAX {
        return false;
    }
    (open + 1..close).any(|j| {
        m.toks[j].is_ident("Ordering")
            && m.toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && m.toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
    })
}
