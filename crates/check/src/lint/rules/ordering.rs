//! **ordering-pairs** — a `Release` store that no `Acquire` (or
//! `AcqRel`/`SeqCst`) load of the same field ever observes is either
//! dead synchronization or, worse, a reader on the other side using
//! `Relaxed` and silently missing the happens-before edge. Every
//! `Ordering::Release` publication must have a paired acquire-side
//! load of the same atomic field somewhere in the same crate.
//!
//! The "field" is the receiver identifier of the call (`self.durable
//! .store(…)` → `durable`); call sites whose receiver is a computed
//! expression are skipped, and `crates/model` is exempt (the facade
//! forwards caller-chosen orderings by design) — DESIGN S46 records
//! both bounds.

use std::collections::BTreeSet;

use super::super::lexer::TokKind;
use super::super::model::FileModel;
use super::{args_contain, method_call, mk};
use crate::lint::Finding;

/// Methods that publish with the ordering of their argument list.
const STORE_METHODS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Methods whose acquire-side ordering satisfies a pairing.
const LOAD_METHODS: &[&str] = &[
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ACQUIRE_SIDE: &[&str] = &["Acquire", "AcqRel", "SeqCst"];

/// Flag every `Release` store whose (crate, field) has no acquire-side
/// load anywhere in the same crate.
pub fn check(models: &[FileModel]) -> Vec<Finding> {
    // (crate, field) pairs with an acquire-side load anywhere
    // (including tests: a test reader still proves the pairing exists).
    let mut acquires: BTreeSet<(String, String)> = BTreeSet::new();
    for m in models {
        if m.path.starts_with("crates/model/") {
            continue;
        }
        for i in 0..m.toks.len() {
            let Some((name, open)) = method_call(m, i) else {
                continue;
            };
            if LOAD_METHODS.contains(&name) && args_contain(m, open, ACQUIRE_SIDE) {
                if let Some(field) = receiver_field(m, i) {
                    acquires.insert((m.crate_name.clone(), field.to_string()));
                }
            }
        }
    }

    let mut out = Vec::new();
    for m in models {
        if m.path.starts_with("crates/model/") {
            continue;
        }
        for i in 0..m.toks.len() {
            if m.in_test[i] {
                continue;
            }
            let Some((name, open)) = method_call(m, i) else {
                continue;
            };
            if !STORE_METHODS.contains(&name) || !args_contain(m, open, &["Release"]) {
                continue;
            }
            let Some(field) = receiver_field(m, i) else {
                continue;
            };
            if !acquires.contains(&(m.crate_name.clone(), field.to_string())) {
                out.push(mk(
                    m,
                    "ordering-pairs",
                    m.toks[i].line,
                    format!(
                        "`Release` store to `{field}` with no Acquire/AcqRel load of \
                         the same field in crate `{}` — the publication is never \
                         observed with acquire semantics",
                        m.crate_name
                    ),
                ));
            }
        }
    }
    out
}

/// The receiver identifier of a method call at dot index `i`
/// (`self.appended.store(…)` → `appended`); `None` when the receiver
/// is a computed expression.
fn receiver_field(m: &FileModel, i: usize) -> Option<&str> {
    if i == 0 {
        return None;
    }
    let recv = &m.toks[i - 1];
    (recv.kind == TokKind::Ident).then_some(recv.text.as_str())
}
