//! Per-file semantic model: functions (with their enclosing impl/trait
//! owner, signature, return type, and body span), lock-carrying struct
//! fields and statics, and `#[cfg(test)]` / `#[test]` gating — all
//! derived structurally from the token stream, not from line-oriented
//! text matching.
//!
//! The model is deliberately shallow: it resolves what a zero-dep
//! analyzer can resolve reliably (names, field declarations, token
//! spans) and leaves type inference alone. The rules document the
//! false-negative bounds this implies (DESIGN S46).

use super::lexer::{lex, Delim, TokKind, Token};
use super::parse::{parse, BracketMap};

/// One `fn` item (free function, inherent/trait method, or default
/// trait method) with its token spans.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` self type or `trait` name, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the return type (after `->`, before the body or
    /// any `where` clause); empty range when the function returns unit.
    pub ret: (usize, usize),
    /// Token range strictly inside the body braces.
    pub body: (usize, usize),
    /// True when gated by `#[test]` / `#[cfg(test)]` (directly or via
    /// an enclosing item).
    pub is_test: bool,
}

/// A struct field or static whose type names `Mutex` or `RwLock`
/// (directly or through a same-file `type` alias).
#[derive(Debug)]
pub struct LockField {
    /// Declaring struct's name, or `"static"` for statics.
    pub owner: String,
    /// Field (or static) name.
    pub field: String,
    /// `"Mutex"` or `"RwLock"`.
    pub kind: &'static str,
    /// Declaration line.
    pub line: u32,
}

/// Everything the rules need to know about one source file.
pub struct FileModel {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// The `crates/<name>` segment of the path (empty if not under
    /// `crates/`).
    pub crate_name: String,
    /// Raw source lines, for finding excerpts.
    pub raw_lines: Vec<String>,
    /// The flat token stream.
    pub toks: Vec<Token>,
    /// Bracket-matching table over `toks`.
    pub brackets: BracketMap,
    /// Per-token test-gating flags.
    pub in_test: Vec<bool>,
    /// Every function item found.
    pub fns: Vec<FnItem>,
    /// Every lock-typed field or static found.
    pub lock_fields: Vec<LockField>,
}

impl FileModel {
    /// Build the model for one file. Fails only when the token stream
    /// has mismatched delimiters (i.e. the lexer mis-tokenized — real
    /// sources always parse).
    pub fn build(path: &str, raw: &str) -> Result<Self, String> {
        let toks = lex(raw);
        parse(&toks).map_err(|e| format!("{path}: {e}"))?;
        let brackets = BracketMap::build(&toks);
        let mut b = Builder {
            toks: &toks,
            brackets: &brackets,
            in_test: vec![false; toks.len()],
            fns: Vec::new(),
            raw_fields: Vec::new(),
            aliases: Vec::new(),
        };
        b.walk(0, toks.len(), None, false);
        let Builder {
            in_test,
            fns,
            raw_fields,
            aliases,
            ..
        } = b;
        let lock_fields = resolve_lock_fields(raw_fields, &aliases);
        Ok(Self {
            path: path.to_string(),
            crate_name: crate_of(path),
            raw_lines: raw.lines().map(str::to_string).collect(),
            toks,
            brackets,
            in_test,
            fns,
            lock_fields,
        })
    }

    /// The trimmed raw source line at 1-based `line`.
    pub fn excerpt(&self, line: u32) -> String {
        self.raw_lines
            .get(line as usize - 1)
            .map_or("", |l| l.trim())
            .to_string()
    }
}

/// `crates/<name>/…` → `<name>`.
fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => String::new(),
    }
}

struct RawField {
    owner: String,
    field: String,
    type_idents: Vec<String>,
    line: u32,
}

struct Builder<'a> {
    toks: &'a [Token],
    brackets: &'a BracketMap,
    in_test: Vec<bool>,
    fns: Vec<FnItem>,
    raw_fields: Vec<RawField>,
    /// `type X = …;` aliases: (name, idents of the aliased type).
    aliases: Vec<(String, Vec<String>)>,
}

impl<'a> Builder<'a> {
    /// Walk `[start, end)` at item level under `owner` / `in_test`
    /// context. Expression groups are skipped wholesale; item keywords
    /// (`mod`, `impl`, `trait`, `fn`, `struct`, `static`, `type`)
    /// dispatch to structured handling.
    fn walk(&mut self, start: usize, end: usize, owner: Option<&str>, test: bool) {
        let mut i = start;
        let mut pending_test = false;
        while i < end {
            let t = &self.toks[i];
            // Attributes: `#[…]` and inner `#![…]`.
            if t.is_punct('#') {
                let open = if self.at_kind(i + 1, TokKind::Open(Delim::Bracket)) {
                    i + 1
                } else if self.toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && self.at_kind(i + 2, TokKind::Open(Delim::Bracket))
                {
                    i + 2
                } else {
                    i += 1;
                    continue;
                };
                let close = self.brackets.matching(open);
                if close == usize::MAX {
                    i = open + 1;
                    continue;
                }
                pending_test |= self.toks[open + 1..close]
                    .iter()
                    .any(|t| t.is_ident("test"));
                i = close + 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "mod" => {
                        if let Some((body_open, after)) = self.item_body(i + 1) {
                            let gated = test || pending_test;
                            self.mark_test(i, after, gated);
                            let close = self.brackets.matching(body_open);
                            self.walk(body_open + 1, close, owner, gated);
                            i = after;
                            pending_test = false;
                            continue;
                        }
                    }
                    "impl" | "trait" => {
                        if let Some((body_open, after)) = self.item_body(i + 1) {
                            let gated = test || pending_test;
                            self.mark_test(i, after, gated);
                            let self_ty = if t.text == "trait" {
                                self.toks[i + 1..body_open]
                                    .iter()
                                    .find(|t| t.kind == TokKind::Ident)
                                    .map(|t| t.text.clone())
                            } else {
                                impl_self_type(&self.toks[i + 1..body_open])
                            };
                            let close = self.brackets.matching(body_open);
                            self.walk(body_open + 1, close, self_ty.as_deref(), gated);
                            i = after;
                            pending_test = false;
                            continue;
                        }
                    }
                    "fn" => {
                        if let Some(next) = self.toks.get(i + 1) {
                            if next.kind == TokKind::Ident {
                                i = self.fn_item(i, owner, test || pending_test);
                                pending_test = false;
                                continue;
                            }
                        }
                    }
                    "struct" => {
                        if let Some(after) = self.struct_item(i, test || pending_test) {
                            i = after;
                            pending_test = false;
                            continue;
                        }
                    }
                    "static" | "const" => {
                        i = self.static_item(i, t.text == "static");
                        pending_test = false;
                        continue;
                    }
                    "type" => {
                        i = self.type_alias(i);
                        pending_test = false;
                        continue;
                    }
                    _ => {}
                }
            }
            // Skip unrecognized groups wholesale so expression braces
            // never masquerade as items.
            if matches!(t.kind, TokKind::Open(_)) {
                let close = self.brackets.matching(i);
                i = if close == usize::MAX {
                    i + 1
                } else {
                    close + 1
                };
                continue;
            }
            i += 1;
        }
    }

    fn at_kind(&self, i: usize, kind: TokKind) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == kind)
    }

    fn mark_test(&mut self, from: usize, to: usize, gated: bool) {
        if gated {
            let to = to.min(self.in_test.len());
            for f in &mut self.in_test[from..to] {
                *f = true;
            }
        }
    }

    /// From `i`, scan at group level 0 for the item's body `{` or a
    /// terminating `;`. Returns `(body_open_index, index_after_item)`
    /// for braced items, `None` for braceless ones (after advancing is
    /// left to the caller's default path).
    fn item_body(&self, i: usize) -> Option<(usize, usize)> {
        let mut j = i;
        while j < self.toks.len() {
            match self.toks[j].kind {
                TokKind::Open(Delim::Brace) => {
                    let close = self.brackets.matching(j);
                    return Some((j, close + 1));
                }
                TokKind::Open(_) => {
                    let close = self.brackets.matching(j);
                    if close == usize::MAX {
                        return None;
                    }
                    j = close + 1;
                }
                TokKind::Punct if self.toks[j].is_punct(';') => return None,
                TokKind::Close(_) => return None,
                _ => j += 1,
            }
        }
        None
    }

    /// Record a `fn` item starting at token `i` (the `fn` keyword);
    /// returns the index just past it.
    fn fn_item(&mut self, i: usize, owner: Option<&str>, gated: bool) -> usize {
        let name = self.toks[i + 1].text.clone();
        let line = self.toks[i].line;
        let mut ret = (0, 0);
        let mut j = i + 2;
        while j < self.toks.len() {
            match self.toks[j].kind {
                TokKind::Open(Delim::Brace) => {
                    let close = self.brackets.matching(j);
                    if ret != (0, 0) && ret.1 == 0 {
                        ret.1 = j;
                    }
                    self.mark_test(i, close + 1, gated);
                    self.fns.push(FnItem {
                        name,
                        owner: owner.map(str::to_string),
                        line,
                        ret,
                        body: (j + 1, close),
                        is_test: gated,
                    });
                    // Nested `fn` items at statement level are common
                    // in this workspace (local helpers); find them.
                    self.walk(j + 1, close, owner, gated);
                    return close + 1;
                }
                TokKind::Open(_) => {
                    let close = self.brackets.matching(j);
                    if close == usize::MAX {
                        return j + 1;
                    }
                    j = close + 1;
                }
                _ => {
                    if self.toks[j].is_punct(';') {
                        // Trait method declaration without a body.
                        self.mark_test(i, j + 1, gated);
                        return j + 1;
                    }
                    if self.toks[j].is_ident("where") && ret.1 == 0 && ret.0 != 0 {
                        ret.1 = j;
                    }
                    if self.toks[j].is_punct('>')
                        && j > 0
                        && self.toks[j - 1].is_punct('-')
                        && ret == (0, 0)
                    {
                        ret = (j + 1, 0);
                    }
                    j += 1;
                }
            }
        }
        self.toks.len()
    }

    /// Record a struct's lock-typed fields; returns the index past the
    /// item, or `None` if this `struct` token isn't an item head.
    fn struct_item(&mut self, i: usize, _gated: bool) -> Option<usize> {
        let name = match self.toks.get(i + 1) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => return None,
        };
        let (body_open, after) = match self.item_body(i + 2) {
            Some(v) => v,
            // Tuple / unit struct: no named fields to inspect.
            None => {
                let mut j = i + 2;
                while j < self.toks.len() && !self.toks[j].is_punct(';') {
                    if let TokKind::Open(_) = self.toks[j].kind {
                        let close = self.brackets.matching(j);
                        if close == usize::MAX {
                            return Some(j + 1);
                        }
                        j = close;
                    }
                    j += 1;
                }
                return Some(j + 1);
            }
        };
        let close = self.brackets.matching(body_open);
        // Split the field list on top-level commas.
        let mut j = body_open + 1;
        let mut field_start = j;
        while j <= close {
            let at_end = j == close;
            if at_end || self.toks[j].is_punct(',') {
                self.record_field(&name, field_start, j);
                field_start = j + 1;
                j += 1;
                continue;
            }
            if let TokKind::Open(_) = self.toks[j].kind {
                let c = self.brackets.matching(j);
                j = if c == usize::MAX { j + 1 } else { c + 1 };
                continue;
            }
            j += 1;
        }
        Some(after)
    }

    /// One `name: Type` field between token indices `[start, end)`.
    fn record_field(&mut self, owner: &str, start: usize, end: usize) {
        // First top-level ':' splits name from type; `pub(crate)`
        // groups before it are skipped by the caller's group jumps,
        // but a ':' can still hide inside them — so jump groups here
        // too.
        let mut j = start;
        let mut colon = None;
        while j < end {
            if let TokKind::Open(_) = self.toks[j].kind {
                let c = self.brackets.matching(j);
                j = if c == usize::MAX { j + 1 } else { c + 1 };
                continue;
            }
            if self.toks[j].is_punct(':') {
                colon = Some(j);
                break;
            }
            j += 1;
        }
        let colon = match colon {
            Some(c) => c,
            None => return,
        };
        let name = match self.toks[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident)
        {
            Some(t) if colon > start => t.text.clone(),
            _ => return,
        };
        let type_idents: Vec<String> = self.toks[colon + 1..end]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        self.raw_fields.push(RawField {
            owner: owner.to_string(),
            field: name,
            type_idents,
            line: self.toks[start.min(self.toks.len() - 1)].line,
        });
    }

    /// `static NAME: Type = …;` — record lock-typed statics. `const`
    /// items are skipped (no interior mutability) but still consumed so
    /// their initializer groups never reach the item walker.
    fn static_item(&mut self, i: usize, is_static: bool) -> usize {
        let mut j = i + 1;
        if self.toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let name = match self.toks.get(j) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => return i + 1,
        };
        let line = self.toks[i].line;
        let mut type_idents = Vec::new();
        let mut in_type = false;
        while j < self.toks.len() && !self.toks[j].is_punct(';') {
            if self.toks[j].is_punct(':') {
                in_type = true;
            } else if self.toks[j].is_punct('=') {
                in_type = false;
            } else if in_type && self.toks[j].kind == TokKind::Ident {
                type_idents.push(self.toks[j].text.clone());
            }
            if let TokKind::Open(_) = self.toks[j].kind {
                let c = self.brackets.matching(j);
                j = if c == usize::MAX { j + 1 } else { c };
            }
            j += 1;
        }
        if is_static {
            self.raw_fields.push(RawField {
                owner: "static".to_string(),
                field: name,
                type_idents,
                line,
            });
        }
        j + 1
    }

    /// `type X = …;` — collect the alias for lock-field resolution.
    fn type_alias(&mut self, i: usize) -> usize {
        let name = match self.toks.get(i + 1) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => return i + 1,
        };
        let mut j = i + 2;
        let mut idents = Vec::new();
        let mut seen_eq = false;
        while j < self.toks.len() && !self.toks[j].is_punct(';') {
            if self.toks[j].is_punct('=') {
                seen_eq = true;
            } else if seen_eq && self.toks[j].kind == TokKind::Ident {
                idents.push(self.toks[j].text.clone());
            }
            j += 1;
        }
        if seen_eq {
            self.aliases.push((name, idents));
        }
        j + 1
    }
}

fn resolve_lock_fields(raw: Vec<RawField>, aliases: &[(String, Vec<String>)]) -> Vec<LockField> {
    let mentions_lock = |idents: &[String]| -> Option<&'static str> {
        if idents.iter().any(|i| i == "Mutex") {
            Some("Mutex")
        } else if idents.iter().any(|i| i == "RwLock") {
            Some("RwLock")
        } else {
            None
        }
    };
    raw.into_iter()
        .filter_map(|f| {
            let direct = mentions_lock(&f.type_idents);
            let via_alias = || {
                f.type_idents.iter().find_map(|i| {
                    aliases
                        .iter()
                        .find(|(name, _)| name == i)
                        .and_then(|(_, idents)| mentions_lock(idents))
                })
            };
            direct.or_else(via_alias).map(|kind| LockField {
                owner: f.owner,
                field: f.field,
                kind,
                line: f.line,
            })
        })
        .collect()
}

/// Self type of an `impl` header (tokens between `impl` and the body
/// brace): strips the generic parameter list, honors `for` (trait
/// impls) while skipping `for<'a>` HRTBs, and returns the last path
/// segment of the implemented-on type.
fn impl_self_type(header: &[Token]) -> Option<String> {
    let mut i = 0;
    // Leading generics `<…>`: count angle depth over `<`/`>` puncts;
    // a `>` directly preceded by `-` is the arrow of a closure bound.
    if header.first().is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while i < header.len() {
            if header[i].is_punct('<') {
                depth += 1;
            } else if header[i].is_punct('>') && !(i > 0 && header[i - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // A top-level `for` (not `for<'a>`) means trait impl: the self
    // type follows it.
    let mut depth = 0i32;
    let mut ty_start = i;
    let mut j = i;
    while j < header.len() {
        if header[j].is_punct('<') {
            depth += 1;
        } else if header[j].is_punct('>') && !(j > 0 && header[j - 1].is_punct('-')) {
            depth -= 1;
        } else if depth == 0
            && header[j].is_ident("for")
            && !header.get(j + 1).is_some_and(|t| t.is_punct('<'))
        {
            ty_start = j + 1;
        } else if depth == 0 && header[j].is_ident("where") {
            break;
        }
        j += 1;
    }
    // Last segment of the leading path: ident (:: ident)* — stop at
    // `<` or anything else.
    let mut last = None;
    let mut k = ty_start;
    while k < header.len() {
        match header[k].kind {
            TokKind::Ident if !matches!(header[k].text.as_str(), "dyn" | "mut" | "where") => {
                last = Some(header[k].text.clone());
                k += 1;
            }
            TokKind::Punct if header[k].is_punct(':') || header[k].is_punct('&') => k += 1,
            TokKind::Lifetime => k += 1,
            _ => break,
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/core/src/x.rs", src).expect("builds")
    }

    #[test]
    fn finds_fns_with_owners_and_returns() {
        let m = model(
            "impl<T: Clone> Foo<T> {\n    fn get(&self) -> io::Result<u32> { self.x }\n}\n\
             fn free() {}\n\
             trait Bar { fn dflt(&self) -> bool { true } }\n",
        );
        let names: Vec<_> = m
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![("get", Some("Foo")), ("free", None), ("dflt", Some("Bar"))]
        );
        let get = &m.fns[0];
        let ret: Vec<_> = m.toks[get.ret.0..get.ret.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ret, vec!["io", ":", ":", "Result", "<", "u32", ">"]);
    }

    #[test]
    fn trait_impl_self_type_and_nested_fns() {
        let m = model(
            "impl<G: Group> NodeStore<G> for MemStore<G> {\n    fn insert(&mut self) {\n        fn helper() {}\n    }\n}\n",
        );
        let names: Vec<_> = m
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![("insert", Some("MemStore")), ("helper", Some("MemStore"))]
        );
    }

    #[test]
    fn cfg_test_gates_items_structurally() {
        let m = model(
            "fn live() { v.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\n",
        );
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test);
        // Token-level flags match the item spans.
        let unwraps: Vec<bool> = m
            .toks
            .iter()
            .zip(&m.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &f)| f)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn lock_fields_direct_and_via_alias() {
        let m = model(
            "type Shared = Arc<Mutex<HashMap<String, Vec<u8>>>>;\n\
             struct S {\n    queue: Mutex<Vec<u8>>,\n    engine: RwLock<E>,\n    files: Shared,\n    plain: u32,\n}\n\
             static REGISTRY: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n",
        );
        let got: Vec<_> = m
            .lock_fields
            .iter()
            .map(|l| (l.owner.as_str(), l.field.as_str(), l.kind))
            .collect();
        assert_eq!(
            got,
            vec![
                ("S", "queue", "Mutex"),
                ("S", "engine", "RwLock"),
                ("S", "files", "Mutex"),
                ("static", "REGISTRY", "Mutex"),
            ]
        );
    }
}
