//! Allowlist v2 (`lint-allow.txt`): `rule path expires=<PR> needle`
//! per line, where `needle` must be a substring of the offending
//! source line and `expires=<PR>` bounds the waiver's lifetime by PR
//! number (the count of entries in `CHANGES.md`). The contiguous `#`
//! comment block above an entry is its rationale, echoed when the
//! entry fails.
//!
//! A run fails on **stale** entries (waiving nothing — the code they
//! excused is gone) and on **expired** entries (`current_pr >
//! expires`) — waivers are leases, not grants.

use super::Finding;

/// One allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the entry waives.
    pub rule: String,
    /// Repo-relative path it applies to.
    pub path: String,
    /// Last PR number (CHANGES.md entry count) the waiver is valid for.
    pub expires: u64,
    /// Substring the offending line must contain.
    pub needle: String,
    /// The `#` comment block above the entry.
    pub rationale: String,
    /// 1-based line in the allowlist file.
    pub line: usize,
}

/// Parse an allowlist file's contents; `#` comments attach to the next
/// entry as its rationale, blank lines reset the block.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    let mut rationale: Vec<String> = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            rationale.clear();
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            rationale.push(comment.trim().to_string());
            continue;
        }
        let mut parts = line.splitn(4, ' ');
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(exp), Some(needle)) if !needle.trim().is_empty() => {
                let expires = exp
                    .strip_prefix("expires=")
                    .and_then(|n| n.parse::<u64>().ok())
                    .ok_or_else(|| {
                        format!(
                            "allowlist line {}: third field must be `expires=<PR>`, got `{exp}`",
                            no + 1
                        )
                    })?;
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    expires,
                    needle: needle.trim().to_string(),
                    rationale: rationale.join(" "),
                    line: no + 1,
                });
                rationale.clear();
            }
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `rule path expires=<PR> needle`, got `{line}`",
                    no + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Result of matching findings against the allowlist.
#[derive(Debug)]
pub struct Applied {
    /// Findings no live entry waives.
    pub blocking: Vec<Finding>,
    /// Findings a live entry waives.
    pub waived: Vec<Finding>,
    /// Indices of live entries that matched nothing.
    pub stale: Vec<usize>,
    /// Indices of entries past their `expires` PR.
    pub expired: Vec<usize>,
}

/// Split findings into blocking/waived under the entries still alive at
/// `current_pr`; report stale and expired entry indices.
pub fn apply_allowlist(findings: Vec<Finding>, allow: &[AllowEntry], current_pr: u64) -> Applied {
    let expired: Vec<usize> = allow
        .iter()
        .enumerate()
        .filter(|(_, a)| current_pr > a.expires)
        .map(|(i, _)| i)
        .collect();
    let mut used = vec![false; allow.len()];
    let mut blocking = Vec::new();
    let mut waived = Vec::new();
    for f in findings {
        let hit = allow.iter().enumerate().find(|(i, a)| {
            !expired.contains(i)
                && a.rule == f.rule
                && a.path == f.path
                && f.excerpt.contains(&a.needle)
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                waived.push(f);
            }
            None => blocking.push(f),
        }
    }
    let stale = used
        .iter()
        .enumerate()
        .filter(|(i, u)| !**u && !expired.contains(i))
        .map(|(i, _)| i)
        .collect();
    Applied {
        blocking,
        waived,
        stale,
        expired,
    }
}
