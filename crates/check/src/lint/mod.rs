//! Repo-invariant semantic lint suite (`ddc-lint` v2).
//!
//! v1 was a masking lexer + substring rules; v2 is a real Rust
//! [`lexer`] and token-tree [`parse`]r feeding a per-file semantic
//! [`model`] (functions, lock fields, `cfg(test)` gating) and a
//! [`rules`] set that includes whole-workspace passes:
//!
//! * **`no-unwrap`**, **`no-bare-std-sync`**, **`named-ordering`** —
//!   the v1 rules, re-expressed over tokens (same scoping, same
//!   excerpts, so existing waiver needles keep matching).
//! * **`seam-bypass`** — no `std::fs`/`std::net` outside the `Vfs`
//!   seam and whitelisted operator/harness modules.
//! * **`lock-order`** — static lock-acquisition graph over the
//!   `core::sync` guards; cycles fail with a witness path.
//! * **`pin-discipline`** — `BufferPool::pin` matched by `unpin` on
//!   all scope exits, or closure-scoped.
//! * **`result-discard`** — dropped `Result`s carrying `IoError` /
//!   `TryUpdateError`.
//! * **`ordering-pairs`** — every `Release` store has an acquire-side
//!   load of the same field in the same crate.
//!
//! Waivers live in `lint-allow.txt` (see [`allow`]) and now carry
//! `expires=<PR>` leases. Each rule ships a seeded-violation fixture
//! corpus under `crates/check/tests/lint_fixtures/` that
//! [`run_fixtures`] must re-find — the same "re-discover planted bugs"
//! contract the fuzzer and chaos sweeps obey.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod allow;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod rules;

pub use allow::{apply_allowlist, parse_allowlist, AllowEntry, Applied};

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `lock-order`).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Extra context (witness paths, remediation); may be multi-line.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )?;
        for l in self.detail.lines() {
            write!(f, "\n    {}", l.trim_start())?;
        }
        Ok(())
    }
}

/// Recursively collect `crates/*/src/**/*.rs` under `root`, returned as
/// sorted repo-relative forward-slash paths.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for e in entries {
            let p = e.path();
            if p.is_dir() {
                walk(&p, out)?;
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
        Ok(())
    }
    let crates = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut out = Vec::new();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    Ok(out)
}

/// Build a [`model::FileModel`] for every workspace source under
/// `root`.
pub fn collect_models(root: &Path) -> Result<Vec<model::FileModel>, String> {
    let files = workspace_sources(root).map_err(|e| format!("walking {root:?}: {e}"))?;
    let mut models = Vec::with_capacity(files.len());
    for f in &files {
        let raw = std::fs::read_to_string(f).map_err(|e| format!("reading {f:?}: {e}"))?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        models.push(model::FileModel::build(&rel, &raw)?);
    }
    Ok(models)
}

/// What a full lint run produces.
#[derive(Debug)]
pub struct LintReport {
    /// Findings no live waiver covers — these fail the run.
    pub blocking: Vec<Finding>,
    /// Findings waived by a live allowlist entry.
    pub waived: Vec<Finding>,
    /// Indices into `entries` of live entries that matched nothing.
    pub stale: Vec<usize>,
    /// Indices into `entries` of entries past their `expires` PR.
    pub expired: Vec<usize>,
    /// The parsed allowlist.
    pub entries: Vec<AllowEntry>,
}

impl LintReport {
    /// A run passes only with no blocking findings and a fully live,
    /// fully used allowlist.
    pub fn is_clean(&self) -> bool {
        self.blocking.is_empty() && self.stale.is_empty() && self.expired.is_empty()
    }
}

/// Run the full suite from a repo root. `rule` restricts the run to a
/// single rule id (allowlist entries for other rules are then ignored
/// rather than reported stale); `current_pr` drives waiver expiry —
/// use [`current_pr_from_changes`].
pub fn run_lints(
    root: &Path,
    allowlist: &str,
    current_pr: u64,
    rule: Option<&str>,
) -> Result<LintReport, String> {
    if let Some(r) = rule {
        if !rules::ALL_RULES.contains(&r) {
            return Err(format!(
                "unknown rule `{r}` (expected one of: {})",
                rules::ALL_RULES.join(", ")
            ));
        }
    }
    let mut entries = parse_allowlist(allowlist)?;
    let models = collect_models(root)?;
    let mut findings = rules::analyze(&models);
    if let Some(r) = rule {
        findings.retain(|f| f.rule == r);
        entries.retain(|a| a.rule == r);
    }
    let Applied {
        blocking,
        waived,
        stale,
        expired,
    } = apply_allowlist(findings, &entries, current_pr);
    Ok(LintReport {
        blocking,
        waived,
        stale,
        expired,
        entries,
    })
}

/// The PR number "now": the count of non-empty `CHANGES.md` lines (one
/// line per landed PR). Missing file ⇒ 0 (expiry disabled).
pub fn current_pr_from_changes(root: &Path) -> u64 {
    std::fs::read_to_string(root.join("CHANGES.md"))
        .map(|t| t.lines().filter(|l| !l.trim().is_empty()).count() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Seeded-violation fixtures
// ---------------------------------------------------------------------------

/// Outcome of re-finding the seeded fixture corpus.
#[derive(Debug)]
pub struct FixtureReport {
    /// Seeded `(path, line, rule)` markers re-found by the analyzer.
    pub refound: usize,
    /// Total seeded markers.
    pub expected: usize,
    /// Markers the analyzer missed.
    pub missing: Vec<(String, usize, String)>,
    /// Findings with no marker — fixture noise the corpus must not
    /// have.
    pub unexpected: Vec<Finding>,
    /// Per-rule `(refound, expected)`.
    pub per_rule: BTreeMap<String, (usize, usize)>,
}

impl FixtureReport {
    /// Every marker re-found and nothing extra reported.
    pub fn is_clean(&self) -> bool {
        self.missing.is_empty() && self.unexpected.is_empty()
    }
}

/// Run the analyzer over the fixture tree (a miniature repo layout
/// rooted at `fixture_root`, e.g. `crates/check/tests/lint_fixtures`)
/// and compare against the `//~ rule…` markers seeded on the offending
/// lines.
pub fn run_fixtures(fixture_root: &Path) -> Result<FixtureReport, String> {
    let models = collect_models(fixture_root)?;
    if models.is_empty() {
        return Err(format!("no fixture sources under {fixture_root:?}"));
    }
    // Expected multiset from trailing `//~ rule [rule…]` markers.
    let mut expected: BTreeMap<(String, usize, String), usize> = BTreeMap::new();
    for m in &models {
        for (li, line) in m.raw_lines.iter().enumerate() {
            let Some(pos) = line.find("//~") else {
                continue;
            };
            for rule in line[pos + 3..].split_whitespace() {
                *expected
                    .entry((m.path.clone(), li + 1, rule.to_string()))
                    .or_insert(0) += 1;
            }
        }
    }
    let found = rules::analyze(&models);

    let mut remaining = expected.clone();
    let mut unexpected = Vec::new();
    for f in &found {
        let key = (f.path.clone(), f.line, f.rule.to_string());
        match remaining.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => unexpected.push(f.clone()),
        }
    }
    let missing: Vec<(String, usize, String)> = remaining
        .iter()
        .filter(|(_, n)| **n > 0)
        .map(|((p, l, r), _)| (p.clone(), *l, r.clone()))
        .collect();

    let mut per_rule: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for ((_, _, rule), n) in &expected {
        per_rule.entry(rule.clone()).or_insert((0, 0)).1 += n;
    }
    for ((_, _, rule), n) in &remaining {
        // `n` left over = missed; refound = expected - missed.
        per_rule.entry(rule.clone()).or_insert((0, 0)).0 += n;
    }
    for (refound_missed, total) in per_rule.values_mut() {
        *refound_missed = *total - *refound_missed;
    }
    let expected_total: usize = expected.values().sum();
    let missing_total: usize = remaining.values().sum();
    Ok(FixtureReport {
        refound: expected_total - missing_total,
        expected: expected_total,
        missing,
        unexpected,
        per_rule,
    })
}

// ---------------------------------------------------------------------------
// JSON findings output
// ---------------------------------------------------------------------------

/// Render a report as JSON (hand-rolled — the repo is zero-dep) for
/// the CI findings artifact.
pub fn report_json(r: &LintReport) -> String {
    let findings = |fs: &[Finding]| -> String {
        let items: Vec<String> = fs
            .iter()
            .map(|f| {
                format!(
                    "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"excerpt\":\"{}\",\"detail\":\"{}\"}}",
                    esc(f.rule),
                    esc(&f.path),
                    f.line,
                    esc(&f.excerpt),
                    esc(&f.detail)
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    };
    let entries = |idx: &[usize]| -> String {
        let items: Vec<String> = idx
            .iter()
            .filter_map(|&i| r.entries.get(i))
            .map(|a| {
                format!(
                    "{{\"rule\":\"{}\",\"path\":\"{}\",\"expires\":{},\"needle\":\"{}\",\"rationale\":\"{}\",\"line\":{}}}",
                    esc(&a.rule),
                    esc(&a.path),
                    a.expires,
                    esc(&a.needle),
                    esc(&a.rationale),
                    a.line
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    };
    format!(
        "{{\"schema\":1,\"clean\":{},\"blocking\":{},\"waived\":{},\"stale\":{},\"expired\":{}}}",
        r.is_clean(),
        findings(&r.blocking),
        findings(&r.waived),
        entries(&r.stale),
        entries(&r.expired)
    )
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::model::FileModel;
    use super::*;

    fn lint_one(path: &str, src: &str) -> Vec<Finding> {
        let m = FileModel::build(path, src).expect("model builds");
        rules::analyze(std::slice::from_ref(&m))
    }

    fn rules_of(f: &[Finding]) -> Vec<&str> {
        f.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src =
            "fn live() { v.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\n";
        let f = lint_one("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[0].rule, "no-unwrap");
    }

    #[test]
    fn std_sync_flagged_outside_facade_only() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(
            rules_of(&lint_one("crates/core/src/shard.rs", src)),
            vec!["no-bare-std-sync"]
        );
        assert!(lint_one("crates/core/src/sync.rs", src).is_empty());
        assert!(lint_one("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn atomic_calls_need_explicit_ordering() {
        let bad = "fn f() { let v = x.load(order); }\n";
        let good = "fn f() { let v = x.load(Ordering::Acquire); }\n";
        let multiline = "fn f() { x.fetch_add(1,\n    Ordering::Relaxed); }\n";
        assert_eq!(
            rules_of(&lint_one("crates/core/src/a.rs", bad)),
            vec!["named-ordering"]
        );
        assert!(lint_one("crates/core/src/a.rs", good).is_empty());
        assert!(lint_one("crates/core/src/a.rs", multiline).is_empty());
        // Facade internals forward a parameter — exempt.
        assert!(lint_one("crates/model/src/sync.rs", bad).is_empty());
    }

    #[test]
    fn seam_bypass_outside_whitelist() {
        let src = "fn f() { let _x = std::fs::metadata(p); }\n";
        assert_eq!(
            rules_of(&lint_one("crates/core/src/store.rs", src)),
            vec!["seam-bypass"]
        );
        assert!(lint_one("crates/core/src/vfs.rs", src).is_empty());
        assert!(lint_one("crates/cli/src/main.rs", src).is_empty());
        let net = "fn f() { let l = std::net::TcpListener::bind(a); }\n";
        assert_eq!(
            rules_of(&lint_one("crates/core/src/wal.rs", net)),
            vec!["seam-bypass"]
        );
    }

    #[test]
    fn lock_order_cycle_reported_with_witness() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); drop(h); drop(g); }
    fn ba(&self) { let g = self.b.lock(); let h = self.a.lock(); drop(h); drop(g); }
}
";
        let f = lint_one("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["lock-order"], "{f:?}");
        assert!(f[0].detail.contains("a -> b"), "{}", f[0].detail);
        assert!(f[0].detail.contains("b -> a"), "{}", f[0].detail);
    }

    #[test]
    fn lock_order_consistent_order_is_clean() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn ab(&self) { let g = self.a.lock(); let h = self.b.lock(); drop(h); drop(g); }
    fn ab2(&self) { let g = self.a.lock(); self.b.lock().x(); drop(g); }
}
";
        assert!(lint_one("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn lock_order_guard_helper_propagates() {
        // fn-level helpers returning guards (the shard.rs pattern):
        // holding the queue via lock_queue while write_engine acquires
        // the engine, and vice versa in another fn → cycle.
        let src = "\
struct S { queue: Mutex<u32>, engine: RwLock<u32> }
fn lock_queue(s: &S) -> MutexGuard<'_, u32> { s.queue.lock() }
fn write_engine(s: &S) -> RwLockWriteGuard<'_, u32> { s.engine.write() }
fn commit(s: &S) { let q = lock_queue(s); let e = write_engine(s); drop(e); drop(q); }
fn drain(s: &S) { let e = write_engine(s); let q = lock_queue(s); drop(q); drop(e); }
";
        let f = lint_one("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec!["lock-order"], "{f:?}");
        assert!(f[0].detail.contains("via "), "{}", f[0].detail);
    }

    #[test]
    fn pin_without_unpin_and_early_exit() {
        let leak = "\
impl P {
    fn f(&mut self) { self.pin(0); self.use_page(); }
}
";
        let f = lint_one("crates/core/src/x.rs", leak);
        assert_eq!(rules_of(&f), vec!["pin-discipline"], "{f:?}");

        let early = "\
impl P {
    fn f(&mut self) -> io::Result<()> { self.pin(0); self.read_at(b)?; self.unpin(0); Ok(()) }
}
";
        let f = lint_one("crates/core/src/x.rs", early);
        assert_eq!(rules_of(&f), vec!["pin-discipline"], "{f:?}");
        assert!(f[0].detail.contains("early exit"), "{}", f[0].detail);
    }

    #[test]
    fn pin_closure_scoped_accessor_is_clean() {
        // The for_each_segment shape: pin inside an IIFE closure with
        // `?`, unpin unconditionally after.
        let src = "\
impl P {
    fn seg(&mut self) -> io::Result<()> {
        let res = (|| -> io::Result<()> {
            for p in 0..4 { self.pin(p)?; }
            Ok(())
        })();
        for p in 0..4 { self.unpin(p)?; }
        res
    }
}
";
        let f = lint_one("crates/core/src/x.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn result_discard_let_underscore_and_bare_statement() {
        let src = "\
fn append(x: u64) -> Result<u64, IoError> { Ok(x) }
fn caller() {
    let _ = append(1);
    append(2);
    let ok = append(3);
    drop(ok);
}
";
        let f = lint_one("crates/core/src/x.rs", src);
        assert_eq!(
            rules_of(&f),
            vec!["result-discard", "result-discard"],
            "{f:?}"
        );
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
    }

    #[test]
    fn result_discard_spares_clean_overloads() {
        // `add` has a non-risky overload elsewhere → the name is
        // dropped from the risky set entirely.
        let a = FileModel::build(
            "crates/core/src/wal.rs",
            "impl D { fn add(&mut self) -> Result<(), IoError> { Ok(()) } }\n",
        )
        .expect("model");
        let b = FileModel::build(
            "crates/core/src/group.rs",
            "impl G { fn add(&self, o: &G) -> G { o.clone() } }\nfn f(g: &G) { g.add(g); }\n",
        )
        .expect("model");
        let f = rules::analyze(&[a, b]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ordering_pairs_release_needs_acquire_load() {
        let unpaired = "\
struct B { seq: AtomicU64 }
impl B {
    fn publish(&self) { self.seq.store(1, Ordering::Release); }
}
";
        let f = lint_one("crates/core/src/x.rs", unpaired);
        assert_eq!(rules_of(&f), vec!["ordering-pairs"], "{f:?}");

        let paired = "\
struct B { seq: AtomicU64 }
impl B {
    fn publish(&self) { self.seq.store(1, Ordering::Release); }
    fn observe(&self) -> u64 { self.seq.load(Ordering::Acquire) }
}
";
        assert!(lint_one("crates/core/src/x.rs", paired).is_empty());
    }

    #[test]
    fn allowlist_waives_and_reports_stale_and_expired() {
        let mk = |rule: &'static str, excerpt: &str| Finding {
            rule,
            path: "crates/core/src/a.rs".into(),
            line: 3,
            excerpt: excerpt.into(),
            detail: String::new(),
        };
        let allow = parse_allowlist(
            "# builder threads are joined at construction time;\n\
             # a panic there is a programming error, not input-driven.\n\
             no-unwrap crates/core/src/a.rs expires=14 builder thread panicked\n\
             no-unwrap crates/core/src/a.rs expires=14 stale entry\n\
             no-unwrap crates/core/src/a.rs expires=3 long gone\n",
        )
        .expect("parses");
        assert!(allow[0].rationale.contains("programming error"));
        let findings = vec![mk(
            "no-unwrap",
            "h.join().expect(\"builder thread panicked\")",
        )];
        let a = apply_allowlist(findings, &allow, 10);
        assert!(a.blocking.is_empty());
        assert_eq!(a.waived.len(), 1);
        assert_eq!(a.stale, vec![1]);
        assert_eq!(a.expired, vec![2]);
    }

    #[test]
    fn allowlist_rejects_missing_expires() {
        assert!(parse_allowlist("no-unwrap crates/core/src/a.rs some needle\n").is_err());
        assert!(parse_allowlist("no-unwrap crates/core/src/a.rs expires=x needle\n").is_err());
    }

    #[test]
    fn expired_entry_stops_waiving() {
        let findings = vec![Finding {
            rule: "no-unwrap",
            path: "crates/core/src/a.rs".into(),
            line: 3,
            excerpt: "v.expect(\"reason\")".into(),
            detail: String::new(),
        }];
        let allow =
            parse_allowlist("no-unwrap crates/core/src/a.rs expires=4 reason\n").expect("parses");
        let a = apply_allowlist(findings, &allow, 10);
        assert_eq!(a.blocking.len(), 1, "expired waiver must not mask");
        assert_eq!(a.expired, vec![0]);
    }

    #[test]
    fn json_report_escapes_and_round_trips_shape() {
        let r = LintReport {
            blocking: vec![Finding {
                rule: "seam-bypass",
                path: "crates/core/src/a.rs".into(),
                line: 1,
                excerpt: "std::fs::File::open(\"x\")".into(),
                detail: "line1\nline2".into(),
            }],
            waived: vec![],
            stale: vec![],
            expired: vec![],
            entries: vec![],
        };
        let j = report_json(&r);
        assert!(j.contains("\\\"x\\\""), "{j}");
        assert!(j.contains("line1\\nline2"), "{j}");
        assert!(j.contains("\"clean\":false"), "{j}");
    }
}
