//! Uniform drivers over every engine in the workspace.
//!
//! A [`CheckEngine`] speaks the trace's language — signed logical
//! coordinates, growth in any direction, save/load round-trips, flush
//! barriers — and each adapter translates that onto one engine's real
//! API. Fixed-shape engines (the Table-1 baselines) have no growth
//! story, so their adapter *rebuilds* on [`CheckEngine::grow`] by
//! copying cells into a larger instance; the growable engines grow
//! organically and treat it as a no-op.

use ddc_array::{RangeSumEngine, Region, Shape};
use ddc_baselines::{
    GrowablePrefixSum, MultiFenwick, NaiveEngine, PrefixSumEngine, RelativePrefixEngine,
};
use ddc_core::{
    wal, BaseStore, DdcConfig, DdcEngine, DurableCube, GrowableCube, PagerConfig, ShardConfig,
    ShardedCube, SharedCube, WalConfig,
};
use ddc_workload::BoxState;

/// One engine under differential test, addressed in trace coordinates.
pub trait CheckEngine {
    /// Display name, including any config variant.
    fn name(&self) -> &str;

    /// Adds `delta` at the signed logical `point`.
    fn add(&mut self, point: &[i64], delta: i64);

    /// Sets the cell, returning the previous value (compared).
    fn set(&mut self, point: &[i64], value: i64) -> i64;

    /// Reads one cell (compared).
    fn cell(&self, point: &[i64]) -> i64;

    /// Range sum over the closed logical box (compared).
    fn range_sum(&self, lo: &[i64], hi: &[i64]) -> i64;

    /// The covered box grew; `new_box` is the box *after* growth.
    fn grow(&mut self, new_box: &BoxState);

    /// Save/load round-trip for engines that persist. Non-persistent
    /// engines return `Ok(())` untouched.
    fn save_load(&mut self) -> Result<(), String> {
        Ok(())
    }

    /// Group-commit barrier for engines with write queues.
    fn flush(&mut self) {}

    /// Simulated process kill: drop every volatile structure and
    /// rebuild from the last snapshot plus the write-ahead log. Every
    /// acknowledged op must survive; none that was never acked may
    /// appear. Engines with no durability story keep their state
    /// (a no-op) — the comparison against the oracle still holds
    /// because recovery must be exact.
    fn crash(&mut self) -> Result<(), String> {
        Ok(())
    }
}

fn phys(point: &[i64], origin: &[i64]) -> Vec<usize> {
    point
        .iter()
        .zip(origin)
        .map(|(&c, &o)| (c - o) as usize)
        .collect()
}

/// Adapter for fixed-shape [`RangeSumEngine`]s: keeps the current box
/// origin for coordinate translation and rebuilds (copying every
/// populated cell) when the box grows.
pub struct FixedAdapter<E: RangeSumEngine<i64>> {
    label: String,
    engine: E,
    origin: Vec<i64>,
    build: Box<dyn Fn(Shape) -> E + Send>,
}

impl<E: RangeSumEngine<i64>> FixedAdapter<E> {
    /// Wraps a fresh engine covering `init`, built by `build`.
    pub fn new(
        label: impl Into<String>,
        init: &BoxState,
        build: impl Fn(Shape) -> E + Send + 'static,
    ) -> Self {
        let engine = build(Shape::new(&init.dims));
        Self {
            label: label.into(),
            engine,
            origin: init.origin.clone(),
            build: Box::new(build),
        }
    }
}

impl<E: RangeSumEngine<i64>> CheckEngine for FixedAdapter<E> {
    fn name(&self) -> &str {
        &self.label
    }

    fn add(&mut self, point: &[i64], delta: i64) {
        self.engine.apply_delta(&phys(point, &self.origin), delta);
    }

    fn set(&mut self, point: &[i64], value: i64) -> i64 {
        self.engine.set(&phys(point, &self.origin), value)
    }

    fn cell(&self, point: &[i64]) -> i64 {
        self.engine.cell(&phys(point, &self.origin))
    }

    fn range_sum(&self, lo: &[i64], hi: &[i64]) -> i64 {
        self.engine.range_sum(&Region::new(
            &phys(lo, &self.origin),
            &phys(hi, &self.origin),
        ))
    }

    fn grow(&mut self, new_box: &BoxState) {
        let mut next = (self.build)(Shape::new(&new_box.dims));
        for p in self.engine.shape().iter_points() {
            let v = self.engine.cell(&p);
            if v != 0 {
                // Physical-in-old → logical → physical-in-new.
                let shifted: Vec<usize> = p
                    .iter()
                    .zip(self.origin.iter().zip(&new_box.origin))
                    .map(|(&c, (&old_o, &new_o))| (c as i64 + old_o - new_o) as usize)
                    .collect();
                next.apply_delta(&shifted, v);
            }
        }
        self.engine = next;
        self.origin = new_box.origin.clone();
    }
}

/// Adapter for the DDC engine proper, with a real save/load round-trip
/// through an in-memory buffer on [`CheckEngine::save_load`].
pub struct DdcAdapter {
    label: String,
    engine: DdcEngine<i64>,
    origin: Vec<i64>,
    config: DdcConfig,
}

impl DdcAdapter {
    /// Fresh DDC cube over `init` under `config`. If `config` asks for
    /// paged leaves, the leaf arena is converted before any op lands.
    pub fn new(label: impl Into<String>, init: &BoxState, config: DdcConfig) -> Self {
        let mut engine = DdcEngine::with_config(Shape::new(&init.dims), config);
        engine.enable_paging().expect("enable paged leaf arena");
        Self {
            label: label.into(),
            engine,
            origin: init.origin.clone(),
            config,
        }
    }
}

impl CheckEngine for DdcAdapter {
    fn name(&self) -> &str {
        &self.label
    }

    fn add(&mut self, point: &[i64], delta: i64) {
        self.engine.apply_delta(&phys(point, &self.origin), delta);
    }

    fn set(&mut self, point: &[i64], value: i64) -> i64 {
        self.engine.set(&phys(point, &self.origin), value)
    }

    fn cell(&self, point: &[i64]) -> i64 {
        self.engine.cell(&phys(point, &self.origin))
    }

    fn range_sum(&self, lo: &[i64], hi: &[i64]) -> i64 {
        self.engine.range_sum(&Region::new(
            &phys(lo, &self.origin),
            &phys(hi, &self.origin),
        ))
    }

    fn grow(&mut self, new_box: &BoxState) {
        let mut next = DdcEngine::with_config(Shape::new(&new_box.dims), self.config);
        next.enable_paging().expect("enable paged leaf arena");
        for (p, v) in self.engine.entries() {
            let shifted: Vec<usize> = p
                .iter()
                .zip(self.origin.iter().zip(&new_box.origin))
                .map(|(&c, (&old_o, &new_o))| (c as i64 + old_o - new_o) as usize)
                .collect();
            next.apply_delta(&shifted, v);
        }
        self.engine = next;
        self.origin = new_box.origin.clone();
    }

    fn save_load(&mut self) -> Result<(), String> {
        let mut buf = Vec::new();
        self.engine
            .save(&mut buf)
            .map_err(|e| format!("save: {e}"))?;
        self.engine =
            DdcEngine::load(&mut buf.as_slice(), self.config).map_err(|e| format!("load: {e}"))?;
        Ok(())
    }
}

/// Adapter for the lock-guarded [`SharedCube`].
pub struct SharedAdapter {
    cube: SharedCube<i64>,
    origin: Vec<i64>,
    config: DdcConfig,
}

impl SharedAdapter {
    /// Fresh shared cube over `init` under `config`.
    pub fn new(init: &BoxState, config: DdcConfig) -> Self {
        Self {
            cube: SharedCube::new(Shape::new(&init.dims), config),
            origin: init.origin.clone(),
            config,
        }
    }
}

impl CheckEngine for SharedAdapter {
    fn name(&self) -> &str {
        "shared-cube"
    }

    fn add(&mut self, point: &[i64], delta: i64) {
        self.cube.apply_delta(&phys(point, &self.origin), delta);
    }

    fn set(&mut self, point: &[i64], value: i64) -> i64 {
        let p = phys(point, &self.origin);
        self.cube.with_write(|e| e.set(&p, value))
    }

    fn cell(&self, point: &[i64]) -> i64 {
        self.cube.cell(&phys(point, &self.origin))
    }

    fn range_sum(&self, lo: &[i64], hi: &[i64]) -> i64 {
        self.cube.range_sum(&Region::new(
            &phys(lo, &self.origin),
            &phys(hi, &self.origin),
        ))
    }

    fn grow(&mut self, new_box: &BoxState) {
        let shifted: Vec<(Vec<usize>, i64)> = self
            .cube
            .entries()
            .into_iter()
            .map(|(p, v)| {
                let q: Vec<usize> = p
                    .iter()
                    .zip(self.origin.iter().zip(&new_box.origin))
                    .map(|(&c, (&old_o, &new_o))| (c as i64 + old_o - new_o) as usize)
                    .collect();
                (q, v)
            })
            .collect();
        self.cube = SharedCube::new(Shape::new(&new_box.dims), self.config);
        self.cube.apply_batch(&shifted);
        self.origin = new_box.origin.clone();
    }

    fn save_load(&mut self) -> Result<(), String> {
        let config = self.config;
        let loaded = self.cube.with_read(|e| {
            let mut buf = Vec::new();
            e.save(&mut buf).map_err(|x| format!("save: {x}"))?;
            DdcEngine::load(&mut buf.as_slice(), config).map_err(|x| format!("load: {x}"))
        })?;
        self.cube = SharedCube::from_engine(loaded);
        Ok(())
    }
}

/// Adapter for the write-batching [`ShardedCube`]; queries read through
/// the queues, so no flush is needed for correctness — only the
/// explicit [`CheckEngine::flush`] barrier drains them.
pub struct ShardedAdapter {
    label: String,
    cube: ShardedCube<i64>,
    origin: Vec<i64>,
    config: DdcConfig,
    shard_config: ShardConfig,
}

impl ShardedAdapter {
    /// Fresh sharded cube over `init`.
    pub fn new(
        label: impl Into<String>,
        init: &BoxState,
        config: DdcConfig,
        shard_config: ShardConfig,
    ) -> Self {
        Self {
            label: label.into(),
            cube: ShardedCube::new(Shape::new(&init.dims), config, shard_config),
            origin: init.origin.clone(),
            config,
            shard_config,
        }
    }
}

impl CheckEngine for ShardedAdapter {
    fn name(&self) -> &str {
        &self.label
    }

    fn add(&mut self, point: &[i64], delta: i64) {
        self.cube.update(&phys(point, &self.origin), delta);
    }

    fn set(&mut self, point: &[i64], value: i64) -> i64 {
        let p = phys(point, &self.origin);
        let old = self.cube.cell_value(&p);
        self.cube.update(&p, value - old);
        old
    }

    fn cell(&self, point: &[i64]) -> i64 {
        self.cube.cell_value(&phys(point, &self.origin))
    }

    fn range_sum(&self, lo: &[i64], hi: &[i64]) -> i64 {
        self.cube.query(&Region::new(
            &phys(lo, &self.origin),
            &phys(hi, &self.origin),
        ))
    }

    fn grow(&mut self, new_box: &BoxState) {
        self.cube.flush();
        let shifted: Vec<(Vec<usize>, i64)> = self
            .cube
            .entries()
            .into_iter()
            .map(|(p, v)| {
                let q: Vec<usize> = p
                    .iter()
                    .zip(self.origin.iter().zip(&new_box.origin))
                    .map(|(&c, (&old_o, &new_o))| (c as i64 + old_o - new_o) as usize)
                    .collect();
                (q, v)
            })
            .collect();
        self.cube = ShardedCube::new(Shape::new(&new_box.dims), self.config, self.shard_config);
        self.cube.update_batch(&shifted);
        self.origin = new_box.origin.clone();
    }

    fn flush(&mut self) {
        self.cube.flush();
    }
}

/// Adapter for the natively growable DDC cube — signed coordinates pass
/// straight through and [`CheckEngine::grow`] is organic (a no-op).
pub struct GrowableAdapter {
    label: String,
    cube: GrowableCube<i64>,
    config: DdcConfig,
}

impl GrowableAdapter {
    /// Fresh growable cube; `init` only fixes dimensionality, the cube
    /// covers points as they arrive.
    pub fn new(label: impl Into<String>, init: &BoxState, config: DdcConfig) -> Self {
        let mut cube = GrowableCube::with_origin(&init.origin, config);
        cube.enable_paging().expect("enable paged leaf arena");
        Self {
            label: label.into(),
            cube,
            config,
        }
    }
}

impl CheckEngine for GrowableAdapter {
    fn name(&self) -> &str {
        &self.label
    }

    fn add(&mut self, point: &[i64], delta: i64) {
        self.cube.add(point, delta);
    }

    fn set(&mut self, point: &[i64], value: i64) -> i64 {
        self.cube.set(point, value)
    }

    fn cell(&self, point: &[i64]) -> i64 {
        self.cube.cell(point)
    }

    fn range_sum(&self, lo: &[i64], hi: &[i64]) -> i64 {
        self.cube.range_sum(lo, hi)
    }

    fn grow(&mut self, _new_box: &BoxState) {}

    fn save_load(&mut self) -> Result<(), String> {
        let mut buf = Vec::new();
        self.cube.save(&mut buf).map_err(|e| format!("save: {e}"))?;
        self.cube = GrowableCube::load(&mut buf.as_slice(), self.config)
            .map_err(|e| format!("load: {e}"))?;
        Ok(())
    }
}

/// Adapter for the write-ahead-logged [`DurableCube`]: every mutation
/// is appended and flushed to an in-memory log *before* it is applied,
/// snapshots land in an in-memory buffer, and [`CheckEngine::crash`]
/// drops the cube and rebuilds it from snapshot + log. Since every op
/// this adapter applied was acknowledged, recovery must reproduce the
/// oracle's state exactly.
pub struct DurableAdapter {
    label: String,
    durable: DurableCube<i64, Vec<u8>>,
    snapshot: Option<Vec<u8>>,
    prev: BoxState,
    config: DdcConfig,
}

impl DurableAdapter {
    /// Fresh durable cube over `init`, logging into memory.
    pub fn new(label: impl Into<String>, init: &BoxState, config: DdcConfig) -> Self {
        Self {
            label: label.into(),
            durable: DurableCube::new(init.ndim(), config, Vec::new())
                .expect("in-memory WAL create"),
            snapshot: None,
            prev: init.clone(),
            config,
        }
    }
}

impl CheckEngine for DurableAdapter {
    fn name(&self) -> &str {
        &self.label
    }

    fn add(&mut self, point: &[i64], delta: i64) {
        self.durable
            .add(point, delta)
            .expect("in-memory WAL append");
    }

    fn set(&mut self, point: &[i64], value: i64) -> i64 {
        self.durable
            .set(point, value)
            .expect("in-memory WAL append")
    }

    fn cell(&self, point: &[i64]) -> i64 {
        self.durable.cube().cell(point)
    }

    fn range_sum(&self, lo: &[i64], hi: &[i64]) -> i64 {
        self.durable.cube().range_sum(lo, hi)
    }

    fn grow(&mut self, new_box: &BoxState) {
        // The growable cube re-grows organically on replay; the log
        // records are covered-box bookkeeping, diffed from the box
        // transition so the Grow record path stays exercised.
        for axis in 0..new_box.ndim() {
            let low = (self.prev.origin[axis] - new_box.origin[axis]).max(0) as usize;
            if low > 0 {
                self.durable
                    .log_grow(axis, low, true)
                    .expect("in-memory WAL append");
            }
            let old_hi = self.prev.origin[axis] + self.prev.dims[axis] as i64;
            let new_hi = new_box.origin[axis] + new_box.dims[axis] as i64;
            if new_hi > old_hi {
                self.durable
                    .log_grow(axis, (new_hi - old_hi) as usize, false)
                    .expect("in-memory WAL append");
            }
        }
        self.prev = new_box.clone();
    }

    fn save_load(&mut self) -> Result<(), String> {
        // Checkpoint, truncate the log, then prove the checkpoint is
        // loadable by recovering from it immediately.
        let mut snap = Vec::new();
        self.durable
            .checkpoint(&mut snap)
            .map_err(|e| format!("checkpoint: {e}"))?;
        self.durable
            .reset_wal(Vec::new())
            .map_err(|e| format!("truncate: {e}"))?;
        self.snapshot = Some(snap);
        self.crash()
    }

    fn crash(&mut self) -> Result<(), String> {
        let d = self.durable.cube().ndim();
        // All that survives the kill: the snapshot and the log bytes.
        let log = self.durable.wal().get_ref().clone();
        let (cube, _report) = wal::recover::<i64>(
            d,
            self.snapshot.as_deref(),
            &log,
            self.config,
            WalConfig::default(),
        )
        .map_err(|e| format!("recover: {e}"))?;
        // Post-recovery protocol: checkpoint the recovered state, then
        // start a fresh log — the retired log is folded into the
        // snapshot, so a second crash replays from here.
        let mut snap = Vec::new();
        cube.save(&mut snap)
            .map_err(|e| format!("checkpoint: {e}"))?;
        self.snapshot = Some(snap);
        self.durable =
            DurableCube::from_recovered(cube, Vec::new()).map_err(|e| format!("fresh log: {e}"))?;
        Ok(())
    }
}

/// Adapter for the dense growable prefix-sum baseline (no point reads in
/// its API — cells derive from degenerate range sums).
pub struct GrowableDenseAdapter {
    cube: GrowablePrefixSum<i64>,
}

impl GrowableDenseAdapter {
    /// Fresh growable prefix array anchored at `init`'s origin.
    pub fn new(init: &BoxState) -> Self {
        Self {
            cube: GrowablePrefixSum::new(&init.origin),
        }
    }
}

impl CheckEngine for GrowableDenseAdapter {
    fn name(&self) -> &str {
        "growable-dense"
    }

    fn add(&mut self, point: &[i64], delta: i64) {
        self.cube.add(point, delta);
    }

    fn set(&mut self, point: &[i64], value: i64) -> i64 {
        let old = self.cell(point);
        self.cube.add(point, value - old);
        old
    }

    fn cell(&self, point: &[i64]) -> i64 {
        self.cube.range_sum(point, point)
    }

    fn range_sum(&self, lo: &[i64], hi: &[i64]) -> i64 {
        self.cube.range_sum(lo, hi)
    }

    fn grow(&mut self, _new_box: &BoxState) {}
}

/// Every engine in the workspace, wrapped and ready to replay a trace
/// whose initial covered box is `init`.
pub fn engine_roster(init: &BoxState) -> Vec<Box<dyn CheckEngine>> {
    vec![
        Box::new(FixedAdapter::new("naive", init, NaiveEngine::<i64>::zeroed)),
        Box::new(FixedAdapter::new(
            "prefix-sum",
            init,
            PrefixSumEngine::<i64>::zeroed,
        )),
        Box::new(FixedAdapter::new(
            "relative-prefix",
            init,
            RelativePrefixEngine::<i64>::zeroed,
        )),
        Box::new(FixedAdapter::new(
            "multi-fenwick",
            init,
            MultiFenwick::<i64>::zeroed,
        )),
        Box::new(DdcAdapter::new("ddc-basic", init, DdcConfig::basic())),
        // `dynamic()` is the arena-backed hot path: blocked B^c base over
        // the flat-arena tree. The explicit base-store variants keep the
        // pointer-based B^c and the Fenwick ablation in the differential
        // net, and the elided variant drives the arena's dense leaf
        // blocks (§4.4) through every trace.
        Box::new(DdcAdapter::new("ddc-dynamic", init, DdcConfig::dynamic())),
        Box::new(DdcAdapter::new(
            "ddc-bc16",
            init,
            DdcConfig::dynamic().with_base(BaseStore::Bc { fanout: 16 }),
        )),
        Box::new(DdcAdapter::new(
            "ddc-fenwick",
            init,
            DdcConfig::dynamic().with_base(BaseStore::Fenwick),
        )),
        Box::new(DdcAdapter::new(
            "ddc-elide1",
            init,
            DdcConfig::dynamic().with_elision(1),
        )),
        // Paged leaf arena over a deliberately tiny in-memory buffer
        // pool: every trace churns through pin/unpin, clock eviction
        // and record re-faulting, differentially checked against all
        // the slab engines above.
        Box::new(DdcAdapter::new(
            "ddc-paged",
            init,
            DdcConfig::dynamic()
                .with_elision(1)
                .with_paged_leaves(PagerConfig::in_mem(4 * 1024).with_page_bytes(256)),
        )),
        Box::new(SharedAdapter::new(init, DdcConfig::dynamic())),
        Box::new(ShardedAdapter::new(
            "sharded(2×4)",
            init,
            DdcConfig::dynamic(),
            ShardConfig {
                shards: 2,
                batch_capacity: 4,
                ..ShardConfig::default()
            },
        )),
        Box::new(GrowableAdapter::new(
            "growable-ddc",
            init,
            DdcConfig::dynamic(),
        )),
        Box::new(GrowableAdapter::new(
            "growable-paged",
            init,
            DdcConfig::dynamic()
                .with_elision(1)
                .with_paged_leaves(PagerConfig::in_mem(4 * 1024).with_page_bytes(256)),
        )),
        Box::new(DurableAdapter::new(
            "durable-wal",
            init,
            DdcConfig::dynamic(),
        )),
        // WAL + paged leaves together: dirty pages may only reach the
        // spill file behind the log barrier, and recovery replays the
        // log straight onto freshly-faulted pages.
        Box::new(DurableAdapter::new(
            "durable-paged",
            init,
            DdcConfig::dynamic()
                .with_elision(1)
                .with_paged_leaves(PagerConfig::in_mem(4 * 1024).with_page_bytes(256)),
        )),
        Box::new(GrowableDenseAdapter::new(init)),
    ]
}
