//! `ddc check disk` — disk-fault chaos sweep over the durable cube.
//!
//! A [`ddc_core::DurableCube`] is booted through a fault-injecting
//! [`FaultVfs`] and driven through a seeded [`CheckTrace`] while the
//! virtual disk throws EIO, ENOSPC, torn short writes, failed sync
//! barriers, and read-back bit flips at it. The contract checked at
//! every step (and at a final fault-free recovery):
//!
//! * **No acknowledged update is ever lost.** The sparse [`Oracle`]
//!   tracks exactly the acked ops; every recovery must reproduce it.
//! * **Every run ends in full health or clean degraded mode.** After
//!   ENOSPC or retry exhaustion the cube must answer reads that still
//!   match the oracle and reject writes with `ReadOnly` — it must
//!   never panic and never silently diverge.
//! * **The indeterminate window is exactly one op wide.** When an
//!   append dies at the sync barrier *and* the torn-tail cleanup also
//!   failed, that one unacked record may legitimately surface after
//!   recovery; anything beyond it is a violation.
//!
//! Failing fault schedules are delta-debugged ([`shrink_fault_schedule`])
//! to a minimal list of [`PlannedFault`]s that still reproduces. The
//! sweep's regression teeth are the committed `tests/faults/*.sched`
//! schedules: replayed with the retry protocol's tail truncation
//! disabled (`RetryPolicy::truncate_on_retry`, the seeded bug) the
//! harness must *re-find* a durability violation, and replayed with the
//! production policy it must come back clean.

use ddc_core::vfs::{FaultFile, MemFile};
use ddc_core::wal::{self, IoError, RetryPolicy};
use ddc_core::{DdcConfig, DurableCube, FaultProbs, FaultVfs, PlannedFault, WalConfig};
use ddc_workload::{CheckOp, CheckTrace, CheckTraceConfig, DdcRng};

use crate::oracle::Oracle;

/// Log path inside the virtual namespace.
const WAL_PATH: &str = "wal.log";
/// Snapshot path inside the virtual namespace.
const SNAP_PATH: &str = "snapshot.ddc";

type DiskCube = DurableCube<i64, FaultFile<MemFile>>;

fn sorted(mut entries: Vec<(Vec<i64>, i64)>) -> Vec<(Vec<i64>, i64)> {
    entries.sort();
    entries
}

/// The oracle state with one extra (indeterminate) op applied — the
/// second legal answer inside the sync-barrier commit window.
fn entries_with(oracle: &Oracle, op: &CheckOp) -> Vec<(Vec<i64>, i64)> {
    let mut o = oracle.clone();
    match op {
        CheckOp::Update { point, delta } => o.add(point, *delta),
        CheckOp::Set { point, value } => {
            o.set(point, *value);
        }
        _ => {}
    }
    sorted(o.entries())
}

/// What one trace replay under faults observed.
#[derive(Clone, Debug, Default)]
pub struct DiskRunReport {
    /// Contract violations, empty when the run upheld durability.
    pub violations: Vec<String>,
    /// Every fault that actually fired, in order — replayable via
    /// [`ddc_core::FaultPlan::Explicit`].
    pub faults: Vec<PlannedFault>,
    /// Mutations acknowledged (and therefore owed durability).
    pub acked: usize,
    /// True when the run ended in degraded read-only mode.
    pub degraded: bool,
    /// Total file operations the virtual disk served.
    pub ops: u64,
}

impl DiskRunReport {
    /// No violation observed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Drives `trace` against a durable cube living on `vfs` under `policy`,
/// checking the durability contract at every step. Panics anywhere in
/// the stack are caught and reported as violations — a chaos run must
/// end in health or clean degradation, never a crash.
pub fn run_trace_under_faults(
    trace: &CheckTrace,
    vfs: &FaultVfs,
    policy: RetryPolicy,
) -> DiskRunReport {
    run_trace_under_faults_with(trace, vfs, policy, DdcConfig::dynamic())
}

/// [`run_trace_under_faults`] under an explicit engine config — used to
/// point the fault machinery at the paged leaf backend.
pub fn run_trace_under_faults_with(
    trace: &CheckTrace,
    vfs: &FaultVfs,
    policy: RetryPolicy,
    config: DdcConfig,
) -> DiskRunReport {
    // Route pager spill files into the same fault-injecting namespace
    // as the WAL and snapshot: an eviction write-back or page fault-in
    // must be able to fail like any other disk op. Each spill file
    // gets a distinct name so concurrent pools never share extents.
    let spill_vfs = vfs.clone();
    let mut spill_seq = 0u64;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ddc_core::store::with_spill_source(
            move || {
                spill_seq += 1;
                use ddc_core::vfs::{OpenMode, Vfs, VfsFile};
                spill_vfs
                    .open(&format!("pager-{spill_seq}.spill"), OpenMode::Create)
                    .map(|f| Box::new(f) as Box<dyn VfsFile + Send>)
            },
            || drive(trace, vfs, policy, config),
        )
    }));
    match outcome {
        Ok(report) => report,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            DiskRunReport {
                violations: vec![format!("panic under disk faults: {msg}")],
                faults: vfs.realized(),
                ops: vfs.ops(),
                ..Default::default()
            }
        }
    }
}

fn boot(
    vfs: &FaultVfs,
    d: usize,
    config: DdcConfig,
    policy: &RetryPolicy,
) -> std::io::Result<DiskCube> {
    wal::recover_vfs::<i64, _>(
        vfs,
        WAL_PATH,
        Some(SNAP_PATH),
        d,
        config,
        WalConfig::default(),
        policy.clone(),
    )
    .map(|(cube, _report)| cube)
}

fn drive(
    trace: &CheckTrace,
    vfs: &FaultVfs,
    policy: RetryPolicy,
    config: DdcConfig,
) -> DiskRunReport {
    let d = trace.dims.len();
    let mut report = DiskRunReport::default();

    // Fault-free boot: the namespace is empty, nothing can be owed yet.
    vfs.arm(false);
    let mut durable = match boot(vfs, d, config, &policy) {
        Ok(cube) => cube,
        Err(e) => {
            report
                .violations
                .push(format!("fault-free boot failed: {e}"));
            return finish(report, vfs, false);
        }
    };
    let mut oracle = Oracle::new(d);
    // The one op whose durability the sync-barrier commit window left
    // ambiguous; recovery may surface it or not, but nothing else.
    let mut pending: Option<CheckOp> = None;
    vfs.arm(true);

    for (i, op) in trace.ops.iter().enumerate() {
        match op {
            CheckOp::Update { point, delta } => match durable.add(point, *delta) {
                Ok(()) => {
                    oracle.add(point, *delta);
                    report.acked += 1;
                }
                Err(e) => note_failure(i, &e, &durable, op, &mut pending, &mut report),
            },
            CheckOp::Set { point, value } => match durable.set(point, *value) {
                Ok(old) => {
                    let want = oracle.set(point, *value);
                    if old != want {
                        report
                            .violations
                            .push(format!("op {i}: set returned {old}, oracle had {want}"));
                    }
                    report.acked += 1;
                }
                Err(e) => note_failure(i, &e, &durable, op, &mut pending, &mut report),
            },
            CheckOp::Query { lo, hi } => {
                let got = durable.cube().range_sum(lo, hi);
                let want = oracle.range_sum(lo, hi);
                if got != want {
                    report.violations.push(format!(
                        "op {i}: range_sum diverged (got {got}, oracle {want}, degraded={})",
                        durable.degraded().is_some()
                    ));
                }
            }
            CheckOp::Cell { point } => {
                let got = durable.cube().cell(point);
                let want = oracle.cell(point);
                if got != want {
                    report
                        .violations
                        .push(format!("op {i}: cell diverged (got {got}, oracle {want})"));
                }
            }
            CheckOp::Grow { axis, amount, low } => {
                // Bookkeeping record; entries are unaffected either way,
                // so an indeterminate grow needs no pending tracking.
                if let Err(e) = durable.log_grow(*axis, *amount, *low) {
                    note_failure(i, &e, &durable, op, &mut pending, &mut report);
                }
            }
            CheckOp::SaveLoad => match durable.checkpoint_vfs(vfs, SNAP_PATH, WAL_PATH) {
                Ok(_) => {}
                Err(IoError::Transient { .. }) => {
                    // Pre-rename failure: old snapshot + full log intact.
                    if durable.degraded().is_some() {
                        report.violations.push(format!(
                            "op {i}: transient checkpoint failure left the cube degraded"
                        ));
                    }
                }
                Err(e) => {
                    if durable.degraded().is_none() {
                        report.violations.push(format!(
                            "op {i}: terminal checkpoint failure without degraded mode: {e}"
                        ));
                    }
                }
            },
            CheckOp::Crash => {
                match crash_recover(
                    vfs,
                    d,
                    config,
                    &policy,
                    i,
                    &oracle,
                    &mut pending,
                    &mut report,
                ) {
                    Some(recovered) => {
                        // Resolve the commit window: if the pending op
                        // surfaced, it is durable from here on.
                        let got = sorted(recovered.cube().entries());
                        if got != sorted(oracle.entries()) {
                            if let Some(op) = pending.take() {
                                match &op {
                                    CheckOp::Update { point, delta } => oracle.add(point, *delta),
                                    CheckOp::Set { point, value } => {
                                        oracle.set(point, *value);
                                    }
                                    _ => {}
                                }
                            }
                        }
                        pending = None;
                        durable = recovered;
                    }
                    None => return finish(report, vfs, false),
                }
            }
            CheckOp::Flush => {}
        }
    }

    // Epilogue: with the disk healthy again, a pristine recovery must
    // land exactly on the acked state (or acked + the pending op).
    vfs.arm(false);
    let degraded = durable.degraded().is_some();
    drop(durable);
    match boot(vfs, d, config, &RetryPolicy::instant()) {
        Ok(recovered) => {
            let got = sorted(recovered.cube().entries());
            let want = sorted(oracle.entries());
            let also_legal = pending.as_ref().map(|op| entries_with(&oracle, op));
            if got != want && Some(&got) != also_legal.as_ref() {
                report.violations.push(format!(
                    "final recovery diverged from the acked oracle \
                     ({} recovered cells vs {} acked; lost an acked op or \
                     resurrected an unacked one)",
                    got.len(),
                    want.len()
                ));
            }
        }
        Err(e) => report
            .violations
            .push(format!("final fault-free recovery failed: {e}")),
    }
    finish(report, vfs, degraded)
}

fn finish(mut report: DiskRunReport, vfs: &FaultVfs, degraded: bool) -> DiskRunReport {
    report.faults = vfs.realized();
    report.ops = vfs.ops();
    report.degraded = degraded;
    report
}

/// Checks the typed-error contract for one failed mutation.
fn note_failure(
    i: usize,
    e: &IoError,
    durable: &DiskCube,
    op: &CheckOp,
    pending: &mut Option<CheckOp>,
    report: &mut DiskRunReport,
) {
    match e {
        IoError::Transient { .. } => {
            if durable.degraded().is_some() {
                report
                    .violations
                    .push(format!("op {i}: transient failure left the cube degraded"));
            }
        }
        IoError::Exhausted { indeterminate, .. } => {
            if durable.degraded().is_none() {
                report
                    .violations
                    .push(format!("op {i}: retry exhaustion did not degrade the cube"));
            }
            if *indeterminate && matches!(op, CheckOp::Update { .. } | CheckOp::Set { .. }) {
                if pending.is_some() {
                    report.violations.push(format!(
                        "op {i}: second indeterminate op without an intervening recovery"
                    ));
                }
                *pending = Some(op.clone());
            }
        }
        IoError::ReadOnly { .. } => {
            if durable.degraded().is_none() {
                report.violations.push(format!(
                    "op {i}: ReadOnly answered by a cube not in degraded mode"
                ));
            }
        }
    }
}

/// Mid-trace kill: recover with faults still armed (errors there are
/// legitimate transient boot failures), falling back to a disarmed
/// recovery that *must* succeed. Returns `None` after reporting when
/// even the fault-free path failed.
#[allow(clippy::too_many_arguments)]
fn crash_recover(
    vfs: &FaultVfs,
    d: usize,
    config: DdcConfig,
    policy: &RetryPolicy,
    i: usize,
    oracle: &Oracle,
    pending: &mut Option<CheckOp>,
    report: &mut DiskRunReport,
) -> Option<DiskCube> {
    let recovered = match boot(vfs, d, config, policy) {
        Ok(cube) => cube,
        Err(_) => {
            vfs.arm(false);
            let cube = match boot(vfs, d, config, policy) {
                Ok(cube) => cube,
                Err(e) => {
                    report
                        .violations
                        .push(format!("op {i}: fault-free recovery failed: {e}"));
                    return None;
                }
            };
            vfs.arm(true);
            cube
        }
    };
    let got = sorted(recovered.cube().entries());
    let want = sorted(oracle.entries());
    let also_legal = pending.as_ref().map(|op| entries_with(oracle, op));
    if got != want && Some(&got) != also_legal.as_ref() {
        report.violations.push(format!(
            "op {i}: mid-trace recovery diverged from the acked oracle"
        ));
    }
    Some(recovered)
}

// ---------------------------------------------------------------------------
// Seeded schedules: the committed, replayable unit
// ---------------------------------------------------------------------------

/// A replayable chaos run: everything needed to regenerate the trace
/// and the fault stream. Serialized as the line-oriented text committed
/// under `tests/faults/*.sched`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    /// Cube dimensionality of the generated trace.
    pub dims: usize,
    /// Seed for [`CheckTrace::generate`].
    pub trace_seed: u64,
    /// Ops in the generated trace.
    pub trace_ops: usize,
    /// Seed for the [`FaultVfs`] fault stream.
    pub fault_seed: u64,
    /// Per-kind fault probabilities.
    pub probs: FaultProbs,
}

impl FaultSchedule {
    /// The trace this schedule drives.
    pub fn trace(&self) -> CheckTrace {
        let mut rng = DdcRng::seed_from_u64(self.trace_seed);
        CheckTrace::generate(
            self.dims,
            CheckTraceConfig {
                ops: self.trace_ops,
                max_cells: 512,
            },
            &mut rng,
        )
    }

    /// A fresh fault-injecting namespace for one replay.
    pub fn vfs(&self) -> FaultVfs {
        FaultVfs::seeded_mem(self.fault_seed, self.probs)
    }

    /// Serializes to the committed text form.
    pub fn to_text(&self) -> String {
        let p = &self.probs;
        format!(
            "# ddc check disk fault schedule\n\
             dims {}\n\
             trace-seed {:#x}\n\
             trace-ops {}\n\
             fault-seed {:#x}\n\
             p write_err {}\n\
             p short_write {}\n\
             p no_space {}\n\
             p sync_fail {}\n\
             p read_err {}\n\
             p read_corrupt {}\n",
            self.dims,
            self.trace_seed,
            self.trace_ops,
            self.fault_seed,
            p.write_err,
            p.short_write,
            p.no_space,
            p.sync_fail,
            p.read_err,
            p.read_corrupt,
        )
    }

    /// Parses the text form; unknown keys are rejected so a typo in a
    /// committed schedule fails loudly instead of silently weakening it.
    pub fn parse(text: &str) -> Result<Self, String> {
        fn int(tok: &str) -> Result<u64, String> {
            let parsed = match tok.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => tok.parse(),
            };
            parsed.map_err(|e| format!("bad integer {tok:?}: {e}"))
        }
        let mut dims = None;
        let mut trace_seed = None;
        let mut trace_ops = None;
        let mut fault_seed = None;
        let mut probs = FaultProbs::none();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tok = line.split_whitespace();
            let key = tok.next().unwrap_or_default();
            let err = |what: &str| format!("line {}: {what}: {line:?}", no + 1);
            match key {
                "dims" | "trace-seed" | "trace-ops" | "fault-seed" => {
                    let v = int(tok.next().ok_or_else(|| err("missing value"))?)?;
                    match key {
                        "dims" => dims = Some(v as usize),
                        "trace-seed" => trace_seed = Some(v),
                        "trace-ops" => trace_ops = Some(v as usize),
                        _ => fault_seed = Some(v),
                    }
                }
                "p" => {
                    let kind = tok.next().ok_or_else(|| err("missing fault kind"))?;
                    let p: f64 = tok
                        .next()
                        .ok_or_else(|| err("missing probability"))?
                        .parse()
                        .map_err(|e| err(&format!("bad probability: {e}")))?;
                    match kind {
                        "write_err" => probs.write_err = p,
                        "short_write" => probs.short_write = p,
                        "no_space" => probs.no_space = p,
                        "sync_fail" => probs.sync_fail = p,
                        "read_err" => probs.read_err = p,
                        "read_corrupt" => probs.read_corrupt = p,
                        other => return Err(err(&format!("unknown fault kind {other:?}"))),
                    }
                }
                other => return Err(err(&format!("unknown key {other:?}"))),
            }
            if tok.next().is_some() {
                return Err(err("trailing tokens"));
            }
        }
        Ok(Self {
            dims: dims.ok_or("missing dims")?,
            trace_seed: trace_seed.ok_or("missing trace-seed")?,
            trace_ops: trace_ops.ok_or("missing trace-ops")?,
            fault_seed: fault_seed.ok_or("missing fault-seed")?,
            probs,
        })
    }
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

/// Delta-debugs a failing fault list to a (1-minimal) sublist that
/// still violates the durability contract when replayed explicitly
/// under `policy`. Dropping a fault shifts every later retry, so a
/// candidate that merely breaks alignment stops failing and is kept —
/// the classic ddmin fixpoint handles that automatically.
pub fn shrink_fault_schedule(
    trace: &CheckTrace,
    faults: &[PlannedFault],
    policy: &RetryPolicy,
) -> Vec<PlannedFault> {
    shrink_fault_schedule_with(trace, faults, policy, DdcConfig::dynamic())
}

/// [`shrink_fault_schedule`] under an explicit engine config, so a
/// paged-backend violation shrinks against the backend that found it.
pub fn shrink_fault_schedule_with(
    trace: &CheckTrace,
    faults: &[PlannedFault],
    policy: &RetryPolicy,
    config: DdcConfig,
) -> Vec<PlannedFault> {
    let fails = |subset: &[PlannedFault]| {
        let vfs = FaultVfs::explicit_mem(subset.to_vec());
        !run_trace_under_faults_with(trace, &vfs, policy.clone(), config).is_clean()
    };
    if !fails(faults) {
        return faults.to_vec();
    }
    let mut current = faults.to_vec();
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut i = 0;
        let mut reduced = false;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                reduced = true;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            if !reduced {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    current
}

// ---------------------------------------------------------------------------
// The sweep and the seeded-bug re-finder
// ---------------------------------------------------------------------------

/// Sweep sizes.
#[derive(Clone, Debug)]
pub struct DiskSweepConfig {
    /// Base seed; trace and fault seeds derive from it per run.
    pub seed: u64,
    /// Seeded traces per (dimension, probability) grid point.
    pub traces: usize,
    /// Ops per trace.
    pub trace_ops: usize,
    /// Dimensionalities exercised.
    pub dims: Vec<usize>,
    /// Fault-probability grid (0.0 = control runs).
    pub grid: Vec<f64>,
}

impl DiskSweepConfig {
    /// CI-sized sweep (`ddc check disk --quick`).
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            traces: 3,
            trace_ops: 50,
            dims: vec![1, 2],
            grid: vec![0.0, 0.01, 0.06],
        }
    }

    /// The full overnight grid.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            traces: 8,
            trace_ops: 140,
            dims: vec![1, 2, 3],
            grid: vec![0.0, 0.002, 0.01, 0.03, 0.06, 0.15],
        }
    }
}

/// A sweep run's probabilities at grid point `p`: reads are weighted
/// down (they only fire during recovery) and ENOSPC is rarer than the
/// transient kinds so most runs exercise the retry path rather than
/// degrading on first contact.
fn probs_at(p: f64) -> FaultProbs {
    FaultProbs {
        write_err: p,
        short_write: p,
        no_space: p / 4.0,
        sync_fail: p,
        read_err: p / 2.0,
        read_corrupt: p / 4.0,
    }
}

/// One surviving contract violation, shrunk and replayable.
#[derive(Clone, Debug)]
pub struct DiskViolation {
    /// The seeded schedule that produced it.
    pub schedule: FaultSchedule,
    /// First violation message.
    pub detail: String,
    /// Shrunk explicit fault list that still reproduces.
    pub shrunk: Vec<PlannedFault>,
}

/// What a [`disk_sweep`] measured.
#[derive(Clone, Debug, Default)]
pub struct DiskSweepReport {
    /// Trace replays performed.
    pub runs: usize,
    /// Faults injected across all runs.
    pub faults_injected: usize,
    /// Runs that ended in (clean) degraded mode.
    pub degraded_runs: usize,
    /// Mutations acknowledged across all runs.
    pub acked: usize,
    /// Violations found (empty on a healthy build).
    pub violations: Vec<DiskViolation>,
}

impl DiskSweepReport {
    /// No violation anywhere on the grid.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs seeded traces across the fault-probability grid under the
/// production retry policy (with zero backoff — wall-clock sleeps only
/// slow the sweep down). Any violation is shrunk before reporting.
pub fn disk_sweep(config: &DiskSweepConfig) -> DiskSweepReport {
    disk_sweep_with(config, DdcConfig::dynamic())
}

/// [`disk_sweep`] under an explicit engine config — `ddc check disk
/// --paged` points the whole grid at the buffer-pool leaf backend.
pub fn disk_sweep_with(config: &DiskSweepConfig, engine: DdcConfig) -> DiskSweepReport {
    let policy = RetryPolicy::instant();
    let mut report = DiskSweepReport::default();
    let mut run_index = 0u64;
    for &d in &config.dims {
        for &p in &config.grid {
            for t in 0..config.traces {
                run_index += 1;
                let schedule = FaultSchedule {
                    dims: d,
                    trace_seed: config
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(run_index),
                    trace_ops: config.trace_ops,
                    fault_seed: config.seed ^ (run_index << 20) ^ t as u64,
                    probs: probs_at(p),
                };
                let trace = schedule.trace();
                let vfs = schedule.vfs();
                let run = run_trace_under_faults_with(&trace, &vfs, policy.clone(), engine);
                report.runs += 1;
                report.faults_injected += run.faults.len();
                report.acked += run.acked;
                if run.degraded {
                    report.degraded_runs += 1;
                }
                if let Some(detail) = run.violations.first() {
                    let shrunk = shrink_fault_schedule_with(&trace, &run.faults, &policy, engine);
                    report.violations.push(DiskViolation {
                        schedule,
                        detail: detail.clone(),
                        shrunk,
                    });
                }
            }
        }
    }
    report
}

/// What replaying one committed schedule against the seeded bug found.
#[derive(Clone, Debug)]
pub struct RefindReport {
    /// First violation the weakened policy produced.
    pub violation: String,
    /// Faults the weakened run injected.
    pub faults: usize,
    /// Shrunk fault list still reproducing under the weakened policy.
    pub shrunk: Vec<PlannedFault>,
}

/// Replays a committed schedule twice: with
/// `RetryPolicy::truncate_on_retry` disabled the harness must re-find a
/// durability violation (the seeded bug), and with the production
/// policy the same schedule must come back clean. `Err` means the
/// harness lost its teeth — a CI failure.
pub fn refind_seeded_bug(schedule: &FaultSchedule) -> Result<RefindReport, String> {
    let trace = schedule.trace();
    let weakened = RetryPolicy {
        truncate_on_retry: false,
        ..RetryPolicy::instant()
    };
    let vfs = schedule.vfs();
    let weak_run = run_trace_under_faults(&trace, &vfs, weakened.clone());
    let Some(violation) = weak_run.violations.first().cloned() else {
        return Err(
            "schedule no longer re-finds the seeded torn-tail bug under the weakened policy"
                .to_string(),
        );
    };
    let production = run_trace_under_faults(&trace, &schedule.vfs(), RetryPolicy::instant());
    if let Some(v) = production.violations.first() {
        return Err(format!(
            "schedule violates durability under the PRODUCTION policy: {v}"
        ));
    }
    Ok(RefindReport {
        violation,
        faults: weak_run.faults.len(),
        shrunk: shrink_fault_schedule(&trace, &weak_run.faults, &weakened),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_clean_under_the_production_policy() {
        let report = disk_sweep(&DiskSweepConfig::quick(0xD15C));
        assert!(
            report.is_clean(),
            "{:?}",
            report
                .violations
                .iter()
                .map(|v| &v.detail)
                .collect::<Vec<_>>()
        );
        assert!(report.runs > 0);
        assert!(
            report.faults_injected > 0,
            "grid injected no faults at all — the sweep is vacuous"
        );
    }

    #[test]
    fn paged_run_observes_spill_faults_and_stays_clean() {
        use ddc_core::PagerConfig;
        // Leaf blocks behind a buffer pool small enough that the trace
        // evicts, with write faults likely enough that some land on
        // spill write-backs; the bounded pager retry must absorb them.
        // A two-page pool: every second leaf record forces an eviction
        // write-back, so spill I/O happens on virtually every op.
        let engine = DdcConfig::dynamic()
            .with_elision(1)
            .with_paged_leaves(PagerConfig::in_mem(512).with_page_bytes(256));
        let mut spill_faulted = false;
        for salt in 0..32u64 {
            let schedule = FaultSchedule {
                dims: 2,
                trace_seed: 0x5B1F ^ salt,
                trace_ops: 60,
                fault_seed: 0xFA57 ^ (salt << 8),
                probs: probs_at(0.05),
            };
            let vfs = schedule.vfs();
            let run = run_trace_under_faults_with(
                &schedule.trace(),
                &vfs,
                RetryPolicy::instant(),
                engine,
            );
            assert!(
                run.violations.is_empty(),
                "paged run under spill faults violated the contract: {:?}",
                run.violations
            );
            let paths = vfs.realized_paths();
            assert_eq!(paths.len(), run.faults.len());
            if paths.iter().any(|p| p.ends_with(".spill")) {
                spill_faulted = true;
                break;
            }
        }
        assert!(
            spill_faulted,
            "no seeded fault ever landed on a pager spill file — the \
             spill path is not routed through the fault harness"
        );
    }

    #[test]
    fn explicit_replay_of_realized_faults_is_deterministic() {
        let schedule = FaultSchedule {
            dims: 2,
            trace_seed: 0x51,
            trace_ops: 50,
            fault_seed: 0x52,
            probs: probs_at(0.08),
        };
        let trace = schedule.trace();
        let seeded = run_trace_under_faults(&trace, &schedule.vfs(), RetryPolicy::instant());
        let replay_vfs = FaultVfs::explicit_mem(seeded.faults.clone());
        let replay = run_trace_under_faults(&trace, &replay_vfs, RetryPolicy::instant());
        assert_eq!(seeded.faults, replay.faults);
        assert_eq!(seeded.violations, replay.violations);
        assert_eq!(seeded.acked, replay.acked);
    }

    #[test]
    fn schedule_text_round_trips() {
        let schedule = FaultSchedule {
            dims: 3,
            trace_seed: 0xDEAD_BEEF,
            trace_ops: 77,
            fault_seed: 42,
            probs: FaultProbs {
                write_err: 0.01,
                short_write: 0.25,
                no_space: 0.0,
                sync_fail: 0.125,
                read_err: 0.0,
                read_corrupt: 0.0625,
            },
        };
        let parsed = FaultSchedule::parse(&schedule.to_text()).expect("round trip");
        assert_eq!(parsed, schedule);
        assert!(FaultSchedule::parse("dims 2\nbogus 4\n").is_err());
        assert!(FaultSchedule::parse("p gremlins 0.5\n").is_err());
        assert!(FaultSchedule::parse("dims 2\n").is_err(), "missing fields");
    }

    #[test]
    fn enospc_degrades_cleanly_and_loses_nothing() {
        // A plan that throws ENOSPC at every write once armed: the very
        // first logged op degrades the cube; queries must keep serving
        // the (empty-prefix) acked state and recovery must be exact.
        let schedule = FaultSchedule {
            dims: 2,
            trace_seed: 0x77,
            trace_ops: 40,
            fault_seed: 0x78,
            probs: FaultProbs {
                no_space: 1.0,
                ..FaultProbs::none()
            },
        };
        let trace = schedule.trace();
        let run = run_trace_under_faults(&trace, &schedule.vfs(), RetryPolicy::instant());
        assert!(run.is_clean(), "{:?}", run.violations);
        assert!(!run.faults.is_empty());
    }

    #[test]
    fn shrinker_reduces_a_failing_schedule_and_keeps_it_failing() {
        // Find a weakened-policy failure, then shrink it.
        let weakened = RetryPolicy {
            truncate_on_retry: false,
            ..RetryPolicy::instant()
        };
        let mut found = None;
        for seed in 0..64u64 {
            let schedule = FaultSchedule {
                dims: 2,
                trace_seed: seed.wrapping_mul(131) + 7,
                trace_ops: 40,
                fault_seed: seed,
                probs: FaultProbs {
                    short_write: 0.3,
                    ..FaultProbs::none()
                },
            };
            let trace = schedule.trace();
            let run = run_trace_under_faults(&trace, &schedule.vfs(), weakened.clone());
            if !run.is_clean() && run.faults.len() >= 2 {
                found = Some((trace, run.faults));
                break;
            }
        }
        let (trace, faults) = found.expect("some seed exposes the weakened policy");
        let shrunk = shrink_fault_schedule(&trace, &faults, &weakened);
        assert!(!shrunk.is_empty());
        assert!(shrunk.len() <= faults.len());
        let vfs = FaultVfs::explicit_mem(shrunk.clone());
        assert!(
            !run_trace_under_faults(&trace, &vfs, weakened).is_clean(),
            "shrunk schedule must still reproduce"
        );
    }
}
