//! The reference model every engine is compared against: a sparse map
//! from signed logical coordinates to values, with O(population) range
//! sums. Too slow to ship, too simple to be wrong.

use std::collections::HashMap;

/// Ground-truth cube: a hash map of populated cells.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    d: usize,
    cells: HashMap<Vec<i64>, i64>,
}

impl Oracle {
    /// An empty oracle of `d` dimensions.
    pub fn new(d: usize) -> Self {
        Self {
            d,
            cells: HashMap::new(),
        }
    }

    /// Dimensionality.
    pub fn ndim(&self) -> usize {
        self.d
    }

    /// Adds `delta` at `point`, dropping the cell if it returns to zero.
    pub fn add(&mut self, point: &[i64], delta: i64) {
        debug_assert_eq!(point.len(), self.d);
        let v = self.cells.entry(point.to_vec()).or_insert(0);
        *v += delta;
        if *v == 0 {
            self.cells.remove(point);
        }
    }

    /// Sets the cell to `value`, returning the previous value.
    pub fn set(&mut self, point: &[i64], value: i64) -> i64 {
        let old = self.cell(point);
        self.add(point, value - old);
        old
    }

    /// Reads one cell.
    pub fn cell(&self, point: &[i64]) -> i64 {
        debug_assert_eq!(point.len(), self.d);
        self.cells.get(point).copied().unwrap_or(0)
    }

    /// Range sum over the closed box `[lo, hi]` by scanning the
    /// population — O(populated cells), independent of box volume.
    pub fn range_sum(&self, lo: &[i64], hi: &[i64]) -> i64 {
        debug_assert_eq!(lo.len(), self.d);
        debug_assert_eq!(hi.len(), self.d);
        self.cells
            .iter()
            .filter(|(p, _)| {
                p.iter()
                    .zip(lo.iter().zip(hi))
                    .all(|(&c, (&l, &h))| c >= l && c <= h)
            })
            .map(|(_, &v)| v)
            .sum()
    }

    /// Sum of every populated cell.
    pub fn total(&self) -> i64 {
        self.cells.values().sum()
    }

    /// Populated cells in unspecified order.
    pub fn entries(&self) -> Vec<(Vec<i64>, i64)> {
        self.cells.iter().map(|(p, &v)| (p.clone(), v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_set_query_agree_with_hand_math() {
        let mut o = Oracle::new(2);
        o.add(&[0, 0], 5);
        o.add(&[2, -1], 3);
        assert_eq!(o.set(&[0, 0], 7), 5);
        assert_eq!(o.cell(&[0, 0]), 7);
        assert_eq!(o.range_sum(&[-1, -1], &[2, 0]), 10);
        assert_eq!(o.range_sum(&[1, 0], &[3, 3]), 0);
        assert_eq!(o.total(), 10);
        // Cells cancelling back to zero leave the population.
        o.add(&[2, -1], -3);
        assert_eq!(o.entries().len(), 1);
    }
}
