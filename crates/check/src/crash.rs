//! Crash-recovery sweep: simulate a process kill at **every byte
//! offset** of the write-ahead log and check that recovery restores
//! exactly the acknowledged prefix.
//!
//! A [`ddc_core::DurableCube`] and the hash-map [`Oracle`] are driven
//! through the same [`CheckTrace`]; after every logged record the
//! oracle's state is photographed. The sweep then cuts the final log at
//! each byte offset, parses the surviving prefix, and recovers — the
//! result must equal the oracle photo for exactly that many records:
//! **no acknowledged op lost, no unacknowledged op resurrected.**
//!
//! The sweep also proves the checksum is load-bearing: a flipped
//! payload byte must be caught and cleanly truncated when verification
//! is on, while [`corruption_divergence`] shows the same damage slips
//! through and silently diverges when it is off — the predicate the
//! shrinker minimizes into a replayable `.trace`.

use ddc_core::wal::{self, WAL_FRAME_BYTES, WAL_HEADER_BYTES};
use ddc_core::{DdcConfig, DurableCube, WalConfig, WalOp};
use ddc_workload::{CheckOp, CheckTrace};

use crate::oracle::Oracle;

/// What a [`crash_sweep`] found. Clean means no failures and the
/// corruption probe was caught.
#[derive(Clone, Debug, Default)]
pub struct CrashSweepReport {
    /// Final log length in bytes.
    pub wal_bytes: usize,
    /// Records in the final log.
    pub records: usize,
    /// Kill offsets swept (`wal_bytes + 1`, including 0 and the end).
    pub offsets: usize,
    /// Full recoveries performed (one per distinct surviving prefix).
    pub recoveries: usize,
    /// Human-readable contract violations, empty when clean.
    pub failures: Vec<String>,
    /// True when the flipped-byte probe was truncated cleanly at the
    /// damaged record (vacuously true if the log had no damageable
    /// record).
    pub corruption_caught: bool,
}

impl CrashSweepReport {
    /// No lost or resurrected ops at any offset, and the checksum
    /// caught the injected damage.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.corruption_caught
    }
}

/// The durable side of one trace replay: everything that would survive
/// a kill (snapshot + log), plus the oracle photos to recover against.
struct DurableRun {
    /// Log bytes at end of trace.
    wal: Vec<u8>,
    /// Last checkpoint, if any op took one.
    snapshot: Option<Vec<u8>>,
    /// `states[r]` = sorted oracle entries after `r` records of the
    /// final log were acknowledged (`states[0]` is the snapshot state).
    states: Vec<Vec<(Vec<i64>, i64)>>,
    /// Differential mismatches observed while replaying (reads compared
    /// against the oracle as a sanity net).
    failures: Vec<String>,
}

fn sorted_entries(oracle: &Oracle) -> Vec<(Vec<i64>, i64)> {
    let mut e = oracle.entries();
    e.sort();
    e
}

/// Drives a [`DurableCube`] and the oracle through `trace`, simulating
/// the full durability protocol: [`CheckOp::SaveLoad`] checkpoints and
/// truncates the log, [`CheckOp::Crash`] recovers mid-trace from
/// snapshot + log, everything else appends records.
fn replay_durable(trace: &CheckTrace, config: DdcConfig) -> Result<DurableRun, String> {
    let d = trace.dims.len();
    let mut durable = DurableCube::<i64, Vec<u8>>::new(d, config, Vec::new())
        .map_err(|e| format!("wal create: {e}"))?;
    let mut oracle = Oracle::new(d);
    let mut snapshot: Option<Vec<u8>> = None;
    let mut states = vec![sorted_entries(&oracle)];
    let mut failures = Vec::new();

    for (i, op) in trace.ops.iter().enumerate() {
        match op {
            CheckOp::Update { point, delta } => {
                durable
                    .add(point, *delta)
                    .map_err(|e| format!("op {i}: append: {e}"))?;
                oracle.add(point, *delta);
                states.push(sorted_entries(&oracle));
            }
            CheckOp::Set { point, value } => {
                let got = durable
                    .set(point, *value)
                    .map_err(|e| format!("op {i}: append: {e}"))?;
                let want = oracle.set(point, *value);
                if got != want {
                    failures.push(format!("op {i}: set-old expected {want}, got {got}"));
                }
                states.push(sorted_entries(&oracle));
            }
            CheckOp::Query { lo, hi } => {
                let got = durable.cube().range_sum(lo, hi);
                let want = oracle.range_sum(lo, hi);
                if got != want {
                    failures.push(format!("op {i}: range_sum expected {want}, got {got}"));
                }
            }
            CheckOp::Cell { point } => {
                let got = durable.cube().cell(point);
                let want = oracle.cell(point);
                if got != want {
                    failures.push(format!("op {i}: cell expected {want}, got {got}"));
                }
            }
            CheckOp::Grow { axis, amount, low } => {
                durable
                    .log_grow(*axis, *amount, *low)
                    .map_err(|e| format!("op {i}: append: {e}"))?;
                // Bookkeeping record: the oracle state is unchanged but
                // the record count advanced, so the photo repeats.
                states.push(sorted_entries(&oracle));
            }
            CheckOp::SaveLoad => {
                let mut snap = Vec::new();
                durable
                    .checkpoint(&mut snap)
                    .map_err(|e| format!("op {i}: checkpoint: {e}"))?;
                durable
                    .reset_wal(Vec::new())
                    .map_err(|e| format!("op {i}: truncate: {e}"))?;
                snapshot = Some(snap);
                states = vec![sorted_entries(&oracle)];
            }
            CheckOp::Crash => {
                // Mid-trace kill: only snapshot + log bytes survive.
                let log = durable.wal().get_ref().clone();
                let (cube, _report) =
                    wal::recover::<i64>(d, snapshot.as_deref(), &log, config, WalConfig::default())
                        .map_err(|e| format!("op {i}: recover: {e}"))?;
                let mut got = cube.entries();
                got.sort();
                if &got != states.last().expect("states never empty") {
                    failures.push(format!("op {i}: mid-trace recovery diverged from oracle"));
                }
                // Fold the retired log into a fresh checkpoint so a
                // second crash replays from here.
                let mut snap = Vec::new();
                cube.save(&mut snap)
                    .map_err(|e| format!("op {i}: checkpoint: {e}"))?;
                snapshot = Some(snap);
                durable = DurableCube::from_recovered(cube, Vec::new())
                    .map_err(|e| format!("op {i}: fresh log: {e}"))?;
                states = vec![sorted_entries(&oracle)];
            }
            CheckOp::Flush => {}
        }
    }

    Ok(DurableRun {
        wal: durable.into_wal().into_inner(),
        snapshot,
        states,
        failures,
    })
}

/// Byte offset of the first corruptible payload byte — the low byte of
/// the first coordinate of the first `Update`/`Set` record — plus that
/// record's index. `None` when the log holds no such record.
fn corruptible_byte(wal_bytes: &[u8], ops: &[WalOp<i64>], ends: &[u64]) -> Option<(usize, usize)> {
    for (i, op) in ops.iter().enumerate() {
        if matches!(op, WalOp::Update { .. } | WalOp::Set { .. }) {
            let start = if i == 0 {
                WAL_HEADER_BYTES
            } else {
                ends[i - 1] as usize
            };
            // frame | tag(1) | arity(4) | first coordinate…
            let idx = start + WAL_FRAME_BYTES + 1 + 4;
            debug_assert!(idx < wal_bytes.len());
            return Some((idx, i));
        }
    }
    None
}

/// Simulates a kill at **every byte offset** of the trace's final
/// write-ahead log and verifies the recovery contract at each one:
/// the recovered cube equals the oracle photo for exactly the records
/// that survived the cut. Also flips one payload byte and checks the
/// checksum truncates the log cleanly at the damaged record.
pub fn crash_sweep(trace: &CheckTrace) -> Result<CrashSweepReport, String> {
    crash_sweep_with(trace, DdcConfig::dynamic())
}

/// [`crash_sweep`] under an explicit engine config — used to drive the
/// sweep over the paged leaf backend, where recovery replays the log
/// onto buffer-pool pages instead of slab memory.
pub fn crash_sweep_with(trace: &CheckTrace, config: DdcConfig) -> Result<CrashSweepReport, String> {
    let run = replay_durable(trace, config)?;
    let d = trace.dims.len();

    let full = wal::read_wal::<i64>(&run.wal, WalConfig::default())
        .map_err(|e| format!("final log unreadable: {e}"))?;
    let mut report = CrashSweepReport {
        wal_bytes: run.wal.len(),
        records: full.ops.len(),
        offsets: run.wal.len() + 1,
        failures: run.failures,
        ..Default::default()
    };
    if !full.is_clean() {
        report
            .failures
            .push(format!("final log truncated: {:?}", full.truncated));
    }
    if run.states.len() != full.ops.len() + 1 {
        report.failures.push(format!(
            "bookkeeping: {} oracle photos for {} records",
            run.states.len(),
            full.ops.len()
        ));
        return Ok(report);
    }

    // The sweep proper. `ends` is sorted, so the surviving record count
    // is monotone in the cut — one recovery per distinct count.
    let mut survivors = 0usize;
    let mut verified: Option<usize> = None;
    for cut in 0..=run.wal.len() {
        while survivors < full.ends.len() && full.ends[survivors] as usize <= cut {
            survivors += 1;
        }
        let prefix = match wal::read_wal::<i64>(&run.wal[..cut], WalConfig::default()) {
            Ok(p) => p,
            Err(e) => {
                report.failures.push(format!("cut {cut}: read: {e}"));
                continue;
            }
        };
        if prefix.ops.len() != survivors {
            report.failures.push(format!(
                "cut {cut}: {} records parsed, {survivors} were acknowledged",
                prefix.ops.len()
            ));
            continue;
        }
        if verified == Some(survivors) {
            continue;
        }
        match wal::recover::<i64>(
            d,
            run.snapshot.as_deref(),
            &run.wal[..cut],
            config,
            WalConfig::default(),
        ) {
            Ok((cube, rec)) => {
                report.recoveries += 1;
                if rec.replayed != survivors {
                    report.failures.push(format!(
                        "cut {cut}: replayed {} records, expected {survivors}",
                        rec.replayed
                    ));
                }
                let mut got = cube.entries();
                got.sort();
                if got != run.states[survivors] {
                    report.failures.push(format!(
                        "cut {cut}: recovered state diverges after {survivors} records \
                         (lost an acked op or resurrected an unacked one)"
                    ));
                }
            }
            Err(e) => report.failures.push(format!("cut {cut}: recover: {e}")),
        }
        verified = Some(survivors);
    }

    // Corruption probe: one flipped payload byte must be caught by the
    // CRC and cleanly truncated at the damaged record.
    match corruptible_byte(&run.wal, &full.ops, &full.ends) {
        Some((idx, rec)) => {
            let mut damaged = run.wal.clone();
            damaged[idx] ^= 0x01;
            match wal::recover::<i64>(
                d,
                run.snapshot.as_deref(),
                &damaged,
                config,
                WalConfig::default(),
            ) {
                Ok((cube, rec_report)) => {
                    let mut got = cube.entries();
                    got.sort();
                    report.corruption_caught = rec_report.truncated.is_some()
                        && rec_report.replayed == rec
                        && got == run.states[rec];
                    if !report.corruption_caught {
                        report.failures.push(format!(
                            "corrupt byte {idx}: expected clean truncation at record {rec}, \
                             got replayed={} truncated={:?}",
                            rec_report.replayed, rec_report.truncated
                        ));
                    }
                }
                Err(e) => report
                    .failures
                    .push(format!("corrupt byte {idx}: recover errored: {e}")),
            }
        }
        None => report.corruption_caught = true,
    }

    Ok(report)
}

/// The injected-bug detector for the shrinker: with checksum
/// verification **disabled**, the same flipped payload byte decodes to
/// a *wrong* record and recovery silently diverges from the oracle.
/// Returns `true` when `trace` exposes that divergence — pass this to
/// [`ddc_workload::shrink_trace`] to minimize the repro.
pub fn corruption_divergence(trace: &CheckTrace) -> bool {
    let config = DdcConfig::dynamic();
    let Ok(run) = replay_durable(trace, config) else {
        return false;
    };
    let Ok(full) = wal::read_wal::<i64>(&run.wal, WalConfig::default()) else {
        return false;
    };
    if run.states.len() != full.ops.len() + 1 {
        return false;
    }
    let Some((idx, _)) = corruptible_byte(&run.wal, &full.ops, &full.ends) else {
        return false;
    };
    let mut damaged = run.wal.clone();
    damaged[idx] ^= 0x01;
    let unchecked = WalConfig {
        verify_checksums: false,
        ..WalConfig::default()
    };
    match wal::recover::<i64>(
        d_of(trace),
        run.snapshot.as_deref(),
        &damaged,
        config,
        unchecked,
    ) {
        // Only a *silent* divergence counts: recovery succeeded (the
        // framing did not catch the damage) but the state is wrong.
        Ok((cube, _)) => {
            let mut got = cube.entries();
            got.sort();
            got != *run.states.last().expect("states never empty")
        }
        Err(_) => false,
    }
}

fn d_of(trace: &CheckTrace) -> usize {
    trace.dims.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_workload::{CheckTraceConfig, DdcRng};

    fn seeded_trace(seed: u64, d: usize, ops: usize) -> CheckTrace {
        let mut rng = DdcRng::seed_from_u64(seed);
        CheckTrace::generate(
            d,
            CheckTraceConfig {
                ops,
                max_cells: 512,
            },
            &mut rng,
        )
    }

    #[test]
    fn sweep_is_clean_on_seeded_traces() {
        for (seed, d) in [(11u64, 1usize), (12, 2), (13, 3)] {
            let trace = seeded_trace(seed, d, 60);
            let report = crash_sweep(&trace).unwrap();
            assert!(
                report.is_clean(),
                "d={d}: {:?}",
                report.failures.iter().take(5).collect::<Vec<_>>()
            );
            assert_eq!(report.offsets, report.wal_bytes + 1);
            assert!(report.recoveries >= 1);
        }
    }

    #[test]
    fn sweep_handles_empty_trace() {
        let trace = CheckTrace {
            origin: vec![0],
            dims: vec![4],
            ops: Vec::new(),
        };
        let report = crash_sweep(&trace).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.records, 0);
        // Header-only log: 6 kill offsets (0..=5).
        assert_eq!(report.offsets, WAL_HEADER_BYTES + 1);
    }

    #[test]
    fn disabled_checksums_let_damage_diverge() {
        // A trace with at least one update has a corruptible byte, and
        // without CRC verification the flipped coordinate must surface
        // as a silent state divergence.
        let trace = CheckTrace {
            origin: vec![0, 0],
            dims: vec![8, 8],
            ops: vec![
                CheckOp::Update {
                    point: vec![2, 3],
                    delta: 7,
                },
                CheckOp::Update {
                    point: vec![5, 1],
                    delta: -4,
                },
            ],
        };
        assert!(corruption_divergence(&trace));
        // …while the checksummed sweep stays clean on the same trace.
        assert!(crash_sweep(&trace).unwrap().is_clean());
    }
}
