//! # ddc-check
//!
//! Differential fuzzing and fault-injection harness for the Dynamic
//! Data Cube workspace. Every engine — the Table-1 baselines, the DDC
//! proper in each configuration, the lock-guarded and sharded
//! concurrent cubes, and both growable cubes — is driven through the
//! same randomized [`ddc_workload::CheckTrace`] op streams (updates,
//! sets, range queries, cell reads, growth in any direction, save/load
//! round-trips, flush barriers) and compared answer-by-answer against a
//! sparse hash-map oracle.
//!
//! On divergence the trace is **shrunk** (delta debugging over ops,
//! then coordinate/value minimization) to a replayable text repro.
//!
//! The crate also hosts the persistence fault injectors
//! ([`FailingWriter`], [`FailingReader`], [`fault_sweep`]) and the
//! bounded interleaving scheduler for the sharded cube
//! ([`check_interleavings`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

mod adapters;
mod buggy;
mod crash;
mod disk;
mod fault;
mod interleave;
pub mod lint;
mod oracle;
mod runner;
mod serve_fuzz;

pub use adapters::{
    engine_roster, CheckEngine, DdcAdapter, DurableAdapter, FixedAdapter, GrowableAdapter,
    GrowableDenseAdapter, ShardedAdapter, SharedAdapter,
};
pub use buggy::{roster_with_bug, OffByOneEngine};
pub use crash::{corruption_divergence, crash_sweep, crash_sweep_with, CrashSweepReport};
pub use disk::{
    disk_sweep, disk_sweep_with, refind_seeded_bug, run_trace_under_faults,
    run_trace_under_faults_with, shrink_fault_schedule, shrink_fault_schedule_with, DiskRunReport,
    DiskSweepConfig, DiskSweepReport, DiskViolation, FaultSchedule, RefindReport,
};
pub use fault::{
    fault_sweep, fault_sweep_growable, FailingReader, FailingWriter, FaultSweepReport,
};
pub use interleave::{check_interleavings, InterleaveReport, Update};
pub use oracle::Oracle;
pub use runner::{
    fuzz, fuzz_with, run_trace, run_trace_on, Divergence, FuzzFailure, FuzzOutcome, RunStats,
};
pub use serve_fuzz::{
    find_parser_quirk, fuzz_parser_config, fuzz_serve_parser, ParserQuirk, ServeFuzzFailure,
    ServeFuzzReport, ServeOp,
};
