//! `ddc-lint` — repo-invariant lint suite over the workspace source.
//!
//! ```text
//! ddc-lint                      # lint crates/*/src from the cwd
//! ddc-lint --root /path/repo    # explicit repo root
//! ddc-lint --allow lint-allow.txt
//! ```
//!
//! Exits 1 on any finding not waived by the allowlist; stale allowlist
//! entries are reported but do not fail the run.

use std::path::PathBuf;

use ddc_check::lint;

fn main() {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--allow" if i + 1 < args.len() => {
                allow_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => {
                eprintln!(
                    "ddc-lint: unknown argument `{other}` (expected --root DIR, --allow FILE)"
                );
                std::process::exit(2);
            }
        }
    }

    let allow_path = allow_path.unwrap_or_else(|| root.join("lint-allow.txt"));
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("ddc-lint: cannot read {}: {e}", allow_path.display());
            std::process::exit(2);
        }
    };

    match lint::run_lints(&root, &allowlist) {
        Ok((blocking, waived, stale, allow)) => {
            for f in &blocking {
                println!("{f}");
            }
            for i in &stale {
                let a = &allow[*i];
                eprintln!(
                    "ddc-lint: stale allowlist entry (matched nothing): {} {} {}",
                    a.rule, a.path, a.needle
                );
            }
            eprintln!(
                "ddc-lint: {} blocking, {} waived, {} stale allowlist entries",
                blocking.len(),
                waived.len(),
                stale.len()
            );
            std::process::exit(if blocking.is_empty() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("ddc-lint: {e}");
            std::process::exit(2);
        }
    }
}
