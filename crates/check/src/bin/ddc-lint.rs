//! `ddc-lint` — repo-invariant semantic lint suite over the workspace
//! source (see `ddc_check::lint` for the rule set).
//!
//! ```text
//! ddc-lint                      # lint crates/*/src from the cwd
//! ddc-lint --root /path/repo    # explicit repo root
//! ddc-lint --allow lint-allow.txt
//! ddc-lint --rule lock-order    # run a single rule
//! ddc-lint --json findings.json # write the findings artifact
//! ddc-lint --fixtures           # re-find the seeded fixture corpus
//! ddc-lint --pr N               # override the current PR number
//! ```
//!
//! Exits 1 on any blocking finding, stale allowlist entry, or expired
//! allowlist entry — waivers are leases (`expires=<PR>`), and an
//! entry that outlives its lease or the code it excused fails the run
//! with its documented rationale.

use std::path::PathBuf;

use ddc_check::lint;

/// Where the seeded-violation corpus lives relative to the repo root.
const FIXTURES: &str = "crates/check/tests/lint_fixtures";

fn main() {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut fixtures = false;
    let mut pr_override: Option<u64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--allow" if i + 1 < args.len() => {
                allow_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--rule" if i + 1 < args.len() => {
                rule = Some(args[i + 1].clone());
                i += 2;
            }
            "--json" if i + 1 < args.len() => {
                json_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--pr" if i + 1 < args.len() => match args[i + 1].parse() {
                Ok(n) => {
                    pr_override = Some(n);
                    i += 2;
                }
                Err(_) => {
                    eprintln!("ddc-lint: --pr expects a number, got `{}`", args[i + 1]);
                    std::process::exit(2);
                }
            },
            "--fixtures" => {
                fixtures = true;
                i += 1;
            }
            other => {
                eprintln!(
                    "ddc-lint: unknown argument `{other}` (expected --root DIR, --allow FILE, \
                     --rule NAME, --json FILE, --fixtures, --pr N)"
                );
                std::process::exit(2);
            }
        }
    }

    if fixtures {
        run_fixture_mode(&root);
        return;
    }

    let allow_path = allow_path.unwrap_or_else(|| root.join("lint-allow.txt"));
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("ddc-lint: cannot read {}: {e}", allow_path.display());
            std::process::exit(2);
        }
    };
    let current_pr = pr_override.unwrap_or_else(|| lint::current_pr_from_changes(&root));

    match lint::run_lints(&root, &allowlist, current_pr, rule.as_deref()) {
        Ok(report) => {
            if let Some(p) = &json_path {
                if let Err(e) = std::fs::write(p, lint::report_json(&report)) {
                    eprintln!("ddc-lint: cannot write {}: {e}", p.display());
                    std::process::exit(2);
                }
            }
            for f in &report.blocking {
                println!("{f}");
            }
            for i in &report.stale {
                let a = &report.entries[*i];
                eprintln!(
                    "ddc-lint: stale allowlist entry (line {}, matched nothing — remove it): \
                     {} {} expires={} {}",
                    a.line, a.rule, a.path, a.expires, a.needle
                );
            }
            for i in &report.expired {
                let a = &report.entries[*i];
                eprintln!(
                    "ddc-lint: expired allowlist entry (line {}, lease ended at PR {}, now PR \
                     {current_pr} — fix the code or re-justify with a new lease): {} {} {}",
                    a.line, a.expires, a.rule, a.path, a.needle
                );
                if !a.rationale.is_empty() {
                    eprintln!("ddc-lint:   original rationale: {}", a.rationale);
                }
            }
            eprintln!(
                "ddc-lint: {} blocking, {} waived, {} stale, {} expired (PR {current_pr})",
                report.blocking.len(),
                report.waived.len(),
                report.stale.len(),
                report.expired.len()
            );
            std::process::exit(if report.is_clean() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("ddc-lint: {e}");
            std::process::exit(2);
        }
    }
}

/// `--fixtures`: the analyzer must re-find every seeded violation in
/// the corpus — and nothing else.
fn run_fixture_mode(root: &std::path::Path) {
    match lint::run_fixtures(&root.join(FIXTURES)) {
        Ok(r) => {
            for (rule, (refound, total)) in &r.per_rule {
                println!("ddc-lint: fixtures [{rule}] {refound}/{total}");
            }
            for (path, line, rule) in &r.missing {
                eprintln!("ddc-lint: MISSED seeded violation {path}:{line} [{rule}]");
            }
            for f in &r.unexpected {
                eprintln!("ddc-lint: unexpected fixture finding {f}");
            }
            println!(
                "ddc-lint: seeded violations re-found: {}/{}",
                r.refound, r.expected
            );
            std::process::exit(if r.is_clean() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("ddc-lint: {e}");
            std::process::exit(2);
        }
    }
}
