//! A deliberately wrong engine, used to prove the harness catches bugs.
//!
//! The harness's own acceptance test is circular without a known-bad
//! subject: [`OffByOneEngine`] answers range sums with `hi[0]` treated
//! as *exclusive* whenever the query spans more than one cell along
//! axis 0 — the classic fence-post error — and is otherwise perfect.
//! The fuzzer must catch it and shrink the repro to a handful of ops.

use ddc_workload::BoxState;

use crate::adapters::{engine_roster, CheckEngine};
use crate::oracle::Oracle;

/// A perfect cube with an off-by-one range query along axis 0.
pub struct OffByOneEngine {
    state: Oracle,
}

impl OffByOneEngine {
    /// Fresh buggy engine of `init`'s dimensionality.
    pub fn new(init: &BoxState) -> Self {
        Self {
            state: Oracle::new(init.ndim()),
        }
    }
}

impl CheckEngine for OffByOneEngine {
    fn name(&self) -> &str {
        "off-by-one (intentional)"
    }

    fn add(&mut self, point: &[i64], delta: i64) {
        self.state.add(point, delta);
    }

    fn set(&mut self, point: &[i64], value: i64) -> i64 {
        self.state.set(point, value)
    }

    fn cell(&self, point: &[i64]) -> i64 {
        self.state.cell(point)
    }

    fn range_sum(&self, lo: &[i64], hi: &[i64]) -> i64 {
        if hi[0] > lo[0] {
            // The injected bug: drop the last slab along axis 0.
            let mut h = hi.to_vec();
            h[0] -= 1;
            self.state.range_sum(lo, &h)
        } else {
            self.state.range_sum(lo, hi)
        }
    }

    fn grow(&mut self, _new_box: &BoxState) {}
}

/// The full roster plus the buggy engine — a divergence is guaranteed
/// as soon as a trace exercises a multi-cell query along axis 0.
pub fn roster_with_bug(init: &BoxState) -> Vec<Box<dyn CheckEngine>> {
    let mut engines = engine_roster(init);
    engines.push(Box::new(OffByOneEngine::new(init)));
    engines
}
