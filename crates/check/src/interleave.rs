//! Bounded interleaving exploration for the sharded cube.
//!
//! Two writers' update sequences can interleave in `C(|A|+|B|, |A|)`
//! orders. Because the measure is an Abelian group, every order must
//! leave the cube in the same state, and because reads go *through* the
//! write queues, a query issued anywhere in the schedule must see every
//! update enqueued before it. This module enumerates every merge order
//! (model-checking style: deterministic, single-threaded, exhaustive up
//! to a bound) and replays each against [`ShardedCube`] and the oracle.

use ddc_array::{Region, Shape};
use ddc_core::{DdcConfig, ShardConfig, ShardedCube};

use crate::oracle::Oracle;

/// An update destined for a physical cell.
pub type Update = (Vec<usize>, i64);

/// Summary of an interleaving sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterleaveReport {
    /// Merge orders replayed.
    pub orders: usize,
    /// Updates applied across all orders.
    pub ops_run: usize,
    /// Read-through probes compared against the oracle.
    pub probes: usize,
}

fn enumerate_merges(a: usize, b: usize, cap: usize) -> Vec<Vec<bool>> {
    // `true` = take next op from A. Depth-first, capped.
    let mut orders = Vec::new();
    let mut cur = Vec::with_capacity(a + b);
    fn rec(ra: usize, rb: usize, cur: &mut Vec<bool>, out: &mut Vec<Vec<bool>>, cap: usize) {
        if out.len() >= cap {
            return;
        }
        if ra == 0 && rb == 0 {
            out.push(cur.clone());
            return;
        }
        if ra > 0 {
            cur.push(true);
            rec(ra - 1, rb, cur, out, cap);
            cur.pop();
        }
        if rb > 0 {
            cur.push(false);
            rec(ra, rb - 1, cur, out, cap);
            cur.pop();
        }
    }
    rec(a, b, &mut cur, &mut orders, cap);
    orders
}

/// Replays every merge order (up to `max_orders`) of writers `a` and
/// `b` against a fresh [`ShardedCube`] under `shard_config`, probing
/// read-through visibility after each enqueue and full agreement with
/// the oracle after the final flush. Returns the first violation as a
/// human-readable report.
pub fn check_interleavings(
    shape: &Shape,
    config: DdcConfig,
    shard_config: ShardConfig,
    a: &[Update],
    b: &[Update],
    max_orders: usize,
) -> Result<InterleaveReport, String> {
    for u in a.iter().chain(b) {
        assert!(shape.contains(&u.0), "update {u:?} outside {shape:?}");
    }
    let mut report = InterleaveReport::default();
    let full = Region::new(
        &vec![0; shape.ndim()],
        &shape.dims().iter().map(|&n| n - 1).collect::<Vec<_>>(),
    );

    for order in enumerate_merges(a.len(), b.len(), max_orders) {
        report.orders += 1;
        let cube = ShardedCube::<i64>::new(shape.clone(), config, shard_config);
        let mut oracle = Oracle::new(shape.ndim());
        let (mut ia, mut ib) = (0usize, 0usize);
        for (step, &from_a) in order.iter().enumerate() {
            let (p, delta) = if from_a {
                let u = &a[ia];
                ia += 1;
                u
            } else {
                let u = &b[ib];
                ib += 1;
                u
            };
            cube.update(p, *delta);
            let logical: Vec<i64> = p.iter().map(|&c| c as i64).collect();
            oracle.add(&logical, *delta);
            report.ops_run += 1;

            // Read-through: the enqueued delta is visible immediately,
            // whether or not a group commit has happened yet.
            let seen = cube.cell_value(p);
            let expected = oracle.cell(&logical);
            report.probes += 1;
            if seen != expected {
                return Err(format!(
                    "order {:?} step {step}: cell {p:?} reads {seen}, oracle {expected} \
                     (read-through violated before flush)",
                    order
                ));
            }
        }

        cube.flush();
        // Post-flush: totals and every touched cell agree.
        let total = cube.query(&full);
        report.probes += 1;
        if total != oracle.total() {
            return Err(format!(
                "order {:?}: post-flush total {total} != oracle {}",
                order,
                oracle.total()
            ));
        }
        for (logical, v) in oracle.entries() {
            let p: Vec<usize> = logical.iter().map(|&c| c as usize).collect();
            let seen = cube.cell_value(&p);
            report.probes += 1;
            if seen != v {
                return Err(format!(
                    "order {:?}: post-flush cell {p:?} reads {seen}, oracle {v}",
                    order
                ));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_enumeration_counts_binomially() {
        // C(4, 2) = 6, C(6, 3) = 20.
        assert_eq!(enumerate_merges(2, 2, usize::MAX).len(), 6);
        assert_eq!(enumerate_merges(3, 3, usize::MAX).len(), 20);
        // The cap truncates deterministically.
        assert_eq!(enumerate_merges(3, 3, 7).len(), 7);
    }
}
