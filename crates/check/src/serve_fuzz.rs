//! Request-mutation fuzzer for the serve wire parser.
//!
//! The serving layer's [`RequestParser`] promises three things that are
//! easy to break and hard to unit-test exhaustively: it parses the same
//! byte stream to the same frames *no matter how the bytes are split
//! across reads*; it rejects malformed input with a typed error instead
//! of desynchronizing; and an abruptly disconnected peer leaves it
//! waiting, never wedged or wrong. This module checks all three the
//! same way `runner::fuzz` checks the range-sum engines — generate a
//! seeded op stream, run it through the subject, and compare against an
//! oracle constructed alongside the stream.
//!
//! A [`ServeOp`] is one message on the wire: a valid line-protocol
//! command, a valid HTTP/1.1 request (randomized header casing, bodies
//! salted with `\r` and `\n`), or a terminal mutation (malformed start
//! line, oversized head, too many headers, bad or conflicting
//! `Content-Length`, chunked transfer-encoding, non-UTF-8 line). Valid
//! ops carry their expected [`Frame`]; mutations carry the status the
//! parser must answer before closing. The serialized stream is then fed
//! twice — once whole, once under a random chunk-split plan (sometimes
//! byte-at-a-time) — and both runs must agree with the oracle exactly.
//! A truncated replay models the abrupt disconnect: it must yield a
//! prefix of the expected frames and no spurious error.
//!
//! The same harness doubles as the seeded-bug detector, mirroring
//! [`crate::buggy`]: [`find_parser_quirk`] runs the identical traffic
//! through a [`ParserQuirk`] fixture and reports the first iteration
//! whose frames diverge from the real parser. A fuzzer that cannot find
//! `CaseSensitiveContentLength` or `DropSplitCarriageReturn` is not
//! exercising header casing or split boundaries, so the test suite
//! requires both to be found.

pub use ddc_serve::http::ParserQuirk;

use ddc_serve::{Frame, HttpRequest, ParseError, ParserConfig, RequestParser};
use ddc_workload::DdcRng;

/// Bounds used by the fuzzer: small enough that oversized-input
/// mutations cost bytes, not megabytes, while leaving room for every
/// valid op the generator emits.
pub fn fuzz_parser_config() -> ParserConfig {
    ParserConfig {
        max_head_bytes: 256,
        max_headers: 8,
        max_body_bytes: 512,
    }
}

/// One generated message plus what the parser must do with it.
#[derive(Clone, Debug)]
pub enum ServeOp {
    /// A well-formed message: the wire bytes and the exact frame they
    /// must produce.
    Valid {
        /// Serialized bytes as they would arrive from the socket.
        wire: Vec<u8>,
        /// The frame the parser must yield for them.
        expect: Frame,
    },
    /// A mutation the parser must reject. Terminal: the parser poisons
    /// itself, so nothing can follow on the stream.
    Mutation {
        /// Serialized malformed bytes.
        wire: Vec<u8>,
        /// Status [`ParseError::status`] must map the rejection to.
        status: u16,
    },
}

impl ServeOp {
    fn wire(&self) -> &[u8] {
        match self {
            ServeOp::Valid { wire, .. } | ServeOp::Mutation { wire, .. } => wire,
        }
    }
}

/// What a clean fuzz run covered.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeFuzzReport {
    /// Iterations (independent op streams) executed.
    pub iterations: u64,
    /// Frames compared against the oracle across all runs.
    pub frames: u64,
    /// Mutations whose rejection status was verified.
    pub mutations: u64,
    /// Truncated (abrupt-disconnect) replays executed.
    pub truncations: u64,
    /// Chunks fed across all split-plan replays.
    pub chunks: u64,
}

/// A divergence between the parser and the oracle — a real parser bug.
#[derive(Clone, Debug)]
pub struct ServeFuzzFailure {
    /// Iteration (seed offset) that failed.
    pub iteration: u64,
    /// Base seed of the failing run, for replay.
    pub seed: u64,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// The full wire bytes of the failing stream.
    pub wire: Vec<u8>,
}

impl std::fmt::Display for ServeFuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serve parser divergence at iteration {} (seed {:#x}, {} wire bytes): {}",
            self.iteration,
            self.seed,
            self.wire.len(),
            self.detail
        )
    }
}

// ---------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------

fn line_terminator(rng: &mut DdcRng) -> &'static str {
    if rng.gen_bool(0.3) {
        "\r\n"
    } else {
        "\n"
    }
}

/// A valid line-protocol command and its expected frame.
fn gen_line_op(rng: &mut DdcRng) -> ServeOp {
    let text = match rng.gen_range(0..5usize) {
        0 => "ping".to_string(),
        1 => format!(
            "u {},{} {}",
            rng.gen_range(0..64usize),
            rng.gen_range(0..64usize),
            rng.gen_range(-100i64..=100)
        ),
        2 => {
            let (x, y) = (rng.gen_range(0..32usize), rng.gen_range(0..32usize));
            format!(
                "q {x},{y} {},{}",
                x + rng.gen_range(0..8usize),
                y + rng.gen_range(0..8usize)
            )
        }
        3 => format!(
            "p {},{}",
            rng.gen_range(0..64usize),
            rng.gen_range(0..64usize)
        ),
        _ => format!("t tenant-{}", rng.gen_range(0..9usize)),
    };
    let mut wire = text.clone().into_bytes();
    wire.extend_from_slice(line_terminator(rng).as_bytes());
    ServeOp::Valid {
        wire,
        expect: Frame::Line(text),
    }
}

/// `Content-Length` in a randomized spelling; canonical ~1 in 4.
fn content_length_spelling(rng: &mut DdcRng) -> &'static str {
    match rng.gen_range(0..4usize) {
        0 => "Content-Length",
        1 => "content-length",
        2 => "CONTENT-LENGTH",
        _ => "CoNtEnT-lEnGtH",
    }
}

/// Body bytes salted with the characters that break naive parsers:
/// `\r` at chunk boundaries and `\n` mid-body.
fn gen_body(rng: &mut DdcRng) -> Vec<u8> {
    let len = rng.gen_range(1..48usize);
    (0..len)
        .map(|_| match rng.gen_range(0..8usize) {
            0 => b'\r',
            1 => b'\n',
            2 => b',',
            3 => b' ',
            _ => b'a' + rng.gen_range(0..26usize) as u8,
        })
        .collect()
}

/// A valid HTTP/1.1 request and its expected frame.
fn gen_http_op(rng: &mut DdcRng) -> ServeOp {
    let method = ["GET", "POST", "PUT", "HEAD"][rng.gen_range(0..4usize)].to_string();
    let target = [
        "/ingest",
        "/metrics",
        "/healthz",
        "/query?lo=0,0&hi=3,3",
        "/prefix?at=5,5",
    ][rng.gen_range(0..5usize)]
    .to_string();
    let mut headers: Vec<(String, String)> = Vec::new();
    if rng.gen_bool(0.5) {
        headers.push(("Host".to_string(), "fuzz.local".to_string()));
    }
    if rng.gen_bool(0.3) {
        headers.push((
            "X-Ddc-Tenant".to_string(),
            format!("t{}", rng.gen_range(0..9usize)),
        ));
    }
    let body = if rng.gen_bool(0.6) {
        gen_body(rng)
    } else {
        Vec::new()
    };
    if !body.is_empty() || rng.gen_bool(0.2) {
        headers.push((
            content_length_spelling(rng).to_string(),
            body.len().to_string(),
        ));
    }
    let mut wire = Vec::new();
    let eol = line_terminator(rng);
    wire.extend_from_slice(format!("{method} {target} HTTP/1.1{eol}").as_bytes());
    for (name, value) in &headers {
        wire.extend_from_slice(format!("{name}: {value}{eol}").as_bytes());
    }
    wire.extend_from_slice(eol.as_bytes());
    wire.extend_from_slice(&body);
    ServeOp::Valid {
        wire,
        expect: Frame::Http(HttpRequest {
            method,
            target,
            minor_version: 1,
            headers,
            body,
        }),
    }
}

/// A terminal mutation: malformed bytes plus the status the parser must
/// answer before closing.
fn gen_mutation(rng: &mut DdcRng, config: &ParserConfig) -> ServeOp {
    let (wire, status): (Vec<u8>, u16) = match rng.gen_range(0..8usize) {
        // Start line with the wrong token count or version.
        0 => (b"GET /only-two-parts\r\n\r\n".to_vec(), 400),
        1 => (b"GET /x HTTP/2.0\r\n\r\n".to_vec(), 400),
        // A header without the `name: value` shape.
        2 => (b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(), 400),
        // Content-Length that is not a number, or that disagrees.
        3 => (
            b"POST / HTTP/1.1\r\nContent-Length: twelve\r\n\r\n".to_vec(),
            400,
        ),
        4 => (
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\ncontent-length: 4\r\n\r\n".to_vec(),
            400,
        ),
        // Oversized head: one unterminated line past the cap.
        5 => (vec![b'A'; config.max_head_bytes + 64], 431),
        // More headers than the cap allows.
        6 => {
            let mut w = b"GET / HTTP/1.1\r\n".to_vec();
            for i in 0..=config.max_headers {
                w.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
            }
            w.extend_from_slice(b"\r\n");
            (w, 431)
        }
        // A transfer-encoding the server does not implement.
        _ => (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            501,
        ),
    };
    // A ninth shape rides on a coin flip so the distribution still
    // visits it: declared body beyond the cap (413), or a line-protocol
    // command that is not UTF-8 (400).
    if rng.gen_bool(0.2) {
        return if rng.gen_bool(0.5) {
            ServeOp::Mutation {
                wire: format!(
                    "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    config.max_body_bytes + 1
                )
                .into_bytes(),
                status: 413,
            }
        } else {
            ServeOp::Mutation {
                wire: b"u 1,1 \xff\xfe\n".to_vec(),
                status: 400,
            }
        };
    }
    ServeOp::Mutation { wire, status }
}

/// One seeded stream: a handful of valid messages, optionally capped by
/// a terminal mutation.
fn gen_ops(rng: &mut DdcRng, config: &ParserConfig) -> Vec<ServeOp> {
    let n = rng.gen_range(1..7usize);
    let mut ops: Vec<ServeOp> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.5) {
                gen_line_op(rng)
            } else {
                gen_http_op(rng)
            }
        })
        .collect();
    if rng.gen_bool(0.35) {
        ops.push(gen_mutation(rng, config));
    }
    ops
}

/// Random cut points over `len` bytes. Every ~6th plan is
/// byte-at-a-time, the densest split a socket can produce.
fn gen_chunk_plan(rng: &mut DdcRng, len: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    if rng.gen_bool(0.16) {
        return (1..len).collect();
    }
    (1..len).filter(|_| rng.gen_bool(0.25)).collect()
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Everything one parser run produced: frames until the first error (if
/// any) and that error's status.
#[derive(Debug, PartialEq, Eq)]
struct RunResult {
    frames: Vec<Frame>,
    error: Option<ParseError>,
}

fn drain(parser: &mut RequestParser, into: &mut RunResult) {
    if into.error.is_some() {
        return;
    }
    loop {
        match parser.poll() {
            Ok(Some(f)) => into.frames.push(f),
            Ok(None) => return,
            Err(e) => {
                into.error = Some(e);
                return;
            }
        }
    }
}

/// Feeds `wire` split at `cuts` (byte offsets, ascending), draining
/// frames between chunks exactly as the server's read loop does.
fn run_chunked(parser: &mut RequestParser, wire: &[u8], cuts: &[usize]) -> RunResult {
    let mut result = RunResult {
        frames: Vec::new(),
        error: None,
    };
    let mut prev = 0usize;
    for &cut in cuts.iter().chain(std::iter::once(&wire.len())) {
        parser.feed(&wire[prev..cut]);
        prev = cut;
        drain(parser, &mut result);
    }
    result
}

fn expected_of(ops: &[ServeOp]) -> (Vec<Frame>, Option<u16>) {
    let mut frames = Vec::new();
    let mut status = None;
    for op in ops {
        match op {
            ServeOp::Valid { expect, .. } => frames.push(expect.clone()),
            ServeOp::Mutation { status: s, .. } => status = Some(*s),
        }
    }
    (frames, status)
}

fn wire_of(ops: &[ServeOp]) -> Vec<u8> {
    let mut wire = Vec::new();
    for op in ops {
        wire.extend_from_slice(op.wire());
    }
    wire
}

/// Fuzzes the real parser: `iterations` seeded op streams, each fed
/// whole and under a random split plan, compared frame-by-frame against
/// the generation-time oracle, then replayed truncated to model an
/// abrupt disconnect. Any disagreement is a parser bug and comes back
/// as a replayable [`ServeFuzzFailure`].
pub fn fuzz_serve_parser(seed: u64, iterations: u64) -> Result<ServeFuzzReport, ServeFuzzFailure> {
    let config = fuzz_parser_config();
    let mut report = ServeFuzzReport::default();
    for iteration in 0..iterations {
        let mut rng = DdcRng::seed_from_u64(seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let ops = gen_ops(&mut rng, &config);
        let wire = wire_of(&ops);
        let (want_frames, want_status) = expected_of(&ops);
        let fail = |detail: String| ServeFuzzFailure {
            iteration,
            seed,
            detail,
            wire: wire.clone(),
        };

        // Whole-stream run against the construction oracle.
        let mut parser = RequestParser::new(config);
        let whole = run_chunked(&mut parser, &wire, &[]);
        if whole.frames != want_frames {
            return Err(fail(format!(
                "whole-stream frames {:?} != expected {:?}",
                whole.frames, want_frames
            )));
        }
        match (&whole.error, want_status) {
            (None, None) => {}
            (Some(e), Some(s)) if e.status() == s => {}
            (got, want) => {
                return Err(fail(format!(
                    "whole-stream error {got:?} but expected status {want:?}"
                )))
            }
        }

        // Split-plan run must agree byte-for-byte with the whole run.
        let cuts = gen_chunk_plan(&mut rng, wire.len());
        let mut parser = RequestParser::new(config);
        let split = run_chunked(&mut parser, &wire, &cuts);
        if split != whole {
            return Err(fail(format!(
                "split plan ({} chunks) diverged: {split:?} != {whole:?}",
                cuts.len() + 1
            )));
        }
        report.chunks += cuts.len() as u64 + 1;

        // Abrupt disconnect: cut the stream anywhere. The parser must
        // end up with a prefix of the expected frames, and may only
        // error if the full stream would have errored the same way.
        if !wire.is_empty() {
            let keep = rng.gen_range(0..wire.len());
            let mut parser = RequestParser::new(config);
            let cut = run_chunked(&mut parser, &wire[..keep], &[]);
            if cut.frames.len() > want_frames.len()
                || cut.frames[..] != want_frames[..cut.frames.len()]
            {
                return Err(fail(format!(
                    "truncation at {keep} produced non-prefix frames {:?}",
                    cut.frames
                )));
            }
            if let Some(e) = &cut.error {
                if want_status != Some(e.status()) {
                    return Err(fail(format!(
                        "truncation at {keep} invented error {e:?} (expected status {want_status:?})"
                    )));
                }
            }
            report.truncations += 1;
        }

        report.iterations += 1;
        report.frames += want_frames.len() as u64 * 2;
        report.mutations += u64::from(want_status.is_some());
    }
    Ok(report)
}

/// Runs the fuzzer's traffic through a seeded buggy parser
/// ([`ParserQuirk`]) alongside the real one and returns the first
/// iteration whose results diverge — the serve-layer analogue of
/// [`crate::roster_with_bug`]: a fixture the suite must FIND. `None`
/// means the fuzzer failed to expose the bug within `max_iterations`,
/// which the tests treat as a coverage regression.
pub fn find_parser_quirk(quirk: ParserQuirk, seed: u64, max_iterations: u64) -> Option<u64> {
    let config = fuzz_parser_config();
    for iteration in 0..max_iterations {
        let mut rng = DdcRng::seed_from_u64(seed ^ iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let ops = gen_ops(&mut rng, &config);
        let wire = wire_of(&ops);
        let cuts = gen_chunk_plan(&mut rng, wire.len());
        let mut real = RequestParser::new(config);
        let mut buggy = RequestParser::new_with_quirk(config, quirk);
        let a = run_chunked(&mut real, &wire, &cuts);
        let b = run_chunked(&mut buggy, &wire, &cuts);
        // A buggy parser can also diverge by *waiting* — fewer frames
        // with bytes still buffered — which the result compare catches
        // as a frame-list mismatch on the same traffic.
        if a != b {
            return Some(iteration);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const FUZZ_SEED: u64 = 0xF022;

    #[test]
    fn fuzzer_is_clean_on_the_real_parser() {
        let report = fuzz_serve_parser(FUZZ_SEED, 400).expect("real parser must not diverge");
        assert_eq!(report.iterations, 400);
        assert!(report.frames > 500, "frames compared: {}", report.frames);
        assert!(report.mutations > 50, "mutations hit: {}", report.mutations);
        assert!(report.chunks > report.iterations);
    }

    #[test]
    fn seeded_case_sensitive_content_length_bug_is_found() {
        let found = find_parser_quirk(ParserQuirk::CaseSensitiveContentLength, FUZZ_SEED, 200);
        assert!(found.is_some(), "fuzzer must expose the casing bug");
    }

    #[test]
    fn seeded_split_carriage_return_bug_is_found() {
        let found = find_parser_quirk(ParserQuirk::DropSplitCarriageReturn, FUZZ_SEED, 400);
        assert!(found.is_some(), "fuzzer must expose the split-CR bug");
    }

    #[test]
    fn quirk_search_reports_miss_when_traffic_cannot_trigger_it() {
        // Zero iterations cannot find anything — the miss path.
        let found = find_parser_quirk(ParserQuirk::DropSplitCarriageReturn, 1, 0);
        assert!(found.is_none());
    }
}
