//! Trace execution: replay a [`CheckTrace`] against the oracle and every
//! engine in lockstep, reporting the first divergence — and the seeded
//! fuzz loop that generates, runs, and shrinks traces.

use std::fmt;

use ddc_core::obs;
use ddc_workload::{shrink_trace, BoxState, CheckOp, CheckTrace, CheckTraceConfig, DdcRng};

use crate::adapters::{engine_roster, CheckEngine};
use crate::oracle::Oracle;

/// One engine disagreeing with the oracle.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Name of the diverging engine.
    pub engine: String,
    /// Index of the operation that exposed it.
    pub op_index: usize,
    /// The operation itself.
    pub op: CheckOp,
    /// What the oracle answered.
    pub expected: i64,
    /// What the engine answered.
    pub actual: i64,
    /// Which answer diverged (`range_sum`, `cell`, `set-old`,
    /// `save/load`, `final-total`).
    pub what: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "engine '{}' diverged at op {} ({:?}): {} expected {}, got {}",
            self.engine, self.op_index, self.op, self.what, self.expected, self.actual
        )
    }
}

/// Tallies from a clean trace run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Operations executed.
    pub ops: usize,
    /// Answers compared against the oracle (per engine).
    pub comparisons: usize,
    /// Wrapping sum of every compared answer — a replay checksum.
    pub checksum: i64,
}

/// Replays `trace` against the full [`engine_roster`].
pub fn run_trace(trace: &CheckTrace) -> Result<RunStats, Box<Divergence>> {
    run_trace_on(trace, engine_roster(&BoxState::initial(trace)))
}

/// Replays `trace` against a caller-supplied set of engines (used to
/// inject deliberately buggy ones in the harness's own tests).
pub fn run_trace_on(
    trace: &CheckTrace,
    mut engines: Vec<Box<dyn CheckEngine>>,
) -> Result<RunStats, Box<Divergence>> {
    let mut oracle = Oracle::new(trace.dims.len());
    let mut state = BoxState::initial(trace);
    let mut stats = RunStats::default();

    let check = |engine: &str,
                 i: usize,
                 op: &CheckOp,
                 what: &str,
                 expected: i64,
                 actual: i64|
     -> Result<(), Box<Divergence>> {
        if expected == actual {
            Ok(())
        } else {
            Err(Box::new(Divergence {
                engine: engine.to_string(),
                op_index: i,
                op: op.clone(),
                expected,
                actual,
                what: what.to_string(),
            }))
        }
    };

    for (i, op) in trace.ops.iter().enumerate() {
        stats.ops += 1;
        match op {
            CheckOp::Update { point, delta } => {
                oracle.add(point, *delta);
                for e in engines.iter_mut() {
                    e.add(point, *delta);
                }
            }
            CheckOp::Set { point, value } => {
                let expected_old = oracle.set(point, *value);
                for e in engines.iter_mut() {
                    let actual_old = e.set(point, *value);
                    stats.comparisons += 1;
                    stats.checksum = stats.checksum.wrapping_add(actual_old);
                    check(e.name(), i, op, "set-old", expected_old, actual_old)?;
                }
            }
            CheckOp::Query { lo, hi } => {
                let expected = oracle.range_sum(lo, hi);
                for e in engines.iter() {
                    let actual = e.range_sum(lo, hi);
                    stats.comparisons += 1;
                    stats.checksum = stats.checksum.wrapping_add(actual);
                    check(e.name(), i, op, "range_sum", expected, actual)?;
                }
            }
            CheckOp::Cell { point } => {
                let expected = oracle.cell(point);
                for e in engines.iter() {
                    let actual = e.cell(point);
                    stats.comparisons += 1;
                    stats.checksum = stats.checksum.wrapping_add(actual);
                    check(e.name(), i, op, "cell", expected, actual)?;
                }
            }
            CheckOp::Grow { axis, amount, low } => {
                state.grow(*axis, *amount, *low);
                for e in engines.iter_mut() {
                    e.grow(&state);
                }
            }
            CheckOp::SaveLoad => {
                for e in engines.iter_mut() {
                    if let Err(msg) = e.save_load() {
                        return Err(Box::new(Divergence {
                            engine: e.name().to_string(),
                            op_index: i,
                            op: op.clone(),
                            expected: 0,
                            actual: 0,
                            what: format!("save/load: {msg}"),
                        }));
                    }
                }
            }
            CheckOp::Flush => {
                for e in engines.iter_mut() {
                    e.flush();
                }
            }
            CheckOp::Crash => {
                for e in engines.iter_mut() {
                    if let Err(msg) = e.crash() {
                        return Err(Box::new(Divergence {
                            engine: e.name().to_string(),
                            op_index: i,
                            op: op.clone(),
                            expected: 0,
                            actual: 0,
                            what: format!("crash-recovery: {msg}"),
                        }));
                    }
                }
            }
        }
    }

    // Closing invariant: every engine agrees on the whole-box total.
    let lo = state.origin.clone();
    let hi: Vec<i64> = state
        .origin
        .iter()
        .zip(&state.dims)
        .map(|(&o, &n)| o + n as i64 - 1)
        .collect();
    let expected = oracle.range_sum(&lo, &hi);
    let closing = CheckOp::Query {
        lo: lo.clone(),
        hi: hi.clone(),
    };
    for e in engines.iter() {
        let actual = e.range_sum(&lo, &hi);
        stats.comparisons += 1;
        check(
            e.name(),
            trace.ops.len(),
            &closing,
            "final-total",
            expected,
            actual,
        )?;
    }
    Ok(stats)
}

/// One fuzz case that diverged, with its shrunk reproduction.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Case number within the run.
    pub case: usize,
    /// Seed that generated the failing trace.
    pub seed: u64,
    /// Divergence re-observed on the shrunk trace.
    pub divergence: Divergence,
    /// Trace as generated.
    pub original: CheckTrace,
    /// Minimized reproduction.
    pub shrunk: CheckTrace,
    /// Rendered observability spans from replaying the shrunk trace with
    /// tracing forced on — the timing context of the failing ops.
    pub trace_dump: String,
}

/// Summary of a fuzz run.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Cases executed (stops early on the first failure).
    pub cases: usize,
    /// Total operations replayed across all cases.
    pub ops_run: usize,
    /// Answers compared across all cases and engines.
    pub comparisons: usize,
    /// First failure, if any, already shrunk.
    pub failure: Option<FuzzFailure>,
}

/// Runs `cases` seeded differential cases over the full roster,
/// shrinking the first divergence found.
pub fn fuzz(seed: u64, cases: usize, config: CheckTraceConfig) -> FuzzOutcome {
    fuzz_with(seed, cases, config, engine_roster)
}

/// [`fuzz`] with a custom roster factory (e.g. one that includes an
/// intentionally buggy engine).
pub fn fuzz_with(
    seed: u64,
    cases: usize,
    config: CheckTraceConfig,
    roster: impl Fn(&BoxState) -> Vec<Box<dyn CheckEngine>>,
) -> FuzzOutcome {
    let mut outcome = FuzzOutcome {
        cases: 0,
        ops_run: 0,
        comparisons: 0,
        failure: None,
    };
    for case in 0..cases {
        // Distinct, reproducible stream per case.
        let case_seed = seed ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = DdcRng::seed_from_u64(case_seed);
        let d = 1 + case % 3;
        let trace = CheckTrace::generate(d, config, &mut rng);
        outcome.cases += 1;
        match run_trace_on(&trace, roster(&BoxState::initial(&trace))) {
            Ok(stats) => {
                outcome.ops_run += stats.ops;
                outcome.comparisons += stats.comparisons;
            }
            Err(divergence) => {
                let fails =
                    |t: &CheckTrace| run_trace_on(t, roster(&BoxState::initial(t))).is_err();
                let shrunk = shrink_trace(&trace, fails);
                // TraceDump hook: the confirming replay of the shrunk
                // repro runs with span tracing forced on, so the failure
                // carries the observability context of exactly the ops
                // that diverge (no `DDC_TRACE` needed).
                let was_tracing = obs::set_trace_enabled(true);
                obs::clear_trace();
                let shrunk_divergence = run_trace_on(&shrunk, roster(&BoxState::initial(&shrunk)))
                    .err()
                    .map(|b| *b)
                    .unwrap_or(*divergence);
                let trace_dump = obs::trace_dump();
                obs::set_trace_enabled(was_tracing);
                outcome.ops_run += shrunk.ops.len();
                outcome.failure = Some(FuzzFailure {
                    case,
                    seed: case_seed,
                    divergence: shrunk_divergence,
                    original: trace,
                    shrunk,
                    trace_dump,
                });
                return outcome;
            }
        }
    }
    outcome
}
