//! Repo-invariant lint suite (`ddc-lint`).
//!
//! Token-level lints over the workspace's own source, with a tiny
//! hand-rolled lexer (no syn, no proc-macro machinery) that masks
//! comments, string/char literals, and `#[cfg(test)]` regions so rules
//! fire only on live non-test code:
//!
//! * **`no-unwrap`** — no `.unwrap()` / `.expect(` in non-test
//!   `crates/core` or `crates/serve` code (the serving layer handles
//!   untrusted network input — a panic there is a remote DoS).
//!   Poison-tolerant or typed errors instead; the few justified panics
//!   live in `lint-allow.txt` with a rationale.
//! * **`no-bare-std-sync`** — inside `crates/core` and `crates/serve`,
//!   all sync primitives come from the `core::sync` facade (so the
//!   model checker can intercept them); only core's `sync.rs` itself
//!   may name `std::sync`.
//! * **`named-ordering`** — every atomic `.load(` / `.store(` /
//!   `.fetch_*(` / `.swap(` / `.compare_exchange*(` call names an
//!   explicit `Ordering::…` in its argument list. (`crates/model` is
//!   exempt: the facade internals forward an `Ordering` parameter by
//!   design.)
//!
//! Findings can be waived via an allowlist file (`lint-allow.txt` at
//! the repo root): `rule path needle` per line, where `needle` must be
//! a substring of the offending source line — entries survive line
//! drift but die with the code they excuse. `#` starts a comment.

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `no-unwrap`).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

// ---------------------------------------------------------------------------
// Masking lexer
// ---------------------------------------------------------------------------

/// Replace the *contents* of comments and string/char literals with
/// spaces, preserving byte-for-byte line structure, so downstream
/// substring rules never fire inside them.
pub fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Emit one source byte as-is (newlines always survive masking).
    // Everything inside a literal/comment becomes b' '.
    fn push_masked(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                push_masked(&mut out, bytes[i]);
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    push_masked(&mut out, bytes[i]);
                    push_masked(&mut out, bytes[i + 1]);
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    push_masked(&mut out, bytes[i]);
                    push_masked(&mut out, bytes[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    push_masked(&mut out, bytes[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and byte-raw) string: r"…", r#"…"#, br##"…"##, …
        if b == b'r' || (b == b'b' && bytes.get(i + 1) == Some(&b'r')) {
            let start = if b == b'b' { i + 2 } else { i + 1 };
            let mut hashes = 0;
            while bytes.get(start + hashes) == Some(&b'#') {
                hashes += 1;
            }
            if bytes.get(start + hashes) == Some(&b'"') {
                // Only a raw string if `r` is not part of an identifier.
                let prev_ident =
                    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
                if !prev_ident {
                    let mut j = start + hashes + 1;
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat(b'#').take(hashes))
                        .collect();
                    while j < bytes.len() && !bytes[j..].starts_with(&closer) {
                        j += 1;
                    }
                    j = (j + closer.len()).min(bytes.len());
                    for &c in &bytes[i..j] {
                        push_masked(&mut out, c);
                    }
                    i = j;
                    continue;
                }
            }
        }
        // Normal (and byte) string.
        if b == b'"' || (b == b'b' && bytes.get(i + 1) == Some(&b'"')) {
            let mut j = if b == b'b' { i + 2 } else { i + 1 };
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            for &c in &bytes[i..j.min(bytes.len())] {
                push_masked(&mut out, c);
            }
            i = j.min(bytes.len());
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a literal; 'a (no
        // closing quote right after one char/escape) is a lifetime.
        if b == b'\'' {
            let lit_end = if bytes.get(i + 1) == Some(&b'\\') {
                let mut j = i + 2;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                (j < bytes.len()).then_some(j + 1)
            } else {
                // Skip one UTF-8 scalar, then require a closing quote.
                let rest = &src[i + 1..];
                rest.chars().next().and_then(|c| {
                    let j = i + 1 + c.len_utf8();
                    (c != '\'' && bytes.get(j) == Some(&b'\'')).then_some(j + 1)
                })
            };
            if let Some(end) = lit_end {
                for &c in &bytes[i..end] {
                    push_masked(&mut out, c);
                }
                i = end;
                continue;
            }
        }
        out.push(b);
        i += 1;
    }
    String::from_utf8(out).unwrap_or_else(|_| src.to_string())
}

/// Per-line flags marking `#[cfg(test)]` items (the attribute through
/// the end of the brace-balanced item it gates).
pub fn test_regions(masked: &str) -> Vec<bool> {
    let lines: Vec<&str> = masked.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut offsets = Vec::with_capacity(lines.len());
    let mut off = 0;
    for l in &lines {
        offsets.push(off);
        off += l.len() + 1;
    }
    let line_of = |byte: usize| match offsets.binary_search(&byte) {
        Ok(l) => l,
        Err(l) => l.saturating_sub(1),
    };

    let bytes = masked.as_bytes();
    let mut search = 0;
    while let Some(pos) = masked[search..].find("#[cfg(test)]") {
        let at = search + pos;
        // Walk to the item's opening brace, then to its balanced close.
        let mut j = at;
        while j < bytes.len() && bytes[j] != b'{' {
            // A `;` before any `{` means a braceless item (e.g.
            // `#[cfg(test)] mod tests;`) — only that line is gated.
            if bytes[j] == b';' {
                break;
            }
            j += 1;
        }
        let end = if j < bytes.len() && bytes[j] == b'{' {
            let mut depth = 0usize;
            let mut k = j;
            loop {
                if k >= bytes.len() {
                    break k;
                }
                match bytes[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break k;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        } else {
            j
        };
        let (from, to) = (line_of(at), line_of(end.min(bytes.len() - 1)));
        for flag in in_test.iter_mut().take(to + 1).skip(from) {
            *flag = true;
        }
        search = at + "#[cfg(test)]".len();
    }
    in_test
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const ATOMIC_CALLS: &[&str] = &[
    ".load(",
    ".store(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_max(",
    ".fetch_min(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_update(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".swap(",
];

/// Scan forward from the call's `(` and collect the argument text up
/// to the matching `)`, spanning lines if needed.
fn call_args(lines: &[&str], line_idx: usize, open_col: usize) -> String {
    let mut depth = 0usize;
    let mut args = String::new();
    for (li, line) in lines.iter().enumerate().skip(line_idx) {
        let start = if li == line_idx { open_col } else { 0 };
        for (ci, c) in line.char_indices().skip(start) {
            let _ = ci;
            match c {
                '(' => {
                    depth += 1;
                    if depth == 1 {
                        continue;
                    }
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return args;
                    }
                }
                _ => {}
            }
            args.push(c);
        }
        args.push('\n');
        if args.len() > 4096 {
            break; // unbalanced or absurd; give up quietly
        }
    }
    args
}

/// Lint one file. `rel_path` uses forward slashes relative to the repo
/// root; `raw` is the file contents.
pub fn lint_file(rel_path: &str, raw: &str) -> Vec<Finding> {
    let masked = mask_source(raw);
    let in_test = test_regions(&masked);
    let masked_lines: Vec<&str> = masked.lines().collect();
    let raw_lines: Vec<&str> = raw.lines().collect();
    let mut findings = Vec::new();

    let mut push = |rule: &'static str, line: usize| {
        findings.push(Finding {
            rule,
            path: rel_path.to_string(),
            line: line + 1,
            excerpt: raw_lines.get(line).map_or("", |l| l.trim()).to_string(),
        });
    };

    // The serving layer parses untrusted network bytes: it carries the
    // same no-panic and facade-only-sync obligations as core. The
    // blocked base store is on every hot path of the arena tree, so it
    // is enrolled with zero waivers; the pointer-based bc_tree keeps
    // its contract panics from before the rule existed.
    let in_core = rel_path.starts_with("crates/core/src")
        || rel_path.starts_with("crates/serve/src")
        || rel_path == "crates/btree/src/blocked.rs";
    let is_facade = rel_path == "crates/core/src/sync.rs";
    let in_model = rel_path.starts_with("crates/model/");
    // Model-checker scenarios are assertion code: panicking is their
    // failure-reporting channel, same as #[cfg(test)] regions.
    let is_scenarios = rel_path == "crates/core/src/models.rs";

    for (li, line) in masked_lines.iter().enumerate() {
        if in_test.get(li).copied().unwrap_or(false) {
            continue;
        }

        // no-unwrap: core library code must not panic via unwrap/expect.
        if in_core && !is_scenarios && (line.contains(".unwrap()") || line.contains(".expect(")) {
            push("no-unwrap", li);
        }

        // no-bare-std-sync: inside crates/core only sync.rs (the
        // facade itself) may name std::sync.
        if in_core && !is_facade && line.contains("std::sync") {
            push("no-bare-std-sync", li);
        }

        // named-ordering: atomic calls must spell out Ordering::…
        // (facade internals in crates/model forward a parameter).
        if !in_model {
            for needle in ATOMIC_CALLS {
                let mut from = 0;
                while let Some(pos) = line[from..].find(needle) {
                    let at = from + pos;
                    let open = at + needle.len() - 1;
                    let args = call_args(&masked_lines, li, open);
                    if !args.contains("Ordering::") {
                        push("named-ordering", li);
                    }
                    from = at + needle.len();
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walk + allowlist
// ---------------------------------------------------------------------------

/// Recursively collect `crates/*/src/**/*.rs` under `root`, returned as
/// sorted repo-relative forward-slash paths.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for e in entries {
            let p = e.path();
            if p.is_dir() {
                walk(&p, out)?;
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
        Ok(())
    }
    let crates = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut out = Vec::new();
    for c in crate_dirs {
        let src = c.join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    Ok(out)
}

/// One allowlist entry: `rule path needle` (needle = substring of the
/// offending line; everything after the second space).
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the entry waives.
    pub rule: String,
    /// Repo-relative path it applies to.
    pub path: String,
    /// Substring the offending line must contain.
    pub needle: String,
}

/// Parse an allowlist file's contents; `#` comments and blanks skipped.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(needle)) if !needle.trim().is_empty() => {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    needle: needle.trim().to_string(),
                });
            }
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `rule path needle`, got `{line}`",
                    no + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Split findings into (blocking, waived) and report which allowlist
/// entries never matched anything (stale).
pub fn apply_allowlist(
    findings: Vec<Finding>,
    allow: &[AllowEntry],
) -> (Vec<Finding>, Vec<Finding>, Vec<usize>) {
    let mut used = vec![false; allow.len()];
    let mut blocking = Vec::new();
    let mut waived = Vec::new();
    for f in findings {
        let hit = allow
            .iter()
            .enumerate()
            .find(|(_, a)| a.rule == f.rule && a.path == f.path && f.excerpt.contains(&a.needle));
        match hit {
            Some((i, _)) => {
                used[i] = true;
                waived.push(f);
            }
            None => blocking.push(f),
        }
    }
    let stale = used
        .iter()
        .enumerate()
        .filter(|(_, u)| !**u)
        .map(|(i, _)| i)
        .collect();
    (blocking, waived, stale)
}

/// What a full lint run produces: `(blocking, waived,
/// stale_allow_indices, entries)`.
pub type LintOutcome = (Vec<Finding>, Vec<Finding>, Vec<usize>, Vec<AllowEntry>);

/// Run the full suite from a repo root.
pub fn run_lints(root: &Path, allowlist: &str) -> Result<LintOutcome, String> {
    let allow = parse_allowlist(allowlist)?;
    let files = workspace_sources(root).map_err(|e| format!("walking {root:?}: {e}"))?;
    let mut findings = Vec::new();
    for f in &files {
        let raw = std::fs::read_to_string(f).map_err(|e| format!("reading {f:?}: {e}"))?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_file(&rel, &raw));
    }
    let (blocking, waived, stale) = apply_allowlist(findings, &allow);
    Ok((blocking, waived, stale, allow))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_strings_chars_and_lifetimes() {
        let src = r##"let s = "x.unwrap()"; // .unwrap()
let r = r#".expect("hi")"#; /* std::sync */
let c = '"'; let lt: &'static str = s;
let real = v.unwrap();"##;
        let m = mask_source(src);
        assert!(!m.contains("x.unwrap"), "string not masked: {m}");
        assert!(!m.contains(".expect"), "raw string/comment not masked: {m}");
        assert!(!m.contains("std::sync"), "block comment not masked: {m}");
        assert!(m.contains("&'static str"), "lifetime mangled: {m}");
        assert!(m.contains("v.unwrap()"), "real code lost: {m}");
        assert_eq!(
            m.lines().count(),
            src.lines().count(),
            "line structure changed"
        );
    }

    #[test]
    fn nested_block_comments_mask_fully() {
        let src = "a /* x /* y */ z.unwrap() */ b";
        let m = mask_source(src);
        assert!(!m.contains("unwrap"), "{m}");
        assert!(m.starts_with('a') && m.ends_with('b'), "{m}");
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src =
            "fn live() { v.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}\n";
        let f = lint_file("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[0].rule, "no-unwrap");
    }

    #[test]
    fn std_sync_flagged_outside_facade_only() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(lint_file("crates/core/src/shard.rs", src).len(), 1);
        assert!(lint_file("crates/core/src/sync.rs", src).is_empty());
        assert!(lint_file("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn atomic_calls_need_explicit_ordering() {
        let bad = "let v = x.load(order);\n";
        let good = "let v = x.load(Ordering::Acquire);\n";
        let multiline = "x.fetch_add(1,\n    Ordering::Relaxed);\n";
        assert_eq!(lint_file("crates/core/src/a.rs", bad).len(), 1);
        assert!(lint_file("crates/core/src/a.rs", good).is_empty());
        assert!(lint_file("crates/core/src/a.rs", multiline).is_empty());
        // Facade internals forward a parameter — exempt.
        assert!(lint_file("crates/model/src/sync.rs", bad).is_empty());
    }

    #[test]
    fn allowlist_waives_and_reports_stale() {
        let findings = vec![Finding {
            rule: "no-unwrap",
            path: "crates/core/src/a.rs".into(),
            line: 3,
            excerpt: "h.join().expect(\"builder thread panicked\")".into(),
        }];
        let allow = parse_allowlist(
            "# comment\n\
             no-unwrap crates/core/src/a.rs builder thread panicked\n\
             no-unwrap crates/core/src/gone.rs stale entry\n",
        )
        .expect("parses");
        let (blocking, waived, stale) = apply_allowlist(findings, &allow);
        assert!(blocking.is_empty());
        assert_eq!(waived.len(), 1);
        assert_eq!(stale, vec![1]);
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(parse_allowlist("no-unwrap missing-needle\n").is_err());
    }
}
