//! I/O fault injection for the persistence layer.
//!
//! [`FailingWriter`] and [`FailingReader`] error out at a chosen byte
//! offset; [`fault_sweep`] walks that offset across an entire snapshot,
//! asserting the crash-safety contract: **load either round-trips
//! exactly or returns a clean `io::Error` — it never panics and never
//! silently accepts a damaged stream.**

use std::io::{self, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};

use ddc_core::{DdcConfig, DdcEngine, GrowableCube};

/// A writer that accepts exactly `fail_at` bytes, then errors forever.
pub struct FailingWriter {
    /// Bytes accepted so far (the truncated prefix).
    pub sink: Vec<u8>,
    fail_at: usize,
}

impl FailingWriter {
    /// Fails once `fail_at` bytes have been written.
    pub fn new(fail_at: usize) -> Self {
        Self {
            sink: Vec::new(),
            fail_at,
        }
    }
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let room = self.fail_at.saturating_sub(self.sink.len());
        if room == 0 {
            return Err(io::Error::other("injected write fault"));
        }
        let n = buf.len().min(room);
        self.sink.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A reader that serves exactly `fail_at` bytes of `data`, then errors —
/// an I/O fault, distinct from a clean early EOF.
pub struct FailingReader<'a> {
    data: &'a [u8],
    pos: usize,
    fail_at: usize,
}

impl<'a> FailingReader<'a> {
    /// Fails once `fail_at` bytes have been served.
    pub fn new(data: &'a [u8], fail_at: usize) -> Self {
        Self {
            data,
            pos: 0,
            fail_at,
        }
    }
}

impl Read for FailingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.fail_at {
            return Err(io::Error::other("injected read fault"));
        }
        let n = buf
            .len()
            .min(self.fail_at - self.pos)
            .min(self.data.len() - self.pos);
        if n == 0 {
            return Err(io::Error::other("injected read fault"));
        }
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// What a [`fault_sweep`] found. Clean means every list is empty.
#[derive(Clone, Debug, Default)]
pub struct FaultSweepReport {
    /// Byte offsets swept (the snapshot length).
    pub offsets: usize,
    /// Offsets where some path panicked, with the path name.
    pub panicked: Vec<(usize, String)>,
    /// Offsets where a damaged stream loaded without error.
    pub silently_accepted: Vec<(usize, String)>,
    /// True when the undamaged snapshot round-tripped exactly.
    pub roundtrip_ok: bool,
}

impl FaultSweepReport {
    /// No panics, no silent corruption, and a clean round-trip.
    pub fn is_clean(&self) -> bool {
        self.panicked.is_empty() && self.silently_accepted.is_empty() && self.roundtrip_ok
    }
}

fn probe(
    report: &mut FaultSweepReport,
    offset: usize,
    path: &str,
    f: impl FnOnce() -> Result<(), String>,
) {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(())) => {}
        Ok(Err(accepted)) => report.silently_accepted.push((offset, accepted)),
        Err(_) => report.panicked.push((offset, path.to_string())),
    }
}

/// Sweeps an injected fault across every byte offset of `engine`'s
/// snapshot: truncated loads, mid-stream read faults, and mid-stream
/// write faults must all surface as `Err`, never as panics or silent
/// corruption.
pub fn fault_sweep(engine: &DdcEngine<i64>, config: DdcConfig) -> FaultSweepReport {
    let mut buf = Vec::new();
    engine.save(&mut buf).expect("in-memory save");
    let mut report = FaultSweepReport {
        offsets: buf.len(),
        ..Default::default()
    };

    for cut in 0..buf.len() {
        probe(&mut report, cut, "truncated-load", || {
            match DdcEngine::<i64>::load(&mut &buf[..cut], config) {
                Err(_) => Ok(()),
                Ok(_) => Err("truncated stream loaded".to_string()),
            }
        });
        probe(
            &mut report,
            cut,
            "failing-reader-load",
            || match DdcEngine::<i64>::load(&mut FailingReader::new(&buf, cut), config) {
                Err(_) => Ok(()),
                Ok(_) => Err("faulted read loaded".to_string()),
            },
        );
        probe(&mut report, cut, "failing-writer-save", || {
            let mut w = FailingWriter::new(cut);
            match engine.save(&mut w) {
                Err(_) => Ok(()),
                Ok(_) => Err("save ignored write fault".to_string()),
            }
        });
    }

    report.roundtrip_ok = match DdcEngine::<i64>::load(&mut buf.as_slice(), config) {
        Ok(restored) => {
            let mut a = restored.entries();
            let mut b = engine.entries();
            a.sort();
            b.sort();
            a == b
        }
        Err(_) => false,
    };
    report
}

/// [`fault_sweep`] for the growable cube's signed-coordinate snapshots.
pub fn fault_sweep_growable(cube: &GrowableCube<i64>, config: DdcConfig) -> FaultSweepReport {
    let mut buf = Vec::new();
    cube.save(&mut buf).expect("in-memory save");
    let mut report = FaultSweepReport {
        offsets: buf.len(),
        ..Default::default()
    };

    for cut in 0..buf.len() {
        probe(&mut report, cut, "truncated-load", || {
            match GrowableCube::<i64>::load(&mut &buf[..cut], config) {
                Err(_) => Ok(()),
                Ok(_) => Err("truncated stream loaded".to_string()),
            }
        });
        probe(
            &mut report,
            cut,
            "failing-reader-load",
            || match GrowableCube::<i64>::load(&mut FailingReader::new(&buf, cut), config) {
                Err(_) => Ok(()),
                Ok(_) => Err("faulted read loaded".to_string()),
            },
        );
        probe(&mut report, cut, "failing-writer-save", || {
            let mut w = FailingWriter::new(cut);
            match cube.save(&mut w) {
                Err(_) => Ok(()),
                Ok(_) => Err("save ignored write fault".to_string()),
            }
        });
    }

    report.roundtrip_ok = match GrowableCube::<i64>::load(&mut buf.as_slice(), config) {
        Ok(restored) => {
            let mut a = restored.entries();
            let mut b = cube.entries();
            a.sort();
            b.sort();
            a == b
        }
        Err(_) => false,
    };
    report
}
