//! Secondary structures: how one overlay row-sum group is stored.
//!
//! Section 4.2: "the overlay box values of a d-dimensional data cube can
//! be stored as (d−1)-dimensional data cubes using Dynamic Data Cubes,
//! recursively; when d = 2, we use the B^c tree to store the row sum
//! values." [`Secondary`] is that recursion, with three extra arms:
//!
//! * `Flat` — the Basic DDC's direct arrays (§3), kept so the §3.3 cost
//!   analysis can be measured against §4 on identical trees;
//! * `Fen` / `Seg` — alternative one-dimensional base stores (Fenwick
//!   ablation; lazy sparse store for §5 workloads);
//! * `Empty` — nothing materialized yet: an all-zero group occupies no
//!   memory, which is how empty regions of a sparse cube stay free (§5).

use ddc_array::{AbelianGroup, OpCounter};
use ddc_btree::{BcTree, BlockedBc, CumulativeStore, Fenwick, SparseSegTree};

use crate::config::{BaseStore, DdcConfig, Mode};
use crate::flat_face::FlatFace;
use crate::tree::DdcTree;

/// Storage for one `(d−1)`-dimensional row-sum group of an overlay box of
/// side `k`.
#[derive(Debug)]
pub(crate) enum Secondary<G: AbelianGroup> {
    /// All-zero group; materialized on first update.
    Empty,
    /// Basic mode (§3): cumulative values stored directly.
    Flat(FlatFace<G>),
    /// Dynamic mode base case, default layout: the B^c tree flattened
    /// into implicit blocked arrays (branchless hot path).
    Blocked(BlockedBc<G>),
    /// Dynamic mode base case (§4.1): one-dimensional group in the
    /// pointer-based B^c tree.
    Bc(BcTree<G>),
    /// One-dimensional group in a Fenwick tree (ablation).
    Fen(Fenwick<G>),
    /// One-dimensional group in a lazy segment tree (sparse workloads).
    Seg(SparseSegTree<G>),
    /// Dynamic mode, `d − 1 ≥ 2`: the group is itself a Dynamic Data Cube
    /// (§4.2's secondary trees).
    Tree(Box<DdcTree<G>>),
}

impl<G: AbelianGroup> Secondary<G> {
    /// Materializes the appropriate structure for a group with `face_dims`
    /// dimensions of extent `k` each.
    fn materialize(face_dims: usize, k: usize, config: &DdcConfig) -> Self {
        debug_assert!(face_dims >= 1);
        match config.mode {
            Mode::Basic => Secondary::Flat(FlatFace::zeroed(ddc_array::Shape::cube(face_dims, k))),
            Mode::Dynamic => {
                if face_dims == 1 {
                    match config.base {
                        BaseStore::Blocked => Secondary::Blocked(BlockedBc::zeroed(k)),
                        BaseStore::Bc { fanout } => Secondary::Bc(BcTree::zeroed(fanout, k)),
                        BaseStore::Fenwick => Secondary::Fen(Fenwick::zeroed(k)),
                        BaseStore::SparseSeg => Secondary::Seg(SparseSegTree::zeroed(k)),
                    }
                } else {
                    Secondary::Tree(Box::new(DdcTree::new(face_dims, k, *config)))
                }
            }
        }
    }

    /// Bulk-builds a group from its raw slab-sum array (`raw[c]` is the
    /// sum of the full row along the group axis at cross-position `c`).
    /// Used by the bottom-up constructor; equivalent to applying
    /// [`Secondary::add`] per populated slab but without per-value
    /// structure descents.
    pub(crate) fn build_from_raw(raw: &ddc_array::NdArray<G>, config: &DdcConfig) -> Self {
        let k = raw.shape().dim(0);
        match config.mode {
            Mode::Basic => {
                let mut flat = FlatFace::zeroed(raw.shape().clone());
                flat.fill_cumulative(raw);
                Secondary::Flat(flat)
            }
            Mode::Dynamic => {
                if raw.shape().ndim() == 1 {
                    match config.base {
                        BaseStore::Blocked => {
                            Secondary::Blocked(BlockedBc::from_values(raw.as_slice()))
                        }
                        BaseStore::Bc { fanout } => {
                            Secondary::Bc(BcTree::from_values(fanout, raw.as_slice()))
                        }
                        BaseStore::Fenwick => Secondary::Fen(Fenwick::from_values(raw.as_slice())),
                        BaseStore::SparseSeg => {
                            Secondary::Seg(SparseSegTree::from_values(raw.as_slice()))
                        }
                    }
                } else {
                    Secondary::Tree(Box::new(DdcTree::from_array_sized(raw, k, *config)))
                }
            }
        }
    }

    /// Cumulative group value at `idx` (each coordinate `< k`); `Empty`
    /// groups are implicit zeros.
    pub(crate) fn prefix(&self, idx: &[usize], counter: &OpCounter) -> G {
        match self {
            Secondary::Empty => G::ZERO,
            Secondary::Flat(f) => f.prefix(idx, counter),
            Secondary::Blocked(t) => absorb_read(t, idx[0], counter),
            Secondary::Bc(t) => absorb_read(t, idx[0], counter),
            Secondary::Fen(t) => absorb_read(t, idx[0], counter),
            Secondary::Seg(t) => absorb_read(t, idx[0], counter),
            Secondary::Tree(t) => {
                let before = t.ops();
                let v = t.prefix_sum(idx);
                counter.absorb(t.ops() - before);
                v
            }
        }
    }

    /// Adds `delta` to the raw slab at `idx`, materializing first if
    /// needed. `k` and `config` describe the owning overlay box.
    pub(crate) fn add(
        &mut self,
        idx: &[usize],
        delta: G,
        k: usize,
        config: &DdcConfig,
        counter: &OpCounter,
    ) {
        if matches!(self, Secondary::Empty) {
            *self = Self::materialize(idx.len(), k, config);
        }
        match self {
            Secondary::Empty => unreachable!("materialized above"),
            Secondary::Flat(f) => f.add(idx, delta, counter),
            Secondary::Blocked(t) => absorb_write(t, idx[0], delta, counter),
            Secondary::Bc(t) => absorb_write(t, idx[0], delta, counter),
            Secondary::Fen(t) => absorb_write(t, idx[0], delta, counter),
            Secondary::Seg(t) => absorb_write(t, idx[0], delta, counter),
            Secondary::Tree(t) => {
                let before = t.ops();
                t.apply_delta(idx, delta);
                counter.absorb(t.ops() - before);
            }
        }
    }

    /// Heap bytes attributable to this group.
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Secondary::Empty => 0,
            Secondary::Flat(f) => f.heap_bytes(),
            Secondary::Blocked(t) => t.heap_bytes(),
            Secondary::Bc(t) => t.heap_bytes(),
            Secondary::Fen(t) => t.heap_bytes(),
            Secondary::Seg(t) => t.heap_bytes(),
            Secondary::Tree(t) => t.heap_bytes(),
        }
    }
}

fn absorb_read<G: AbelianGroup, S: CumulativeStore<G>>(
    store: &S,
    idx: usize,
    counter: &OpCounter,
) -> G {
    let before = store.ops();
    let v = store.prefix(idx);
    counter.absorb(store.ops() - before);
    v
}

fn absorb_write<G: AbelianGroup, S: CumulativeStore<G>>(
    store: &mut S,
    idx: usize,
    delta: G,
    counter: &OpCounter,
) {
    let before = store.ops();
    store.add(idx, delta);
    counter.absorb(store.ops() - before);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reads_zero_and_costs_nothing() {
        let c = OpCounter::new();
        let s = Secondary::<i64>::Empty;
        assert_eq!(s.prefix(&[3], &c), 0);
        assert_eq!(c.snapshot().reads, 0);
        assert_eq!(s.heap_bytes(), 0);
    }

    #[test]
    fn one_dimensional_base_stores_agree() {
        for base in [
            BaseStore::Blocked,
            BaseStore::Bc { fanout: 3 },
            BaseStore::Fenwick,
            BaseStore::SparseSeg,
        ] {
            let config = DdcConfig::dynamic().with_base(base);
            let c = OpCounter::new();
            let mut s = Secondary::<i64>::Empty;
            s.add(&[2], 10, 8, &config, &c);
            s.add(&[0], 4, 8, &config, &c);
            s.add(&[7], -1, 8, &config, &c);
            assert_eq!(s.prefix(&[0], &c), 4, "{base:?}");
            assert_eq!(s.prefix(&[1], &c), 4, "{base:?}");
            assert_eq!(s.prefix(&[2], &c), 14, "{base:?}");
            assert_eq!(s.prefix(&[7], &c), 13, "{base:?}");
            assert!(s.heap_bytes() > 0);
        }
    }

    #[test]
    fn basic_mode_materializes_flat() {
        let config = DdcConfig::basic();
        let c = OpCounter::new();
        let mut s = Secondary::<i64>::Empty;
        s.add(&[1, 1], 5, 4, &config, &c);
        assert!(matches!(s, Secondary::Flat(_)));
        assert_eq!(s.prefix(&[0, 0], &c), 0);
        assert_eq!(s.prefix(&[3, 3], &c), 5);
    }

    #[test]
    fn counter_absorbs_substore_costs() {
        let config = DdcConfig::dynamic();
        let c = OpCounter::new();
        let mut s = Secondary::<i64>::Empty;
        s.add(&[5], 1, 16, &config, &c);
        assert!(c.snapshot().writes > 0);
        let before = c.snapshot();
        let _ = s.prefix(&[10], &c);
        assert!(c.snapshot().reads > before.reads);
    }
}
