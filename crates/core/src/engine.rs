//! [`DdcEngine`]: the Dynamic Data Cube as a [`RangeSumEngine`].
//!
//! Wraps a [`DdcTree`] behind the engine interface shared with the §2
//! baselines. The logical shape may be arbitrary; internally the tree
//! covers the next power-of-two hyper-cube (the paper's §3.1 assumption),
//! and the lazy materialization of §5 makes the padding free.

use crate::sync::{Arc, OnceLock};

use ddc_array::{AbelianGroup, NdArray, OpCounter, RangeSumEngine, Shape};

use crate::config::{DdcConfig, Mode};
use crate::obs;
use crate::tree::DdcTree;

/// Per-mode latency histograms, resolved once and cached so the hot
/// paths never touch the registry lock.
struct EngineObs {
    update_ns: Arc<obs::Histogram>,
    update_name: &'static str,
    prefix_ns: Arc<obs::Histogram>,
    prefix_name: &'static str,
}

fn engine_obs(mode: Mode) -> &'static EngineObs {
    static BASIC: OnceLock<EngineObs> = OnceLock::new();
    static DYNAMIC: OnceLock<EngineObs> = OnceLock::new();
    let (cell, update_name, prefix_name) = match mode {
        Mode::Basic => (
            &BASIC,
            "engine.update.basic_ddc",
            "engine.prefix_sum.basic_ddc",
        ),
        Mode::Dynamic => (
            &DYNAMIC,
            "engine.update.dynamic_ddc",
            "engine.prefix_sum.dynamic_ddc",
        ),
    };
    cell.get_or_init(|| EngineObs {
        update_ns: obs::histogram(update_name),
        update_name,
        prefix_ns: obs::histogram(prefix_name),
        prefix_name,
    })
}

/// The paper's data-cube structure (Basic §3 or Dynamic §4, per config).
///
/// # Examples
///
/// ```
/// use ddc_array::{RangeSumEngine, Region, Shape};
/// use ddc_core::DdcEngine;
///
/// // A 1000×1000 SALES cube: both queries and updates are O(log² n).
/// let mut cube = DdcEngine::<i64>::dynamic(Shape::new(&[1000, 1000]));
/// cube.apply_delta(&[37, 220], 120);   // a sale: age 37, day 220
/// cube.apply_delta(&[45, 341], 310);
///
/// let window = Region::new(&[27, 200], &[45, 365]);
/// assert_eq!(cube.range_sum(&window), 430);
///
/// cube.set(&[37, 220], 0);             // retract the first sale
/// assert_eq!(cube.range_sum(&window), 310);
/// ```
#[derive(Debug)]
pub struct DdcEngine<G: AbelianGroup> {
    shape: Shape,
    tree: DdcTree<G>,
}

impl<G: AbelianGroup> DdcEngine<G> {
    /// An all-zero cube of `shape` with the given configuration.
    pub fn with_config(shape: Shape, config: DdcConfig) -> Self {
        let side = shape
            .dims()
            .iter()
            .copied()
            .max()
            .expect("non-empty shape")
            .next_power_of_two();
        let tree = DdcTree::new(shape.ndim(), side, config);
        Self { shape, tree }
    }

    /// The §4 Dynamic Data Cube with default configuration.
    pub fn dynamic(shape: Shape) -> Self {
        Self::with_config(shape, DdcConfig::dynamic())
    }

    /// The §3 Basic Dynamic Data Cube.
    pub fn basic(shape: Shape) -> Self {
        Self::with_config(shape, DdcConfig::basic())
    }

    /// Builds from an existing array with the default configuration.
    pub fn from_array(a: &NdArray<G>) -> Self {
        Self::from_array_with(a, DdcConfig::dynamic())
    }

    /// Builds from an array under an explicit configuration, using the
    /// bottom-up bulk constructor (`O(d · N log n)` cell visits).
    pub fn from_array_with(a: &NdArray<G>, config: DdcConfig) -> Self {
        let side = a
            .shape()
            .dims()
            .iter()
            .copied()
            .max()
            .expect("non-empty shape")
            .next_power_of_two();
        let tree = DdcTree::from_array_sized(a, side, config);
        Self {
            shape: a.shape().clone(),
            tree,
        }
    }

    /// Builds from an array by per-cell incremental updates — the same
    /// result as [`DdcEngine::from_array_with`], exercised against it by
    /// property tests.
    pub fn from_array_incremental(a: &NdArray<G>, config: DdcConfig) -> Self {
        let mut e = Self::with_config(a.shape().clone(), config);
        let mut iter = a.shape().iter_points();
        let mut buf = vec![0usize; a.shape().ndim()];
        while iter.next_into(&mut buf) {
            let v = a.get(&buf);
            if !v.is_zero() {
                e.tree.apply_delta(&buf, v);
            }
        }
        e
    }

    /// The construction configuration.
    pub fn config(&self) -> &DdcConfig {
        self.tree.config()
    }

    /// Activates the paged leaf backend if the config requests it; see
    /// [`DdcTree::enable_paging`]. No-op (`Ok(false)`) otherwise.
    pub fn enable_paging(&mut self) -> std::io::Result<bool>
    where
        G: crate::ValueCodec,
    {
        self.tree.enable_paging()
    }

    /// Access to the underlying primary tree (diagnostics, experiments).
    pub fn tree(&self) -> &DdcTree<G> {
        &self.tree
    }

    /// Validates the structural invariants of the whole tree of trees.
    pub fn check_invariants(&self) -> G {
        self.tree.check_invariants()
    }

    /// Number of non-zero raw cells (§5 storage experiments).
    pub fn populated_cells(&self) -> usize {
        self.tree.populated_cells()
    }

    /// Reclaims storage from cancelled subtrees; see [`DdcTree::prune`].
    pub fn prune(&mut self) -> usize {
        self.tree.prune()
    }

    /// Extracts a sparse snapshot: every non-zero cell with its value, in
    /// tree order. Suitable for persistence or engine migration; restore
    /// with [`DdcEngine::from_entries`].
    pub fn entries(&self) -> Vec<(Vec<usize>, G)> {
        let mut out = Vec::new();
        self.tree
            .for_each_nonzero(&mut |p, v| out.push((p.to_vec(), v)));
        out
    }

    /// Rebuilds a cube from a sparse snapshot produced by
    /// [`DdcEngine::entries`] (or any coordinate/value list).
    pub fn from_entries(shape: Shape, config: DdcConfig, entries: &[(Vec<usize>, G)]) -> Self {
        let mut e = Self::with_config(shape, config);
        for (p, v) in entries {
            if !v.is_zero() {
                e.apply_delta(p, *v);
            }
        }
        e
    }
}

impl<G: AbelianGroup> RangeSumEngine<G> for DdcEngine<G> {
    fn name(&self) -> &'static str {
        match self.tree.config().mode {
            Mode::Basic => "basic-ddc",
            Mode::Dynamic => "dynamic-ddc",
        }
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn prefix_sum(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        let site = engine_obs(self.tree.config().mode);
        let t = obs::timer();
        let v = self.tree.prefix_sum(point);
        t.observe(site.prefix_name, &site.prefix_ns);
        v
    }

    fn apply_delta(&mut self, point: &[usize], delta: G) {
        self.shape.check_point(point);
        let site = engine_obs(self.tree.config().mode);
        let t = obs::timer();
        self.tree.apply_delta(point, delta);
        t.observe(site.update_name, &site.update_ns);
    }

    fn cell(&self, point: &[usize]) -> G {
        self.shape.check_point(point);
        self.tree.cell(point)
    }

    fn counter(&self) -> &OpCounter {
        self.tree.counter()
    }

    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tree.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddc_array::Region;

    /// The worked example of Figures 9 and 11: an 8×8 cube whose query
    /// decomposes into the paper's six components — box Q contributes its
    /// subtotal 51, R and S row sums 48 and 24, U a subtotal 16, and the
    /// leaf boxes L and N contribute 7 and 5, totalling 151. The paper's
    /// full array is not reproduced in the text, so we build one whose
    /// regional sums match those components exactly (the target cell is
    /// the one the leaf box `N` covers, with `L` fully covered beside it)
    /// and add decoy values in every excluded region.
    #[test]
    fn paper_figure11_query_total() {
        let shape = Shape::new(&[8, 8]);
        let mut a = NdArray::<i64>::zeroed(shape.clone());
        let target = [7usize, 6usize];
        a.set(&[0, 0], 51); // Q = [0,4)²: subtotal 51
        a.set(&[0, 4], 48); // R strip [0,4)×[4..=6]: row sum 48
        a.set(&[4, 0], 24); // S strip [4..=7]×[0,4): row sum 24
        a.set(&[4, 4], 16); // U = [4,6)²: subtotal 16
        a.set(&[6, 6], 7); //  L leaf box, fully covered: 7
        a.set(&[7, 6], 5); //  N leaf box covering the target cell: 5
                           // Decoys outside the target region must not count.
        a.set(&[3, 7], 8); //  R's excluded column
        a.set(&[6, 7], 2); //  M leaf box
        a.set(&[7, 7], 9); //  O leaf box
        let e = DdcEngine::from_array(&a);
        let expect = a.prefix_sum(&target);
        assert_eq!(expect, 51 + 48 + 24 + 16 + 7 + 5);
        assert_eq!(e.prefix_sum(&target), 151);
    }

    /// Figure 12's update walk: changing the target cell from 5 to 6
    /// propagates the difference +1 through the path's subtotals and row
    /// sums, leaving every other region untouched.
    #[test]
    fn paper_figure12_update() {
        let shape = Shape::new(&[8, 8]);
        let mut a = NdArray::<i64>::zeroed(shape);
        a.set(&[7, 6], 5);
        a.set(&[0, 0], 51);
        let mut e = DdcEngine::from_array(&a);
        let old = e.set(&[7, 6], 6);
        assert_eq!(old, 5);
        assert_eq!(e.prefix_sum(&[7, 6]), 51 + 6);
        assert_eq!(e.prefix_sum(&[7, 7]), 51 + 6);
        assert_eq!(e.prefix_sum(&[7, 5]), 51); // untouched region
        assert_eq!(e.prefix_sum(&[6, 7]), 51);
        e.check_invariants();
    }

    /// The same Figure 11 cube, traced: the walkthrough's component
    /// values appear in visit order — Q's subtotal 51, R's row sum 48,
    /// S's row sum 24, the descent into T, U's subtotal 16, and the leaf
    /// cells L + N = 7 + 5 (our flat side-2 leaf blocks merge the paper's
    /// `k = 1` boxes into one step of value 12). Total 151.
    #[test]
    fn paper_figure11_trace_components() {
        use crate::{Contribution, DdcConfig};
        let shape = Shape::new(&[8, 8]);
        let mut a = NdArray::<i64>::zeroed(shape);
        a.set(&[0, 0], 51);
        a.set(&[0, 4], 48);
        a.set(&[4, 0], 24);
        a.set(&[4, 4], 16);
        a.set(&[6, 6], 7);
        a.set(&[7, 6], 5);
        a.set(&[3, 7], 8); // decoys outside the target region
        a.set(&[6, 7], 2);
        a.set(&[7, 7], 9);
        let e = DdcEngine::from_array_with(&a, DdcConfig::dynamic());
        let steps = e.tree().trace_prefix(&[7, 6]);

        // Boxes are visited in index order (dimension-0 high bit first),
        // so S appears before R; the component multiset is the figure's.
        let values: Vec<i64> = steps
            .iter()
            .filter(|s| s.value != 0)
            .map(|s| s.value)
            .collect();
        assert_eq!(values, vec![51, 24, 48, 16, 12]);
        let total: i64 = steps.iter().map(|s| s.value).sum();
        assert_eq!(total, 151);

        // Kinds along the walkthrough match the paper's narration.
        assert!(matches!(steps[0].kind, Contribution::Subtotal)); // Q
        assert!(matches!(steps[1].kind, Contribution::RowSum { axis: 1 })); // S: cols full
        assert!(matches!(steps[2].kind, Contribution::RowSum { axis: 0 })); // R: rows full
        assert!(matches!(steps[3].kind, Contribution::Descend)); // into T
        assert_eq!(steps[3].box_anchor, vec![4, 4]);
        assert!(steps
            .iter()
            .any(|s| matches!(s.kind, Contribution::LeafCells { cells: 2 })));
    }

    #[test]
    fn matches_reference_on_non_power_shapes() {
        let a = NdArray::from_fn(Shape::new(&[5, 9]), |p| (p[0] * 9 + p[1]) as i64 % 7 - 3);
        let e = DdcEngine::from_array(&a);
        for p in a.shape().iter_points() {
            assert_eq!(e.prefix_sum(&p), a.prefix_sum(&p), "{p:?}");
        }
        let r = Region::new(&[1, 2], &[4, 7]);
        assert_eq!(e.range_sum(&r), a.region_sum(&r));
    }

    #[test]
    fn basic_and_dynamic_agree() {
        let a = NdArray::from_fn(Shape::new(&[8, 8]), |p| (p[0] ^ p[1]) as i64);
        let dynamic = DdcEngine::from_array_with(&a, DdcConfig::dynamic());
        let basic = DdcEngine::from_array_with(&a, DdcConfig::basic());
        for p in a.shape().iter_points() {
            assert_eq!(dynamic.prefix_sum(&p), basic.prefix_sum(&p));
        }
    }

    #[test]
    fn float_cube() {
        let a = NdArray::from_fn(Shape::new(&[4, 4]), |p| (p[0] as f64) * 0.5 + p[1] as f64);
        let e = DdcEngine::from_array(&a);
        assert_eq!(e.prefix_sum(&[3, 3]), a.prefix_sum(&[3, 3]));
    }

    #[test]
    fn engine_name_reflects_mode() {
        let d = DdcEngine::<i64>::dynamic(Shape::new(&[4, 4]));
        let b = DdcEngine::<i64>::basic(Shape::new(&[4, 4]));
        assert_eq!(d.name(), "dynamic-ddc");
        assert_eq!(b.name(), "basic-ddc");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_shape_queries() {
        let e = DdcEngine::<i64>::dynamic(Shape::new(&[4, 6]));
        let _ = e.prefix_sum(&[0, 6]);
    }
}
