//! Arena backends for [`crate::DdcTree`]'s leaf blocks: the
//! [`NodeStore`] contract, the PR 7 in-memory slab ([`MemStore`]), and
//! the out-of-core [`PagedStore`] that serializes records onto the
//! fixed-size pages of a [`crate::pager::BufferPool`].
//!
//! A store is a slab of `u32`-addressed slots holding records of one
//! type. The tree never holds references into the store across
//! operations — access is closure-scoped (`with` / `with_mut`), which
//! is what lets the paged backend decode a record into a stack
//! temporary, hand it to the closure, and re-encode it afterwards
//! while holding page pins only for the copy.
//!
//! [`PagedStore`] maps slot `id` to the fixed byte extent
//! `[id · record_cap, (id+1) · record_cap)` of the page file, so a
//! record touches `⌈record_cap / page_bytes⌉ + 1` pages at most and
//! small records share pages without alignment waste. Spill I/O errors
//! are process-fatal by design: pages are scratch state below the
//! snapshot + WAL pair, so crashing into recovery is the correct
//! degraded behavior (DESIGN S45).

use std::cell::RefCell;
use std::io;

use crate::config::PagerConfig;
use crate::pager::{BufferPool, PoolStats, WalBarrier};
use crate::sync::untracked::{AtomicU64, Mutex, MutexGuard, Ordering};
use crate::sync::PoisonError;
use crate::vfs::{OpenMode, StdVfs, Vfs, VfsFile};

/// The backend contract over the tree's leaf arena (ROADMAP #1's
/// "NodeStore over the PR 7 arenas").
///
/// Slot ids are dense `u32`s handed out by `insert`, reused through an
/// internal free list after `remove` — exactly the discipline the PR 7
/// flat arenas established, so [`crate::DdcTree`] runs unchanged on
/// either backend.
pub trait NodeStore<T> {
    /// Stores `item`, returning its slot id (free slots are reused).
    fn insert(&mut self, item: T) -> u32;
    /// Vacates slot `id` and free-lists it.
    fn remove(&mut self, id: u32);
    /// Removes and returns slot `id`'s record without free-listing it
    /// (arena compaction).
    fn take(&mut self, id: u32) -> Option<T>;
    /// Total slots (live + free).
    fn slots(&self) -> usize;
    /// Slots on the free list.
    fn free_len(&self) -> usize;
    /// The free list's contents (diagnostics; order unspecified).
    fn free_ids(&self) -> Vec<u32>;
    /// True when slot `id` holds a record.
    fn is_occupied(&self, id: u32) -> bool;
    /// Invokes `f` with a shared view of slot `id` (`None` if vacant).
    fn with<R>(&self, id: u32, f: impl FnOnce(Option<&T>) -> R) -> R;
    /// Invokes `f` with a mutable view of slot `id` (`None` if vacant);
    /// mutations are persisted when `f` returns.
    fn with_mut<R>(&mut self, id: u32, f: impl FnOnce(Option<&mut T>) -> R) -> R;
}

// ---------------------------------------------------------------------
// MemStore: the PR 7 slab, extracted
// ---------------------------------------------------------------------

/// In-memory slab arena: `Vec<Option<T>>` plus a free list.
#[derive(Debug)]
pub struct MemStore<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for MemStore<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MemStore<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Appends another slab's slots wholesale (graft fast path),
    /// returning the id offset its records landed at. The donor's free
    /// list is carried over, re-based.
    pub fn absorb(&mut self, other: MemStore<T>) -> u32 {
        let off = self.slots.len() as u32;
        self.slots.extend(other.slots);
        self.free.extend(other.free.iter().map(|&id| id + off));
        off
    }

    /// Drains every slot in id order (paged conversion / compaction).
    pub fn into_slots(self) -> (Vec<Option<T>>, Vec<u32>) {
        (self.slots, self.free)
    }

    /// Heap bytes of the slab bookkeeping itself (slot vector + free
    /// list), excluding record internals.
    pub fn slab_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// Iterates the occupied records (stats / serialization).
    pub fn iter_occupied(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|t| (i as u32, t)))
    }
}

impl<T> NodeStore<T> for MemStore<T> {
    fn insert(&mut self, item: T) -> u32 {
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = Some(item);
            return id;
        }
        let id = self.slots.len() as u32;
        self.slots.push(Some(item));
        id
    }

    fn remove(&mut self, id: u32) {
        self.slots[id as usize] = None;
        self.free.push(id);
    }

    fn take(&mut self, id: u32) -> Option<T> {
        self.slots[id as usize].take()
    }

    fn slots(&self) -> usize {
        self.slots.len()
    }

    fn free_len(&self) -> usize {
        self.free.len()
    }

    fn free_ids(&self) -> Vec<u32> {
        self.free.clone()
    }

    fn is_occupied(&self, id: u32) -> bool {
        self.slots
            .get(id as usize)
            .map(Option::is_some)
            .unwrap_or(false)
    }

    fn with<R>(&self, id: u32, f: impl FnOnce(Option<&T>) -> R) -> R {
        f(self.slots[id as usize].as_ref())
    }

    fn with_mut<R>(&mut self, id: u32, f: impl FnOnce(Option<&mut T>) -> R) -> R {
        f(self.slots[id as usize].as_mut())
    }
}

// ---------------------------------------------------------------------
// PagedStore: records on pages behind the buffer pool
// ---------------------------------------------------------------------

/// Monomorphized encode/decode hooks for one record type, captured as
/// plain `fn` pointers where the serialization bound is in scope so the
/// store itself needs none (see `DdcTree::enable_paging`).
pub struct RecordCodec<T> {
    /// Serializes a record (appends to the buffer).
    pub encode: fn(&T, &mut Vec<u8>),
    /// Rebuilds a record from its bytes; `d` is the owning tree's
    /// dimensionality.
    pub decode: fn(usize, &[u8]) -> T,
}

impl<T> Copy for RecordCodec<T> {}
impl<T> Clone for RecordCodec<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> std::fmt::Debug for RecordCodec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RecordCodec")
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum SlotState {
    Free,
    Occupied { len: u32 },
}

#[derive(Debug)]
struct PagedInner {
    pool: BufferPool,
    slots: Vec<SlotState>,
    free: Vec<u32>,
    scratch: Vec<u8>,
}

/// Out-of-core arena: records serialized onto the fixed byte extent
/// `[id · record_cap, (id+1) · record_cap)` of a page file behind a
/// capped [`BufferPool`]. Interior mutability (one mutex around the
/// pool) lets shared queries fault pages in through `&self`.
#[derive(Debug)]
pub struct PagedStore<T> {
    inner: Mutex<PagedInner>,
    codec: RecordCodec<T>,
    record_cap: usize,
    d: usize,
}

/// Names anonymous spill files uniquely within the process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A thread-local factory for spill files, installed by
/// [`with_spill_source`].
type SpillSource = Box<dyn FnMut() -> io::Result<Box<dyn VfsFile + Send>>>;

thread_local! {
    static SPILL_SOURCE: RefCell<Option<SpillSource>> = const { RefCell::new(None) };
}

/// Runs `f` with every [`PagedStore`] created on this thread drawing
/// its spill file from `source` instead of the default [`StdVfs`] temp
/// file — the seam a fault-injection harness uses to put eviction
/// write-backs and fault-ins behind a [`crate::vfs::FaultVfs`]. The
/// override takes precedence over `spill_to_disk` (the harness decides
/// where spill bytes live) and is restored on exit, including by
/// panic.
pub fn with_spill_source<R>(
    source: impl FnMut() -> io::Result<Box<dyn VfsFile + Send>> + 'static,
    f: impl FnOnce() -> R,
) -> R {
    struct Restore(Option<SpillSource>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SPILL_SOURCE.with(|s| *s.borrow_mut() = self.0.take());
        }
    }
    let prev = SPILL_SOURCE.with(|s| s.borrow_mut().replace(Box::new(source)));
    let _restore = Restore(prev);
    f()
}

fn open_spill_file(spill_to_disk: bool) -> io::Result<Box<dyn VfsFile + Send>> {
    if let Some(file) = SPILL_SOURCE.with(|s| s.borrow_mut().as_mut().map(|src| src())) {
        return file;
    }
    if !spill_to_disk {
        return Ok(Box::new(Vec::<u8>::new()));
    }
    let vfs = StdVfs;
    let path = std::env::temp_dir()
        .join(format!(
            "ddc-pager-{}-{}.pages",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
        .to_string_lossy()
        .into_owned();
    let file = vfs.open(&path, OpenMode::Create)?;
    // Unlink immediately: the open handle keeps the file alive, the
    // name disappears, and the OS reclaims the space on process exit
    // even after a crash. Best-effort — on filesystems that refuse,
    // the file simply remains until deleted. Only the default path
    // unlinks: an injected source owns its own namespace and may need
    // the name to survive (e.g. MemVfs, where remove drops the bytes).
    vfs.remove(&path).ok();
    Ok(Box::new(file))
}

/// Spill I/O failure is process-fatal: pages are scratch below the
/// snapshot + WAL pair, so the honest recovery path is a restart.
fn spill_ok<T>(r: io::Result<T>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("pager spill {what} failed (restart recovers from snapshot + WAL): {e}"),
    }
}

impl<T> PagedStore<T> {
    /// A paged store for records up to `record_cap` encoded bytes, from
    /// a `d`-dimensional tree, spilling per `pager`.
    pub fn new(
        pager: PagerConfig,
        d: usize,
        record_cap: usize,
        codec: RecordCodec<T>,
    ) -> io::Result<Self> {
        let file = open_spill_file(pager.spill_to_disk)?;
        Ok(Self {
            inner: Mutex::new(PagedInner {
                pool: BufferPool::new(file, pager.page_bytes, pager.mem_cap_bytes),
                slots: Vec::new(),
                free: Vec::new(),
                scratch: Vec::new(),
            }),
            codec,
            record_cap,
            d,
        })
    }

    /// Converts a [`MemStore`] in place, preserving every slot id.
    pub fn from_mem(
        mem: MemStore<T>,
        pager: PagerConfig,
        d: usize,
        record_cap: usize,
        codec: RecordCodec<T>,
    ) -> io::Result<Self> {
        let store = Self::new(pager, d, record_cap, codec)?;
        {
            let (slots, free) = mem.into_slots();
            let mut g = store.lock();
            for (id, slot) in slots.into_iter().enumerate() {
                g.slots.push(SlotState::Free);
                if let Some(item) = slot {
                    store_record(&mut g, id as u32, &item, record_cap, codec);
                }
            }
            g.free = free;
        }
        Ok(store)
    }

    fn lock(&self) -> MutexGuard<'_, PagedInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn load_record(&self, g: &mut PagedInner, id: u32) -> Option<T> {
        let len = match g.slots.get(id as usize) {
            Some(SlotState::Occupied { len }) => *len as usize,
            Some(SlotState::Free) => return None,
            None => panic!("leaf slot {id} out of bounds"),
        };
        let off = id as u64 * self.record_cap as u64;
        let mut scratch = std::mem::take(&mut g.scratch);
        scratch.clear();
        scratch.resize(len, 0);
        spill_ok(g.pool.read_range(off, &mut scratch), "read");
        let item = (self.codec.decode)(self.d, &scratch);
        g.scratch = scratch;
        Some(item)
    }

    /// Attaches (creating if needed) the WAL barrier gating dirty page
    /// write-back, and returns a handle the log writer advances.
    pub fn ensure_barrier(&self) -> WalBarrier {
        let mut g = self.lock();
        if let Some(b) = g.pool.barrier() {
            return b.clone();
        }
        let barrier = WalBarrier::new();
        g.pool.set_barrier(barrier.clone());
        barrier
    }

    /// Buffer-pool counter snapshot.
    pub fn pool_stats(&self) -> PoolStats {
        self.lock().pool.stats()
    }

    /// Resident heap bytes (pool frames + slot bookkeeping); spilled
    /// page-file bytes are *not* memory and are excluded.
    pub fn heap_bytes(&self) -> usize {
        let g = self.lock();
        g.pool.heap_bytes()
            + g.slots.capacity() * std::mem::size_of::<SlotState>()
            + g.free.capacity() * std::mem::size_of::<u32>()
            + g.scratch.capacity()
    }

    /// Audits pool and slot bookkeeping (panics on violation).
    pub fn audit(&self) {
        let g = self.lock();
        g.pool.audit();
        for &id in &g.free {
            assert!(
                matches!(g.slots.get(id as usize), Some(SlotState::Free)),
                "free-listed slot {id} not vacant"
            );
        }
    }
}

fn store_record<T>(
    g: &mut PagedInner,
    id: u32,
    item: &T,
    record_cap: usize,
    codec: RecordCodec<T>,
) {
    let mut scratch = std::mem::take(&mut g.scratch);
    scratch.clear();
    (codec.encode)(item, &mut scratch);
    assert!(
        scratch.len() <= record_cap,
        "record {id} encodes to {} bytes, over the {record_cap}-byte slot",
        scratch.len()
    );
    let off = id as u64 * record_cap as u64;
    spill_ok(g.pool.write_range(off, &scratch), "write");
    g.slots[id as usize] = SlotState::Occupied {
        len: scratch.len() as u32,
    };
    g.scratch = scratch;
}

impl<T> NodeStore<T> for PagedStore<T> {
    fn insert(&mut self, item: T) -> u32 {
        let record_cap = self.record_cap;
        let codec = self.codec;
        let mut g = self.lock();
        let id = match g.free.pop() {
            Some(id) => id,
            None => {
                g.slots.push(SlotState::Free);
                (g.slots.len() - 1) as u32
            }
        };
        store_record(&mut g, id, &item, record_cap, codec);
        id
    }

    fn remove(&mut self, id: u32) {
        let mut g = self.lock();
        match g.slots.get(id as usize) {
            Some(SlotState::Occupied { .. }) => {}
            Some(SlotState::Free) => panic!("double free of leaf slot {id}"),
            None => panic!("free of out-of-bounds leaf slot {id}"),
        }
        g.slots[id as usize] = SlotState::Free;
        g.free.push(id);
    }

    fn take(&mut self, id: u32) -> Option<T> {
        let mut g = self.lock();
        let item = self.load_record(&mut g, id)?;
        g.slots[id as usize] = SlotState::Free;
        Some(item)
    }

    fn slots(&self) -> usize {
        self.lock().slots.len()
    }

    fn free_len(&self) -> usize {
        self.lock().free.len()
    }

    fn free_ids(&self) -> Vec<u32> {
        self.lock().free.clone()
    }

    fn is_occupied(&self, id: u32) -> bool {
        matches!(
            self.lock().slots.get(id as usize),
            Some(SlotState::Occupied { .. })
        )
    }

    fn with<R>(&self, id: u32, f: impl FnOnce(Option<&T>) -> R) -> R {
        let item = {
            let mut g = self.lock();
            self.load_record(&mut g, id)
        };
        f(item.as_ref())
    }

    fn with_mut<R>(&mut self, id: u32, f: impl FnOnce(Option<&mut T>) -> R) -> R {
        let mut item = {
            let mut g = self.lock();
            self.load_record(&mut g, id)
        };
        let r = f(item.as_mut());
        if let Some(t) = &item {
            let mut g = self.lock();
            store_record(&mut g, id, t, self.record_cap, self.codec);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> RecordCodec<Vec<u8>> {
        RecordCodec {
            encode: |v, out| out.extend_from_slice(v),
            decode: |_, bytes| bytes.to_vec(),
        }
    }

    fn tiny_store(cap_bytes: usize) -> PagedStore<Vec<u8>> {
        PagedStore::new(
            PagerConfig::in_mem(cap_bytes).with_page_bytes(64),
            1,
            100,
            codec(),
        )
        .unwrap()
    }

    #[test]
    fn paged_insert_read_remove_reuse() {
        let mut s = tiny_store(128);
        let a = s.insert(vec![1, 2, 3]);
        let b = s.insert(vec![9; 100]);
        assert_eq!(s.slots(), 2);
        s.with(a, |v| assert_eq!(v, Some(&vec![1, 2, 3])));
        s.with(b, |v| assert_eq!(v, Some(&vec![9; 100])));
        s.with_mut(a, |v| v.unwrap().push(4));
        s.with(a, |v| assert_eq!(v, Some(&vec![1, 2, 3, 4])));
        s.remove(a);
        assert_eq!(s.free_len(), 1);
        s.with(a, |v| assert!(v.is_none()));
        let c = s.insert(vec![7]);
        assert_eq!(c, a, "free slot must be reused");
        s.audit();
    }

    #[test]
    fn paged_matches_mem_under_churn_with_evictions() {
        let mut paged = tiny_store(128); // 2 pages resident at most
        let mut mem = MemStore::<Vec<u8>>::new();
        let mut ids = Vec::new();
        let mut rng = 0x12345678u64;
        for i in 0..400u64 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let op = rng % 3;
            if op == 0 || ids.is_empty() {
                let rec = vec![(i % 251) as u8; 1 + (rng % 90) as usize];
                let p = paged.insert(rec.clone());
                let m = mem.insert(rec);
                assert_eq!(p, m, "id streams must match");
                ids.push(p);
            } else if op == 1 {
                let id = ids[(rng as usize / 7) % ids.len()];
                paged.with_mut(id, |v| {
                    if let Some(v) = v {
                        v.push(i as u8);
                    }
                });
                mem.with_mut(id, |v| {
                    if let Some(v) = v {
                        v.push(i as u8);
                    }
                });
            } else {
                let ix = (rng as usize / 11) % ids.len();
                let id = ids.swap_remove(ix);
                paged.remove(id);
                mem.remove(id);
            }
        }
        assert!(
            paged.pool_stats().evictions > 50,
            "{:?}",
            paged.pool_stats()
        );
        for id in ids {
            let expect = mem.with(id, |v| v.cloned());
            paged.with(id, |v| assert_eq!(v.cloned(), expect, "slot {id}"));
        }
        paged.audit();
    }

    #[test]
    fn from_mem_preserves_ids() {
        let mut mem = MemStore::<Vec<u8>>::new();
        let a = mem.insert(vec![1]);
        let b = mem.insert(vec![2, 2]);
        let c = mem.insert(vec![3; 30]);
        mem.remove(b);
        let paged = PagedStore::from_mem(
            mem,
            PagerConfig::in_mem(128).with_page_bytes(64),
            1,
            100,
            codec(),
        )
        .unwrap();
        paged.with(a, |v| assert_eq!(v, Some(&vec![1])));
        assert!(!paged.is_occupied(b));
        paged.with(c, |v| assert_eq!(v, Some(&vec![3; 30])));
        assert_eq!(paged.free_ids(), vec![b]);
    }
}
