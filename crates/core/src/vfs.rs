//! Virtual file system seam for every byte of durable IO.
//!
//! The WAL, snapshot persistence, and the CLI used to open `std::fs`
//! files directly, which made disk faults (EIO, ENOSPC, short writes,
//! failed fsync, read-back corruption) an untested path even though the
//! crash sweep proves we survive *process* death at every byte offset.
//! This module is the single chokepoint ROADMAP #1's buffer pool will
//! also plug into:
//!
//! * [`VfsFile`] — an open file handle: append-oriented `write_all`,
//!   a durability barrier `sync`, `len`, `truncate`, and positional
//!   `read_at`. Implemented for `std::fs::File` (real disk) and
//!   `Vec<u8>` (infallible in-memory sink, used throughout the tests).
//! * [`Vfs`] — the namespace: `open`/`read`/`rename`/`remove`/`exists`
//!   plus an atomic whole-file write helper.
//! * [`StdVfs`] — thin `std::fs` passthrough, the production default.
//! * [`MemVfs`] — shared in-memory namespace for tests and harnesses.
//! * [`FaultVfs`] — a deterministic fault-injecting *wrapper* around any
//!   inner [`Vfs`]. Faults are drawn from a seeded [`DdcRng`] plan (or
//!   an explicit per-op schedule) and every realized fault is recorded,
//!   so a failing chaos run replays byte-for-byte and shrinks with
//!   delta debugging (`ddc check disk`).
//!
//! Fault model (one fault at most per file operation, keyed by a global
//! monotone op counter):
//!
//! | kind          | injected on | effect                                   |
//! |---------------|-------------|------------------------------------------|
//! | `WriteErr`    | `write_all` | EIO, nothing written                     |
//! | `ShortWrite`  | `write_all` | first `keep` bytes land, then EIO (torn) |
//! | `NoSpace`     | `write_all` | ENOSPC, nothing written                  |
//! | `SyncFail`    | `sync`      | bytes landed but the barrier fails       |
//! | `ReadErr`     | `read_at`   | EIO                                      |
//! | `ReadCorrupt` | `read_at`   | one bit flipped in the *returned* copy   |
//!
//! Namespace operations (`open`/`rename`/`remove`) are deliberately not
//! fault points: the WAL's checkpoint protocol relies on `open(Create)`
//! truncating atomically, and injecting there would only retest the
//! crash sweep's byte-offset coverage.

use crate::sync::untracked::{Mutex, MutexGuard};
use crate::sync::{Arc, PoisonError};
use ddc_workload::DdcRng;
use std::collections::HashMap;
use std::io::{self, Read, Seek, SeekFrom, Write};

/// Raw `errno` for ENOSPC on the platforms we target. We match on the
/// raw value because `io::ErrorKind::StorageFull` is not stable on the
/// workspace MSRV (1.75).
pub const ENOSPC: i32 = 28;
/// Raw `errno` for EIO — the generic injected transient fault.
pub const EIO: i32 = 5;

/// True when an IO error means "the device is out of space" — the one
/// error class retrying cannot fix, so callers degrade instead.
pub fn is_no_space(e: &io::Error) -> bool {
    e.raw_os_error() == Some(ENOSPC)
}

/// How [`Vfs::open`] should treat an existing (or missing) file.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OpenMode {
    /// Open an existing file for reading only; error if missing.
    Read,
    /// Create (or truncate to empty) and open for read + write.
    Create,
    /// Open for read + append, creating the file if missing.
    Append,
}

/// An open file handle. Writes are append-oriented (the WAL is a log);
/// reads are positional so recovery never depends on a shared cursor.
///
/// `sync` is the durability barrier: an acked update is only claimed
/// durable once `sync` has returned `Ok`. Implementations define its
/// strength — `std::fs::File` issues `sync_data`, `Vec<u8>` is a no-op.
pub trait VfsFile: Send {
    /// Append `buf` at the end of the file.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Durability barrier for everything written so far.
    fn sync(&mut self) -> io::Result<()>;
    /// Current length in bytes.
    fn len(&mut self) -> io::Result<u64>;
    /// True when the file is empty.
    fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Truncate (or zero-extend) the file to exactly `len` bytes.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
    /// Read up to `buf.len()` bytes at `offset`; returns bytes read
    /// (short only at end-of-file).
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;
    /// Write `buf` at `offset`, zero-extending the file if the write
    /// lands past the current end. Positional writes exist for the page
    /// file of [`crate::pager`]; append-only log sinks may not support
    /// them, so the default refuses.
    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        let _ = (offset, buf);
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "positional writes not supported by this file",
        ))
    }
    /// Read the entire file into memory.
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        let len = self.len()?;
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large for memory"))?;
        let mut out = vec![0u8; len];
        let mut filled = 0;
        while filled < out.len() {
            let n = self.read_at(filled as u64, &mut out[filled..])?;
            if n == 0 {
                out.truncate(filled);
                break;
            }
            filled += n;
        }
        Ok(out)
    }
}

/// A file namespace: the only way durable code opens, renames, or
/// removes files. Paths are plain strings interpreted by the
/// implementation (OS paths for [`StdVfs`], map keys for [`MemVfs`]).
pub trait Vfs {
    /// The file handle type this namespace produces.
    type File: VfsFile;
    /// Open `path` in `mode`.
    fn open(&self, path: &str, mode: OpenMode) -> io::Result<Self::File>;
    /// Atomically rename `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// Remove `path`.
    fn remove(&self, path: &str) -> io::Result<()>;
    /// True when `path` exists.
    fn exists(&self, path: &str) -> io::Result<bool>;
    /// Read the whole file at `path`.
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        self.open(path, OpenMode::Read)?.read_all()
    }
    /// Write `bytes` to `path` atomically: write + sync a `.tmp`
    /// sibling, then rename over the target. Readers never observe a
    /// partially written file.
    fn write_atomic(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = format!("{path}.tmp");
        let mut f = self.open(&tmp, OpenMode::Create)?;
        let write = f.write_all(bytes).and_then(|()| f.sync());
        drop(f);
        if let Err(e) = write {
            let _ = self.remove(&tmp);
            return Err(e);
        }
        self.rename(&tmp, path)
    }
}

// ---------------------------------------------------------------------------
// Standard library implementations
// ---------------------------------------------------------------------------

/// Thin passthrough to `std::fs` — the production default.
#[derive(Copy, Clone, Debug, Default)]
pub struct StdVfs;

impl Vfs for StdVfs {
    type File = std::fs::File;

    fn open(&self, path: &str, mode: OpenMode) -> io::Result<std::fs::File> {
        let mut opts = std::fs::OpenOptions::new();
        match mode {
            OpenMode::Read => opts.read(true),
            OpenMode::Create => opts.read(true).write(true).create(true).truncate(true),
            OpenMode::Append => opts.read(true).write(true).create(true),
        };
        let mut f = opts.open(path)?;
        if mode == OpenMode::Append {
            f.seek(SeekFrom::End(0))?;
        }
        Ok(f)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &str) -> io::Result<bool> {
        match std::fs::metadata(path) {
            Ok(_) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }
}

impl VfsFile for std::fs::File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.seek(SeekFrom::End(0))?;
        Write::write_all(self, buf)
    }

    /// Real durability: `fdatasync` the bytes to media. The WAL issues
    /// this once per append frame before acking.
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.metadata()?.len())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.set_len(len)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.seek(SeekFrom::Start(offset))?;
        Read::read(self, buf)
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        // Seek-then-write (not `FileExt::write_at`) keeps this portable;
        // a seek past EOF followed by a write is a sparse extension.
        self.seek(SeekFrom::Start(offset))?;
        Write::write_all(self, buf)
    }
}

/// Infallible in-memory sink: keeps every existing
/// `DurableCube<_, Vec<u8>>` test and harness site compiling unchanged.
impl VfsFile for Vec<u8> {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(Vec::len(self) as u64)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "length out of range"))?;
        if len <= Vec::len(self) {
            Vec::truncate(self, len);
        } else {
            self.resize(len, 0);
        }
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let start = usize::try_from(offset)
            .unwrap_or(usize::MAX)
            .min(Vec::len(self));
        let n = buf.len().min(Vec::len(self) - start);
        buf[..n].copy_from_slice(&self[start..start + n]);
        Ok(n)
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "offset out of range"))?;
        let end = start
            .checked_add(buf.len())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "write out of range"))?;
        if Vec::len(self) < end {
            self.resize(end, 0);
        }
        self[start..end].copy_from_slice(buf);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// In-memory namespace
// ---------------------------------------------------------------------------

type MemStore = Arc<Mutex<HashMap<String, Vec<u8>>>>;

fn lock_store(store: &MemStore) -> MutexGuard<'_, HashMap<String, Vec<u8>>> {
    store.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared in-memory namespace. Clones share one store, so a harness can
/// hand a clone to the system under test and inspect surviving bytes
/// after a simulated crash.
#[derive(Clone, Debug, Default)]
pub struct MemVfs {
    files: MemStore,
}

impl MemVfs {
    /// Empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the bytes currently stored at `path`, if any.
    pub fn contents(&self, path: &str) -> Option<Vec<u8>> {
        lock_store(&self.files).get(path).cloned()
    }

    /// Overwrite `path` with `bytes` directly (test setup helper).
    pub fn install(&self, path: &str, bytes: Vec<u8>) {
        lock_store(&self.files).insert(path.to_string(), bytes);
    }
}

/// Handle into a [`MemVfs`] entry.
pub struct MemFile {
    files: MemStore,
    path: String,
}

impl MemFile {
    fn with<R>(&self, f: impl FnOnce(&mut Vec<u8>) -> R) -> io::Result<R> {
        let mut files = lock_store(&self.files);
        match files.get_mut(&self.path) {
            Some(bytes) => Ok(f(bytes)),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} removed while open", self.path),
            )),
        }
    }
}

impl VfsFile for MemFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.with(|bytes| bytes.extend_from_slice(buf))
    }

    fn sync(&mut self) -> io::Result<()> {
        self.with(|_| ())
    }

    fn len(&mut self) -> io::Result<u64> {
        self.with(|bytes| Vec::len(bytes) as u64)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.with(|bytes| VfsFile::truncate(bytes, len))?
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.with(|bytes| VfsFile::read_at(bytes, offset, buf))?
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.with(|bytes| VfsFile::write_at(bytes, offset, buf))?
    }
}

impl Vfs for MemVfs {
    type File = MemFile;

    fn open(&self, path: &str, mode: OpenMode) -> io::Result<MemFile> {
        let mut files = lock_store(&self.files);
        match mode {
            OpenMode::Read => {
                if !files.contains_key(path) {
                    return Err(io::Error::new(io::ErrorKind::NotFound, path.to_string()));
                }
            }
            OpenMode::Create => {
                files.insert(path.to_string(), Vec::new());
            }
            OpenMode::Append => {
                files.entry(path.to_string()).or_default();
            }
        }
        drop(files);
        Ok(MemFile {
            files: Arc::clone(&self.files),
            path: path.to_string(),
        })
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut files = lock_store(&self.files);
        match files.remove(from) {
            Some(bytes) => {
                files.insert(to.to_string(), bytes);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, from.to_string())),
        }
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        let mut files = lock_store(&self.files);
        match files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, path.to_string())),
        }
    }

    fn exists(&self, path: &str) -> io::Result<bool> {
        Ok(lock_store(&self.files).contains_key(path))
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One concrete injected fault, keyed by the global file-op index at
/// which it fired. Serialized realized faults are the replayable /
/// shrinkable unit the chaos sweep works with.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PlannedFault {
    /// Global monotone file-operation index (see [`FaultVfs::ops`]).
    pub op: u64,
    /// What happens at that op.
    pub kind: FaultKind,
}

/// The injectable fault kinds. See the module docs for the table of
/// which file operation each applies to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// `write_all` fails with EIO; nothing is written.
    WriteErr,
    /// `write_all` persists only the first `keep` bytes, then fails
    /// with EIO — a torn append.
    ShortWrite {
        /// Bytes that land before the failure.
        keep: u32,
    },
    /// `write_all` fails with ENOSPC; nothing is written.
    NoSpace,
    /// `sync` fails with EIO. The preceding writes reached the store,
    /// so the frame's durability is ambiguous — the classic commit
    /// window the WAL's truncate-on-retry protocol exists for.
    SyncFail,
    /// `read_at` fails with EIO.
    ReadErr,
    /// `read_at` succeeds but bit `bit` (counting from the start of the
    /// returned buffer) is flipped in the copy handed to the caller;
    /// the stored bytes are untouched, so a re-read sees clean data.
    ReadCorrupt {
        /// Bit index within the bytes returned by this read.
        bit: u32,
    },
}

/// Per-operation fault probabilities for a seeded plan. At most one
/// fault fires per file op; probabilities for the kinds applicable to
/// that op are stacked cumulatively.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultProbs {
    /// P(EIO on write).
    pub write_err: f64,
    /// P(torn short write).
    pub short_write: f64,
    /// P(ENOSPC on write).
    pub no_space: f64,
    /// P(failed sync barrier).
    pub sync_fail: f64,
    /// P(EIO on read).
    pub read_err: f64,
    /// P(bit flip in read-back).
    pub read_corrupt: f64,
}

impl FaultProbs {
    /// No faults at all.
    pub const fn none() -> Self {
        Self {
            write_err: 0.0,
            short_write: 0.0,
            no_space: 0.0,
            sync_fail: 0.0,
            read_err: 0.0,
            read_corrupt: 0.0,
        }
    }

    /// The same probability `p` for every fault kind.
    pub const fn uniform(p: f64) -> Self {
        Self {
            write_err: p,
            short_write: p,
            no_space: p,
            sync_fail: p,
            read_err: p,
            read_corrupt: p,
        }
    }
}

/// Where a [`FaultVfs`] gets its faults from.
#[derive(Clone, Debug)]
pub enum FaultPlan {
    /// Draw faults per-op from a seeded [`DdcRng`]: deterministic for a
    /// fixed seed *and* a fixed operation sequence.
    Seeded {
        /// RNG seed.
        seed: u64,
        /// Per-kind probabilities.
        probs: FaultProbs,
    },
    /// Fire exactly the listed faults at their recorded op indices —
    /// the replay/shrink form.
    Explicit(Vec<PlannedFault>),
}

enum PlanState {
    Seeded { rng: DdcRng, probs: FaultProbs },
    Explicit(HashMap<u64, FaultKind>),
}

struct FaultState {
    ops: u64,
    armed: bool,
    plan: PlanState,
    realized: Vec<PlannedFault>,
    /// Path of the file each realized fault fired on, parallel to
    /// `realized` (kept out of [`PlannedFault`] so explicit replay
    /// schedules stay path-independent).
    realized_paths: Vec<String>,
}

/// The three fault-eligible operation classes; used to pick which
/// probabilities apply at a given op.
enum OpClass {
    Write { len: usize },
    Sync,
    Read { len: usize },
}

impl FaultState {
    /// Advance the op counter and decide whether this op faults. The
    /// counter always advances — armed or not — so explicit replays see
    /// the same indices as the seeded recording run.
    fn next_fault(&mut self, class: OpClass, path: &str) -> Option<FaultKind> {
        let op = self.ops;
        self.ops += 1;
        // Seeded plans consume one RNG draw per op regardless of arming
        // so the stream stays aligned with the op counter.
        let drawn = match &mut self.plan {
            PlanState::Seeded { rng, probs } => {
                let roll = rng.next_f64();
                let aux = rng.next_u64();
                Self::pick(*probs, &class, roll, aux)
            }
            PlanState::Explicit(map) => map.get(&op).copied().map(|kind| match (kind, &class) {
                // Clamp recorded offsets to this op's actual extent so a
                // shrunk schedule stays well-formed.
                (FaultKind::ShortWrite { keep }, OpClass::Write { len }) => FaultKind::ShortWrite {
                    keep: keep.min(*len as u32),
                },
                (FaultKind::ReadCorrupt { bit }, OpClass::Read { len }) => FaultKind::ReadCorrupt {
                    bit: if *len == 0 {
                        0
                    } else {
                        bit % (*len as u32 * 8)
                    },
                },
                _ => kind,
            }),
        };
        let kind = drawn?;
        if !self.armed || !Self::applies(kind, &class) {
            return None;
        }
        self.realized.push(PlannedFault { op, kind });
        self.realized_paths.push(path.to_string());
        Some(kind)
    }

    fn applies(kind: FaultKind, class: &OpClass) -> bool {
        matches!(
            (kind, class),
            (
                FaultKind::WriteErr | FaultKind::ShortWrite { .. } | FaultKind::NoSpace,
                OpClass::Write { .. }
            ) | (FaultKind::SyncFail, OpClass::Sync)
                | (
                    FaultKind::ReadErr | FaultKind::ReadCorrupt { .. },
                    OpClass::Read { .. }
                )
        )
    }

    /// Stack the probabilities applicable to `class` and pick at most
    /// one kind from a single uniform roll; `aux` parameterizes the
    /// torn length / flipped bit.
    fn pick(probs: FaultProbs, class: &OpClass, roll: f64, aux: u64) -> Option<FaultKind> {
        let mut acc = 0.0;
        let mut hit = |p: f64| {
            acc += p;
            roll < acc
        };
        match class {
            OpClass::Write { len } => {
                if hit(probs.write_err) {
                    Some(FaultKind::WriteErr)
                } else if hit(probs.short_write) {
                    Some(FaultKind::ShortWrite {
                        keep: if *len == 0 {
                            0
                        } else {
                            (aux % *len as u64) as u32
                        },
                    })
                } else if hit(probs.no_space) {
                    Some(FaultKind::NoSpace)
                } else {
                    None
                }
            }
            OpClass::Sync => hit(probs.sync_fail).then_some(FaultKind::SyncFail),
            OpClass::Read { len } => {
                if hit(probs.read_err) {
                    Some(FaultKind::ReadErr)
                } else if hit(probs.read_corrupt) && *len > 0 {
                    Some(FaultKind::ReadCorrupt {
                        bit: (aux % (*len as u64 * 8)) as u32,
                    })
                } else {
                    None
                }
            }
        }
    }
}

/// Deterministic fault-injecting wrapper around an inner [`Vfs`].
///
/// Construction starts *disarmed*: boot-time setup runs fault-free,
/// then the harness calls [`FaultVfs::arm`] before driving the workload
/// and disarms again for the final pristine-recovery check. Clones
/// share the same fault state and op counter.
pub struct FaultVfs<V: Vfs = MemVfs> {
    inner: V,
    state: Arc<Mutex<FaultState>>,
}

impl<V: Vfs> Clone for FaultVfs<V>
where
    V: Clone,
{
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            state: Arc::clone(&self.state),
        }
    }
}

impl FaultVfs<MemVfs> {
    /// Seeded fault plan over a fresh in-memory namespace — the chaos
    /// sweep's standard configuration.
    pub fn seeded_mem(seed: u64, probs: FaultProbs) -> Self {
        Self::new(MemVfs::new(), FaultPlan::Seeded { seed, probs })
    }

    /// Explicit fault schedule over a fresh in-memory namespace — the
    /// replay/shrink configuration.
    pub fn explicit_mem(faults: Vec<PlannedFault>) -> Self {
        Self::new(MemVfs::new(), FaultPlan::Explicit(faults))
    }
}

impl<V: Vfs> FaultVfs<V> {
    /// Wrap `inner` with the given fault plan, initially disarmed.
    pub fn new(inner: V, plan: FaultPlan) -> Self {
        let plan = match plan {
            FaultPlan::Seeded { seed, probs } => PlanState::Seeded {
                rng: DdcRng::seed_from_u64(seed),
                probs,
            },
            FaultPlan::Explicit(faults) => {
                PlanState::Explicit(faults.into_iter().map(|f| (f.op, f.kind)).collect())
            }
        };
        Self {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                ops: 0,
                armed: false,
                plan,
                realized: Vec::new(),
                realized_paths: Vec::new(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arm or disarm fault injection. The op counter keeps advancing
    /// while disarmed so schedules recorded against an armed window
    /// replay at the same indices.
    pub fn arm(&self, on: bool) {
        self.lock().armed = on;
    }

    /// Global file-operation count so far.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Every fault that actually fired, in firing order — feed back via
    /// [`FaultPlan::Explicit`] for a deterministic replay.
    pub fn realized(&self) -> Vec<PlannedFault> {
        self.lock().realized.clone()
    }

    /// Path of the file each realized fault fired on, in the same
    /// order as [`FaultVfs::realized`] — lets a harness assert that a
    /// fault landed on a specific file (e.g. a pager spill).
    pub fn realized_paths(&self) -> Vec<String> {
        self.lock().realized_paths.clone()
    }

    /// The wrapped namespace (e.g. to inspect surviving bytes).
    pub fn inner(&self) -> &V {
        &self.inner
    }
}

/// File handle produced by [`FaultVfs`]; consults the shared fault
/// state on every operation.
pub struct FaultFile<F: VfsFile> {
    inner: F,
    path: String,
    state: Arc<Mutex<FaultState>>,
}

impl<F: VfsFile> FaultFile<F> {
    fn fault_for(&self, class: OpClass) -> Option<FaultKind> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .next_fault(class, &self.path)
    }
}

fn eio(detail: &str) -> io::Error {
    io::Error::other(format!(
        "{detail} (injected EIO: {})",
        io::Error::from_raw_os_error(EIO)
    ))
}

impl<F: VfsFile> VfsFile for FaultFile<F> {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.fault_for(OpClass::Write { len: buf.len() }) {
            None => self.inner.write_all(buf),
            Some(FaultKind::WriteErr) => Err(eio("write failed")),
            Some(FaultKind::ShortWrite { keep }) => {
                let keep = (keep as usize).min(buf.len());
                self.inner.write_all(&buf[..keep])?;
                Err(eio("short write"))
            }
            Some(FaultKind::NoSpace) => Err(io::Error::from_raw_os_error(ENOSPC)),
            Some(_) => self.inner.write_all(buf),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.fault_for(OpClass::Sync) {
            Some(FaultKind::SyncFail) => Err(eio("sync failed")),
            _ => self.inner.sync(),
        }
    }

    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        // Probe the real extent first so the fault draw sees how many
        // bytes this read can actually return.
        let avail = self.inner.len()?.saturating_sub(offset);
        let len = (avail as usize).min(buf.len());
        match self.fault_for(OpClass::Read { len }) {
            Some(FaultKind::ReadErr) => Err(eio("read failed")),
            Some(FaultKind::ReadCorrupt { bit }) => {
                let n = self.inner.read_at(offset, buf)?;
                if n > 0 {
                    let bit = (bit as usize) % (n * 8);
                    buf[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(n)
            }
            _ => self.inner.read_at(offset, buf),
        }
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        // Positional writes draw from the same write-fault budget as
        // appends; a short write leaves a torn page prefix behind.
        match self.fault_for(OpClass::Write { len: buf.len() }) {
            None => self.inner.write_at(offset, buf),
            Some(FaultKind::WriteErr) => Err(eio("write failed")),
            Some(FaultKind::ShortWrite { keep }) => {
                let keep = (keep as usize).min(buf.len());
                self.inner.write_at(offset, &buf[..keep])?;
                Err(eio("short write"))
            }
            Some(FaultKind::NoSpace) => Err(io::Error::from_raw_os_error(ENOSPC)),
            Some(_) => self.inner.write_at(offset, buf),
        }
    }
}

impl<V: Vfs> Vfs for FaultVfs<V> {
    type File = FaultFile<V::File>;

    fn open(&self, path: &str, mode: OpenMode) -> io::Result<Self::File> {
        let inner = self.inner.open(path, mode)?;
        Ok(FaultFile {
            inner,
            path: path.to_string(),
            state: Arc::clone(&self.state),
        })
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn exists(&self, path: &str) -> io::Result<bool> {
        self.inner.exists(path)
    }
}

/// Read `path` until two consecutive reads return identical bytes —
/// defeats transient read-back bit corruption so recovery never acts on
/// a flipped bit. IO errors consume attempts too. `attempts` bounds the
/// total number of reads (minimum 2 enforced).
pub fn read_stable<V: Vfs>(vfs: &V, path: &str, attempts: u32) -> io::Result<Vec<u8>> {
    let attempts = attempts.max(2);
    let mut last: Option<Vec<u8>> = None;
    let mut last_err = None;
    for _ in 0..attempts {
        match vfs.read(path) {
            Ok(bytes) => {
                if last.as_ref() == Some(&bytes) {
                    return Ok(bytes);
                }
                last = Some(bytes);
            }
            Err(e) => {
                last = None;
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{path}: reads never stabilized after {attempts} attempts"),
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_round_trips_and_renames() {
        let vfs = MemVfs::new();
        vfs.write_atomic("a", b"hello").unwrap();
        assert_eq!(vfs.read("a").unwrap(), b"hello");
        assert!(vfs.exists("a").unwrap());
        assert!(!vfs.exists("a.tmp").unwrap());
        vfs.rename("a", "b").unwrap();
        assert!(!vfs.exists("a").unwrap());
        assert_eq!(vfs.read("b").unwrap(), b"hello");
        let mut f = vfs.open("b", OpenMode::Append).unwrap();
        f.write_all(b" world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello world");
        f.truncate(5).unwrap();
        assert_eq!(vfs.contents("b").unwrap(), b"hello");
        vfs.remove("b").unwrap();
        assert!(vfs.read("b").is_err());
    }

    #[test]
    fn vec_file_matches_mem_semantics() {
        let mut v: Vec<u8> = Vec::new();
        VfsFile::write_all(&mut v, b"abcdef").unwrap();
        assert_eq!(VfsFile::len(&mut v).unwrap(), 6);
        let mut buf = [0u8; 4];
        assert_eq!(VfsFile::read_at(&mut v, 2, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"cdef");
        VfsFile::truncate(&mut v, 3).unwrap();
        assert_eq!(v, b"abc");
        VfsFile::truncate(&mut v, 5).unwrap();
        assert_eq!(v, b"abc\0\0");
    }

    #[test]
    fn std_vfs_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("ddc_vfs_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let path = path.to_str().unwrap();
        let vfs = StdVfs;
        vfs.write_atomic(path, b"0123456789").unwrap();
        let mut f = vfs.open(path, OpenMode::Append).unwrap();
        VfsFile::write_all(&mut f, b"ab").unwrap();
        VfsFile::sync(&mut f).unwrap();
        assert_eq!(VfsFile::len(&mut f).unwrap(), 12);
        let mut buf = [0u8; 4];
        assert_eq!(VfsFile::read_at(&mut f, 8, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"89ab");
        VfsFile::truncate(&mut f, 10).unwrap();
        assert_eq!(vfs.read(path).unwrap(), b"0123456789");
        vfs.remove(path).unwrap();
        assert!(!vfs.exists(path).unwrap());
    }

    #[test]
    fn explicit_faults_fire_at_their_op_index_and_are_recorded() {
        let vfs = FaultVfs::explicit_mem(vec![
            PlannedFault {
                op: 1,
                kind: FaultKind::ShortWrite { keep: 2 },
            },
            PlannedFault {
                op: 3,
                kind: FaultKind::SyncFail,
            },
        ]);
        vfs.arm(true);
        let mut f = vfs.open("x", OpenMode::Create).unwrap();
        f.write_all(b"aaaa").unwrap(); // op 0: clean
        let err = f.write_all(b"bbbb").unwrap_err(); // op 1: torn after 2 bytes
        assert!(err.to_string().contains("short write"), "{err}");
        f.write_all(b"cc").unwrap(); // op 2: clean
        assert!(f.sync().is_err()); // op 3: failed barrier
        assert_eq!(vfs.inner().contents("x").unwrap(), b"aaaabbcc");
        assert_eq!(vfs.realized().len(), 2);
        assert_eq!(vfs.ops(), 4);
    }

    #[test]
    fn disarmed_faults_do_not_fire_but_ops_still_count() {
        let vfs = FaultVfs::explicit_mem(vec![PlannedFault {
            op: 0,
            kind: FaultKind::WriteErr,
        }]);
        let mut f = vfs.open("x", OpenMode::Create).unwrap();
        f.write_all(b"safe").unwrap(); // op 0, disarmed: no fault
        assert_eq!(vfs.ops(), 1);
        assert!(vfs.realized().is_empty());
    }

    #[test]
    fn seeded_plan_replays_identically_through_explicit_schedule() {
        let run = |plan: FaultPlan| {
            let vfs = FaultVfs::new(MemVfs::new(), plan);
            vfs.arm(true);
            let mut f = vfs.open("x", OpenMode::Create).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..50u8 {
                outcomes.push(f.write_all(&[i; 16]).is_ok());
                outcomes.push(f.sync().is_ok());
            }
            (outcomes, vfs.inner().contents("x"), vfs.realized())
        };
        let plan = FaultPlan::Seeded {
            seed: 9,
            probs: FaultProbs::uniform(0.1),
        };
        let (outcomes, bytes, realized) = run(plan);
        assert!(
            outcomes.iter().any(|ok| !ok),
            "seed 9 should inject something"
        );
        let (outcomes2, bytes2, realized2) = run(FaultPlan::Explicit(realized.clone()));
        assert_eq!(outcomes, outcomes2);
        assert_eq!(bytes, bytes2);
        assert_eq!(realized, realized2);
    }

    #[test]
    fn read_corrupt_is_transient_and_read_stable_defeats_it() {
        let vfs = FaultVfs::explicit_mem(vec![PlannedFault {
            op: 2, // ops 0,1 are write+sync below; op 2 is the first read
            kind: FaultKind::ReadCorrupt { bit: 5 },
        }]);
        vfs.arm(true);
        let mut f = vfs.open("x", OpenMode::Create).unwrap();
        f.write_all(b"payload").unwrap();
        f.sync().unwrap();
        drop(f);
        let corrupted = vfs.read("x").unwrap();
        assert_ne!(corrupted, b"payload");
        assert_eq!(vfs.read("x").unwrap(), b"payload", "store itself untouched");
        let stable = read_stable(&vfs, "x", 6).unwrap();
        assert_eq!(stable, b"payload");
    }

    #[test]
    fn no_space_is_classified_for_degradation() {
        let vfs = FaultVfs::explicit_mem(vec![PlannedFault {
            op: 0,
            kind: FaultKind::NoSpace,
        }]);
        vfs.arm(true);
        let mut f = vfs.open("x", OpenMode::Create).unwrap();
        let err = f.write_all(b"zz").unwrap_err();
        assert!(is_no_space(&err));
        assert_eq!(vfs.inner().contents("x").unwrap(), b"");
    }
}
