//! Write-ahead logging and crash recovery (the durability layer).
//!
//! The paper's headline property — the cube stays *updatable in place*
//! (§4–§6) — is worthless in a serving deployment if a process kill
//! loses every queued update. This module makes the update path
//! crash-safe with the classic two-piece protocol:
//!
//! 1. **Snapshot** — a point-in-time image written by [`crate::persist`]
//!    (`save`/`load`), taken at checkpoints.
//! 2. **Write-ahead log** — every mutation is appended to a checksummed,
//!    length-prefixed log *and flushed* before it is acknowledged and
//!    applied in memory.
//!
//! Recovery loads the last good snapshot and replays the log,
//! **truncating at the first corrupt or partial record** instead of
//! erroring — a torn tail is the expected signature of a kill mid-write,
//! not a reason to refuse service. The invariant proven by the
//! `ddc check crash` sweep (see `ddc-check`): for a kill at *any* byte
//! offset, the recovered state equals exactly the acknowledged prefix of
//! operations — no acked write is lost, no unacked write is resurrected.
//!
//! ## Log format
//!
//! ```text
//! header:  magic "DDCW" | u8 version (1)
//! record:  u32 payload_len | u32 crc32(payload) | payload
//! payload: u8 tag
//!          tag 1 Update: u32 d | d × i64 point | value bytes
//!          tag 2 Set:    u32 d | d × i64 point | value bytes
//!          tag 3 Grow:   u32 axis | u64 amount | u8 low
//! ```
//!
//! All integers are little-endian; values go through
//! [`ValueCodec`](crate::ValueCodec) like snapshots do. The CRC32 (IEEE
//! 802.3, reflected) is implemented in-repo so the workspace stays
//! hermetic.

use std::io::{self, Write};

use crate::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use ddc_array::AbelianGroup;

use crate::config::{DdcConfig, WalConfig};
use crate::growth::GrowableCube;
use crate::obs;
use crate::persist::ValueCodec;

/// Durability-path observability handles: append latency (the full
/// log-and-flush), the flush/sync portion alone, and recovery replay.
struct WalObs {
    append_ns: Arc<obs::Histogram>,
    fsync_ns: Arc<obs::Histogram>,
    recover_ns: Arc<obs::Histogram>,
    append_records: Arc<obs::Counter>,
    append_bytes: Arc<obs::Counter>,
    recover_records: Arc<obs::Counter>,
    recover_runs: Arc<obs::Counter>,
}

fn wal_obs() -> &'static WalObs {
    static OBS: OnceLock<WalObs> = OnceLock::new();
    OBS.get_or_init(|| WalObs {
        append_ns: obs::histogram("wal.append"),
        fsync_ns: obs::histogram("wal.fsync"),
        recover_ns: obs::histogram("wal.recover"),
        append_records: obs::counter("wal.append.records"),
        append_bytes: obs::counter("wal.append.bytes"),
        recover_records: obs::counter("wal.recover.records"),
        recover_runs: obs::counter("wal.recover.runs"),
    })
}

/// Log header: magic plus a format version byte.
pub const WAL_MAGIC: &[u8; 4] = b"DDCW";
/// Current log format version.
pub const WAL_VERSION: u8 = 1;
/// Bytes of the segment header (`magic | version`).
pub const WAL_HEADER_BYTES: usize = 5;
/// Bytes of a record frame before its payload (`len | crc`).
pub const WAL_FRAME_BYTES: usize = 8;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// One logged mutation, in signed logical coordinates (the WAL speaks
/// the growable cube's language so growth in any direction is loggable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp<G> {
    /// Add `delta` at `point`.
    Update {
        /// Target cell.
        point: Vec<i64>,
        /// Added value.
        delta: G,
    },
    /// Set the cell at `point` to `value`.
    Set {
        /// Target cell.
        point: Vec<i64>,
        /// New value.
        value: G,
    },
    /// The covered box grew by `amount` cells along `axis` (bookkeeping;
    /// carries no cell data — the growable cube re-grows organically on
    /// replay).
    Grow {
        /// Axis that grew.
        axis: usize,
        /// Cells added.
        amount: usize,
        /// Toward negative coordinates when true.
        low: bool,
    },
}

const TAG_UPDATE: u8 = 1;
const TAG_SET: u8 = 2;
const TAG_GROW: u8 = 3;

impl<G: AbelianGroup + ValueCodec> WalOp<G> {
    /// Encodes the record payload (everything after the frame). The
    /// `io::Result` comes from [`ValueCodec::encode`]; writes into a
    /// `Vec<u8>` cannot themselves fail, but a codec is free to reject
    /// a value, and that must surface as an append error, not a panic.
    fn encode_payload(&self, out: &mut Vec<u8>) -> io::Result<()> {
        let point_payload = |out: &mut Vec<u8>, tag: u8, point: &[i64], v: &G| {
            out.push(tag);
            out.extend_from_slice(&(point.len() as u32).to_le_bytes());
            for &c in point {
                out.extend_from_slice(&c.to_le_bytes());
            }
            v.encode(out)
        };
        match self {
            WalOp::Update { point, delta } => point_payload(out, TAG_UPDATE, point, delta),
            WalOp::Set { point, value } => point_payload(out, TAG_SET, point, value),
            WalOp::Grow { axis, amount, low } => {
                out.push(TAG_GROW);
                out.extend_from_slice(&(*axis as u32).to_le_bytes());
                out.extend_from_slice(&(*amount as u64).to_le_bytes());
                out.push(u8::from(*low));
                Ok(())
            }
        }
    }

    /// Decodes one payload. Any structural problem is an error — the
    /// caller treats it as a corrupt record and truncates there.
    fn decode_payload(mut payload: &[u8]) -> Result<Self, String> {
        let input = &mut payload;
        let mut tag = [0u8; 1];
        read_exactly(input, &mut tag)?;
        match tag[0] {
            TAG_UPDATE | TAG_SET => {
                let mut b4 = [0u8; 4];
                read_exactly(input, &mut b4)?;
                let d = u32::from_le_bytes(b4) as usize;
                if d == 0 || d > 64 {
                    return Err(format!("implausible dimensionality {d}"));
                }
                let mut point = Vec::with_capacity(d);
                let mut b8 = [0u8; 8];
                for _ in 0..d {
                    read_exactly(input, &mut b8)?;
                    point.push(i64::from_le_bytes(b8));
                }
                let v = G::decode(input).map_err(|e| format!("value: {e}"))?;
                if !input.is_empty() {
                    return Err(format!("{} trailing payload bytes", input.len()));
                }
                Ok(if tag[0] == TAG_UPDATE {
                    WalOp::Update { point, delta: v }
                } else {
                    WalOp::Set { point, value: v }
                })
            }
            TAG_GROW => {
                let mut b4 = [0u8; 4];
                read_exactly(input, &mut b4)?;
                let axis = u32::from_le_bytes(b4) as usize;
                let mut b8 = [0u8; 8];
                read_exactly(input, &mut b8)?;
                let amount = usize::try_from(u64::from_le_bytes(b8))
                    .map_err(|_| "growth amount exceeds address space".to_string())?;
                let mut low = [0u8; 1];
                read_exactly(input, &mut low)?;
                if low[0] > 1 {
                    return Err(format!("bad grow direction byte {}", low[0]));
                }
                if !input.is_empty() {
                    return Err(format!("{} trailing payload bytes", input.len()));
                }
                Ok(WalOp::Grow {
                    axis,
                    amount,
                    low: low[0] == 1,
                })
            }
            other => Err(format!("unknown record tag {other}")),
        }
    }
}

fn read_exactly(input: &mut &[u8], buf: &mut [u8]) -> Result<(), String> {
    if input.len() < buf.len() {
        return Err("payload shorter than declared".to_string());
    }
    let (head, rest) = input.split_at(buf.len());
    buf.copy_from_slice(head);
    *input = rest;
    Ok(())
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Appends framed, checksummed records to a sink, flushing each one
/// before reporting success — a record is **acknowledged** exactly when
/// [`WalWriter::append`] returns `Ok`.
#[derive(Debug)]
pub struct WalWriter<W: Write> {
    out: W,
    bytes: u64,
    records: u64,
}

impl<W: Write> WalWriter<W> {
    /// Starts a fresh log on `out`: writes and flushes the header.
    pub fn create(mut out: W) -> io::Result<Self> {
        out.write_all(WAL_MAGIC)?;
        out.write_all(&[WAL_VERSION])?;
        out.flush()?;
        Ok(Self {
            out,
            bytes: WAL_HEADER_BYTES as u64,
            records: 0,
        })
    }

    /// Resumes appending to a log that already holds `bytes` valid bytes
    /// and `records` records (as reported by [`read_wal`]). The caller
    /// must have truncated the sink to exactly `bytes` first.
    pub fn resume(out: W, bytes: u64, records: u64) -> Self {
        Self {
            out,
            bytes,
            records,
        }
    }

    /// Appends one record and flushes. Returns the total log size in
    /// bytes after the append — the durable high-water mark.
    pub fn append<G: AbelianGroup + ValueCodec>(&mut self, op: &WalOp<G>) -> io::Result<u64> {
        let site = wal_obs();
        let span = obs::timer();
        let mut payload = Vec::with_capacity(32);
        op.encode_payload(&mut payload)?;
        self.out.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&crc32(&payload).to_le_bytes())?;
        self.out.write_all(&payload)?;
        let sync = obs::timer();
        self.out.flush()?;
        sync.observe("wal.fsync", &site.fsync_ns);
        self.bytes += (WAL_FRAME_BYTES + payload.len()) as u64;
        self.records += 1;
        site.append_records.inc();
        site.append_bytes
            .add((WAL_FRAME_BYTES + payload.len()) as u64);
        span.observe("wal.append", &site.append_ns);
        Ok(self.bytes)
    }

    /// Total bytes written (header plus every acknowledged record).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records acknowledged so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Shared view of the sink (e.g. a `Vec<u8>` used as an in-memory
    /// log by the crash harness).
    pub fn get_ref(&self) -> &W {
        &self.out
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.out
    }
}

// ---------------------------------------------------------------------
// Reader / replay
// ---------------------------------------------------------------------

/// What a log scan recovered: the decoded prefix plus where and why it
/// stopped.
#[derive(Clone, Debug)]
pub struct WalReplay<G> {
    /// Decoded records, in append order.
    pub ops: Vec<WalOp<G>>,
    /// Bytes of the valid prefix (header + intact records). Truncating
    /// the log file to this length yields a clean log.
    pub valid_bytes: u64,
    /// End offset of each intact record, in order — `ends[i]` is the
    /// log length after record `i` was acknowledged.
    pub ends: Vec<u64>,
    /// Why the scan stopped before the end of the input, if it did.
    /// `None` means the log is clean end to end.
    pub truncated: Option<String>,
}

impl<G> WalReplay<G> {
    /// True when no torn or corrupt tail was dropped.
    pub fn is_clean(&self) -> bool {
        self.truncated.is_none()
    }
}

/// Scans a log image, decoding every intact record and truncating at the
/// first torn or corrupt one (see the module docs for the contract).
///
/// Errors only on a *structurally alien* input: an intact-length header
/// whose magic or version is wrong. A header cut short by a crash is a
/// valid empty log with a torn tail.
pub fn read_wal<G: AbelianGroup + ValueCodec>(
    data: &[u8],
    config: WalConfig,
) -> io::Result<WalReplay<G>> {
    let mut replay = WalReplay {
        ops: Vec::new(),
        valid_bytes: 0,
        ends: Vec::new(),
        truncated: None,
    };
    if data.len() < WAL_HEADER_BYTES {
        // A kill before the header hit the disk: an empty log, torn.
        if !WAL_MAGIC.starts_with(&data[..data.len().min(4)]) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a DDC WAL (bad magic)",
            ));
        }
        replay.truncated = Some("torn header".to_string());
        return Ok(replay);
    }
    if &data[..4] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a DDC WAL (bad magic)",
        ));
    }
    if data[4] != WAL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported WAL version {}", data[4]),
        ));
    }
    let mut offset = WAL_HEADER_BYTES;
    replay.valid_bytes = offset as u64;
    while offset < data.len() {
        let rest = &data[offset..];
        if rest.len() < WAL_FRAME_BYTES {
            replay.truncated = Some(format!("torn frame at byte {offset}"));
            break;
        }
        // `rest` is at least WAL_FRAME_BYTES long (checked above), so
        // both frame fields are present; decode without panicking paths.
        let mut b4 = [0u8; 4];
        b4.copy_from_slice(&rest[..4]);
        let len = u32::from_le_bytes(b4) as usize;
        b4.copy_from_slice(&rest[4..8]);
        let crc = u32::from_le_bytes(b4);
        if len as u64 > config.max_record_bytes {
            replay.truncated = Some(format!(
                "implausible record length {len} at byte {offset} (corrupt frame)"
            ));
            break;
        }
        if rest.len() < WAL_FRAME_BYTES + len {
            replay.truncated = Some(format!("torn record at byte {offset}"));
            break;
        }
        let payload = &rest[WAL_FRAME_BYTES..WAL_FRAME_BYTES + len];
        if config.verify_checksums && crc32(payload) != crc {
            replay.truncated = Some(format!("checksum mismatch at byte {offset}"));
            break;
        }
        match WalOp::<G>::decode_payload(payload) {
            Ok(op) => replay.ops.push(op),
            Err(reason) => {
                replay.truncated = Some(format!("undecodable record at byte {offset}: {reason}"));
                break;
            }
        }
        offset += WAL_FRAME_BYTES + len;
        replay.valid_bytes = offset as u64;
        replay.ends.push(offset as u64);
    }
    Ok(replay)
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

/// What [`recover`] did, for operators and metrics.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// True when a snapshot was loaded (vs starting from an empty cube).
    pub snapshot_loaded: bool,
    /// Records replayed from the log.
    pub replayed: usize,
    /// Valid log prefix in bytes.
    pub valid_bytes: u64,
    /// Why the log was truncated, if it was.
    pub truncated: Option<String>,
}

/// Rebuilds a cube after a crash: load the last good snapshot (if any),
/// then replay the WAL, truncating at the first corrupt or partial
/// record. `d` fixes the dimensionality when no snapshot exists.
pub fn recover<G: AbelianGroup + ValueCodec>(
    d: usize,
    snapshot: Option<&[u8]>,
    wal: &[u8],
    config: DdcConfig,
    wal_config: WalConfig,
) -> io::Result<(GrowableCube<G>, RecoveryReport)> {
    let site = wal_obs();
    let span = obs::timer();
    let (mut cube, snapshot_loaded) = match snapshot {
        Some(bytes) => {
            let cube = GrowableCube::<G>::load(&mut { bytes }, config)?;
            if cube.ndim() != d {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("snapshot is {}-dimensional, expected {d}", cube.ndim()),
                ));
            }
            (cube, true)
        }
        None => (GrowableCube::new(d, config), false),
    };
    let replay = read_wal::<G>(wal, wal_config)?;
    let mut replayed = 0usize;
    for op in &replay.ops {
        apply_to_growable(&mut cube, op, d).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("record {replayed}: {e}"),
            )
        })?;
        replayed += 1;
    }
    site.recover_runs.inc();
    site.recover_records.add(replayed as u64);
    span.observe("wal.recover", &site.recover_ns);
    Ok((
        cube,
        RecoveryReport {
            snapshot_loaded,
            replayed,
            valid_bytes: replay.valid_bytes,
            truncated: replay.truncated,
        },
    ))
}

/// Applies one decoded record to a growable cube. Arity mismatches are
/// errors (a record from a different cube), growth is organic.
fn apply_to_growable<G: AbelianGroup + ValueCodec>(
    cube: &mut GrowableCube<G>,
    op: &WalOp<G>,
    d: usize,
) -> Result<(), String> {
    match op {
        WalOp::Update { point, delta } => {
            if point.len() != d {
                return Err(format!("update arity {} != {d}", point.len()));
            }
            cube.add(point, *delta);
        }
        WalOp::Set { point, value } => {
            if point.len() != d {
                return Err(format!("set arity {} != {d}", point.len()));
            }
            cube.set(point, *value);
        }
        WalOp::Grow { axis, .. } => {
            if *axis >= d {
                return Err(format!("grow axis {axis} out of range for d={d}"));
            }
            // Covered-box bookkeeping only: the growable cube re-grows
            // on demand when a replayed point lands outside its box.
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// DurableCube: cube + WAL, wired together
// ---------------------------------------------------------------------

/// A [`GrowableCube`] whose every mutation is write-ahead logged: the
/// record is appended and flushed *before* the in-memory apply, so an
/// acknowledged mutation survives any subsequent kill.
///
/// # Examples
///
/// ```
/// use ddc_core::{wal, DdcConfig, DurableCube, WalConfig};
///
/// let mut cube = DurableCube::<i64, Vec<u8>>::new(2, DdcConfig::sparse(), Vec::new()).unwrap();
/// cube.add(&[3, -5], 7).unwrap();
/// cube.add(&[100, 2], 1).unwrap();
///
/// // Simulate a kill: all that survives is the log bytes.
/// let log = cube.into_wal().into_inner();
/// let (recovered, report) =
///     wal::recover::<i64>(2, None, &log, DdcConfig::sparse(), WalConfig::default()).unwrap();
/// assert_eq!(report.replayed, 2);
/// assert_eq!(recovered.cell(&[3, -5]), 7);
/// assert_eq!(recovered.total(), 8);
/// ```
#[derive(Debug)]
pub struct DurableCube<G: AbelianGroup + ValueCodec, W: Write> {
    cube: GrowableCube<G>,
    wal: WalWriter<W>,
}

impl<G: AbelianGroup + ValueCodec, W: Write> DurableCube<G, W> {
    /// An empty durable cube logging to `sink` (starts a fresh log).
    pub fn new(d: usize, config: DdcConfig, sink: W) -> io::Result<Self> {
        Ok(Self {
            cube: GrowableCube::new(d, config),
            wal: WalWriter::create(sink)?,
        })
    }

    /// Wraps an already-recovered cube, starting a fresh log on `sink`
    /// (the caller checkpoints the recovered state separately).
    pub fn from_recovered(cube: GrowableCube<G>, sink: W) -> io::Result<Self> {
        Ok(Self {
            cube,
            wal: WalWriter::create(sink)?,
        })
    }

    /// Logs, then applies, a point delta. `Err` means *not acknowledged*:
    /// the in-memory cube was left untouched.
    pub fn add(&mut self, point: &[i64], delta: G) -> io::Result<()> {
        self.wal.append(&WalOp::Update {
            point: point.to_vec(),
            delta,
        })?;
        self.cube.add(point, delta);
        Ok(())
    }

    /// Logs, then applies, a cell set; returns the previous value.
    pub fn set(&mut self, point: &[i64], value: G) -> io::Result<G> {
        self.wal.append(&WalOp::Set {
            point: point.to_vec(),
            value,
        })?;
        Ok(self.cube.set(point, value))
    }

    /// Logs a covered-box growth step (bookkeeping; see [`WalOp::Grow`]).
    pub fn log_grow(&mut self, axis: usize, amount: usize, low: bool) -> io::Result<()> {
        self.wal.append::<G>(&WalOp::Grow { axis, amount, low })?;
        Ok(())
    }

    /// The wrapped cube (reads need no logging).
    pub fn cube(&self) -> &GrowableCube<G> {
        &self.cube
    }

    /// Writes a snapshot of the current state to `out`, returning the
    /// bytes written. After the snapshot is durable the caller may
    /// truncate/replace the log (see [`DurableCube::reset_wal`]).
    pub fn checkpoint(&self, out: &mut impl Write) -> io::Result<u64> {
        self.cube.save(out)
    }

    /// Replaces the log with a fresh one on `sink` — the post-checkpoint
    /// truncation. Returns the retired sink.
    pub fn reset_wal(&mut self, sink: W) -> io::Result<W> {
        let old = std::mem::replace(&mut self.wal, WalWriter::create(sink)?);
        Ok(old.into_inner())
    }

    /// Log statistics: `(bytes, records)` acknowledged so far.
    pub fn wal_stats(&self) -> (u64, u64) {
        (self.wal.bytes(), self.wal.records())
    }

    /// Borrow of the log writer (e.g. to peek at an in-memory sink).
    pub fn wal(&self) -> &WalWriter<W> {
        &self.wal
    }

    /// Consumes the cube, returning the log writer.
    pub fn into_wal(self) -> WalWriter<W> {
        self.wal
    }
}

/// A [`DurableCube`] shared between threads: one facade mutex holds the
/// log-then-apply pair, so "acknowledged" (a call returning `Ok`) means
/// the WAL record was appended *and* the in-memory cube reflects it as
/// one atomic step with respect to every other thread.
///
/// This is the structure the `ddc-model` durability scenarios
/// ([`crate::models`]) check: no schedule may return an ack before the
/// record count in the log has grown, and concurrent `add`s must be
/// linearizable against the sequential oracle.
#[derive(Debug)]
pub struct SharedDurableCube<G: AbelianGroup + ValueCodec, W: Write> {
    inner: Arc<Mutex<DurableCube<G, W>>>,
}

impl<G: AbelianGroup + ValueCodec, W: Write> Clone for SharedDurableCube<G, W> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<G: AbelianGroup + ValueCodec, W: Write> SharedDurableCube<G, W> {
    /// An empty shared durable cube logging to `sink`.
    pub fn new(d: usize, config: DdcConfig, sink: W) -> io::Result<Self> {
        Ok(Self::from_cube(DurableCube::new(d, config, sink)?))
    }

    /// Wraps an existing durable cube.
    pub fn from_cube(cube: DurableCube<G, W>) -> Self {
        Self {
            inner: Arc::new(Mutex::new(cube)),
        }
    }

    /// Poison-tolerant lock: a panicked appender left state that the
    /// log-then-apply discipline already bounds (an appended-but-not-
    /// applied record is exactly what recovery replays), so later
    /// threads may keep going — the shard-lock pattern from
    /// [`crate::shard`].
    fn lock(&self) -> MutexGuard<'_, DurableCube<G, W>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Logs, then applies, a point delta under the lock. `Ok` is the
    /// durability acknowledgement.
    pub fn add(&self, point: &[i64], delta: G) -> io::Result<()> {
        self.lock().add(point, delta)
    }

    /// Logs, then applies, a cell set; returns the previous value.
    pub fn set(&self, point: &[i64], value: G) -> io::Result<G> {
        self.lock().set(point, value)
    }

    /// One cell of the in-memory cube.
    pub fn cell(&self, point: &[i64]) -> G {
        self.lock().cube().cell(point)
    }

    /// Sum of every populated cell.
    pub fn total(&self) -> G {
        self.lock().cube().total()
    }

    /// Dimensionality of the cube.
    pub fn ndim(&self) -> usize {
        self.lock().cube().ndim()
    }

    /// Range sum over the closed logical box `[lo, hi]` — the serving
    /// read path for durable backends. Parts outside the covered box
    /// contribute zero.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or inverted bounds (callers validate
    /// untrusted input first).
    pub fn range_sum(&self, lo: &[i64], hi: &[i64]) -> G {
        self.lock().cube().range_sum(lo, hi)
    }

    /// Log statistics: `(bytes, records)` acknowledged so far.
    pub fn wal_stats(&self) -> (u64, u64) {
        self.lock().wal_stats()
    }

    /// Runs `f` with the durable cube under the lock (compound
    /// inspection against one consistent log/cube version).
    pub fn with_cube<R>(&self, f: impl FnOnce(&DurableCube<G, W>) -> R) -> R {
        f(&self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp<i64>> {
        vec![
            WalOp::Update {
                point: vec![0, 0],
                delta: 5,
            },
            WalOp::Set {
                point: vec![-3, 7],
                value: -9,
            },
            WalOp::Grow {
                axis: 1,
                amount: 4,
                low: true,
            },
            WalOp::Update {
                point: vec![-3, 7],
                delta: 2,
            },
        ]
    }

    fn write_log(ops: &[WalOp<i64>]) -> (Vec<u8>, Vec<u64>) {
        let mut w = WalWriter::create(Vec::new()).unwrap();
        let mut ends = Vec::new();
        for op in ops {
            ends.push(w.append(op).unwrap());
        }
        (w.into_inner(), ends)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE 802.3 test vectors (zlib's crc32).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn log_roundtrips_cleanly() {
        let ops = sample_ops();
        let (log, ends) = write_log(&ops);
        let replay = read_wal::<i64>(&log, WalConfig::default()).unwrap();
        assert!(replay.is_clean());
        assert_eq!(replay.ops, ops);
        assert_eq!(replay.valid_bytes as usize, log.len());
        assert_eq!(replay.ends, ends);
    }

    #[test]
    fn truncation_at_every_offset_yields_exact_record_prefix() {
        let ops = sample_ops();
        let (log, ends) = write_log(&ops);
        for cut in 0..=log.len() {
            let replay = read_wal::<i64>(&log[..cut], WalConfig::default()).unwrap();
            let expect = ends.iter().filter(|&&e| e as usize <= cut).count();
            assert_eq!(replay.ops.len(), expect, "cut at byte {cut}");
            assert_eq!(replay.ops[..], ops[..expect], "cut at byte {cut}");
            // A clean scan only when the cut lands exactly on a record
            // boundary (or the bare header).
            let on_boundary = cut == WAL_HEADER_BYTES || ends.iter().any(|&e| e as usize == cut);
            assert_eq!(replay.is_clean(), on_boundary, "cut at byte {cut}");
        }
    }

    #[test]
    fn corrupt_byte_truncates_at_that_record() {
        let ops = sample_ops();
        let (log, ends) = write_log(&ops);
        // Flip a point-coordinate byte inside record 1's payload (past
        // the tag and arity, so the record still *decodes* — just wrong).
        let mut damaged = log.clone();
        let idx = ends[0] as usize + WAL_FRAME_BYTES + 1 + 4;
        damaged[idx] ^= 0xFF;
        let replay = read_wal::<i64>(&damaged, WalConfig::default()).unwrap();
        assert_eq!(replay.ops.len(), 1, "{:?}", replay.truncated);
        assert!(replay
            .truncated
            .as_deref()
            .unwrap()
            .contains("checksum mismatch"));
        // With verification disabled the damage sails through — the
        // fault-injection hook the crash harness uses to prove the
        // checksum is load-bearing.
        let blind = WalConfig {
            verify_checksums: false,
            ..WalConfig::default()
        };
        let replay = read_wal::<i64>(&damaged, blind).unwrap();
        assert!(replay.ops.len() >= 2);
        assert_ne!(replay.ops[1], ops[1]);
    }

    #[test]
    fn implausible_frame_length_is_corruption_not_allocation() {
        let (mut log, _) = write_log(&sample_ops());
        let at = WAL_HEADER_BYTES;
        log[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let replay = read_wal::<i64>(&log, WalConfig::default()).unwrap();
        assert_eq!(replay.ops.len(), 0);
        assert!(replay
            .truncated
            .as_deref()
            .unwrap()
            .contains("implausible record length"));
    }

    #[test]
    fn alien_input_errors_rather_than_truncates() {
        assert!(read_wal::<i64>(b"NOTAWAL!", WalConfig::default()).is_err());
        let mut wrong_version = WAL_MAGIC.to_vec();
        wrong_version.push(9);
        assert!(read_wal::<i64>(&wrong_version, WalConfig::default()).is_err());
        // A torn header (prefix of the magic) is a crash signature, not
        // an alien file.
        let replay = read_wal::<i64>(&WAL_MAGIC[..2], WalConfig::default()).unwrap();
        assert_eq!(replay.ops.len(), 0);
        assert!(!replay.is_clean());
    }

    #[test]
    fn recover_replays_snapshot_plus_log() {
        // State at checkpoint time…
        let mut base = GrowableCube::<i64>::new(2, DdcConfig::sparse());
        base.add(&[1, 1], 10);
        base.add(&[-4, 0], 3);
        let mut snapshot = Vec::new();
        base.save(&mut snapshot).unwrap();
        // …then more acknowledged work in the log.
        let (log, _) = write_log(&[
            WalOp::Update {
                point: vec![1, 1],
                delta: -10,
            },
            WalOp::Set {
                point: vec![9, 9],
                value: 4,
            },
        ]);
        let (cube, report) = recover::<i64>(
            2,
            Some(&snapshot),
            &log,
            DdcConfig::sparse(),
            WalConfig::default(),
        )
        .unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.replayed, 2);
        assert!(report.truncated.is_none());
        assert_eq!(cube.cell(&[1, 1]), 0);
        assert_eq!(cube.cell(&[-4, 0]), 3);
        assert_eq!(cube.cell(&[9, 9]), 4);
        assert_eq!(cube.total(), 7);
    }

    #[test]
    fn recover_without_snapshot_and_with_torn_tail() {
        let (log, ends) = write_log(&sample_ops());
        // Kill mid-record-3: recovery keeps exactly the first two records.
        let cut = (ends[2] - 3) as usize;
        let (cube, report) = recover::<i64>(
            2,
            None,
            &log[..cut],
            DdcConfig::dynamic(),
            WalConfig::default(),
        )
        .unwrap();
        assert!(!report.snapshot_loaded);
        assert_eq!(report.replayed, 2);
        assert!(report.truncated.is_some());
        assert_eq!(cube.cell(&[0, 0]), 5);
        assert_eq!(cube.cell(&[-3, 7]), -9);
    }

    #[test]
    fn recover_rejects_arity_mismatch() {
        let (log, _) = write_log(&sample_ops()); // 2-dimensional records
        assert!(recover::<i64>(3, None, &log, DdcConfig::dynamic(), WalConfig::default()).is_err());
    }

    #[test]
    fn durable_cube_checkpoint_and_reset() {
        let mut cube =
            DurableCube::<i64, Vec<u8>>::new(1, DdcConfig::dynamic(), Vec::new()).unwrap();
        cube.add(&[5], 2).unwrap();
        cube.add(&[-1], 8).unwrap();
        assert_eq!(cube.wal_stats().1, 2);
        let mut snapshot = Vec::new();
        let bytes = cube.checkpoint(&mut snapshot).unwrap();
        assert_eq!(bytes as usize, snapshot.len());
        let old_log = cube.reset_wal(Vec::new()).unwrap();
        assert!(old_log.len() > WAL_HEADER_BYTES);
        assert_eq!(cube.wal_stats().1, 0);
        cube.set(&[5], 1).unwrap();
        // Crash now: snapshot + fresh log reproduce the state exactly.
        let log = cube.into_wal().into_inner();
        let (recovered, report) = recover::<i64>(
            1,
            Some(&snapshot),
            &log,
            DdcConfig::dynamic(),
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(recovered.cell(&[5]), 1);
        assert_eq!(recovered.cell(&[-1]), 8);
    }
}
