//! Write-ahead logging and crash recovery (the durability layer).
//!
//! The paper's headline property — the cube stays *updatable in place*
//! (§4–§6) — is worthless in a serving deployment if a process kill
//! loses every queued update. This module makes the update path
//! crash-safe with the classic two-piece protocol:
//!
//! 1. **Snapshot** — a point-in-time image written by [`crate::persist`]
//!    (`save`/`load`), taken at checkpoints.
//! 2. **Write-ahead log** — every mutation is appended to a checksummed,
//!    length-prefixed log *and flushed* before it is acknowledged and
//!    applied in memory.
//!
//! Recovery loads the last good snapshot and replays the log,
//! **truncating at the first corrupt or partial record** instead of
//! erroring — a torn tail is the expected signature of a kill mid-write,
//! not a reason to refuse service. The invariant proven by the
//! `ddc check crash` sweep (see `ddc-check`): for a kill at *any* byte
//! offset, the recovered state equals exactly the acknowledged prefix of
//! operations — no acked write is lost, no unacked write is resurrected.
//!
//! ## Log format
//!
//! ```text
//! header:  magic "DDCW" | u8 version (1)
//! record:  u32 payload_len | u32 crc32(payload) | payload
//! payload: u8 tag
//!          tag 1 Update: u32 d | d × i64 point | value bytes
//!          tag 2 Set:    u32 d | d × i64 point | value bytes
//!          tag 3 Grow:   u32 axis | u64 amount | u8 low
//! ```
//!
//! All integers are little-endian; values go through
//! [`ValueCodec`](crate::ValueCodec) like snapshots do. The CRC32 (IEEE
//! 802.3, reflected) is implemented in-repo so the workspace stays
//! hermetic.
//!
//! ## Disk faults
//!
//! Every byte of durable IO flows through the [`crate::vfs`] seam, so
//! the log survives *disk* death too, not just process death. The
//! policy (DESIGN S44):
//!
//! * transient faults (EIO, short writes, failed sync) are retried with
//!   bounded exponential backoff; before each retry the log is
//!   truncated back to the acknowledged high-water mark so a torn
//!   partial frame can never sit under a later acked record;
//! * ENOSPC and retry exhaustion flip the [`DurableCube`] into
//!   **degraded read-only mode** — queries keep serving, mutations
//!   return [`IoError::ReadOnly`] — surfaced through the
//!   `ddc_degraded_mode` gauge and `ddc serve`'s `/healthz`;
//! * the `ddc check disk` chaos sweep drives seeded fault schedules
//!   through this path and asserts no acked update is ever lost.

use std::io::{self, Write};
use std::time::Duration;

use crate::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use ddc_array::AbelianGroup;

use crate::config::{DdcConfig, WalConfig};
use crate::growth::GrowableCube;
use crate::obs;
use crate::pager::WalBarrier;
use crate::persist::ValueCodec;
use crate::vfs::{is_no_space, read_stable, OpenMode, Vfs, VfsFile};

/// Durability-path observability handles: append latency (the full
/// log-and-sync), the sync portion alone, recovery replay, and the
/// disk-fault counters surfaced as `ddc_wal_io_faults` /
/// `ddc_wal_io_retries` / `ddc_degraded_mode`.
struct WalObs {
    append_ns: Arc<obs::Histogram>,
    fsync_ns: Arc<obs::Histogram>,
    recover_ns: Arc<obs::Histogram>,
    append_records: Arc<obs::Counter>,
    append_bytes: Arc<obs::Counter>,
    recover_records: Arc<obs::Counter>,
    recover_runs: Arc<obs::Counter>,
    io_faults: Arc<obs::Counter>,
    io_retries: Arc<obs::Counter>,
    degraded_mode: Arc<obs::Gauge>,
}

fn wal_obs() -> &'static WalObs {
    static OBS: OnceLock<WalObs> = OnceLock::new();
    OBS.get_or_init(|| WalObs {
        append_ns: obs::histogram("wal.append"),
        fsync_ns: obs::histogram("wal.fsync"),
        recover_ns: obs::histogram("wal.recover"),
        append_records: obs::counter("wal.append.records"),
        append_bytes: obs::counter("wal.append.bytes"),
        recover_records: obs::counter("wal.recover.records"),
        recover_runs: obs::counter("wal.recover.runs"),
        io_faults: obs::counter("wal.io.faults"),
        io_retries: obs::counter("wal.io.retries"),
        degraded_mode: obs::gauge("degraded.mode"),
    })
}

// ---------------------------------------------------------------------
// Typed IO errors and the retry policy
// ---------------------------------------------------------------------

/// Typed durability-path error. The variant tells the caller what the
/// failure means for the cube's state, not just what syscall failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoError {
    /// The operation failed but the cube is unchanged and healthy —
    /// retrying the *call* later may succeed (e.g. a codec rejection,
    /// or a checkpoint that failed before the snapshot rename).
    Transient {
        /// Human-readable cause.
        detail: String,
        /// IO retries burned before giving up on this call.
        retries: u32,
    },
    /// The bounded retry budget was spent without a successful append.
    /// The cube has entered degraded read-only mode.
    Exhausted {
        /// Human-readable cause (the last underlying IO error).
        detail: String,
        /// Retries attempted.
        retries: u32,
        /// True when the final failure was at the sync barrier *and*
        /// the torn-tail cleanup also failed: the record's durability
        /// is ambiguous (the classic commit window), so recovery may
        /// legitimately replay this one unacknowledged operation.
        indeterminate: bool,
    },
    /// The cube is in degraded read-only mode (ENOSPC or a previous
    /// exhaustion); mutations are rejected without touching the log.
    ReadOnly {
        /// Why the cube degraded.
        reason: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Transient { detail, retries } => {
                write!(f, "transient IO failure ({retries} retries): {detail}")
            }
            IoError::Exhausted {
                detail,
                retries,
                indeterminate,
            } => write!(
                f,
                "IO retry budget exhausted after {retries} retries{}: {detail}",
                if *indeterminate {
                    " (durability of the last record is indeterminate)"
                } else {
                    ""
                }
            ),
            IoError::ReadOnly { reason } => {
                write!(f, "durable store is read-only (degraded): {reason}")
            }
        }
    }
}

impl std::error::Error for IoError {}

/// Bounded-retry policy for transient disk faults on the append path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt before declaring exhaustion.
    pub max_retries: u32,
    /// Backoff before the first retry; doubled each subsequent retry.
    pub base_delay: Duration,
    /// Ceiling on the per-retry backoff.
    pub max_delay: Duration,
    /// Truncate the log back to the acknowledged high-water mark before
    /// each retry (and after final failure), so a torn partial frame
    /// never precedes a later acked record and a synced-but-unacked
    /// frame is removed rather than duplicated.
    ///
    /// Production code never turns this off; `ddc check disk` replays
    /// its committed fault schedules with it disabled and must
    /// rediscover both resulting corruption classes.
    #[doc(hidden)]
    pub truncate_on_retry: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
            truncate_on_retry: true,
        }
    }
}

impl RetryPolicy {
    /// Default budget with zero backoff — for harnesses and tests where
    /// wall-clock sleeps only slow the sweep down.
    pub fn instant() -> Self {
        Self {
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..Self::default()
        }
    }

    /// Backoff before retry number `retry` (1-based): `base · 2^(r-1)`,
    /// capped at [`RetryPolicy::max_delay`].
    pub fn backoff(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let mult = 1u32 << retry.saturating_sub(1).min(16);
        self.base_delay.saturating_mul(mult).min(self.max_delay)
    }
}

/// Log header: magic plus a format version byte.
pub const WAL_MAGIC: &[u8; 4] = b"DDCW";
/// Current log format version.
pub const WAL_VERSION: u8 = 1;
/// Bytes of the segment header (`magic | version`).
pub const WAL_HEADER_BYTES: usize = 5;
/// Bytes of a record frame before its payload (`len | crc`).
pub const WAL_FRAME_BYTES: usize = 8;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 checksum (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// One logged mutation, in signed logical coordinates (the WAL speaks
/// the growable cube's language so growth in any direction is loggable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp<G> {
    /// Add `delta` at `point`.
    Update {
        /// Target cell.
        point: Vec<i64>,
        /// Added value.
        delta: G,
    },
    /// Set the cell at `point` to `value`.
    Set {
        /// Target cell.
        point: Vec<i64>,
        /// New value.
        value: G,
    },
    /// The covered box grew by `amount` cells along `axis` (bookkeeping;
    /// carries no cell data — the growable cube re-grows organically on
    /// replay).
    Grow {
        /// Axis that grew.
        axis: usize,
        /// Cells added.
        amount: usize,
        /// Toward negative coordinates when true.
        low: bool,
    },
}

const TAG_UPDATE: u8 = 1;
const TAG_SET: u8 = 2;
const TAG_GROW: u8 = 3;

impl<G: AbelianGroup + ValueCodec> WalOp<G> {
    /// Encodes the record payload (everything after the frame). The
    /// `io::Result` comes from [`ValueCodec::encode`]; writes into a
    /// `Vec<u8>` cannot themselves fail, but a codec is free to reject
    /// a value, and that must surface as an append error, not a panic.
    fn encode_payload(&self, out: &mut Vec<u8>) -> io::Result<()> {
        let point_payload = |out: &mut Vec<u8>, tag: u8, point: &[i64], v: &G| {
            out.push(tag);
            out.extend_from_slice(&(point.len() as u32).to_le_bytes());
            for &c in point {
                out.extend_from_slice(&c.to_le_bytes());
            }
            v.encode(out)
        };
        match self {
            WalOp::Update { point, delta } => point_payload(out, TAG_UPDATE, point, delta),
            WalOp::Set { point, value } => point_payload(out, TAG_SET, point, value),
            WalOp::Grow { axis, amount, low } => {
                out.push(TAG_GROW);
                out.extend_from_slice(&(*axis as u32).to_le_bytes());
                out.extend_from_slice(&(*amount as u64).to_le_bytes());
                out.push(u8::from(*low));
                Ok(())
            }
        }
    }

    /// Decodes one payload. Any structural problem is an error — the
    /// caller treats it as a corrupt record and truncates there.
    fn decode_payload(mut payload: &[u8]) -> Result<Self, String> {
        let input = &mut payload;
        let mut tag = [0u8; 1];
        read_exactly(input, &mut tag)?;
        match tag[0] {
            TAG_UPDATE | TAG_SET => {
                let mut b4 = [0u8; 4];
                read_exactly(input, &mut b4)?;
                let d = u32::from_le_bytes(b4) as usize;
                if d == 0 || d > 64 {
                    return Err(format!("implausible dimensionality {d}"));
                }
                let mut point = Vec::with_capacity(d);
                let mut b8 = [0u8; 8];
                for _ in 0..d {
                    read_exactly(input, &mut b8)?;
                    point.push(i64::from_le_bytes(b8));
                }
                let v = G::decode(input).map_err(|e| format!("value: {e}"))?;
                if !input.is_empty() {
                    return Err(format!("{} trailing payload bytes", input.len()));
                }
                Ok(if tag[0] == TAG_UPDATE {
                    WalOp::Update { point, delta: v }
                } else {
                    WalOp::Set { point, value: v }
                })
            }
            TAG_GROW => {
                let mut b4 = [0u8; 4];
                read_exactly(input, &mut b4)?;
                let axis = u32::from_le_bytes(b4) as usize;
                let mut b8 = [0u8; 8];
                read_exactly(input, &mut b8)?;
                let amount = usize::try_from(u64::from_le_bytes(b8))
                    .map_err(|_| "growth amount exceeds address space".to_string())?;
                let mut low = [0u8; 1];
                read_exactly(input, &mut low)?;
                if low[0] > 1 {
                    return Err(format!("bad grow direction byte {}", low[0]));
                }
                if !input.is_empty() {
                    return Err(format!("{} trailing payload bytes", input.len()));
                }
                Ok(WalOp::Grow {
                    axis,
                    amount,
                    low: low[0] == 1,
                })
            }
            other => Err(format!("unknown record tag {other}")),
        }
    }
}

fn read_exactly(input: &mut &[u8], buf: &mut [u8]) -> Result<(), String> {
    if input.len() < buf.len() {
        return Err("payload shorter than declared".to_string());
    }
    let (head, rest) = input.split_at(buf.len());
    buf.copy_from_slice(head);
    *input = rest;
    Ok(())
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Where a failed append attempt died — before or after the bytes
/// reached the file. Sync-stage failures leave a complete frame whose
/// durability is ambiguous; write-stage failures leave nothing or a
/// torn prefix.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum FrameStage {
    Write,
    Sync,
}

/// Appends framed, checksummed records to a [`VfsFile`], issuing the
/// sync barrier on each one before reporting success — a record is
/// **acknowledged** exactly when [`WalWriter::append`] (or
/// [`WalWriter::append_with_retry`]) returns `Ok`.
#[derive(Debug)]
pub struct WalWriter<F: VfsFile> {
    out: F,
    bytes: u64,
    records: u64,
    io_faults: u64,
    io_retries: u64,
}

impl<F: VfsFile> WalWriter<F> {
    /// Starts a fresh log on `out`: writes and syncs the header.
    pub fn create(mut out: F) -> io::Result<Self> {
        let mut header = [0u8; WAL_HEADER_BYTES];
        header[..4].copy_from_slice(WAL_MAGIC);
        header[4] = WAL_VERSION;
        out.write_all(&header)?;
        out.sync()?;
        Ok(Self {
            out,
            bytes: WAL_HEADER_BYTES as u64,
            records: 0,
            io_faults: 0,
            io_retries: 0,
        })
    }

    /// Resumes appending to a log that already holds `bytes` valid bytes
    /// and `records` records (as reported by [`read_wal`]). The caller
    /// must have truncated the sink to exactly `bytes` first.
    pub fn resume(out: F, bytes: u64, records: u64) -> Self {
        Self {
            out,
            bytes,
            records,
            io_faults: 0,
            io_retries: 0,
        }
    }

    /// Frames one record: `u32 len | u32 crc | payload` in a single
    /// buffer, so the fault surface per append is one write plus one
    /// sync.
    fn encode_frame<G: AbelianGroup + ValueCodec>(op: &WalOp<G>) -> io::Result<Vec<u8>> {
        let mut payload = Vec::with_capacity(32);
        op.encode_payload(&mut payload)?;
        let mut frame = Vec::with_capacity(WAL_FRAME_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        Ok(frame)
    }

    /// One write+sync attempt; reports which stage failed.
    fn append_frame_once(&mut self, frame: &[u8]) -> Result<(), (FrameStage, io::Error)> {
        let site = wal_obs();
        let span = obs::timer();
        self.out
            .write_all(frame)
            .map_err(|e| (FrameStage::Write, e))?;
        let sync = obs::timer();
        self.out.sync().map_err(|e| (FrameStage::Sync, e))?;
        sync.observe("wal.fsync", &site.fsync_ns);
        span.observe("wal.append", &site.append_ns);
        Ok(())
    }

    /// Advances the acknowledged high-water mark after a durable frame.
    fn commit_frame(&mut self, frame_len: usize) {
        let site = wal_obs();
        self.bytes += frame_len as u64;
        self.records += 1;
        site.append_records.inc();
        site.append_bytes.add(frame_len as u64);
    }

    /// Restores the log tail to the acknowledged high-water mark after
    /// a failed attempt (no-op under the hidden `truncate_on_retry`
    /// fault hook).
    fn restore_tail(&mut self, policy: &RetryPolicy) -> io::Result<()> {
        if policy.truncate_on_retry {
            self.out.truncate(self.bytes)
        } else {
            Ok(())
        }
    }

    /// Appends one record and syncs — a single attempt with no retry.
    /// Returns the total log size in bytes after the append — the
    /// durable high-water mark. On error the file tail is *not*
    /// restored; use [`WalWriter::append_with_retry`] on fallible
    /// media.
    pub fn append<G: AbelianGroup + ValueCodec>(&mut self, op: &WalOp<G>) -> io::Result<u64> {
        let frame = Self::encode_frame(op)?;
        self.append_frame_once(&frame).map_err(|(_, e)| e)?;
        self.commit_frame(frame.len());
        Ok(self.bytes)
    }

    /// Appends one record with bounded retry + exponential backoff.
    /// Before every retry (and after a final failure) the log is
    /// truncated back to the acknowledged high-water mark, so a torn
    /// partial frame can never precede a later acked record and a
    /// synced-but-unacked frame is removed rather than duplicated.
    ///
    /// ENOSPC is never retried — it returns [`IoError::ReadOnly`]
    /// immediately so the caller can degrade.
    pub fn append_with_retry<G: AbelianGroup + ValueCodec>(
        &mut self,
        op: &WalOp<G>,
        policy: &RetryPolicy,
    ) -> Result<u64, IoError> {
        let frame = Self::encode_frame(op).map_err(|e| IoError::Transient {
            detail: format!("encode: {e}"),
            retries: 0,
        })?;
        let site = wal_obs();
        let mut retries = 0u32;
        loop {
            match self.append_frame_once(&frame) {
                Ok(()) => {
                    self.commit_frame(frame.len());
                    return Ok(self.bytes);
                }
                Err((stage, e)) => {
                    self.io_faults += 1;
                    site.io_faults.inc();
                    let torn = self.restore_tail(policy).is_err();
                    if is_no_space(&e) {
                        return Err(IoError::ReadOnly {
                            reason: format!("out of disk space: {e}"),
                        });
                    }
                    if torn {
                        // The tail cleanup itself failed: appending over
                        // a torn prefix would bury acked records behind
                        // garbage, so stop here.
                        return Err(IoError::Exhausted {
                            detail: format!("cannot restore log tail after failed append: {e}"),
                            retries,
                            indeterminate: stage == FrameStage::Sync,
                        });
                    }
                    if retries >= policy.max_retries {
                        return Err(IoError::Exhausted {
                            detail: e.to_string(),
                            retries,
                            indeterminate: false,
                        });
                    }
                    retries += 1;
                    self.io_retries += 1;
                    site.io_retries.inc();
                    let delay = policy.backoff(retries);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }

    /// Total bytes written (header plus every acknowledged record).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records acknowledged so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Failed IO attempts observed on this writer (also exported
    /// globally as `ddc_wal_io_faults`).
    pub fn io_faults(&self) -> u64 {
        self.io_faults
    }

    /// Retries performed on this writer (also exported globally as
    /// `ddc_wal_io_retries`).
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Shared view of the sink (e.g. a `Vec<u8>` used as an in-memory
    /// log by the crash harness).
    pub fn get_ref(&self) -> &F {
        &self.out
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> F {
        self.out
    }
}

// ---------------------------------------------------------------------
// Reader / replay
// ---------------------------------------------------------------------

/// What a log scan recovered: the decoded prefix plus where and why it
/// stopped.
#[derive(Clone, Debug)]
pub struct WalReplay<G> {
    /// Decoded records, in append order.
    pub ops: Vec<WalOp<G>>,
    /// Bytes of the valid prefix (header + intact records). Truncating
    /// the log file to this length yields a clean log.
    pub valid_bytes: u64,
    /// End offset of each intact record, in order — `ends[i]` is the
    /// log length after record `i` was acknowledged.
    pub ends: Vec<u64>,
    /// Why the scan stopped before the end of the input, if it did.
    /// `None` means the log is clean end to end.
    pub truncated: Option<String>,
}

impl<G> WalReplay<G> {
    /// True when no torn or corrupt tail was dropped.
    pub fn is_clean(&self) -> bool {
        self.truncated.is_none()
    }
}

/// Scans a log image, decoding every intact record and truncating at the
/// first torn or corrupt one (see the module docs for the contract).
///
/// Errors only on a *structurally alien* input: an intact-length header
/// whose magic or version is wrong. A header cut short by a crash is a
/// valid empty log with a torn tail.
pub fn read_wal<G: AbelianGroup + ValueCodec>(
    data: &[u8],
    config: WalConfig,
) -> io::Result<WalReplay<G>> {
    let mut replay = WalReplay {
        ops: Vec::new(),
        valid_bytes: 0,
        ends: Vec::new(),
        truncated: None,
    };
    if data.len() < WAL_HEADER_BYTES {
        // A kill before the header hit the disk: an empty log, torn.
        if !WAL_MAGIC.starts_with(&data[..data.len().min(4)]) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a DDC WAL (bad magic)",
            ));
        }
        replay.truncated = Some("torn header".to_string());
        return Ok(replay);
    }
    if &data[..4] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a DDC WAL (bad magic)",
        ));
    }
    if data[4] != WAL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported WAL version {}", data[4]),
        ));
    }
    let mut offset = WAL_HEADER_BYTES;
    replay.valid_bytes = offset as u64;
    while offset < data.len() {
        let rest = &data[offset..];
        if rest.len() < WAL_FRAME_BYTES {
            replay.truncated = Some(format!("torn frame at byte {offset}"));
            break;
        }
        // `rest` is at least WAL_FRAME_BYTES long (checked above), so
        // both frame fields are present; decode without panicking paths.
        let mut b4 = [0u8; 4];
        b4.copy_from_slice(&rest[..4]);
        let len = u32::from_le_bytes(b4) as usize;
        b4.copy_from_slice(&rest[4..8]);
        let crc = u32::from_le_bytes(b4);
        if len as u64 > config.max_record_bytes {
            replay.truncated = Some(format!(
                "implausible record length {len} at byte {offset} (corrupt frame)"
            ));
            break;
        }
        if rest.len() < WAL_FRAME_BYTES + len {
            replay.truncated = Some(format!("torn record at byte {offset}"));
            break;
        }
        let payload = &rest[WAL_FRAME_BYTES..WAL_FRAME_BYTES + len];
        if config.verify_checksums && crc32(payload) != crc {
            replay.truncated = Some(format!("checksum mismatch at byte {offset}"));
            break;
        }
        match WalOp::<G>::decode_payload(payload) {
            Ok(op) => replay.ops.push(op),
            Err(reason) => {
                replay.truncated = Some(format!("undecodable record at byte {offset}: {reason}"));
                break;
            }
        }
        offset += WAL_FRAME_BYTES + len;
        replay.valid_bytes = offset as u64;
        replay.ends.push(offset as u64);
    }
    Ok(replay)
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

/// What [`recover`] did, for operators and metrics.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// True when a snapshot was loaded (vs starting from an empty cube).
    pub snapshot_loaded: bool,
    /// Records replayed from the log.
    pub replayed: usize,
    /// Valid log prefix in bytes.
    pub valid_bytes: u64,
    /// Why the log was truncated, if it was.
    pub truncated: Option<String>,
}

/// Rebuilds a cube after a crash: load the last good snapshot (if any),
/// then replay the WAL, truncating at the first corrupt or partial
/// record. `d` fixes the dimensionality when no snapshot exists.
pub fn recover<G: AbelianGroup + ValueCodec>(
    d: usize,
    snapshot: Option<&[u8]>,
    wal: &[u8],
    config: DdcConfig,
    wal_config: WalConfig,
) -> io::Result<(GrowableCube<G>, RecoveryReport)> {
    let site = wal_obs();
    let span = obs::timer();
    let (mut cube, snapshot_loaded) = match snapshot {
        Some(bytes) => {
            let cube = GrowableCube::<G>::load(&mut { bytes }, config)?;
            if cube.ndim() != d {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("snapshot is {}-dimensional, expected {d}", cube.ndim()),
                ));
            }
            (cube, true)
        }
        None => (GrowableCube::new(d, config), false),
    };
    // Paging (when configured) activates here, before the replay loop:
    // recovery literally replays the WAL onto pages, so a cube too big
    // for the memory cap can still be rebuilt. (The snapshot path above
    // already paged inside `load`; this is idempotent.)
    cube.enable_paging()?;
    let replay = read_wal::<G>(wal, wal_config)?;
    let mut replayed = 0usize;
    for op in &replay.ops {
        apply_to_growable(&mut cube, op, d).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("record {replayed}: {e}"),
            )
        })?;
        replayed += 1;
    }
    site.recover_runs.inc();
    site.recover_records.add(replayed as u64);
    span.observe("wal.recover", &site.recover_ns);
    Ok((
        cube,
        RecoveryReport {
            snapshot_loaded,
            replayed,
            valid_bytes: replay.valid_bytes,
            truncated: replay.truncated,
        },
    ))
}

/// Applies one decoded record to a growable cube. Arity mismatches are
/// errors (a record from a different cube), growth is organic.
fn apply_to_growable<G: AbelianGroup + ValueCodec>(
    cube: &mut GrowableCube<G>,
    op: &WalOp<G>,
    d: usize,
) -> Result<(), String> {
    match op {
        WalOp::Update { point, delta } => {
            if point.len() != d {
                return Err(format!("update arity {} != {d}", point.len()));
            }
            cube.add(point, *delta);
        }
        WalOp::Set { point, value } => {
            if point.len() != d {
                return Err(format!("set arity {} != {d}", point.len()));
            }
            cube.set(point, *value);
        }
        WalOp::Grow { axis, .. } => {
            if *axis >= d {
                return Err(format!("grow axis {axis} out of range for d={d}"));
            }
            // Covered-box bookkeeping only: the growable cube re-grows
            // on demand when a replayed point lands outside its box.
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// DurableCube: cube + WAL, wired together
// ---------------------------------------------------------------------

/// A [`GrowableCube`] whose every mutation is write-ahead logged: the
/// record is appended and flushed *before* the in-memory apply, so an
/// acknowledged mutation survives any subsequent kill.
///
/// # Examples
///
/// ```
/// use ddc_core::{wal, DdcConfig, DurableCube, WalConfig};
///
/// let mut cube = DurableCube::<i64, Vec<u8>>::new(2, DdcConfig::sparse(), Vec::new()).unwrap();
/// cube.add(&[3, -5], 7).unwrap();
/// cube.add(&[100, 2], 1).unwrap();
///
/// // Simulate a kill: all that survives is the log bytes.
/// let log = cube.into_wal().into_inner();
/// let (recovered, report) =
///     wal::recover::<i64>(2, None, &log, DdcConfig::sparse(), WalConfig::default()).unwrap();
/// assert_eq!(report.replayed, 2);
/// assert_eq!(recovered.cell(&[3, -5]), 7);
/// assert_eq!(recovered.total(), 8);
/// ```
#[derive(Debug)]
pub struct DurableCube<G: AbelianGroup + ValueCodec, F: VfsFile> {
    cube: GrowableCube<G>,
    wal: WalWriter<F>,
    policy: RetryPolicy,
    degraded: Option<String>,
    /// Present when the cube's leaf arena is paged: the WAL-before-data
    /// barrier, advanced after every synced append so dirty pages
    /// stamped by the subsequent apply are immediately eligible for
    /// write-back (their record is already durable).
    barrier: Option<WalBarrier>,
    /// Monotone op counter doubling as the log sequence number.
    lsn: u64,
}

impl<G: AbelianGroup + ValueCodec, F: VfsFile> DurableCube<G, F> {
    /// An empty durable cube logging to `sink` (starts a fresh log).
    pub fn new(d: usize, config: DdcConfig, sink: F) -> io::Result<Self> {
        let mut cube = GrowableCube::new(d, config);
        cube.enable_paging()?;
        Ok(Self::from_parts(
            cube,
            WalWriter::create(sink)?,
            RetryPolicy::default(),
        ))
    }

    /// Wraps an already-recovered cube, starting a fresh log on `sink`
    /// (the caller checkpoints the recovered state separately).
    pub fn from_recovered(cube: GrowableCube<G>, sink: F) -> io::Result<Self> {
        Ok(Self::from_parts(
            cube,
            WalWriter::create(sink)?,
            RetryPolicy::default(),
        ))
    }

    fn from_parts(cube: GrowableCube<G>, wal: WalWriter<F>, policy: RetryPolicy) -> Self {
        let barrier = cube.pager_barrier();
        Self {
            cube,
            wal,
            policy,
            degraded: None,
            barrier,
            lsn: 0,
        }
    }

    /// Advances the WAL barrier after a synced append. The append path
    /// syncs every record before acknowledging, so `appended` and
    /// `durable` move together; the separation exists for (and is
    /// exercised by) the pager's own tests, and keeps the no-dirty-page-
    /// before-its-log-record invariant mechanically enforced rather than
    /// assumed.
    fn note_synced_append(&mut self) {
        if let Some(b) = &self.barrier {
            self.lsn += 1;
            b.advance(self.lsn);
        }
    }

    /// Replaces the retry policy (builder-style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The active retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Why the cube is read-only, when it is. Queries keep serving in
    /// degraded mode; mutations return [`IoError::ReadOnly`].
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Operator override: leave degraded mode (e.g. after freeing disk
    /// space). The next mutation will attempt the log again.
    pub fn clear_degraded(&mut self) {
        if self.degraded.take().is_some() {
            wal_obs().degraded_mode.set(0);
        }
    }

    fn enter_degraded(&mut self, reason: String) {
        if self.degraded.is_none() {
            wal_obs().degraded_mode.set(1);
            self.degraded = Some(reason);
        }
    }

    fn guard_writable(&self) -> Result<(), IoError> {
        match &self.degraded {
            Some(reason) => Err(IoError::ReadOnly {
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Classifies an append failure and flips into degraded mode when
    /// the failure is terminal for the log.
    fn note_failure(&mut self, e: IoError) -> IoError {
        match &e {
            IoError::ReadOnly { reason } => self.enter_degraded(reason.clone()),
            IoError::Exhausted {
                detail, retries, ..
            } => self.enter_degraded(format!(
                "append retry budget exhausted after {retries} retries: {detail}"
            )),
            IoError::Transient { .. } => {}
        }
        e
    }

    /// Logs, then applies, a point delta. `Err` means *not acknowledged*:
    /// the in-memory cube was left untouched (and, except for the
    /// documented [`IoError::Exhausted`] indeterminate window, neither
    /// was the durable log).
    pub fn add(&mut self, point: &[i64], delta: G) -> Result<(), IoError> {
        self.guard_writable()?;
        let op = WalOp::Update {
            point: point.to_vec(),
            delta,
        };
        match self.wal.append_with_retry(&op, &self.policy) {
            Ok(_) => {
                self.note_synced_append();
                self.cube.add(point, delta);
                Ok(())
            }
            Err(e) => Err(self.note_failure(e)),
        }
    }

    /// Logs, then applies, a cell set; returns the previous value.
    pub fn set(&mut self, point: &[i64], value: G) -> Result<G, IoError> {
        self.guard_writable()?;
        let op = WalOp::Set {
            point: point.to_vec(),
            value,
        };
        match self.wal.append_with_retry(&op, &self.policy) {
            Ok(_) => {
                self.note_synced_append();
                Ok(self.cube.set(point, value))
            }
            Err(e) => Err(self.note_failure(e)),
        }
    }

    /// Logs a covered-box growth step (bookkeeping; see [`WalOp::Grow`]).
    pub fn log_grow(&mut self, axis: usize, amount: usize, low: bool) -> Result<(), IoError> {
        self.guard_writable()?;
        match self
            .wal
            .append_with_retry::<G>(&WalOp::Grow { axis, amount, low }, &self.policy)
        {
            Ok(_) => {
                self.note_synced_append();
                Ok(())
            }
            Err(e) => Err(self.note_failure(e)),
        }
    }

    /// The wrapped cube (reads need no logging).
    pub fn cube(&self) -> &GrowableCube<G> {
        &self.cube
    }

    /// Buffer-pool counters of the paged leaf arena (`None` on the
    /// slab backend).
    pub fn pool_stats(&self) -> Option<crate::pager::PoolStats> {
        self.cube.pool_stats()
    }

    /// Writes a snapshot of the current state to `out`, returning the
    /// bytes written. After the snapshot is durable the caller may
    /// truncate/replace the log (see [`DurableCube::reset_wal`]).
    pub fn checkpoint(&self, out: &mut impl Write) -> io::Result<u64> {
        self.cube.save(out)
    }

    /// Checkpoints through a [`Vfs`]: writes the snapshot atomically
    /// (tmp + sync + rename), then retires the log by starting a fresh
    /// one at `wal_path`. Ordering guarantees:
    ///
    /// 1. Any failure *before* the snapshot rename is
    ///    [`IoError::Transient`] — the previous snapshot and the full
    ///    log are untouched, recovery is unaffected, and the call may
    ///    simply be retried later (ENOSPC degrades instead).
    /// 2. Once the rename lands, the snapshot is the authoritative
    ///    base. `open(Create)` truncates the old log before the new
    ///    header is written, so a crash in between leaves an empty or
    ///    torn-header log — a valid empty replay. If even the
    ///    open/header write fails, the stale log is removed outright;
    ///    when that also fails the cube degrades rather than risk
    ///    double-applying the old log onto the new snapshot.
    pub fn checkpoint_vfs<V: Vfs<File = F>>(
        &mut self,
        vfs: &V,
        snapshot_path: &str,
        wal_path: &str,
    ) -> Result<u64, IoError> {
        self.guard_writable()?;
        let mut image = Vec::new();
        self.cube.save(&mut image).map_err(|e| IoError::Transient {
            detail: format!("snapshot encode: {e}"),
            retries: 0,
        })?;
        if let Err(e) = vfs.write_atomic(snapshot_path, &image) {
            wal_obs().io_faults.inc();
            return Err(if is_no_space(&e) {
                let reason = format!("out of disk space during checkpoint: {e}");
                self.enter_degraded(reason.clone());
                IoError::ReadOnly { reason }
            } else {
                IoError::Transient {
                    detail: format!("snapshot write: {e}"),
                    retries: 0,
                }
            });
        }
        match vfs
            .open(wal_path, OpenMode::Create)
            .and_then(WalWriter::create)
        {
            Ok(wal) => {
                self.wal = wal;
                Ok(image.len() as u64)
            }
            Err(e) => {
                wal_obs().io_faults.inc();
                let _ = vfs.remove(wal_path);
                let reason = format!("log rotation failed after checkpoint: {e}");
                self.enter_degraded(reason.clone());
                Err(IoError::Exhausted {
                    detail: reason,
                    retries: 0,
                    indeterminate: false,
                })
            }
        }
    }

    /// Replaces the log with a fresh one on `sink` — the post-checkpoint
    /// truncation. Returns the retired sink.
    pub fn reset_wal(&mut self, sink: F) -> io::Result<F> {
        let old = std::mem::replace(&mut self.wal, WalWriter::create(sink)?);
        Ok(old.into_inner())
    }

    /// Log statistics: `(bytes, records)` acknowledged so far.
    pub fn wal_stats(&self) -> (u64, u64) {
        (self.wal.bytes(), self.wal.records())
    }

    /// Borrow of the log writer (e.g. to peek at an in-memory sink).
    pub fn wal(&self) -> &WalWriter<F> {
        &self.wal
    }

    /// Consumes the cube, returning the log writer.
    pub fn into_wal(self) -> WalWriter<F> {
        self.wal
    }
}

/// Boots a durable cube through a [`Vfs`]: loads the snapshot (when
/// `snapshot_path` names an existing file), replays the log with the
/// usual torn-tail truncation, repairs the log file back to its valid
/// prefix, and resumes appending to it. Reads go through
/// [`read_stable`](crate::vfs::read_stable) so a transient read-back
/// bit flip cannot corrupt recovery.
pub fn recover_vfs<G: AbelianGroup + ValueCodec, V: Vfs>(
    vfs: &V,
    wal_path: &str,
    snapshot_path: Option<&str>,
    d: usize,
    config: DdcConfig,
    wal_config: WalConfig,
    policy: RetryPolicy,
) -> io::Result<(DurableCube<G, V::File>, RecoveryReport)> {
    let attempts = policy.max_retries + 3;
    let snapshot = match snapshot_path {
        Some(p) if vfs.exists(p)? => Some(read_stable(vfs, p, attempts)?),
        _ => None,
    };
    if !vfs.exists(wal_path)? {
        let (cube, report) = recover(d, snapshot.as_deref(), &[], config, wal_config)?;
        let wal = WalWriter::create(vfs.open(wal_path, OpenMode::Create)?)?;
        return Ok((DurableCube::from_parts(cube, wal, policy), report));
    }
    let log = read_stable(vfs, wal_path, attempts)?;
    let (cube, report) = recover(d, snapshot.as_deref(), &log, config, wal_config)?;
    let wal = if report.valid_bytes < WAL_HEADER_BYTES as u64 {
        // Torn header: rewrite the log from scratch.
        WalWriter::create(vfs.open(wal_path, OpenMode::Create)?)?
    } else {
        let mut f = vfs.open(wal_path, OpenMode::Append)?;
        if report.valid_bytes < log.len() as u64 {
            f.truncate(report.valid_bytes)?;
        }
        WalWriter::resume(f, report.valid_bytes, report.replayed as u64)
    };
    Ok((DurableCube::from_parts(cube, wal, policy), report))
}

/// A [`DurableCube`] shared between threads: one facade mutex holds the
/// log-then-apply pair, so "acknowledged" (a call returning `Ok`) means
/// the WAL record was appended *and* the in-memory cube reflects it as
/// one atomic step with respect to every other thread.
///
/// This is the structure the `ddc-model` durability scenarios
/// ([`crate::models`]) check: no schedule may return an ack before the
/// record count in the log has grown, and concurrent `add`s must be
/// linearizable against the sequential oracle.
#[derive(Debug)]
pub struct SharedDurableCube<G: AbelianGroup + ValueCodec, F: VfsFile> {
    inner: Arc<Mutex<DurableCube<G, F>>>,
}

impl<G: AbelianGroup + ValueCodec, F: VfsFile> Clone for SharedDurableCube<G, F> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<G: AbelianGroup + ValueCodec, F: VfsFile> SharedDurableCube<G, F> {
    /// An empty shared durable cube logging to `sink`.
    pub fn new(d: usize, config: DdcConfig, sink: F) -> io::Result<Self> {
        Ok(Self::from_cube(DurableCube::new(d, config, sink)?))
    }

    /// Wraps an existing durable cube.
    pub fn from_cube(cube: DurableCube<G, F>) -> Self {
        Self {
            inner: Arc::new(Mutex::new(cube)),
        }
    }

    /// Poison-tolerant lock: a panicked appender left state that the
    /// log-then-apply discipline already bounds (an appended-but-not-
    /// applied record is exactly what recovery replays), so later
    /// threads may keep going — the shard-lock pattern from
    /// [`crate::shard`].
    fn lock(&self) -> MutexGuard<'_, DurableCube<G, F>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Logs, then applies, a point delta under the lock. `Ok` is the
    /// durability acknowledgement.
    pub fn add(&self, point: &[i64], delta: G) -> Result<(), IoError> {
        self.lock().add(point, delta)
    }

    /// Logs, then applies, a cell set; returns the previous value.
    pub fn set(&self, point: &[i64], value: G) -> Result<G, IoError> {
        self.lock().set(point, value)
    }

    /// Why the cube is read-only, when it is (see
    /// [`DurableCube::degraded`]).
    pub fn degraded(&self) -> Option<String> {
        self.lock().degraded().map(str::to_string)
    }

    /// One cell of the in-memory cube.
    pub fn cell(&self, point: &[i64]) -> G {
        self.lock().cube().cell(point)
    }

    /// Sum of every populated cell.
    pub fn total(&self) -> G {
        self.lock().cube().total()
    }

    /// Dimensionality of the cube.
    pub fn ndim(&self) -> usize {
        self.lock().cube().ndim()
    }

    /// Range sum over the closed logical box `[lo, hi]` — the serving
    /// read path for durable backends. Parts outside the covered box
    /// contribute zero.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or inverted bounds (callers validate
    /// untrusted input first).
    pub fn range_sum(&self, lo: &[i64], hi: &[i64]) -> G {
        self.lock().cube().range_sum(lo, hi)
    }

    /// Log statistics: `(bytes, records)` acknowledged so far.
    pub fn wal_stats(&self) -> (u64, u64) {
        self.lock().wal_stats()
    }

    /// Buffer-pool counters of the paged leaf arena (`None` on the
    /// slab backend).
    pub fn pool_stats(&self) -> Option<crate::pager::PoolStats> {
        self.lock().pool_stats()
    }

    /// Runs `f` with the durable cube under the lock (compound
    /// inspection against one consistent log/cube version).
    pub fn with_cube<R>(&self, f: impl FnOnce(&DurableCube<G, F>) -> R) -> R {
        f(&self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultKind, FaultVfs, PlannedFault};

    fn sample_ops() -> Vec<WalOp<i64>> {
        vec![
            WalOp::Update {
                point: vec![0, 0],
                delta: 5,
            },
            WalOp::Set {
                point: vec![-3, 7],
                value: -9,
            },
            WalOp::Grow {
                axis: 1,
                amount: 4,
                low: true,
            },
            WalOp::Update {
                point: vec![-3, 7],
                delta: 2,
            },
        ]
    }

    fn write_log(ops: &[WalOp<i64>]) -> (Vec<u8>, Vec<u64>) {
        let mut w = WalWriter::create(Vec::new()).unwrap();
        let mut ends = Vec::new();
        for op in ops {
            ends.push(w.append(op).unwrap());
        }
        (w.into_inner(), ends)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE 802.3 test vectors (zlib's crc32).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn log_roundtrips_cleanly() {
        let ops = sample_ops();
        let (log, ends) = write_log(&ops);
        let replay = read_wal::<i64>(&log, WalConfig::default()).unwrap();
        assert!(replay.is_clean());
        assert_eq!(replay.ops, ops);
        assert_eq!(replay.valid_bytes as usize, log.len());
        assert_eq!(replay.ends, ends);
    }

    #[test]
    fn truncation_at_every_offset_yields_exact_record_prefix() {
        let ops = sample_ops();
        let (log, ends) = write_log(&ops);
        for cut in 0..=log.len() {
            let replay = read_wal::<i64>(&log[..cut], WalConfig::default()).unwrap();
            let expect = ends.iter().filter(|&&e| e as usize <= cut).count();
            assert_eq!(replay.ops.len(), expect, "cut at byte {cut}");
            assert_eq!(replay.ops[..], ops[..expect], "cut at byte {cut}");
            // A clean scan only when the cut lands exactly on a record
            // boundary (or the bare header).
            let on_boundary = cut == WAL_HEADER_BYTES || ends.iter().any(|&e| e as usize == cut);
            assert_eq!(replay.is_clean(), on_boundary, "cut at byte {cut}");
        }
    }

    #[test]
    fn corrupt_byte_truncates_at_that_record() {
        let ops = sample_ops();
        let (log, ends) = write_log(&ops);
        // Flip a point-coordinate byte inside record 1's payload (past
        // the tag and arity, so the record still *decodes* — just wrong).
        let mut damaged = log.clone();
        let idx = ends[0] as usize + WAL_FRAME_BYTES + 1 + 4;
        damaged[idx] ^= 0xFF;
        let replay = read_wal::<i64>(&damaged, WalConfig::default()).unwrap();
        assert_eq!(replay.ops.len(), 1, "{:?}", replay.truncated);
        assert!(replay
            .truncated
            .as_deref()
            .unwrap()
            .contains("checksum mismatch"));
        // With verification disabled the damage sails through — the
        // fault-injection hook the crash harness uses to prove the
        // checksum is load-bearing.
        let blind = WalConfig {
            verify_checksums: false,
            ..WalConfig::default()
        };
        let replay = read_wal::<i64>(&damaged, blind).unwrap();
        assert!(replay.ops.len() >= 2);
        assert_ne!(replay.ops[1], ops[1]);
    }

    #[test]
    fn implausible_frame_length_is_corruption_not_allocation() {
        let (mut log, _) = write_log(&sample_ops());
        let at = WAL_HEADER_BYTES;
        log[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let replay = read_wal::<i64>(&log, WalConfig::default()).unwrap();
        assert_eq!(replay.ops.len(), 0);
        assert!(replay
            .truncated
            .as_deref()
            .unwrap()
            .contains("implausible record length"));
    }

    #[test]
    fn alien_input_errors_rather_than_truncates() {
        assert!(read_wal::<i64>(b"NOTAWAL!", WalConfig::default()).is_err());
        let mut wrong_version = WAL_MAGIC.to_vec();
        wrong_version.push(9);
        assert!(read_wal::<i64>(&wrong_version, WalConfig::default()).is_err());
        // A torn header (prefix of the magic) is a crash signature, not
        // an alien file.
        let replay = read_wal::<i64>(&WAL_MAGIC[..2], WalConfig::default()).unwrap();
        assert_eq!(replay.ops.len(), 0);
        assert!(!replay.is_clean());
    }

    #[test]
    fn recover_replays_snapshot_plus_log() {
        // State at checkpoint time…
        let mut base = GrowableCube::<i64>::new(2, DdcConfig::sparse());
        base.add(&[1, 1], 10);
        base.add(&[-4, 0], 3);
        let mut snapshot = Vec::new();
        base.save(&mut snapshot).unwrap();
        // …then more acknowledged work in the log.
        let (log, _) = write_log(&[
            WalOp::Update {
                point: vec![1, 1],
                delta: -10,
            },
            WalOp::Set {
                point: vec![9, 9],
                value: 4,
            },
        ]);
        let (cube, report) = recover::<i64>(
            2,
            Some(&snapshot),
            &log,
            DdcConfig::sparse(),
            WalConfig::default(),
        )
        .unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.replayed, 2);
        assert!(report.truncated.is_none());
        assert_eq!(cube.cell(&[1, 1]), 0);
        assert_eq!(cube.cell(&[-4, 0]), 3);
        assert_eq!(cube.cell(&[9, 9]), 4);
        assert_eq!(cube.total(), 7);
    }

    #[test]
    fn recover_without_snapshot_and_with_torn_tail() {
        let (log, ends) = write_log(&sample_ops());
        // Kill mid-record-3: recovery keeps exactly the first two records.
        let cut = (ends[2] - 3) as usize;
        let (cube, report) = recover::<i64>(
            2,
            None,
            &log[..cut],
            DdcConfig::dynamic(),
            WalConfig::default(),
        )
        .unwrap();
        assert!(!report.snapshot_loaded);
        assert_eq!(report.replayed, 2);
        assert!(report.truncated.is_some());
        assert_eq!(cube.cell(&[0, 0]), 5);
        assert_eq!(cube.cell(&[-3, 7]), -9);
    }

    #[test]
    fn recover_rejects_arity_mismatch() {
        let (log, _) = write_log(&sample_ops()); // 2-dimensional records
        assert!(recover::<i64>(3, None, &log, DdcConfig::dynamic(), WalConfig::default()).is_err());
    }

    #[test]
    fn durable_cube_checkpoint_and_reset() {
        let mut cube =
            DurableCube::<i64, Vec<u8>>::new(1, DdcConfig::dynamic(), Vec::new()).unwrap();
        cube.add(&[5], 2).unwrap();
        cube.add(&[-1], 8).unwrap();
        assert_eq!(cube.wal_stats().1, 2);
        let mut snapshot = Vec::new();
        let bytes = cube.checkpoint(&mut snapshot).unwrap();
        assert_eq!(bytes as usize, snapshot.len());
        let old_log = cube.reset_wal(Vec::new()).unwrap();
        assert!(old_log.len() > WAL_HEADER_BYTES);
        assert_eq!(cube.wal_stats().1, 0);
        cube.set(&[5], 1).unwrap();
        // Crash now: snapshot + fresh log reproduce the state exactly.
        let log = cube.into_wal().into_inner();
        let (recovered, report) = recover::<i64>(
            1,
            Some(&snapshot),
            &log,
            DdcConfig::dynamic(),
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(recovered.cell(&[5]), 1);
        assert_eq!(recovered.cell(&[-1]), 8);
    }

    const WAL: &str = "cube.wal";
    const SNAP: &str = "cube.snap";

    fn boot(vfs: &FaultVfs) -> DurableCube<i64, crate::vfs::FaultFile<crate::vfs::MemFile>> {
        let (cube, _) = recover_vfs::<i64, _>(
            vfs,
            WAL,
            Some(SNAP),
            2,
            DdcConfig::sparse(),
            WalConfig::default(),
            RetryPolicy::instant(),
        )
        .unwrap();
        cube
    }

    #[test]
    fn transient_write_fault_is_retried_and_acked() {
        // Boot (disarmed) takes some ops; probe how many, then plant the
        // fault exactly at the first armed append's write.
        let probe = FaultVfs::explicit_mem(Vec::new());
        let c = boot(&probe);
        drop(c);
        let boot_ops = probe.ops();
        let vfs = FaultVfs::explicit_mem(vec![PlannedFault {
            op: boot_ops,
            kind: FaultKind::WriteErr,
        }]);
        let mut cube = boot(&vfs);
        vfs.arm(true);
        cube.add(&[1, 2], 7).unwrap();
        assert_eq!(cube.wal().io_faults(), 1);
        assert_eq!(cube.wal().io_retries(), 1);
        assert!(cube.degraded().is_none());
        vfs.arm(false);
        drop(cube);
        let recovered = boot(&vfs);
        assert_eq!(recovered.cube().cell(&[1, 2]), 7);
    }

    #[test]
    fn enospc_degrades_to_read_only_and_queries_keep_serving() {
        let probe = FaultVfs::explicit_mem(Vec::new());
        drop(boot(&probe));
        let boot_ops = probe.ops();
        let vfs = FaultVfs::explicit_mem(vec![PlannedFault {
            op: boot_ops + 2, // second armed append's write (write+sync per append)
            kind: FaultKind::NoSpace,
        }]);
        let mut cube = boot(&vfs);
        vfs.arm(true);
        cube.add(&[0, 0], 5).unwrap();
        let err = cube.add(&[1, 1], 9).unwrap_err();
        assert!(matches!(err, IoError::ReadOnly { .. }), "{err}");
        assert!(cube.degraded().is_some());
        // No retries for ENOSPC, queries still serve the acked prefix.
        assert_eq!(cube.wal().io_retries(), 0);
        assert_eq!(cube.cube().cell(&[0, 0]), 5);
        // Further mutations are rejected without touching the log.
        let ops_before = vfs.ops();
        assert!(matches!(
            cube.add(&[2, 2], 1),
            Err(IoError::ReadOnly { .. })
        ));
        assert_eq!(vfs.ops(), ops_before);
        // Recovery sees exactly the acked prefix.
        vfs.arm(false);
        drop(cube);
        let recovered = boot(&vfs);
        assert_eq!(recovered.cube().cell(&[0, 0]), 5);
        assert_eq!(recovered.cube().cell(&[1, 1]), 0);
        assert_eq!(recovered.cube().total(), 5);
    }

    #[test]
    fn retry_exhaustion_degrades_and_preserves_acked_prefix() {
        let probe = FaultVfs::explicit_mem(Vec::new());
        drop(boot(&probe));
        let boot_ops = probe.ops();
        // Default budget is 4 retries => 5 write attempts; each failed
        // attempt costs write + truncate? (truncate is not an op) — the
        // armed append's write op indices advance by 1 per attempt.
        let faults = (0..8)
            .map(|i| PlannedFault {
                op: boot_ops + i,
                kind: FaultKind::WriteErr,
            })
            .collect();
        let vfs = FaultVfs::explicit_mem(faults);
        let mut cube = boot(&vfs);
        vfs.arm(true);
        let err = cube.add(&[3, 3], 2).unwrap_err();
        assert!(
            matches!(err, IoError::Exhausted { retries: 4, .. }),
            "{err}"
        );
        assert!(cube.degraded().is_some());
        assert_eq!(cube.wal().io_faults(), 5);
        vfs.arm(false);
        drop(cube);
        let recovered = boot(&vfs);
        assert_eq!(recovered.cube().total(), 0);
    }

    #[test]
    fn sync_fault_with_truncate_on_retry_never_duplicates_records() {
        let probe = FaultVfs::explicit_mem(Vec::new());
        drop(boot(&probe));
        let boot_ops = probe.ops();
        // Fail the sync of the first armed append: the bytes landed, the
        // retry must truncate them before rewriting, or recovery would
        // see the update twice.
        let vfs = FaultVfs::explicit_mem(vec![PlannedFault {
            op: boot_ops + 1,
            kind: FaultKind::SyncFail,
        }]);
        let mut cube = boot(&vfs);
        vfs.arm(true);
        cube.add(&[4, 4], 10).unwrap();
        vfs.arm(false);
        drop(cube);
        let recovered = boot(&vfs);
        assert_eq!(recovered.cube().cell(&[4, 4]), 10);
        assert_eq!(recovered.cube().total(), 10, "no duplicated replay");
    }

    #[test]
    fn checkpoint_vfs_rotates_log_and_recovers_from_snapshot() {
        let vfs = FaultVfs::explicit_mem(Vec::new());
        let mut cube = boot(&vfs);
        cube.add(&[1, 1], 4).unwrap();
        cube.add(&[2, 2], 6).unwrap();
        let bytes = cube.checkpoint_vfs(&vfs, SNAP, WAL).unwrap();
        assert!(bytes > 0);
        assert_eq!(cube.wal_stats().1, 0, "log rotated");
        cube.add(&[1, 1], -4).unwrap();
        drop(cube);
        let recovered = boot(&vfs);
        assert_eq!(recovered.cube().cell(&[1, 1]), 0);
        assert_eq!(recovered.cube().cell(&[2, 2]), 6);
    }

    #[test]
    fn degraded_cube_can_be_cleared_by_operator() {
        let probe = FaultVfs::explicit_mem(Vec::new());
        drop(boot(&probe));
        let boot_ops = probe.ops();
        let vfs = FaultVfs::explicit_mem(vec![PlannedFault {
            op: boot_ops,
            kind: FaultKind::NoSpace,
        }]);
        let mut cube = boot(&vfs);
        vfs.arm(true);
        assert!(cube.add(&[0, 0], 1).is_err());
        assert!(cube.degraded().is_some());
        cube.clear_degraded();
        assert!(cube.degraded().is_none());
        cube.add(&[0, 0], 1).unwrap();
        assert_eq!(cube.cube().cell(&[0, 0]), 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(8),
            truncate_on_retry: true,
        };
        assert_eq!(p.backoff(1), Duration::from_millis(1));
        assert_eq!(p.backoff(2), Duration::from_millis(2));
        assert_eq!(p.backoff(3), Duration::from_millis(4));
        assert_eq!(p.backoff(4), Duration::from_millis(8));
        assert_eq!(p.backoff(9), Duration::from_millis(8));
    }
}
